// Figure 12: random-forest AUC as a function of the lookahead window N.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 12 — random-forest AUC vs lookahead N",
      "AUC decays from ~0.90 (N=1) to ~0.77 (N=30); prediction is especially "
      "strong for 1-3 day lookaheads",
      fleet);

  // Paper curve anchors read from Fig 12.
  struct Anchor {
    int n;
    double paper;
  };
  const Anchor anchors[] = {{1, 0.905}, {2, 0.859}, {3, 0.839}, {5, 0.82},
                            {7, 0.803}, {10, 0.80}, {14, 0.79}, {21, 0.78},
                            {30, 0.77}};

  io::TextTable table("Fig 12 series (reproduced +- fold sd, paper in parens)");
  table.set_header({"N (days)", "RF ROC AUC"});
  for (const Anchor& a : anchors) {
    const ml::Dataset data =
        core::build_dataset(fleet, bench::default_build_options(a.n));
    const auto model = ml::make_model(ml::ModelKind::kRandomForest);
    const auto ms = core::evaluate_auc(*model, data).auc();
    table.add_row({std::to_string(a.n), bench::vs_pm(ms.mean, ms.sd, a.paper)});
    table.print(std::cout);
  }
  return 0;
}
