// Table 8: random-forest AUC predicting each ERROR type (rather than
// failure) with N = 2, for combined / young / old drive populations —
// the Mahdisoltani-style experiment the paper extends.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Table 8 — RF AUC predicting each error type (N = 2)",
      "error occurrences are predictable (AUC 0.75-0.97); age-split training "
      "helps the young partition; response errors are too rare to split",
      fleet);

  struct PaperRow {
    trace::ErrorType type;
    double combined, young, old;
  };
  const PaperRow paper[] = {
      {trace::ErrorType::kErase, 0.889, 0.934, 0.882},
      {trace::ErrorType::kFinalRead, 0.906, 0.959, 0.852},
      {trace::ErrorType::kFinalWrite, 0.841, 0.937, 0.780},
      {trace::ErrorType::kMeta, 0.854, 0.890, 0.842},
      {trace::ErrorType::kRead, 0.971, 0.917, 0.973},
      {trace::ErrorType::kResponse, 0.806, -1.0, -1.0},
      {trace::ErrorType::kTimeout, 0.755, 0.812, 0.735},
      {trace::ErrorType::kUncorrectable, 0.933, 0.960, 0.931},
      {trace::ErrorType::kWrite, 0.916, 0.911, 0.914},
  };

  // Error positives are plentiful (Table 1 incidence x 2-day lookahead x
  // ~16M drive-days); subsample both classes to a tractable, still-unbiased
  // evaluation set.  Sizing uses the measured incidence per type.
  const auto suite = core::characterize(fleet);
  std::uint64_t total_days = 0;
  for (trace::DriveModel m : trace::kMlcModels)
    total_days += suite.incidence(m).drive_days;
  const auto positive_keep_for = [&](trace::ErrorType type) {
    std::uint64_t error_days = 0;
    for (trace::DriveModel m : trace::kMlcModels)
      error_days += suite.incidence(m).error_days[static_cast<std::size_t>(type)];
    const double expected_positives = 2.0 * static_cast<double>(error_days);
    constexpr double kTargetPositives = 4000.0;
    return std::min(1.0, kTargetPositives / std::max(expected_positives, 1.0));
  };

  io::TextTable table("Table 8 (reproduced vs paper)");
  table.set_header({"Error", "Combined", "Young", "Old"});

  // "Bad block" row: label = new bad blocks develop within the next 2 days.
  {
    std::vector<std::string> cells = {"bad block"};
    using AF = core::DatasetBuildOptions::AgeFilter;
    const AF filters[] = {AF::kAll, AF::kYoungOnly, AF::kOldOnly};
    const double paper_vals[] = {0.877, 0.878, 0.873};
    // Background bad-block growth runs at ~2%/day, so subsample positives.
    const double expected = 0.04 * static_cast<double>(total_days);
    for (std::size_t f = 0; f < 3; ++f) {
      auto opts = bench::default_build_options(2);
      opts.bad_block_label = true;
      opts.age_filter = filters[f];
      const double boost = filters[f] == AF::kYoungOnly ? 16.0 : 1.0;
      opts.positive_keep_prob = std::min(1.0, 4000.0 / expected * boost);
      const ml::Dataset data = core::build_dataset(fleet, opts);
      if (data.positives() < 40 || data.positives() + 40 > data.size()) {
        cells.emplace_back("--");
        continue;
      }
      const auto model = ml::make_model(ml::ModelKind::kRandomForest);
      const auto ms = core::evaluate_auc(*model, data).auc();
      cells.push_back(bench::vs_pm(ms.mean, ms.sd, paper_vals[f]));
    }
    table.add_row(cells);
    table.print(std::cout);
  }

  for (const PaperRow& row : paper) {
    std::vector<std::string> cells = {std::string(trace::error_name(row.type))};
    using AF = core::DatasetBuildOptions::AgeFilter;
    const AF filters[] = {AF::kAll, AF::kYoungOnly, AF::kOldOnly};
    const double paper_vals[] = {row.combined, row.young, row.old};
    for (std::size_t f = 0; f < 3; ++f) {
      auto opts = bench::default_build_options(2);
      opts.error_label = row.type;
      opts.age_filter = filters[f];
      // Young drive-days are ~6% of the fleet; keep proportionally more
      // positives there so the partition stays evaluable.
      const double boost = filters[f] == AF::kYoungOnly ? 16.0 : 1.0;
      opts.positive_keep_prob = std::min(1.0, positive_keep_for(row.type) * boost);
      const ml::Dataset data = core::build_dataset(fleet, opts);
      // Rare errors in a thin partition cannot be evaluated (paper's "—").
      if (data.positives() < 40 || data.positives() + 40 > data.size()) {
        cells.emplace_back("--");
        continue;
      }
      const auto model = ml::make_model(ml::ModelKind::kRandomForest);
      const auto ms = core::evaluate_auc(*model, data).auc();
      cells.push_back(paper_vals[f] < 0 ? io::TextTable::num(ms.mean, 3) + " (--)"
                                        : bench::vs_pm(ms.mean, ms.sd, paper_vals[f]));
    }
    table.add_row(cells);
    table.print(std::cout);
  }
  return 0;
}
