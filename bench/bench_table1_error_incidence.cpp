// Table 1: proportion of drive days that exhibit each error type.

#include "bench_common.hpp"

namespace {

using namespace ssdfail;

// Paper's Table 1 (proportion of drive days), by [error][model A,B,D].
struct PaperRow {
  trace::ErrorType type;
  double a, b, d;
};
constexpr PaperRow kPaper[] = {
    {trace::ErrorType::kCorrectable, 0.828895, 0.776308, 0.767593},
    {trace::ErrorType::kFinalRead, 0.001077, 0.001805, 0.001552},
    {trace::ErrorType::kFinalWrite, 0.000026, 0.000027, 0.000034},
    {trace::ErrorType::kMeta, 0.000014, 0.000016, 0.000028},
    {trace::ErrorType::kRead, 0.000090, 0.000103, 0.000133},
    {trace::ErrorType::kResponse, 0.000001, 0.000004, 0.000002},
    {trace::ErrorType::kTimeout, 0.000009, 0.000010, 0.000014},
    {trace::ErrorType::kUncorrectable, 0.002176, 0.002349, 0.002583},
    {trace::ErrorType::kWrite, 0.000117, 0.001309, 0.000162},
};

}  // namespace

int main() {
  const auto fleet = bench::default_fleet();
  bench::print_banner("Table 1 — proportion of drive days exhibiting each error type",
                      "correctable errors on ~80% of days; UE/final-read dominate the "
                      "non-transparent types by an order of magnitude",
                      fleet);

  const auto suite = core::characterize(fleet);

  io::TextTable table("Table 1 (reproduced vs paper)");
  table.set_header({"error type", "MLC-A", "MLC-B", "MLC-D"});
  for (const PaperRow& row : kPaper) {
    const auto idx = static_cast<std::size_t>(row.type);
    auto cell = [&](trace::DriveModel m, double paper) {
      const auto& inc = suite.incidence(m);
      const double reproduced = static_cast<double>(inc.error_days[idx]) /
                                static_cast<double>(inc.drive_days);
      return bench::vs(reproduced, paper, 6);
    };
    table.add_row({std::string(trace::error_name(row.type)),
                   cell(trace::DriveModel::MlcA, row.a),
                   cell(trace::DriveModel::MlcB, row.b),
                   cell(trace::DriveModel::MlcD, row.d)});
  }
  table.print(std::cout);
  return 0;
}
