// Ablations of the evaluation-protocol design choices called out in
// DESIGN.md / Section 5.1:
//   (a) training downsampling ratio (the paper settled on 1:1),
//   (b) test-side negative subsampling rate (must not move the AUC),
//   (c) repeated downsampling seeds (the paper reports ~±0.001 wobble),
//   (d) the single-feature threshold baseline vs the forest
//       ("no single metric triggers a drive failure at a threshold").

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Ablation — evaluation-protocol choices",
                      "1:1 downsampling is as good as richer ratios; test-side "
                      "subsampling leaves AUC unchanged; downsampling-seed wobble is "
                      "small; no single-feature threshold rule approaches the forest",
                      fleet);

  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));
  std::printf("dataset: %zu rows, %zu positives\n\n", data.size(), data.positives());

  // (a) training downsampling ratio.
  io::TextTable ratio_table("(a) training negatives-per-positive ratio (RF, N=1)");
  ratio_table.set_header({"ratio", "AUC +- sd"});
  for (double ratio : {0.5, 1.0, 2.0, 5.0}) {
    const auto model = ml::make_model(ml::ModelKind::kRandomForest);
    core::EvalProtocol protocol;
    protocol.train_downsample_ratio = ratio;
    const auto ms = core::evaluate_auc(*model, data, protocol).auc();
    ratio_table.add_row({io::TextTable::num(ratio, 1),
                         io::TextTable::num(ms.mean, 3) + " +- " +
                             io::TextTable::num(ms.sd, 3)});
  }
  ratio_table.print(std::cout);

  // (b) test-side negative keep probability.
  io::TextTable keep_table("(b) test-side negative keep probability (DT, N=1)");
  keep_table.set_header({"keep prob", "rows", "AUC"});
  for (double keep : {0.02, 0.005, 0.002}) {
    auto opts = bench::default_build_options(1);
    opts.negative_keep_prob = keep;
    const ml::Dataset d = core::build_dataset(fleet, opts);
    const auto model = ml::make_model(ml::ModelKind::kDecisionTree);
    const auto ms = core::evaluate_auc(*model, d).auc();
    keep_table.add_row({io::TextTable::num(keep, 3), std::to_string(d.size()),
                        io::TextTable::num(ms.mean, 3)});
  }
  keep_table.print(std::cout);

  // (c) downsampling-seed wobble.
  io::TextTable seed_table("(c) downsampling-seed sensitivity (RF, N=1)");
  seed_table.set_header({"protocol seed", "AUC"});
  std::vector<double> seed_aucs;
  for (std::uint64_t seed : {5ull, 77ull, 901ull, 4242ull}) {
    const auto model = ml::make_model(ml::ModelKind::kRandomForest);
    core::EvalProtocol protocol;
    protocol.seed = seed;
    const double auc = core::evaluate_auc(*model, data, protocol).auc().mean;
    seed_aucs.push_back(auc);
    seed_table.add_row({std::to_string(seed), io::TextTable::num(auc, 4)});
  }
  const auto wobble = ml::mean_sd(seed_aucs);
  seed_table.add_row({"sd across seeds", io::TextTable::num(wobble.sd, 4) +
                                             " (paper: ~0.001 for downsampling alone; "
                                             "our seed also reshuffles folds)"});
  seed_table.print(std::cout);

  // (d) threshold baseline vs the model zoo.
  io::TextTable base_table("(d) single-feature threshold baseline vs models (N=1)");
  base_table.set_header({"model", "AUC +- sd"});
  for (ml::ModelKind kind : {ml::ModelKind::kThresholdBaseline,
                             ml::ModelKind::kLogisticRegression,
                             ml::ModelKind::kRandomForest}) {
    const auto model = ml::make_model(kind);
    const auto ms = core::evaluate_auc(*model, data).auc();
    base_table.add_row({ml::model_display_name(kind),
                        io::TextTable::num(ms.mean, 3) + " +- " +
                            io::TextTable::num(ms.sd, 3)});
  }
  base_table.print(std::cout);
  return 0;
}
