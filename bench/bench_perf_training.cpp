// Training-pipeline performance benchmarks (google-benchmark), the scaling
// companion to bench_perf_components' single-component microbenches.
//
//   BM_TrainCvPipeline/<threads>   end-to-end Table 6 pipeline: 5-fold
//                                  drive-partitioned CV of the fast zoo
//                                  models on a private <threads>-worker
//                                  pool (Arg = thread count).
//   BM_LookaheadSweep/<cached>     Fig 12's N = 1..30 sweep.  Arg 0 builds
//                                  30 independent datasets (one fleet pass
//                                  each); Arg 1 builds one SweepDatasetCache
//                                  (single pass) and materializes all 30.
//
// Determinism is part of the contract, so the counters carry the results,
// not just the timings: per-model mean AUCs, plus fold_auc_digest — a hash
// of every per-fold AUC's bit pattern, masked to 52 bits so it round-trips
// exactly through a double counter.  A JSON consumer (the CI quick-bench
// smoke) asserts these are identical at every thread count and reads the
// speedup off real_time.  Run with
//
//   bench_perf_training --benchmark_out=out.json --benchmark_format=json
//
// (full schema and naming scheme: docs/BENCHMARKS.md).  The fleet here is
// intentionally small and fixed — not SSDFAIL_DRIVES_PER_MODEL-scaled —
// so the digests are comparable across machines.

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_metrics.hpp"
#include "core/dataset_builder.hpp"
#include "ml/cross_validation.hpp"
#include "ml/downsample.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/model_zoo.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace ssdfail;

constexpr int kSweepMaxLookahead = 30;

sim::FleetConfig bench_config() {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 150;
  cfg.seed = 2019;
  return cfg;
}

const ml::Dataset& bench_dataset() {
  static const ml::Dataset data = [] {
    core::DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.02;
    return core::build_dataset(sim::FleetSimulator(bench_config()), opts);
  }();
  return data;
}

/// The CV lineup: the zoo models whose cost is dominated by fit/predict on
/// the pool (kNN/SVM/MLP are O(n_train * n_test) and would drown the
/// scaling signal), plus the boosting extension.
std::vector<std::pair<std::string, std::unique_ptr<ml::Classifier>>> cv_models() {
  std::vector<std::pair<std::string, std::unique_ptr<ml::Classifier>>> models;
  models.emplace_back("logistic", ml::make_model(ml::ModelKind::kLogisticRegression));
  models.emplace_back("tree", ml::make_model(ml::ModelKind::kDecisionTree));
  models.emplace_back("forest", ml::make_model(ml::ModelKind::kRandomForest));
  ml::GradientBoosting::Params gb;
  gb.n_rounds = 60;
  models.emplace_back("boosting", std::make_unique<ml::GradientBoosting>(gb));
  models.emplace_back("baseline", ml::make_model(ml::ModelKind::kThresholdBaseline));
  return models;
}

/// Fold a double's exact bit pattern into a running digest.
std::uint64_t digest_double(std::uint64_t digest, double value) {
  return stats::hash_keys({digest, std::bit_cast<std::uint64_t>(value)});
}

/// Mask so the digest is exactly representable as a benchmark counter
/// (doubles hold 52 mantissa bits losslessly).
double counter_digest(std::uint64_t digest) {
  return static_cast<double>(digest & ((std::uint64_t{1} << 52) - 1));
}

void BM_TrainCvPipeline(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  parallel::ThreadPool pool(threads);
  const ml::Dataset& data = bench_dataset();
  const auto models = cv_models();

  ml::CvOptions options;
  options.folds = 5;
  options.seed = 5;
  options.pool = &pool;
  // The paper's protocol: balance each training fold 1:1, seeded by fold.
  options.train_transform = [](const ml::Dataset& train, std::size_t fold) {
    return ml::downsample_negatives(train, 1.0, 1000 + fold);
  };

  std::vector<ml::CvResult> results(models.size());
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    for (std::size_t m = 0; m < models.size(); ++m)
      results[m] = ml::cross_validate(*models[m].second, data, options);
    benchmark::DoNotOptimize(results.data());
  }

  std::uint64_t digest = 0;
  for (std::size_t m = 0; m < models.size(); ++m) {
    state.counters["auc_" + models[m].first] = results[m].auc().mean;
    for (const double auc : results[m].fold_aucs) digest = digest_double(digest, auc);
  }
  state.counters["fold_auc_digest"] = counter_digest(digest);
  state.counters["threads"] = threads;
  // Registry counters per iteration: cv_folds_evaluated_total must read 25
  // (5 models x 5 folds) at every thread count, and threadpool_tasks_total
  // shows how much work actually crossed the pool queue.
  obs_delta.export_into(state, "cv_");
  obs_delta.export_into(state, "threadpool_");
}
BENCHMARK(BM_TrainCvPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_LookaheadSweep(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  const sim::FleetSimulator fleet(bench_config());
  core::DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.02;

  std::uint64_t rows = 0;
  std::uint64_t digest = 0;
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    rows = 0;
    digest = 0;
    const auto fold_in = [&](const ml::Dataset& d) {
      rows += d.size();
      digest = stats::hash_keys({digest, d.size(), d.positives()});
    };
    if (cached) {
      const core::SweepDatasetCache cache(fleet, opts, kSweepMaxLookahead);
      for (int n = 1; n <= kSweepMaxLookahead; ++n) fold_in(cache.materialize(n));
    } else {
      for (int n = 1; n <= kSweepMaxLookahead; ++n) {
        opts.lookahead_days = n;
        fold_in(core::build_dataset(fleet, opts));
      }
    }
    benchmark::DoNotOptimize(digest);
  }
  // rows and sweep_digest must be IDENTICAL between Arg 0 and Arg 1: the
  // cache replays the exact per-row keep draws of the direct builds.
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["sweep_digest"] = counter_digest(digest);
  // Cached vs direct differ in fleet passes, so sim_drive_days_generated
  // per iteration is the cache's whole story in one number.
  obs_delta.export_into(state, "sim_");
}
BENCHMARK(BM_LookaheadSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

SSDFAIL_BENCH_MAIN();
