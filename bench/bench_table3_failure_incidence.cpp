// Table 3: high-level failure incidence statistics per drive model.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Table 3 — failure incidence per model",
                      "MLC-A 6.95% / MLC-B 14.3% / MLC-D 12.5% of drives fail at "
                      "least once; 11.29% overall",
                      fleet);

  const auto suite = core::characterize(fleet);
  constexpr double kPaperPct[] = {6.95, 14.3, 12.5};

  io::TextTable table("Table 3 (reproduced vs paper)");
  table.set_header({"Model", "#Failures", "%Failed"});
  std::uint64_t total_failures = 0;
  std::uint64_t total_failed = 0;
  std::uint64_t total_drives = 0;
  for (trace::DriveModel m : trace::kMlcModels) {
    const auto& fi = suite.failure_incidence(m);
    total_failures += fi.failures;
    total_failed += fi.drives_failed;
    total_drives += fi.drives;
    const double pct = 100.0 * static_cast<double>(fi.drives_failed) /
                       static_cast<double>(fi.drives);
    table.add_row({std::string(trace::model_name(m)), std::to_string(fi.failures),
                   bench::vs(pct, kPaperPct[static_cast<std::size_t>(m)], 2)});
  }
  const double all_pct =
      100.0 * static_cast<double>(total_failed) / static_cast<double>(total_drives);
  table.add_row({"All", std::to_string(total_failures), bench::vs(all_pct, 11.29, 2)});
  table.print(std::cout);
  return 0;
}
