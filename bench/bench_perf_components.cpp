// Performance microbenchmarks (google-benchmark) for the heavy components:
// simulation throughput, timeline derivation, feature extraction,
// rank-correlation, forest training/prediction, and AUC computation.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>

#include "bench_metrics.hpp"
#include "trace/binary_io.hpp"
#include "core/characterization.hpp"
#include "core/dataset_builder.hpp"
#include "core/failure_timeline.hpp"
#include "core/online_monitor.hpp"
#include "ml/downsample.hpp"
#include "ml/flat_forest.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/random_forest.hpp"
#include "parallel/thread_pool.hpp"
#include "robustness/fault_injector.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/spearman.hpp"

namespace {

using namespace ssdfail;

const trace::FleetTrace& small_fleet() {
  static const trace::FleetTrace fleet = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 150;
    return sim::FleetSimulator(cfg).generate_all();
  }();
  return fleet;
}

const ml::Dataset& bench_dataset() {
  static const ml::Dataset data = [] {
    core::DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.02;
    return core::build_dataset(small_fleet(), opts);
  }();
  return data;
}

void BM_SimulateDrive(benchmark::State& state) {
  const auto& spec = sim::preset(trace::DriveModel::MlcB);
  std::uint32_t index = 0;
  std::uint64_t days = 0;
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    const auto drive = sim::simulate_drive(spec, 7, index++, sim::kDefaultWindowDays);
    days += drive.records.size();
    benchmark::DoNotOptimize(drive.records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(days));
  state.counters["drive_days/s"] =
      benchmark::Counter(static_cast<double>(days), benchmark::Counter::kIsRate);
  obs_delta.export_into(state, "sim_");
}
BENCHMARK(BM_SimulateDrive);

/// v1 reader throughput from a real file.  Guards the buffered block
/// reader: the old per-field `stream.read` implementation was two orders
/// of magnitude below the floor asserted here, so reintroducing it fails
/// the bench instead of silently shipping a slow reader.
void BM_BinaryReadV1(benchmark::State& state) {
  const auto path =
      std::filesystem::temp_directory_path() / "ssdfail_bench_components_v1.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    trace::write_binary(out, small_fleet());
  }
  const auto file_bytes = static_cast<std::uint64_t>(std::filesystem::file_size(path));
  const std::uint64_t expect_records = small_fleet().total_records();
  std::uint64_t bytes = 0;
  std::chrono::steady_clock::duration spent{0};
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::ifstream in(path, std::ios::binary);
    const trace::FleetTrace fleet = trace::read_binary(in);
    spent += std::chrono::steady_clock::now() - start;
    benchmark::DoNotOptimize(fleet.drives.data());
    if (fleet.total_records() != expect_records) {
      state.SkipWithError("v1 round trip lost records");
      return;
    }
    bytes += file_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  // Conservative floor (the buffered reader sustains >1 GB/s locally;
  // shared CI runners get a wide margin).  A per-field-syscall regression
  // lands well under this.
  constexpr double kMinBytesPerSecond = 32.0 * 1024 * 1024;
  const double secs = std::chrono::duration<double>(spent).count();
  if (secs > 0.0 && static_cast<double>(bytes) / secs < kMinBytesPerSecond) {
    state.SkipWithError("v1 read throughput below 32 MiB/s floor");
  }
}
BENCHMARK(BM_BinaryReadV1);

void BM_DeriveTimeline(benchmark::State& state) {
  const auto& fleet = small_fleet();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto timeline = core::derive_timeline(fleet.drives[i % fleet.drives.size()]);
    benchmark::DoNotOptimize(timeline.failures.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_DeriveTimeline);

void BM_CharacterizeDrive(benchmark::State& state) {
  const auto& fleet = small_fleet();
  core::CharacterizationSuite suite;
  std::size_t i = 0;
  for (auto _ : state) {
    suite.add(fleet.drives[i % fleet.drives.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_CharacterizeDrive);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& drive = small_fleet().drives[0];
  std::vector<float> row(core::FeatureExtractor::count());
  for (auto _ : state) {
    core::FeatureExtractor::State st;
    for (const auto& rec : drive.records) {
      core::FeatureExtractor::advance(st, rec);
      core::FeatureExtractor::extract(drive, rec, st, row);
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(drive.records.size()));
}
BENCHMARK(BM_FeatureExtraction);

void BM_SpearmanMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(3);
  std::vector<std::vector<double>> columns(12);
  for (auto& col : columns) {
    col.reserve(n);
    for (std::size_t i = 0; i < n; ++i) col.push_back(rng.uniform());
  }
  for (auto _ : state) {
    const auto m = stats::spearman_matrix(columns);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SpearmanMatrix)->Arg(1000)->Arg(10000);

void BM_RandomForestFit(benchmark::State& state) {
  const ml::Dataset train = ml::downsample_negatives(bench_dataset(), 1.0, 1);
  for (auto _ : state) {
    ml::RandomForest::Params params;
    params.n_trees = static_cast<std::size_t>(state.range(0));
    ml::RandomForest forest(params);
    forest.fit(train);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(25)->Arg(100);

void BM_RandomForestPredict(benchmark::State& state) {
  const ml::Dataset train = ml::downsample_negatives(bench_dataset(), 1.0, 1);
  ml::RandomForest forest;
  forest.fit(train);
  const auto& test = bench_dataset();
  for (auto _ : state) {
    const auto scores = forest.predict_proba(test.x);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test.size()));
}
BENCHMARK(BM_RandomForestPredict);

const ml::RandomForest& bench_forest() {
  static const ml::RandomForest forest = [] {
    ml::RandomForest f;
    f.fit(ml::downsample_negatives(bench_dataset(), 1.0, 1));
    return f;
  }();
  return forest;
}

/// Compiled flat-forest engine, single-threaded (the per-core serving
/// number the capacity model uses).
void BM_FlatForestPredict(benchmark::State& state) {
  const ml::FlatForest engine = ml::FlatForest::compile(bench_forest());
  const auto& test = bench_dataset();
  static parallel::ThreadPool serial(1);
  for (auto _ : state) {
    const auto scores = engine.predict_proba(test.x, serial);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test.size()));
}
BENCHMARK(BM_FlatForestPredict);

/// Head-to-head engine comparison on ONE thread: the same fitted forest
/// scores the same matrix through the pointer walk and the compiled flat
/// engine inside each iteration, and the outputs are checked bit-identical
/// while timing.  Exports walker_rows_per_s / flat_rows_per_s /
/// flat_speedup_x; CI's quick-bench step fails if flat_speedup_x < 1
/// (ISSUE 6 targets >= 5x single-thread).
void BM_ForestScoringSpeedup(benchmark::State& state) {
  const ml::RandomForest& forest = bench_forest();
  const ml::FlatForest engine = ml::FlatForest::compile(forest);
  const auto& test = bench_dataset();
  static parallel::ThreadPool serial(1);
  std::chrono::steady_clock::duration walker_spent{0};
  std::chrono::steady_clock::duration flat_spent{0};
  std::uint64_t rows = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    const auto walker_scores = forest.predict_proba(test.x, serial);
    auto t1 = std::chrono::steady_clock::now();
    const auto flat_scores = engine.predict_proba(test.x, serial);
    auto t2 = std::chrono::steady_clock::now();
    walker_spent += t1 - t0;
    flat_spent += t2 - t1;
    benchmark::DoNotOptimize(walker_scores.data());
    benchmark::DoNotOptimize(flat_scores.data());
    if (walker_scores != flat_scores) {
      state.SkipWithError("flat engine diverged from the walker");
      return;
    }
    rows += test.size();
  }
  const double walker_secs = std::chrono::duration<double>(walker_spent).count();
  const double flat_secs = std::chrono::duration<double>(flat_spent).count();
  state.SetItemsProcessed(static_cast<std::int64_t>(rows));
  if (walker_secs > 0.0)
    state.counters["walker_rows_per_s"] = static_cast<double>(rows) / walker_secs;
  if (flat_secs > 0.0) {
    state.counters["flat_rows_per_s"] = static_cast<double>(rows) / flat_secs;
    state.counters["flat_speedup_x"] = walker_secs / flat_secs;
  }
}
BENCHMARK(BM_ForestScoringSpeedup);

std::shared_ptr<const ml::Classifier> monitor_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    auto forest = ml::make_model(ml::ModelKind::kRandomForest);
    forest->fit(ml::downsample_negatives(bench_dataset(), 1.0, 1));
    return std::shared_ptr<const ml::Classifier>(std::move(forest));
  }();
  return model;
}

// Fleet-scoring service throughput.  Arg(0) = per-record observe() path
// (the pre-sharding baseline); Arg(k>0) = batched path with k shards on a
// fixed 8-worker pool, so the shard count — not the worker count — is the
// scaling knob.  Each iteration scores one fleet-day.  On multi-core
// hardware the 8-shard batched path is expected to show >= 2x the
// throughput of 1 shard (shards score in parallel).
void BM_FleetMonitorScoring(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  static parallel::ThreadPool pool(8);
  core::FleetMonitor monitor(monitor_model(), 0.9, std::max<std::size_t>(shards, 1));
  std::vector<core::FleetObservation> batch;
  for (const auto& d : small_fleet().drives)
    if (!d.records.empty())
      batch.push_back({d.model, d.drive_index, 0, d.records.front()});
  std::int32_t day = 0;
  std::uint64_t scored = 0;
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    for (auto& obs : batch) obs.record.day = day;
    if (shards == 0) {
      for (const auto& obs : batch) {
        const auto assessment =
            monitor.observe(obs.drive_model, obs.drive_index, obs.deploy_day, obs.record);
        benchmark::DoNotOptimize(assessment.risk);
      }
    } else {
      const auto assessments = monitor.observe_batch(batch, pool);
      benchmark::DoNotOptimize(assessments.data());
    }
    ++day;
    scored += batch.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(scored));
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(scored), benchmark::Counter::kIsRate);
  // monitor_records_scored_total per iteration must equal the batch size —
  // the monitor's own books crosschecking the harness's.
  obs_delta.export_into(state, "monitor_");
}
BENCHMARK(BM_FleetMonitorScoring)->Arg(0)->Arg(1)->Arg(2)->Arg(8);

// Sanitizer overhead under dirty data.  Arg = per-record corruption
// percentage fed through the fault injector (0 = clean baseline, so the
// delta vs Arg(0) is the cost of scoring through the sanitize-repair-
// quarantine path rather than around it).  Batched path, 4 shards.
void BM_CorruptStreamScoring(benchmark::State& state) {
  const auto corruption_pct = static_cast<double>(state.range(0));
  static parallel::ThreadPool pool(8);
  core::FleetMonitor monitor(monitor_model(), 0.9, 4);
  std::vector<core::FleetObservation> batch;
  for (const auto& d : small_fleet().drives)
    if (!d.records.empty())
      batch.push_back({d.model, d.drive_index, 0, d.records.front()});
  robustness::FaultInjector injector(
      99, robustness::FaultRates::uniform(corruption_pct / 100.0));
  std::int32_t day = 0;
  std::uint64_t emitted = 0;
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    state.PauseTiming();  // corruption is the harness, not the measurement
    for (auto& obs : batch) obs.record.day = day;
    const auto corrupted = injector.corrupt(batch);
    state.ResumeTiming();
    const auto assessments = monitor.observe_batch(corrupted.observations, pool);
    benchmark::DoNotOptimize(assessments.data());
    ++day;
    emitted += corrupted.observations.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(emitted));
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(emitted), benchmark::Counter::kIsRate);
  // Repair/quarantine volume per iteration is what the corruption knob
  // actually bought, alongside the timing delta.
  obs_delta.export_into(state, "sanitizer_");
  obs_delta.export_into(state, "monitor_");
}
BENCHMARK(BM_CorruptStreamScoring)->Arg(0)->Arg(1)->Arg(10)->Arg(30);

void BM_RocAuc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  std::vector<float> scores(n);
  std::vector<float> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.uniform());
    labels[i] = rng.bernoulli(0.01) ? 1.0f : 0.0f;
  }
  for (auto _ : state) benchmark::DoNotOptimize(ml::roc_auc(scores, labels));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RocAuc)->Arg(100000)->Arg(1000000);

}  // namespace

SSDFAIL_BENCH_MAIN();
