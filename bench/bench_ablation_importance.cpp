// Ablation: impurity importance (the paper's Fig 16 method) vs
// model-agnostic permutation importance, plus feature-GROUP knockout —
// which feature families actually carry the predictive signal?

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Ablation — feature importance methods and group knockout (RF, N = 1)",
      "Fig 16 uses impurity importance; permutation importance is the "
      "model-agnostic check; group knockout quantifies whole families",
      fleet);

  auto opts = bench::default_build_options(1);
  const ml::Dataset data = core::build_dataset(fleet, opts);

  // Train/test split by drive for the permutation study.
  const auto splits = ml::group_k_fold(data, 5, 11);
  const ml::Dataset train =
      ml::downsample_negatives(data.subset(splits[0].train), 1.0, 5);
  const ml::Dataset test = data.subset(splits[0].test);

  auto forest = ml::make_model(ml::ModelKind::kRandomForest);
  forest->fit(train);

  const auto perm = core::permutation_importance(*forest, test, 17, 2);
  const auto impurity = core::forest_feature_importance(data);

  io::TextTable table("Top-10 by permutation importance (AUC drop)");
  table.set_header({"rank", "feature", "AUC drop", "impurity rank"});
  for (std::size_t i = 0; i < 10 && i < perm.size(); ++i) {
    std::size_t impurity_rank = 0;
    for (std::size_t j = 0; j < impurity.size(); ++j)
      if (impurity[j].name == perm[i].name) impurity_rank = j + 1;
    table.add_row({std::to_string(i + 1), perm[i].name,
                   io::TextTable::num(perm[i].importance, 4),
                   std::to_string(impurity_rank)});
  }
  table.print(std::cout);

  // --- Feature-group knockout: zero out a family, retrain, re-evaluate.
  struct Group {
    const char* name;
    std::vector<std::string> members;
  };
  const Group groups[] = {
      {"workload (reads/writes/erases)",
       {"read_count", "write_count", "erase_count", "cum_read_count",
        "cum_write_count", "cum_erase_count"}},
      {"error counts (all types)",
       {"correctable_error", "erase_error", "final_read_error", "final_write_error",
        "meta_error", "read_error", "response_error", "timeout_error",
        "uncorrectable_error", "write_error", "cum_correctable_error",
        "cum_erase_error", "cum_final_read_error", "cum_final_write_error",
        "cum_meta_error", "cum_read_error", "cum_response_error",
        "cum_timeout_error", "cum_uncorrectable_error", "cum_write_error",
        "corr_err_rate"}},
      {"bad blocks", {"new_bad_blocks", "cum_bad_block_count"}},
      {"age & wear", {"drive_age_days", "pe_cycles"}},
      {"status flags", {"status_read_only"}},
  };

  io::TextTable knockout("Group knockout: CV AUC without the family");
  knockout.set_header({"removed family", "AUC +- sd", "drop vs full"});
  const auto full_model = ml::make_model(ml::ModelKind::kRandomForest);
  const double full_auc = core::evaluate_auc(*full_model, data).auc().mean;
  knockout.add_row({"(none — full model)", io::TextTable::num(full_auc, 3), "--"});
  for (const Group& group : groups) {
    ml::Dataset ablated = data;
    for (const std::string& name : group.members) {
      const std::size_t col = core::FeatureExtractor::index_of(name);
      for (std::size_t r = 0; r < ablated.size(); ++r) ablated.x(r, col) = 0.0f;
    }
    const auto model = ml::make_model(ml::ModelKind::kRandomForest);
    const auto ms = core::evaluate_auc(*model, ablated).auc();
    knockout.add_row({group.name,
                      io::TextTable::num(ms.mean, 3) + " +- " +
                          io::TextTable::num(ms.sd, 3),
                      io::TextTable::num(full_auc - ms.mean, 3)});
  }
  knockout.print(std::cout);
  return 0;
}
