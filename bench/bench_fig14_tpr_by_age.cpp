// Figure 14: true positive rate as a function of drive age, at three
// conservative probability thresholds (RF, N = 1, pooled CV predictions).

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 14 — TPR by drive age at conservative thresholds",
      "for all thresholds, recall is markedly higher for drives younger than "
      "~3 months; TPR 0.2-0.8 depending on threshold",
      fleet);

  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));
  const auto model = ml::make_model(ml::ModelKind::kRandomForest);
  const core::PooledScores pooled = core::pooled_cv_scores(*model, data);
  const std::size_t age_col = core::FeatureExtractor::age_index();

  const double thresholds[] = {0.85, 0.90, 0.95};
  // Age buckets in months: 0-3 (infant), then 3-month steps.
  const double bucket_months[] = {3, 6, 12, 18, 24, 36, 48, 72};

  io::TextTable table("Fig 14 series: TPR per age bucket");
  table.set_header({"age bucket (months)", "thr=0.85", "thr=0.90", "thr=0.95",
                    "positives"});
  double lo = 0.0;
  for (double hi : bucket_months) {
    std::vector<std::string> row = {io::TextTable::num(lo, 0) + "-" +
                                    io::TextTable::num(hi, 0)};
    std::uint64_t positives = 0;
    for (double threshold : thresholds) {
      std::uint64_t tp = 0;
      std::uint64_t fn = 0;
      for (std::size_t i = 0; i < pooled.scores.size(); ++i) {
        if (pooled.labels[i] < 0.5f) continue;
        const double age_m = data.x(pooled.row_indices[i], age_col) / 30.44;
        if (age_m < lo || age_m >= hi) continue;
        (pooled.scores[i] >= threshold ? tp : fn) += 1;
      }
      positives = tp + fn;
      row.push_back(positives == 0
                        ? std::string("--")
                        : io::TextTable::num(static_cast<double>(tp) /
                                                 static_cast<double>(positives),
                                             3));
    }
    row.push_back(std::to_string(positives));
    table.add_row(row);
    lo = hi;
  }
  table.print(std::cout);
  std::printf("paper: the first bucket (age < 3 months) has distinctly higher TPR\n"
              "at every threshold.\n");
  return 0;
}
