// Figure 9: the Fig 8 CDF split into infant (age <= 90d) and mature
// failures — young failures occupy a small, uninformative P/E range.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 9 — P/E at failure, young vs old failures",
      "young failures inhabit a distinct small range of the P/E distribution "
      "(individual P/E counts are not informative for them)",
      fleet);

  const auto suite = core::characterize(fleet);
  const auto& young = suite.pe_at_failure_young();
  const auto& old = suite.pe_at_failure_old();

  io::TextTable table("Fig 9 series");
  table.set_header({"P/E cycles", "Young CDF", "Old CDF"});
  for (double pe : {25.0, 50.0, 100.0, 200.0, 400.0, 600.0, 800.0, 1000.0, 1500.0, 2000.0})
    table.add_row({io::TextTable::num(pe, 0), io::TextTable::num(young.at(pe), 3),
                   io::TextTable::num(old.at(pe), 3)});
  table.print(std::cout);

  std::printf("young failures' 95th pct P/E: %.0f cycles; old failures': %.0f cycles\n"
              "(paper: the young CDF saturates at a tiny fraction of the old range)\n",
              young.quantile(0.95), old.quantile(0.95));
  return 0;
}
