// Ablation of the random forest's own knobs (the paper grid-searched tree
// depth): ensemble size, depth, and per-node feature sampling.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/random_forest.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Ablation — random-forest hyperparameters (N = 1)",
                      "the paper tuned max depth by grid search; forests are robust "
                      "across a broad range of settings",
                      fleet);

  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));

  io::TextTable trees_table("ensemble size");
  trees_table.set_header({"n_trees", "AUC +- sd"});
  for (std::size_t n_trees : {5u, 25u, 100u, 200u}) {
    ml::RandomForest::Params params;
    params.n_trees = n_trees;
    const ml::RandomForest forest(params);
    const auto ms = core::evaluate_auc(forest, data).auc();
    trees_table.add_row({std::to_string(n_trees),
                         io::TextTable::num(ms.mean, 3) + " +- " +
                             io::TextTable::num(ms.sd, 3)});
  }
  trees_table.print(std::cout);

  io::TextTable depth_table("max tree depth");
  depth_table.set_header({"max_depth", "AUC +- sd"});
  for (std::size_t depth : {2u, 6u, 10u, 14u, 20u}) {
    ml::RandomForest::Params params;
    params.max_depth = depth;
    const ml::RandomForest forest(params);
    const auto ms = core::evaluate_auc(forest, data).auc();
    depth_table.add_row({std::to_string(depth),
                         io::TextTable::num(ms.mean, 3) + " +- " +
                             io::TextTable::num(ms.sd, 3)});
  }
  depth_table.print(std::cout);

  io::TextTable mtry_table("features sampled per node (0 = sqrt)");
  mtry_table.set_header({"max_features", "AUC +- sd"});
  for (std::size_t mtry : {0u, 2u, 8u, 16u, 31u}) {
    ml::RandomForest::Params params;
    params.max_features = mtry;
    const ml::RandomForest forest(params);
    const auto ms = core::evaluate_auc(forest, data).auc();
    mtry_table.add_row({std::to_string(mtry),
                        io::TextTable::num(ms.mean, 3) + " +- " +
                            io::TextTable::num(ms.sd, 3)});
  }
  mtry_table.print(std::cout);
  return 0;
}
