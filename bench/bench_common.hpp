#pragma once

// Shared plumbing for the reproduction bench harnesses.
//
// Every bench prints the paper's reported values alongside the reproduced
// ones so the comparison is visible in the raw output.  Scale knobs:
//   SSDFAIL_DRIVES_PER_MODEL  (default 4000; paper scale is >10000)
//   SSDFAIL_SEED              (default 2019)
//   SSDFAIL_THREADS           (default: hardware concurrency)

#include <cstdio>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "core/fleet_analysis.hpp"
#include "io/table.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::bench {

/// Fleet used by all reproduction benches (env-scalable).
[[nodiscard]] inline sim::FleetSimulator default_fleet() {
  return sim::FleetSimulator(sim::FleetConfig::from_env());
}

inline void print_banner(const std::string& experiment, const std::string& claim,
                         const sim::FleetSimulator& fleet) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  paper: %s\n", claim.c_str());
  std::printf("  fleet: %u drives/model x 3 models, %d-day window, seed %llu\n",
              fleet.config().drives_per_model, fleet.config().window_days,
              static_cast<unsigned long long>(fleet.config().seed));
  std::printf("==============================================================\n\n");
}

/// "reproduced (paper)" cell formatting.
[[nodiscard]] inline std::string vs(double reproduced, double paper, int digits = 3) {
  return io::TextTable::num(reproduced, digits) + " (" +
         io::TextTable::num(paper, digits) + ")";
}

/// "mean ± sd (paper)" cell formatting for CV results.
[[nodiscard]] inline std::string vs_pm(double mean, double sd, double paper,
                                       int digits = 3) {
  return io::TextTable::num(mean, digits) + " +- " + io::TextTable::num(sd, digits) +
         " (" + io::TextTable::num(paper, digits) + ")";
}

/// Standard dataset-build options for the prediction benches.  The
/// negative keep probability is sized so evaluation sets stay tractable
/// for the O(n_train * n_test) models on 2 cores.
[[nodiscard]] inline core::DatasetBuildOptions default_build_options(int lookahead) {
  core::DatasetBuildOptions opts;
  opts.lookahead_days = lookahead;
  opts.negative_keep_prob = 0.005;
  return opts;
}

}  // namespace ssdfail::bench
