// Figure 11: (top) probability of an uncorrectable error within the last
// n days before a swap vs an arbitrary-window baseline; (bottom) upper
// percentiles of the nonzero UE counts per day before failure.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 11 — uncorrectable errors approaching failure",
      "failed drives see UEs at far above baseline probability, most sharply "
      "in the last 2 days; ~75% of failed drives still see no UE in their last "
      "7 days; young failures that do error see orders of magnitude more",
      fleet);

  const auto suite = core::characterize(fleet);

  io::TextTable top("P(UE within the last n days before failure)");
  top.set_header({"n (days)", "Young", "Old", "Baseline"});
  for (std::size_t n = 0; n < core::CharacterizationSuite::kLookbackDays; ++n) {
    top.add_row({std::to_string(n), io::TextTable::num(suite.ue_within_days(true, n), 3),
                 io::TextTable::num(suite.ue_within_days(false, n), 3),
                 n == 0 ? std::string("--")
                        : io::TextTable::num(suite.baseline_ue_within_days(n), 3)});
  }
  top.print(std::cout);

  io::TextTable bottom("Nonzero UE-count percentiles by days before failure");
  bottom.set_header({"days before", "95% young", "95% old", "85% young", "85% old",
                     "75% young", "75% old"});
  for (std::size_t d = 0; d < core::CharacterizationSuite::kLookbackDays; ++d) {
    auto pct = [&](bool young, double q) {
      const auto sorted = suite.prefailure_ue_counts(young, d).sorted();
      return sorted.empty() ? std::string("--")
                            : io::TextTable::num(stats::quantile_sorted(sorted, q), 0);
    };
    bottom.add_row({std::to_string(d), pct(true, 0.95), pct(false, 0.95),
                    pct(true, 0.85), pct(false, 0.85), pct(true, 0.75),
                    pct(false, 0.75)});
  }
  bottom.print(std::cout);

  const double no_ue_last7 =
      1.0 - (suite.ue_within_days(true, 7) * 0.2 + suite.ue_within_days(false, 7) * 0.8);
  std::printf("approx P(no UE in last 7 days | failed): %.2f  (paper: ~0.75)\n",
              no_ue_last7);
  return 0;
}
