// Figure 4: CDF of the length of the pre-swap non-operational period
// (days between the swap-inducing failure and the physical swap).

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 4 — pre-swap non-operational period CDF",
      "~20% of failed drives removed within a day; ~80% within 7 days; a long "
      "tail with ~8% remaining failed beyond 100 days ('forgotten in the system')",
      fleet);

  const auto suite = core::characterize(fleet);
  const auto& cdf = suite.nonop_days();

  io::TextTable table("Fig 4 series (log-spaced grid)");
  table.set_header({"days", "CDF"});
  for (double x : {1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0})
    table.add_row({io::TextTable::num(x, 0), io::TextTable::num(cdf.at(x), 3)});
  table.print(std::cout);

  io::TextTable anchors("Anchors (reproduced vs paper)");
  anchors.set_header({"statistic", "value"});
  anchors.add_row({"P(<= 1 day)", bench::vs(cdf.at(1.0), 0.20, 2)});
  anchors.add_row({"P(<= 7 days)", bench::vs(cdf.at(7.0), 0.80, 2)});
  anchors.add_row({"P(> 100 days)", bench::vs(1.0 - cdf.at(100.0), 0.08, 2)});
  anchors.print(std::cout);
  return 0;
}
