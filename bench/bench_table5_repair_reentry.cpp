// Table 5: percentage of swapped drives that re-enter the workflow within
// n days (with the share of all drives in parentheses).

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Table 5 — % of swapped drives re-entering within n days",
      "repairs are slow: ~5-9% return within 30 days; only ~44-58% ever return "
      "(observed values are right-censored by the 6-year window, as in the paper)",
      fleet);

  const auto suite = core::characterize(fleet);
  const double horizons[] = {10, 30, 100, 365, 730, 1095};
  // Paper's Table 5: % of swapped drives (and, in parens, % of all drives).
  const double paper[3][7] = {{3.4, 5.0, 6.1, 17.4, 37.6, 43.6, 53.4},
                              {6.8, 9.4, 12.7, 25.3, 36.1, 42.7, 43.9},
                              {4.9, 8.1, 15.8, 28.1, 43.5, 50.2, 57.6}};

  io::TextTable table("Table 5 (reproduced vs paper)");
  table.set_header({"Model", "10d", "30d", "100d", "1y", "2y", "3y", "ever"});
  for (trace::DriveModel m : trace::kMlcModels) {
    const auto mi = static_cast<std::size_t>(m);
    const auto& repair = suite.repair_time_days(m);
    std::vector<std::string> row = {std::string(trace::model_name(m))};
    for (std::size_t h = 0; h < 6; ++h)
      row.push_back(bench::vs(100.0 * repair.at(horizons[h]), paper[mi][h], 1));
    row.push_back(bench::vs(100.0 * (1.0 - repair.censored_fraction()), paper[mi][6], 1));
    table.add_row(row);
  }
  table.print(std::cout);

  std::printf("note: 'ever' counts observed re-entries only; drives swapped near the\n"
              "window end cannot be seen returning, so values undershoot the samplers'\n"
              "Table-5 return probabilities (0.534/0.439/0.576) exactly as the paper's\n"
              "own 6-year-censored estimates do.\n");
  return 0;
}
