// Dataset-build throughput: columnar (SSDF2 v2 mmap zero-copy, v3
// compressed) vs row (v1).
//
// Both pipelines are measured end-to-end from serialized bytes on disk to
// a finished ml::Dataset:
//
//   columnar:  ColumnarFleetView::open (mmap)
//                -> chunk-parallel build_dataset (fused zero-copy walk)
//   row v1:    read_binary (materialize the whole FleetTrace on the heap)
//                -> sequential build_dataset
//
// Fairness: the v1 row path performs ZERO integrity checking, so the
// headline columnar bench opens with verify_crc=false to compare equal
// work.  The cost of full CRC verification is pinned separately, twice:
// BM_DatasetBuildColumnarVerified (end-to-end with verification, the
// recommended production configuration) and BM_StageOpenColumnar/1 (the
// verify-only delta).
//
// Arg on the columnar bench = chunk_drives, sweeping around the store
// default (store::kDefaultChunkDrives = 256).  The end-to-end benches are
// registered FIRST (registration order is run order) so their RssAnon
// counters are not polluted by heap high-water marks left by the stage
// benches that materialize the whole fleet.
//
// Reported counters (JSON digest):
//   drive_days/s          ingest throughput (records consumed per second)
//   rows                  dataset rows produced per iteration
//   transient_heap_bytes  analytic working-set bound for fleet bytes:
//                         whole-fleet materialization (row) vs one
//                         gather scratch per chunk worker (columnar)
//   rss_anon_peak_bytes   max RssAnon observed after a build (Linux);
//                         file-backed mmap pages are excluded, which is
//                         exactly the columnar store's memory story
//   bytes_per_row         on-disk file bytes / total drive-day records —
//                         the storage-density axis of the v2-vs-v3 gate
//   scan_gb/s             on-disk bytes consumed per second of build time
//   store_* counters      CRC/chunk/mmap telemetry via RegistryDelta
//
// CI runs the v2/v3/row trio and fails if v3 bytes_per_row exceeds 0.6x
// v2, or if the columnar build rate drops below 2.5x the row path (the
// dataset-bench-gate job in .github/workflows/ci.yml).
//
// Correctness is asserted in-harness: every configuration's dataset must
// produce the same column-sum digest (SkipWithError otherwise), so a
// speedup can never come from silently building a different dataset.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "core/dataset_builder.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"
#include "trace/binary_io.hpp"

namespace {

using namespace ssdfail;

constexpr std::uint32_t kDrivesPerModel = 120;
constexpr std::uint64_t kFleetSeed = 8086;

core::DatasetBuildOptions build_options() {
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.05;
  return opts;
}

/// One-time fixture: simulate the fleet, serialize both formats to temp
/// files, and capture the shape numbers the analytic counters need.  The
/// FleetTrace itself is dropped before any measurement loop runs.
struct Files {
  std::string v1_path;
  std::string v2_dir;  // one v2 + one v3 file per chunk size
  std::uint64_t total_records = 0;
  std::uint64_t max_drive_records = 0;
  std::size_t n_drives = 0;
};

const Files& files() {
  static const Files f = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = kDrivesPerModel;
    cfg.seed = kFleetSeed;
    cfg.keep_ground_truth = false;
    const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();

    Files out;
    const auto dir = std::filesystem::temp_directory_path() / "ssdfail_bench_dataset";
    std::filesystem::create_directories(dir);
    out.v1_path = (dir / "fleet_v1.bin").string();
    out.v2_dir = dir.string();
    {
      std::ofstream v1(out.v1_path, std::ios::binary | std::ios::trunc);
      trace::write_binary(v1, fleet);
    }
    for (const std::uint32_t chunk : {16u, 64u, store::kDefaultChunkDrives, 1024u}) {
      std::ofstream v2(dir / ("fleet_v2_" + std::to_string(chunk) + ".bin"),
                       std::ios::binary | std::ios::trunc);
      trace::write_binary_v2(v2, fleet, chunk);
      std::ofstream v3(dir / ("fleet_v3_" + std::to_string(chunk) + ".bin"),
                       std::ios::binary | std::ios::trunc);
      trace::write_binary_v3(v3, fleet, chunk);
    }
    out.total_records = fleet.total_records();
    out.n_drives = fleet.drives.size();
    for (const auto& d : fleet.drives)
      out.max_drive_records = std::max<std::uint64_t>(out.max_drive_records,
                                                      d.records.size());
    return out;
  }();
  return f;
}

std::string v2_path(std::uint32_t chunk) {
  return files().v2_dir + "/fleet_v2_" + std::to_string(chunk) + ".bin";
}

std::string v3_path(std::uint32_t chunk) {
  return files().v2_dir + "/fleet_v3_" + std::to_string(chunk) + ".bin";
}

/// Column-sum digest in fixed row order: bit-identical builds agree
/// exactly, so this is the cross-configuration correctness oracle.
std::vector<double> digest(const ml::Dataset& data) {
  std::vector<double> sums(data.x.cols() + 2, 0.0);
  sums[0] = static_cast<double>(data.size());
  sums[1] = static_cast<double>(data.positives());
  for (std::size_t r = 0; r < data.x.rows(); ++r)
    for (std::size_t c = 0; c < data.x.cols(); ++c)
      sums[2 + c] += data.x(r, c);
  return sums;
}

/// The digest every configuration must reproduce.  Seeded by the first
/// bench to finish a build (columnar, by registration order); every later
/// configuration — including the row path — is checked against it.
std::vector<double>& reference_digest() {
  static std::vector<double> ref;
  return ref;
}

bool check_digest(benchmark::State& state, const ml::Dataset& data) {
  const std::vector<double> d = digest(data);
  if (reference_digest().empty()) {
    reference_digest() = d;
    return true;
  }
  if (d != reference_digest()) {
    state.SkipWithError("dataset digest mismatch: this configuration built "
                        "different data than the reference build");
    return false;
  }
  return true;
}

/// RssAnon from /proc/self/status in bytes (0 where unsupported).
/// Anonymous RSS deliberately excludes file-backed mmap pages — the
/// columnar store's fleet bytes live there, the row path's do not.
std::uint64_t rss_anon_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "RssAnon:") {
      std::uint64_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
    status.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
#endif
  return 0;
}

void export_common(benchmark::State& state, std::uint64_t records,
                   std::uint64_t transient_heap_bytes, std::uint64_t rss_peak,
                   std::size_t rows) {
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["drive_days/s"] =
      benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["rows"] = benchmark::Counter(
      static_cast<double>(rows));
  state.counters["transient_heap_bytes"] =
      benchmark::Counter(static_cast<double>(transient_heap_bytes));
  state.counters["rss_anon_peak_bytes"] =
      benchmark::Counter(static_cast<double>(rss_peak));
}

/// Storage-density and scan-rate counters for a bench that consumes one
/// on-disk file per iteration: bytes_per_row is the file's footprint per
/// drive-day record, scan_gb/s the on-disk bytes digested per second of
/// end-to-end build time.  These are the two axes the dataset-bench-gate
/// CI job compares across v2 / v3 / row builds.
void export_storage(benchmark::State& state, const std::string& path) {
  const auto file_bytes =
      static_cast<double>(std::filesystem::file_size(path));
  state.counters["bytes_per_row"] = benchmark::Counter(
      file_bytes / static_cast<double>(files().total_records));
  state.counters["scan_gb/s"] = benchmark::Counter(
      file_bytes * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

// --- End-to-end: bytes on disk -> finished dataset. -----------------------

void run_columnar_build(benchmark::State& state, const std::string& path,
                        bool verify_crc) {
  const core::DatasetBuildOptions opts = build_options();
  std::uint64_t records = 0;
  std::uint64_t rss_peak = 0;
  std::size_t rows = 0;
  const bench::RegistryDelta obs_delta;
  for (auto _ : state) {
    store::OpenOptions open_opts;
    open_opts.verify_crc = verify_crc;
    const auto view = store::ColumnarFleetView::open(path, open_opts);
    const ml::Dataset data = core::build_dataset(view, opts);
    benchmark::DoNotOptimize(data.y.data());
    rss_peak = std::max(rss_peak, rss_anon_bytes());
    records += view.total_records();
    rows = data.size();
    if (!check_digest(state, data)) return;
  }
  // Fleet bytes never hit the heap: the per-worker transient is one
  // drive's gather scratch (sizeof(DailyRecord) is the dominant term).
  const std::uint64_t transient =
      files().max_drive_records * sizeof(trace::DailyRecord);
  export_common(state, records, transient, rss_peak, rows);
  export_storage(state, path);
  obs_delta.export_into(state, "store_");
}

/// Headline: integrity checking off to match the v1 row path, which has
/// none (see the file header for where the verified cost is pinned).
void BM_DatasetBuildColumnar(benchmark::State& state) {
  run_columnar_build(state, v2_path(static_cast<std::uint32_t>(state.range(0))),
                     /*verify_crc=*/false);
}
BENCHMARK(BM_DatasetBuildColumnar)
    ->Arg(16)
    ->Arg(64)
    ->Arg(store::kDefaultChunkDrives)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Same build through the compressed v3 format: per-chunk column frames
/// are decoded lazily into scratch, so the digest check also pins the
/// decode path bit-identical to the v2 zero-copy walk.
void BM_DatasetBuildColumnarV3(benchmark::State& state) {
  run_columnar_build(state, v3_path(static_cast<std::uint32_t>(state.range(0))),
                     /*verify_crc=*/false);
}
BENCHMARK(BM_DatasetBuildColumnarV3)
    ->Arg(16)
    ->Arg(64)
    ->Arg(store::kDefaultChunkDrives)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Production configuration: every chunk CRC + the footer CRC verified at
/// open, before any column is trusted.
void BM_DatasetBuildColumnarVerified(benchmark::State& state) {
  run_columnar_build(state, v2_path(store::kDefaultChunkDrives),
                     /*verify_crc=*/true);
}
BENCHMARK(BM_DatasetBuildColumnarVerified)->Unit(benchmark::kMillisecond);

void BM_DatasetBuildColumnarV3Verified(benchmark::State& state) {
  run_columnar_build(state, v3_path(store::kDefaultChunkDrives),
                     /*verify_crc=*/true);
}
BENCHMARK(BM_DatasetBuildColumnarV3Verified)->Unit(benchmark::kMillisecond);

void BM_DatasetBuildRowV1(benchmark::State& state) {
  const core::DatasetBuildOptions opts = build_options();
  std::uint64_t records = 0;
  std::uint64_t rss_peak = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    std::ifstream in(files().v1_path, std::ios::binary);
    const trace::FleetTrace fleet = trace::read_binary(in);
    const ml::Dataset data = core::build_dataset(fleet, opts);
    benchmark::DoNotOptimize(data.y.data());
    rss_peak = std::max(rss_peak, rss_anon_bytes());
    records += fleet.total_records();
    rows = data.size();
    if (!check_digest(state, data)) return;
  }
  // The row path materializes every record on the heap before building.
  const std::uint64_t transient =
      files().total_records * sizeof(trace::DailyRecord);
  export_common(state, records, transient, rss_peak, rows);
  export_storage(state, files().v1_path);
}
BENCHMARK(BM_DatasetBuildRowV1)->Unit(benchmark::kMillisecond);

// --- Stage decomposition: where the end-to-end time goes. -----------------
// Registered after the end-to-end benches: BM_StageReadRowV1 and
// BM_StageBuildFromMaterialized hold a whole materialized fleet, which
// would inflate every later bench's RssAnon reading.

void BM_StageOpenColumnar(benchmark::State& state) {
  const std::string path = v2_path(store::kDefaultChunkDrives);
  const bool verify = state.range(0) != 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    store::OpenOptions o;
    o.verify_crc = verify;
    const auto view = store::ColumnarFleetView::open(path, o);
    benchmark::DoNotOptimize(view.total_records());
    records += view.total_records();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StageOpenColumnar)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_StageReadRowV1(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    std::ifstream in(files().v1_path, std::ios::binary);
    const trace::FleetTrace fleet = trace::read_binary(in);
    benchmark::DoNotOptimize(fleet.drives.data());
    records += fleet.total_records();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StageReadRowV1)->Unit(benchmark::kMillisecond);

void BM_StageBuildFromMaterialized(benchmark::State& state) {
  std::ifstream in(files().v1_path, std::ios::binary);
  const trace::FleetTrace fleet = trace::read_binary(in);
  const core::DatasetBuildOptions opts = build_options();
  std::uint64_t records = 0;
  for (auto _ : state) {
    const ml::Dataset data = core::build_dataset(fleet, opts);
    benchmark::DoNotOptimize(data.y.data());
    records += fleet.total_records();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StageBuildFromMaterialized)->Unit(benchmark::kMillisecond);

void BM_StageBuildFromOpenView(benchmark::State& state) {
  const auto view = store::ColumnarFleetView::open(v2_path(store::kDefaultChunkDrives));
  const core::DatasetBuildOptions opts = build_options();
  std::uint64_t records = 0;
  for (auto _ : state) {
    const ml::Dataset data = core::build_dataset(view, opts);
    benchmark::DoNotOptimize(data.y.data());
    records += view.total_records();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StageBuildFromOpenView)->Unit(benchmark::kMillisecond);

}  // namespace

SSDFAIL_BENCH_MAIN();
