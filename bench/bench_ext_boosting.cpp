// Extension: gradient-boosted trees vs the paper's model zoo — would the
// modern tabular default have beaten the 2019 random forest? — plus
// probability-quality metrics (Brier score, calibration) the paper does
// not report, and bootstrap confidence intervals on the AUCs.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Extension — gradient boosting vs the paper's models (N = 1)",
      "(beyond the paper) GBDT is today's tabular default; also reports "
      "Brier score, calibration, and bootstrap AUC confidence intervals",
      fleet);

  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));
  std::printf("dataset: %zu rows, %zu positives\n\n", data.size(), data.positives());

  struct Entry {
    std::string name;
    std::unique_ptr<ml::Classifier> model;
  };
  std::vector<Entry> entries;
  entries.push_back({"Random Forest", ml::make_model(ml::ModelKind::kRandomForest)});
  entries.push_back({"Decision Tree", ml::make_model(ml::ModelKind::kDecisionTree)});
  entries.push_back({"Gradient Boosting", std::make_unique<ml::GradientBoosting>()});

  io::TextTable table("AUC with 95% bootstrap CI (pooled CV scores)");
  table.set_header({"model", "AUC [95% CI]", "Brier", "top-bin calibration"});
  for (const Entry& entry : entries) {
    const core::PooledScores pooled = core::pooled_cv_scores(*entry.model, data);
    const ml::AucCi ci = ml::bootstrap_auc_ci(pooled.scores, pooled.labels, 0.95, 150);
    const double brier = ml::brier_score(pooled.scores, pooled.labels);
    const auto curve = ml::calibration_curve(pooled.scores, pooled.labels, 10);
    std::string top_bin = "--";
    if (!curve.empty()) {
      const auto& bin = curve.back();
      top_bin = "score " + io::TextTable::num(bin.mean_score, 2) + " -> rate " +
                io::TextTable::num(bin.event_rate, 2);
    }
    table.add_row({entry.name,
                   io::TextTable::num(ci.auc, 3) + " [" + io::TextTable::num(ci.lo, 3) +
                       ", " + io::TextTable::num(ci.hi, 3) + "]",
                   io::TextTable::num(brier, 4), top_bin});
    table.print(std::cout);
  }

  std::printf("note: Brier scores reflect the subsampled negative class (base rate\n"
              "inflated by 1/keep_prob); compare across models, not to deployment.\n");
  return 0;
}
