// Table 7: random-forest transfer across MLC models (train on one model's
// drives, test on another's), N = 1.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Table 7 — cross-model transfer (random forest, N = 1)",
      "training on one MLC model predicts another with only minor AUC "
      "degradation; training on all data is best",
      fleet);

  const double paper[3][4] = {{0.891, 0.871, 0.887, 0.901},
                              {0.832, 0.892, 0.849, 0.893},
                              {0.868, 0.857, 0.897, 0.901}};

  // Per-model datasets plus the pooled one.
  std::vector<ml::Dataset> per_model;
  for (trace::DriveModel m : trace::kMlcModels) {
    auto opts = bench::default_build_options(1);
    opts.model_filter = m;
    per_model.push_back(core::build_dataset(fleet, opts));
  }
  const ml::Dataset pooled = core::build_dataset(fleet, bench::default_build_options(1));

  // "All" column: cross-validate on the pooled fleet (drives held out by
  // fold), then compute each model's AUC from its own pooled-CV scores —
  // leak-free, matching the paper's italicized CV entries.
  const auto rf = ml::make_model(ml::ModelKind::kRandomForest);
  const core::PooledScores pooled_scores = core::pooled_cv_scores(*rf, pooled);
  auto all_column_auc = [&](trace::DriveModel m) {
    std::vector<float> scores;
    std::vector<float> labels;
    for (std::size_t i = 0; i < pooled_scores.scores.size(); ++i) {
      const std::uint64_t uid = pooled.groups[pooled_scores.row_indices[i]];
      if (static_cast<trace::DriveModel>(uid >> 32) != m) continue;
      scores.push_back(pooled_scores.scores[i]);
      labels.push_back(pooled_scores.labels[i]);
    }
    return ml::roc_auc(scores, labels);
  };

  io::TextTable table("Table 7 (reproduced, paper in parens)");
  table.set_header({"test \\ train", "MLC-A", "MLC-B", "MLC-D", "All"});
  for (std::size_t test_m = 0; test_m < trace::kNumMlcModels; ++test_m) {
    std::vector<std::string> row = {
        std::string(trace::model_name(static_cast<trace::DriveModel>(test_m)))};
    for (std::size_t train_m = 0; train_m < trace::kNumMlcModels; ++train_m) {
      const auto model = ml::make_model(ml::ModelKind::kRandomForest);
      const double auc =
          train_m == test_m
              ? core::evaluate_auc(*model, per_model[test_m]).auc().mean  // CV
              : core::transfer_auc(*model, per_model[train_m], per_model[test_m]);
      row.push_back(bench::vs(auc, paper[test_m][train_m]));
    }
    row.push_back(bench::vs(
        all_column_auc(static_cast<trace::DriveModel>(test_m)), paper[test_m][3]));
    table.add_row(row);
  }
  table.print(std::cout);
  std::printf("diagonal and 'All' cells are cross-validated (the paper's italics);\n"
              "off-diagonals train on one model's full dataset and test on another's.\n");
  return 0;
}
