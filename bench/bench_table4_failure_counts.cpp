// Table 4: distribution of lifetime failure counts per drive.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Table 4 — distribution of lifetime failure counts",
                      "88.71% never fail; of failed drives 89.6% fail once, 9.2% "
                      "twice, ~1.2% three times; a few as many as four times",
                      fleet);

  const auto suite = core::characterize(fleet);
  const auto& hist = suite.failure_count_histogram();
  std::uint64_t drives = 0;
  std::uint64_t failed = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    drives += hist[k];
    if (k > 0) failed += hist[k];
  }

  constexpr double kPaperAll[] = {88.71, 10.10, 1.038, 0.133, 0.001};
  constexpr double kPaperFailed[] = {0.0, 89.60, 9.208, 1.180, 0.001};

  io::TextTable table("Table 4 (reproduced vs paper)");
  table.set_header({"Number of Failures", "% of drives", "% of failed drives"});
  for (std::size_t k = 0; k < 5; ++k) {
    const double pct_all = 100.0 * static_cast<double>(hist[k]) / static_cast<double>(drives);
    const double pct_failed =
        failed == 0 ? 0.0
                    : 100.0 * static_cast<double>(hist[k]) / static_cast<double>(failed);
    table.add_row({std::to_string(k), bench::vs(pct_all, kPaperAll[k], 3),
                   k == 0 ? std::string("--") : bench::vs(pct_failed, kPaperFailed[k], 3)});
  }
  table.print(std::cout);
  return 0;
}
