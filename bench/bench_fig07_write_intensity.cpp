// Figure 7: quartiles of daily write intensity per month of drive age.
// Tests the "no burn-in" finding: young drives see FEWER writes, not more.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 7 — daily write-count quartiles by month of age",
      "young drives do not experience more write activity (no burn-in): the "
      "median ramps up from ~0.5e8/day toward ~1e8/day over the first 1-2 years",
      fleet);

  const auto suite = core::characterize(fleet);

  io::TextTable table("Fig 7 series (writes/day)");
  table.set_header({"age (months)", "Q1", "median", "Q3", "samples"});
  for (std::size_t m : {0u, 1u, 2u, 3u, 6u, 12u, 18u, 24u, 36u, 48u, 60u, 71u}) {
    const auto& sample = suite.writes_at_month(m);
    const auto sorted = sample.sorted();
    table.add_row({std::to_string(m),
                   io::TextTable::num(stats::quantile_sorted(sorted, 0.25) / 1e8, 3),
                   io::TextTable::num(stats::quantile_sorted(sorted, 0.50) / 1e8, 3),
                   io::TextTable::num(stats::quantile_sorted(sorted, 0.75) / 1e8, 3),
                   std::to_string(sample.population())});
  }
  table.print(std::cout);

  const double median_young =
      stats::quantile_sorted(suite.writes_at_month(1).sorted(), 0.5);
  const double median_mature =
      stats::quantile_sorted(suite.writes_at_month(24).sorted(), 0.5);
  std::printf("median writes/day month 1 vs month 24: %.2fe8 vs %.2fe8 "
              "(paper: young < mature, no burn-in)\n",
              median_young / 1e8, median_mature / 1e8);
  return 0;
}
