// Hyperparameter grid search (Section 5.2: "for each method, we performed
// a grid search over hyperparameters"): runs each model's grid under the
// CV protocol and reports the per-candidate scores and the winner.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Ablation — hyperparameter grid search per model (N = 1)",
      "most tuned knobs are regularizers (ridge coefficient, tree depth, "
      "hidden sizes); best configs chosen by cross-validated ROC AUC",
      fleet);

  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));

  for (ml::ModelKind kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kDecisionTree,
        ml::ModelKind::kRandomForest, ml::ModelKind::kNeuralNetwork}) {
    const auto grid = ml::model_grid(kind);
    const auto result = ml::grid_search(grid, [&](const ml::Classifier& model) {
      return core::evaluate_auc(model, data).auc().mean;
    });

    io::TextTable table(ml::model_display_name(kind) + " grid");
    table.set_header({"candidate", "CV AUC", ""});
    for (std::size_t i = 0; i < grid.size(); ++i)
      table.add_row({grid[i].label, io::TextTable::num(result.scores[i], 4),
                     i == result.best_index ? "<= best" : ""});
    table.print(std::cout);
  }
  return 0;
}
