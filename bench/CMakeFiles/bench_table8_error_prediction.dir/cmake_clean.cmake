file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_error_prediction.dir/bench_table8_error_prediction.cpp.o"
  "CMakeFiles/bench_table8_error_prediction.dir/bench_table8_error_prediction.cpp.o.d"
  "bench_table8_error_prediction"
  "bench_table8_error_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_error_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
