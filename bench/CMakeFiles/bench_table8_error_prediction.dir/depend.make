# Empty dependencies file for bench_table8_error_prediction.
# This may be replaced when dependencies are built.
