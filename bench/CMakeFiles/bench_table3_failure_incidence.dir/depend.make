# Empty dependencies file for bench_table3_failure_incidence.
# This may be replaced when dependencies are built.
