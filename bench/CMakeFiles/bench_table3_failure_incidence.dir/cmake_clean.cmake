file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_failure_incidence.dir/bench_table3_failure_incidence.cpp.o"
  "CMakeFiles/bench_table3_failure_incidence.dir/bench_table3_failure_incidence.cpp.o.d"
  "bench_table3_failure_incidence"
  "bench_table3_failure_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_failure_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
