file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_repair_reentry.dir/bench_table5_repair_reentry.cpp.o"
  "CMakeFiles/bench_table5_repair_reentry.dir/bench_table5_repair_reentry.cpp.o.d"
  "bench_table5_repair_reentry"
  "bench_table5_repair_reentry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_repair_reentry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
