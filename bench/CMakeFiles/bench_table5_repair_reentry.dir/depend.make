# Empty dependencies file for bench_table5_repair_reentry.
# This may be replaced when dependencies are built.
