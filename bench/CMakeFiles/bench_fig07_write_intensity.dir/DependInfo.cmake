
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_write_intensity.cpp" "bench/CMakeFiles/bench_fig07_write_intensity.dir/bench_fig07_write_intensity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_write_intensity.dir/bench_fig07_write_intensity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/ssdfail_core.dir/DependInfo.cmake"
  "/root/repo/src/io/CMakeFiles/ssdfail_io.dir/DependInfo.cmake"
  "/root/repo/src/robustness/CMakeFiles/ssdfail_robustness.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/ssdfail_sim.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/ssdfail_trace.dir/DependInfo.cmake"
  "/root/repo/src/store/CMakeFiles/ssdfail_store.dir/DependInfo.cmake"
  "/root/repo/src/ml/CMakeFiles/ssdfail_ml.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/ssdfail_stats.dir/DependInfo.cmake"
  "/root/repo/src/parallel/CMakeFiles/ssdfail_parallel.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
