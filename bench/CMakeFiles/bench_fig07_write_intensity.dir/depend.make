# Empty dependencies file for bench_fig07_write_intensity.
# This may be replaced when dependencies are built.
