# Empty dependencies file for bench_fig11_prefailure_errors.
# This may be replaced when dependencies are built.
