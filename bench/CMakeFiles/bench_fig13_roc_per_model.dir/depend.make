# Empty dependencies file for bench_fig13_roc_per_model.
# This may be replaced when dependencies are built.
