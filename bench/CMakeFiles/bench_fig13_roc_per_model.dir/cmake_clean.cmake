file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_roc_per_model.dir/bench_fig13_roc_per_model.cpp.o"
  "CMakeFiles/bench_fig13_roc_per_model.dir/bench_fig13_roc_per_model.cpp.o.d"
  "bench_fig13_roc_per_model"
  "bench_fig13_roc_per_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_roc_per_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
