# Empty dependencies file for bench_fig04_nonop_period.
# This may be replaced when dependencies are built.
