file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_nonop_period.dir/bench_fig04_nonop_period.cpp.o"
  "CMakeFiles/bench_fig04_nonop_period.dir/bench_fig04_nonop_period.cpp.o.d"
  "bench_fig04_nonop_period"
  "bench_fig04_nonop_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_nonop_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
