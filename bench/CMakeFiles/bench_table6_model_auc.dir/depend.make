# Empty dependencies file for bench_table6_model_auc.
# This may be replaced when dependencies are built.
