file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_model_auc.dir/bench_table6_model_auc.cpp.o"
  "CMakeFiles/bench_table6_model_auc.dir/bench_table6_model_auc.cpp.o.d"
  "bench_table6_model_auc"
  "bench_table6_model_auc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_model_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
