# Empty dependencies file for bench_fig03_ttf.
# This may be replaced when dependencies are built.
