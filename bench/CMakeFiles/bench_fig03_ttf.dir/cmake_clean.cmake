file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_ttf.dir/bench_fig03_ttf.cpp.o"
  "CMakeFiles/bench_fig03_ttf.dir/bench_fig03_ttf.cpp.o.d"
  "bench_fig03_ttf"
  "bench_fig03_ttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
