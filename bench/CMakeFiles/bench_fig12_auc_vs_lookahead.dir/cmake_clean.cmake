file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_auc_vs_lookahead.dir/bench_fig12_auc_vs_lookahead.cpp.o"
  "CMakeFiles/bench_fig12_auc_vs_lookahead.dir/bench_fig12_auc_vs_lookahead.cpp.o.d"
  "bench_fig12_auc_vs_lookahead"
  "bench_fig12_auc_vs_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_auc_vs_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
