# Empty dependencies file for bench_fig12_auc_vs_lookahead.
# This may be replaced when dependencies are built.
