file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_correlations.dir/bench_table2_correlations.cpp.o"
  "CMakeFiles/bench_table2_correlations.dir/bench_table2_correlations.cpp.o.d"
  "bench_table2_correlations"
  "bench_table2_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
