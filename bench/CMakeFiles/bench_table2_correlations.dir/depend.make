# Empty dependencies file for bench_table2_correlations.
# This may be replaced when dependencies are built.
