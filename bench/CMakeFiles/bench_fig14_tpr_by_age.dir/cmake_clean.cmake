file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tpr_by_age.dir/bench_fig14_tpr_by_age.cpp.o"
  "CMakeFiles/bench_fig14_tpr_by_age.dir/bench_fig14_tpr_by_age.cpp.o.d"
  "bench_fig14_tpr_by_age"
  "bench_fig14_tpr_by_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tpr_by_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
