# Empty dependencies file for bench_fig14_tpr_by_age.
# This may be replaced when dependencies are built.
