file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reentry.dir/bench_ext_reentry.cpp.o"
  "CMakeFiles/bench_ext_reentry.dir/bench_ext_reentry.cpp.o.d"
  "bench_ext_reentry"
  "bench_ext_reentry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reentry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
