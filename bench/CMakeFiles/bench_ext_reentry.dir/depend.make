# Empty dependencies file for bench_ext_reentry.
# This may be replaced when dependencies are built.
