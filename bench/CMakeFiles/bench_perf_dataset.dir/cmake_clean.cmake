file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_dataset.dir/bench_perf_dataset.cpp.o"
  "CMakeFiles/bench_perf_dataset.dir/bench_perf_dataset.cpp.o.d"
  "bench_perf_dataset"
  "bench_perf_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
