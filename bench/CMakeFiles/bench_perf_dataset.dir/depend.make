# Empty dependencies file for bench_perf_dataset.
# This may be replaced when dependencies are built.
