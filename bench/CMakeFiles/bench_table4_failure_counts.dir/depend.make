# Empty dependencies file for bench_table4_failure_counts.
# This may be replaced when dependencies are built.
