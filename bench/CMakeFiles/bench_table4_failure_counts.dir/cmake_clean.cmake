file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_failure_counts.dir/bench_table4_failure_counts.cpp.o"
  "CMakeFiles/bench_table4_failure_counts.dir/bench_table4_failure_counts.cpp.o.d"
  "bench_table4_failure_counts"
  "bench_table4_failure_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_failure_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
