# Empty dependencies file for bench_ext_boosting.
# This may be replaced when dependencies are built.
