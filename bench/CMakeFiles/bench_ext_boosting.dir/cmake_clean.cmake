file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_boosting.dir/bench_ext_boosting.cpp.o"
  "CMakeFiles/bench_ext_boosting.dir/bench_ext_boosting.cpp.o.d"
  "bench_ext_boosting"
  "bench_ext_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
