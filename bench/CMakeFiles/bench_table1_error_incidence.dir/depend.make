# Empty dependencies file for bench_table1_error_incidence.
# This may be replaced when dependencies are built.
