file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_error_incidence.dir/bench_table1_error_incidence.cpp.o"
  "CMakeFiles/bench_table1_error_incidence.dir/bench_table1_error_incidence.cpp.o.d"
  "bench_table1_error_incidence"
  "bench_table1_error_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_error_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
