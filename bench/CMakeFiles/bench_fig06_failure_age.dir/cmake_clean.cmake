file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_failure_age.dir/bench_fig06_failure_age.cpp.o"
  "CMakeFiles/bench_fig06_failure_age.dir/bench_fig06_failure_age.cpp.o.d"
  "bench_fig06_failure_age"
  "bench_fig06_failure_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_failure_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
