# Empty dependencies file for bench_fig06_failure_age.
# This may be replaced when dependencies are built.
