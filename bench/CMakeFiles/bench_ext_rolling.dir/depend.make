# Empty dependencies file for bench_ext_rolling.
# This may be replaced when dependencies are built.
