file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rolling.dir/bench_ext_rolling.cpp.o"
  "CMakeFiles/bench_ext_rolling.dir/bench_ext_rolling.cpp.o.d"
  "bench_ext_rolling"
  "bench_ext_rolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
