# Empty dependencies file for bench_fig01_age_datacount.
# This may be replaced when dependencies are built.
