file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_age_datacount.dir/bench_fig01_age_datacount.cpp.o"
  "CMakeFiles/bench_fig01_age_datacount.dir/bench_fig01_age_datacount.cpp.o.d"
  "bench_fig01_age_datacount"
  "bench_fig01_age_datacount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_age_datacount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
