# Empty dependencies file for bench_fig09_pe_young_old.
# This may be replaced when dependencies are built.
