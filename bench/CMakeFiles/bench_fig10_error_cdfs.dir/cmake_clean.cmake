file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_error_cdfs.dir/bench_fig10_error_cdfs.cpp.o"
  "CMakeFiles/bench_fig10_error_cdfs.dir/bench_fig10_error_cdfs.cpp.o.d"
  "bench_fig10_error_cdfs"
  "bench_fig10_error_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_error_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
