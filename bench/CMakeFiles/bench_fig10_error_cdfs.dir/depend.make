# Empty dependencies file for bench_fig10_error_cdfs.
# This may be replaced when dependencies are built.
