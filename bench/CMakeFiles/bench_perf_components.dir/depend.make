# Empty dependencies file for bench_perf_components.
# This may be replaced when dependencies are built.
