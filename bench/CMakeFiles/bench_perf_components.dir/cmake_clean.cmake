file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_components.dir/bench_perf_components.cpp.o"
  "CMakeFiles/bench_perf_components.dir/bench_perf_components.cpp.o.d"
  "bench_perf_components"
  "bench_perf_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
