# Empty dependencies file for bench_fig15_roc_young_old.
# This may be replaced when dependencies are built.
