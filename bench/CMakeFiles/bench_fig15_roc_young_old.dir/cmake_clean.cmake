file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_roc_young_old.dir/bench_fig15_roc_young_old.cpp.o"
  "CMakeFiles/bench_fig15_roc_young_old.dir/bench_fig15_roc_young_old.cpp.o.d"
  "bench_fig15_roc_young_old"
  "bench_fig15_roc_young_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_roc_young_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
