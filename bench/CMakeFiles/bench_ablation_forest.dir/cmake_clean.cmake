file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forest.dir/bench_ablation_forest.cpp.o"
  "CMakeFiles/bench_ablation_forest.dir/bench_ablation_forest.cpp.o.d"
  "bench_ablation_forest"
  "bench_ablation_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
