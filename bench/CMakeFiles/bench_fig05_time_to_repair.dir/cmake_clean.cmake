file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_time_to_repair.dir/bench_fig05_time_to_repair.cpp.o"
  "CMakeFiles/bench_fig05_time_to_repair.dir/bench_fig05_time_to_repair.cpp.o.d"
  "bench_fig05_time_to_repair"
  "bench_fig05_time_to_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_time_to_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
