# Empty dependencies file for bench_fig05_time_to_repair.
# This may be replaced when dependencies are built.
