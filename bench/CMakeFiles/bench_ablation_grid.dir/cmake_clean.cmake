file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grid.dir/bench_ablation_grid.cpp.o"
  "CMakeFiles/bench_ablation_grid.dir/bench_ablation_grid.cpp.o.d"
  "bench_ablation_grid"
  "bench_ablation_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
