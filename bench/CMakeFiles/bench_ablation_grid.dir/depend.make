# Empty dependencies file for bench_ablation_grid.
# This may be replaced when dependencies are built.
