# Empty dependencies file for bench_fig16_feature_importance.
# This may be replaced when dependencies are built.
