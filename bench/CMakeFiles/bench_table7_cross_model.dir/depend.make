# Empty dependencies file for bench_table7_cross_model.
# This may be replaced when dependencies are built.
