file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_cross_model.dir/bench_table7_cross_model.cpp.o"
  "CMakeFiles/bench_table7_cross_model.dir/bench_table7_cross_model.cpp.o.d"
  "bench_table7_cross_model"
  "bench_table7_cross_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_cross_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
