file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pe_at_failure.dir/bench_fig08_pe_at_failure.cpp.o"
  "CMakeFiles/bench_fig08_pe_at_failure.dir/bench_fig08_pe_at_failure.cpp.o.d"
  "bench_fig08_pe_at_failure"
  "bench_fig08_pe_at_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pe_at_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
