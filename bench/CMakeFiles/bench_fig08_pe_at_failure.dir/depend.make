# Empty dependencies file for bench_fig08_pe_at_failure.
# This may be replaced when dependencies are built.
