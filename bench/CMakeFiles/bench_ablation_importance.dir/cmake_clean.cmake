file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_importance.dir/bench_ablation_importance.cpp.o"
  "CMakeFiles/bench_ablation_importance.dir/bench_ablation_importance.cpp.o.d"
  "bench_ablation_importance"
  "bench_ablation_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
