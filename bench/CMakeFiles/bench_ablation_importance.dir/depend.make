# Empty dependencies file for bench_ablation_importance.
# This may be replaced when dependencies are built.
