// Figure 5: CDF of time to repair, with the never-returned censored bar.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Figure 5 — time-to-repair CDF",
                      "about half of swapped drives are never observed to return; "
                      "most returns take upwards of a year (max 4.85 years)",
                      fleet);

  const auto suite = core::characterize(fleet);

  // Pool the three models for the fleet-wide figure.
  stats::CensoredEcdf pooled;
  for (trace::DriveModel m : trace::kMlcModels) pooled.merge(suite.repair_time_days(m));

  io::TextTable table("Fig 5 series");
  table.set_header({"days", "CDF"});
  for (double x : {1.0, 3.0, 10.0, 30.0, 100.0, 365.0, 730.0, 1095.0, 1770.0})
    table.add_row({io::TextTable::num(x, 0), io::TextTable::num(pooled.at(x), 3)});
  table.add_row({"infinity (never returned)",
                 io::TextTable::num(pooled.censored_fraction(), 3)});
  table.print(std::cout);

  std::printf("never-returned fraction: %.1f%%  (paper: ~50%%, here inflated by\n"
              "window censoring exactly as in the paper's 6-year estimate)\n\n",
              100.0 * pooled.censored_fraction());

  // Extension: Kaplan-Meier estimate of the repair-completion distribution
  // (treats drives swapped near the window end as censored observations
  // instead of "never returned" — undoing the censoring bias).
  const auto km = stats::kaplan_meier(suite.repair_survival());
  io::TextTable km_table("KM repair-completion probability 1 - S(t)");
  km_table.set_header({"days", "P(returned by t)"});
  for (double x : {10.0, 30.0, 100.0, 365.0, 730.0, 1095.0})
    km_table.add_row({io::TextTable::num(x, 0),
                      io::TextTable::num(1.0 - stats::step_at(km, x, 1.0), 3)});
  km_table.print(std::cout);
  return 0;
}
