// Shadow-scoring overhead on the daemon hot path (google-benchmark).
//
//   BM_OnlineShadow/challengers:<n>
//
// One iteration pushes one fleet-day (kDrives records) through a running
// daemon whose BatchObserver tap is a full OnlineLearner with <n>
// challengers installed in the arena: every batch is WAL-appended,
// sanitized, champion-scored, drift-sketched, and shadow-scored by each
// challenger on the appender threads.  challengers:0 is the tap-attached
// baseline, so the per-challenger delta is exactly the compiled FlatForest
// shadow predict plus arena bookkeeping.  Registry counter deltas
// (daemon_* and online_*) are exported per iteration.
//
// After the harness runs, main() re-measures 0-vs-1 challengers directly
// (min over kCheckRepeats runs of kCheckDays fleet-days each) and fails
// the binary when one challenger costs more than kMaxOverhead of the
// baseline ingest time — the promotion gate's shadow scoring must stay
// effectively free on the hot path (docs/BENCHMARKS.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "core/dataset_builder.hpp"
#include "daemon/daemon.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/model_zoo.hpp"
#include "online/learner.hpp"
#include "sim/fleet_simulator.hpp"

namespace {

using namespace ssdfail;

constexpr std::uint32_t kDrives = 2048;  ///< records pushed per fleet-day
constexpr int kCheckDays = 12;           ///< fleet-days per overhead sample
constexpr int kCheckRepeats = 5;         ///< min-of-N de-noises the check
constexpr double kMaxOverhead = 0.10;    ///< budget for one challenger

/// One boosted forest trained on simulated fleet history, shared by the
/// champion and every challenger so the comparison is equal-cost.
std::shared_ptr<const ml::GradientBoosting> fixture_forest() {
  static const std::shared_ptr<const ml::GradientBoosting> model = [] {
    sim::FleetConfig fc;
    fc.drives_per_model = 12;
    fc.window_days = 200;
    fc.seed = 7;
    core::DatasetBuildOptions opts;
    opts.negative_keep_prob = 0.5;
    const ml::Dataset train =
        core::build_dataset(sim::FleetSimulator(fc).generate_all(), opts);
    ml::GradientBoosting::Params params;
    params.n_rounds = 30;
    params.max_depth = 4;
    auto gb = std::make_shared<ml::GradientBoosting>(params);
    gb->fit(train);
    return gb;
  }();
  return model;
}

core::FleetObservation observation_for(std::uint32_t drive, std::int32_t day) {
  trace::DailyRecord rec;
  rec.day = day;
  rec.reads = 100 + drive;
  rec.writes = 40 + static_cast<std::uint32_t>(day);
  rec.erases = 4;
  rec.pe_cycles = 10 + 2 * static_cast<std::uint32_t>(day);
  rec.bad_blocks = 1 + static_cast<std::uint32_t>(day) / 64;
  rec.factory_bad_blocks = 4;
  rec.errors[0] = drive % 3;
  return {trace::DriveModel::MlcA, drive, 0, rec};
}

/// Daemon + learner tap with `challengers` shadow models installed.  The
/// learner's step thread is never started: only the hot-path tap runs.
struct ShadowRig {
  explicit ShadowRig(int challengers)
      : wal_dir((std::filesystem::temp_directory_path() /
                 ("ssdfail_bench_online_shadow" + std::to_string(challengers)))
                    .string()) {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    learner = std::make_unique<online::OnlineLearner>(nullptr, online::OnlineConfig{});
    for (int c = 0; c < challengers; ++c)
      learner->arena().set_challenger("c" + std::to_string(c), fixture_forest());

    daemon::DaemonConfig cfg;
    cfg.shards = 4;
    cfg.ring_capacity = 4096;
    cfg.max_batch = 512;
    cfg.backpressure = daemon::Backpressure::kBlock;
    cfg.block_timeout = std::chrono::milliseconds(50);
    cfg.wal_dir = wal_dir;
    cfg.fsync = daemon::FsyncPolicy::kNever;
    cfg.batch_observer = learner.get();
    daemon = std::make_unique<daemon::TelemetryDaemon>(
        ml::make_serving_model(fixture_forest()), cfg);
    daemon->start();
  }

  ~ShadowRig() {
    daemon->stop();
    std::filesystem::remove_all(wal_dir);
  }

  void push_day(std::int32_t day) {
    for (std::uint32_t d = 0; d < kDrives; ++d)
      (void)daemon->push(observation_for(d, day));
  }

  std::string wal_dir;
  std::unique_ptr<online::OnlineLearner> learner;
  std::unique_ptr<daemon::TelemetryDaemon> daemon;
};

void BM_OnlineShadow(benchmark::State& state) {
  ShadowRig rig(static_cast<int>(state.range(0)));
  const bench::RegistryDelta delta;
  std::int32_t day = 0;
  for (auto _ : state) rig.push_day(day++);
  state.SetItemsProcessed(state.iterations() * kDrives);
  delta.export_into(state, "daemon");
  delta.export_into(state, "online");
}

BENCHMARK(BM_OnlineShadow)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"challengers"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Wall-clock seconds for kCheckDays fleet-days, best of kCheckRepeats.
double best_ingest_seconds(int challengers) {
  double best = 1e300;
  for (int r = 0; r < kCheckRepeats; ++r) {
    ShadowRig rig(challengers);
    rig.push_day(0);  // warm-up day: ring, WAL, and engine caches settle
    const auto begin = std::chrono::steady_clock::now();
    for (int day = 1; day <= kCheckDays; ++day) rig.push_day(day);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    best = std::min(best, elapsed.count());
  }
  return best;
}

int check_shadow_overhead() {
  const double baseline = best_ingest_seconds(0);
  const double shadowed = best_ingest_seconds(1);
  const double overhead = shadowed / baseline - 1.0;
  std::printf("shadow_overhead_one_challenger: %.2f%% (limit %.0f%%)  "
              "baseline %.3fs shadowed %.3fs\n",
              overhead * 100.0, kMaxOverhead * 100.0, baseline, shadowed);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: one challenger costs %.1f%% of baseline ingest "
                 "(budget %.0f%%)\n",
                 overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = ssdfail::bench::run_benchmark_main(argc, argv);
  if (rc != 0) return rc;
  return check_shadow_overhead();
}
