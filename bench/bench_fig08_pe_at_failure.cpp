// Figure 8: distribution of P/E cycle counts of failed drives + failure
// rate per 250-cycle wear bin.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 8 — P/E cycles at failure",
      "~98% of failures occur before 1500 P/E cycles (half the 3000-cycle "
      "limit); the failure rate beyond the limit is small and flat",
      fleet);

  const auto suite = core::characterize(fleet);
  const auto& cdf = suite.pe_at_failure();
  const auto& rate = suite.failure_rate_by_pe();

  io::TextTable table("Fig 8 series");
  table.set_header({"P/E cycles", "CDF of failures", "failure rate per bin"});
  for (double pe : {125.0, 375.0, 625.0, 875.0, 1125.0, 1375.0, 1625.0, 2125.0,
                    3125.0, 4125.0, 5125.0}) {
    const std::size_t bin = static_cast<std::size_t>(pe / 250.0);
    table.add_row({io::TextTable::num(pe - 125.0, 0) + "-" + io::TextTable::num(pe + 125.0, 0),
                   io::TextTable::num(cdf.at(pe + 125.0), 3),
                   io::TextTable::num(rate.rate(bin), 4)});
  }
  table.print(std::cout);

  io::TextTable anchors("Anchors (reproduced vs paper)");
  anchors.set_header({"statistic", "value"});
  anchors.add_row({"share of failures below 1500 P/E", bench::vs(cdf.at(1500.0), 0.98, 3)});
  anchors.add_row(
      {"share of failures below the 3000 limit", bench::vs(cdf.at(3000.0), 0.995, 3)});
  anchors.print(std::cout);
  return 0;
}
