// Figure 3: CDF of the length of operational periods ("time to failure"),
// with the censored mass (periods not observed to end) shown separately.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Figure 3 — operational-period length CDF",
                      "more than 80% of operational periods are never observed to end "
                      "in failure (probability mass at infinity)",
                      fleet);

  const auto suite = core::characterize(fleet);
  const auto& cdf = suite.op_period_years();

  io::TextTable table("Fig 3 series");
  table.set_header({"time to failure (years)", "CDF"});
  for (double x : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
    table.add_row({io::TextTable::num(x, 2), io::TextTable::num(cdf.at(x), 3)});
  table.add_row({"infinity (censored bar)", io::TextTable::num(cdf.censored_fraction(), 3)});
  table.print(std::cout);

  std::printf("censored fraction: %.1f%%  (paper: >80%%)\n\n",
              100.0 * cdf.censored_fraction());

  // Extension: the statistically principled view of the same data — a
  // Kaplan-Meier survival estimate with per-period censoring times.
  const auto km = stats::kaplan_meier(suite.op_period_survival());
  io::TextTable km_table("Kaplan-Meier survival S(t) of operational periods");
  km_table.set_header({"t (years)", "S(t)", "1 - S(t)"});
  for (double x : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    const double s = stats::step_at(km, x, 1.0);
    km_table.add_row({io::TextTable::num(x, 1), io::TextTable::num(s, 3),
                      io::TextTable::num(1.0 - s, 3)});
  }
  km_table.print(std::cout);
  std::printf("KM corrects for censoring: 1-S(t) exceeds the raw CDF because the\n"
              "many censored periods no longer dilute the failure probability.\n");
  return 0;
}
