// Table 6: ROC AUC for all six prediction models across lookahead windows
// N in {1, 2, 3, 7}, 5-fold drive-partitioned cross-validation.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Table 6 — ROC AUC per model and lookahead window",
      "random forests win at every N (0.905 at N=1); all models degrade as N "
      "grows; tree models beat the linear/distance ones",
      fleet);

  // Paper values: [model][N index], N in {1, 2, 3, 7}.
  const double paper[6][4] = {
      {0.796, 0.765, 0.745, 0.713},  // Logistic Reg.
      {0.816, 0.791, 0.772, 0.716},  // k-NN
      {0.821, 0.795, 0.778, 0.728},  // SVM
      {0.857, 0.828, 0.803, 0.770},  // Neural Network
      {0.872, 0.840, 0.819, 0.780},  // Decision Tree
      {0.905, 0.859, 0.839, 0.803},  // Random Forest
  };
  const int lookaheads[4] = {1, 2, 3, 7};

  // Build one dataset per lookahead (fresh negative sample each, so test
  // negatives stay an unbiased uniform sample for every N).
  std::vector<ml::Dataset> datasets;
  for (int n : lookaheads) {
    datasets.push_back(core::build_dataset(fleet, bench::default_build_options(n)));
    std::printf("built N=%d dataset: %zu rows, %zu positives\n", n,
                datasets.back().size(), datasets.back().positives());
  }
  std::printf("\n");

  io::TextTable table("Table 6 (reproduced +- fold sd, paper in parens)");
  table.set_header({"model", "N=1", "N=2", "N=3", "N=7"});
  const auto& kinds = ml::paper_models();
  for (std::size_t mi = 0; mi < kinds.size(); ++mi) {
    std::vector<std::string> row = {ml::model_display_name(kinds[mi])};
    for (std::size_t ni = 0; ni < 4; ++ni) {
      const auto model = ml::make_model(kinds[mi]);
      const auto result = core::evaluate_auc(*model, datasets[ni]);
      const auto ms = result.auc();
      row.push_back(bench::vs_pm(ms.mean, ms.sd, paper[mi][ni]));
    }
    table.add_row(row);
    table.print(std::cout);  // incremental progress: reprint after each model
  }
  return 0;
}
