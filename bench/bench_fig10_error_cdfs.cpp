// Figure 10: CDFs of cumulative bad-block and uncorrectable-error counts,
// split by drive class (young-failed / old-failed / not-failed).

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 10 — cumulative bad blocks and UEs by drive class",
      "~80% of non-failed drives never see a UE vs 68% (young failed) and 45% "
      "(old failed); failed drives' tails reach orders of magnitude higher",
      fleet);

  const auto suite = core::characterize(fleet);
  using DC = core::CharacterizationSuite::DriveClass;

  io::TextTable ue("Cumulative uncorrectable errors (CDF)");
  ue.set_header({"count <=", "Young failed", "Old failed", "Not failed"});
  for (double x : {0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    ue.add_row({io::TextTable::num(x, 0),
                io::TextTable::num(suite.cum_ue_cdf(DC::kYoungFailed).at(x), 3),
                io::TextTable::num(suite.cum_ue_cdf(DC::kOldFailed).at(x), 3),
                io::TextTable::num(suite.cum_ue_cdf(DC::kNotFailed).at(x), 3)});
  }
  ue.print(std::cout);

  io::TextTable bb("Cumulative bad blocks (CDF)");
  bb.set_header({"count <=", "Young failed", "Old failed", "Not failed"});
  for (double x : {0.0, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 1e4})
    bb.add_row({io::TextTable::num(x, 0),
                io::TextTable::num(suite.cum_bad_block_cdf(DC::kYoungFailed).at(x), 3),
                io::TextTable::num(suite.cum_bad_block_cdf(DC::kOldFailed).at(x), 3),
                io::TextTable::num(suite.cum_bad_block_cdf(DC::kNotFailed).at(x), 3)});
  bb.print(std::cout);

  io::TextTable anchors("Anchors (reproduced vs paper)");
  anchors.set_header({"statistic", "value"});
  anchors.add_row({"P(zero UEs | not failed)",
                   bench::vs(suite.cum_ue_cdf(DC::kNotFailed).at(0.0), 0.80, 2)});
  anchors.add_row({"P(zero UEs | young failed)",
                   bench::vs(suite.cum_ue_cdf(DC::kYoungFailed).at(0.0), 0.68, 2)});
  anchors.add_row({"P(zero UEs | old failed)",
                   bench::vs(suite.cum_ue_cdf(DC::kOldFailed).at(0.0), 0.45, 2)});
  const double young_p90 = suite.cum_ue_cdf(DC::kYoungFailed).quantile(0.90);
  const double old_p90 = suite.cum_ue_cdf(DC::kOldFailed).quantile(0.90);
  anchors.add_row({"90th-pct UE count young/old ratio",
                   io::TextTable::num(young_p90 / std::max(old_p90, 1.0), 1) +
                       " (paper: ~2 orders of magnitude)"});
  anchors.print(std::cout);
  return 0;
}
