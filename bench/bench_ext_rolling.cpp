// Extension (paper §7: "improve our prediction models for large N"):
// trailing-week rolling features vs the paper's daily+cumulative set.
// Daily snapshots lose the medium-horizon degradation trajectory; a week
// of recent error/activity history recovers part of it.

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Extension — rolling-window features for large-N prediction",
      "(beyond the paper) adds 7-day trailing error/activity features; "
      "gains should concentrate at larger lookaheads where the paper's "
      "AUC decays fastest (Fig 12)",
      fleet);

  io::TextTable table("RF AUC: paper features vs + rolling window");
  table.set_header({"N (days)", "daily+cumulative", "+ rolling 7d", "delta"});
  for (int n : {1, 7, 14, 30}) {
    auto base_opts = bench::default_build_options(n);
    const ml::Dataset base = core::build_dataset(fleet, base_opts);
    auto roll_opts = base_opts;
    roll_opts.rolling_features = true;
    const ml::Dataset rolled = core::build_dataset(fleet, roll_opts);

    const auto model_a = ml::make_model(ml::ModelKind::kRandomForest);
    const auto model_b = ml::make_model(ml::ModelKind::kRandomForest);
    const auto auc_base = core::evaluate_auc(*model_a, base).auc();
    const auto auc_roll = core::evaluate_auc(*model_b, rolled).auc();
    table.add_row({std::to_string(n),
                   io::TextTable::num(auc_base.mean, 3) + " +- " +
                       io::TextTable::num(auc_base.sd, 3),
                   io::TextTable::num(auc_roll.mean, 3) + " +- " +
                       io::TextTable::num(auc_roll.sd, 3),
                   io::TextTable::num(auc_roll.mean - auc_base.mean, 3)});
    table.print(std::cout);
  }
  return 0;
}
