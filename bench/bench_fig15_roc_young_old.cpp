// Figure 15 + Section 5.3: ROC for young vs old drive inputs, and the
// age-split training experiment (separate young/old classifiers).

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 15 — young vs old predictability (RF, N = 1)",
      "single model: AUC 0.961 on young inputs vs 0.894 on old; training "
      "separate age-partitioned models: 0.970 (young) vs 0.890 (old)",
      fleet);

  // --- Part 1: one pooled model, ROC evaluated separately by input age. ---
  const ml::Dataset data = core::build_dataset(fleet, bench::default_build_options(1));
  const auto model = ml::make_model(ml::ModelKind::kRandomForest);
  const core::PooledScores pooled = core::pooled_cv_scores(*model, data);
  const std::size_t age_col = core::FeatureExtractor::age_index();

  auto split_auc = [&](bool young) {
    std::vector<float> scores;
    std::vector<float> labels;
    for (std::size_t i = 0; i < pooled.scores.size(); ++i) {
      const bool row_young =
          data.x(pooled.row_indices[i], age_col) <= core::kInfantAgeDays;
      if (row_young != young) continue;
      scores.push_back(pooled.scores[i]);
      labels.push_back(pooled.labels[i]);
    }
    return ml::roc_auc(scores, labels);
  };

  io::TextTable part1("Single pooled model, ROC split by input age");
  part1.set_header({"input age", "AUC"});
  part1.add_row({"young (<= 90 days)", bench::vs(split_auc(true), 0.961)});
  part1.add_row({"old (> 90 days)", bench::vs(split_auc(false), 0.894)});
  part1.print(std::cout);

  // --- Part 2: separate models trained per age partition. ---
  io::TextTable part2("Age-partitioned training (separate models)");
  part2.set_header({"partition", "AUC +- sd"});
  using AF = core::DatasetBuildOptions::AgeFilter;
  const std::pair<AF, double> parts[] = {{AF::kYoungOnly, 0.970}, {AF::kOldOnly, 0.890}};
  for (const auto& [filter, paper] : parts) {
    auto opts = bench::default_build_options(1);
    opts.age_filter = filter;
    // Young drive-days are scarce; keep more negatives for a stable fold.
    if (filter == AF::kYoungOnly) opts.negative_keep_prob = 0.05;
    const ml::Dataset part_data = core::build_dataset(fleet, opts);
    const auto part_model = ml::make_model(ml::ModelKind::kRandomForest);
    const auto ms = core::evaluate_auc(*part_model, part_data).auc();
    part2.add_row({filter == AF::kYoungOnly ? "young only" : "old only",
                   bench::vs_pm(ms.mean, ms.sd, paper)});
  }
  part2.print(std::cout);
  return 0;
}
