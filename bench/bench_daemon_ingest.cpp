// Streaming daemon ingest throughput (google-benchmark).
//
// Measures the full producer -> ring -> appender -> WAL -> sanitize ->
// score -> health path of daemon/daemon.hpp under concurrent producers:
//
//   BM_DaemonIngest/producers:<n>/wal:<0|1>
//
// One iteration pushes one fleet-day (kDrives records, every drive, day
// strictly advancing so the sanitizer accepts everything) from `producers`
// threads into a running 4-shard daemon with blocking backpressure.
// items_per_second is therefore end-to-end sustainable rows/s once the
// ring reaches steady state (pushes block on the appenders); wal:1 runs
// the same load with per-shard WAL appends (fsync off — the framing cost,
// not the disk).  Alongside the rate, the registry delta exports every
// daemon_* counter family per iteration and `shed_rate` reports the
// fraction of offered rows dropped after the block timeout — nonzero shed
// at wal:0 means the scoring path, not the WAL, is the bottleneck.

#include <benchmark/benchmark.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_metrics.hpp"
#include "daemon/daemon.hpp"
#include "ml/classifier.hpp"

namespace {

using namespace ssdfail;

constexpr std::uint32_t kDrives = 4096;  ///< records pushed per iteration

/// Deterministic hash-fold scorer (same shape as the daemon test stub):
/// cheap enough that the bench exercises the pipeline, not a forest.
class BenchScorer final : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  [[nodiscard]] std::vector<float> predict_proba(const ml::Matrix& x) const override {
    std::vector<float> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      double acc = 0.0;
      for (const float v : x.row(r)) acc = acc * 31.0 + static_cast<double>(v);
      out[r] = static_cast<float>(std::fabs(acc - std::floor(acc)));
    }
    return out;
  }
  [[nodiscard]] std::string name() const override { return "bench-scorer"; }
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override {
    return std::make_unique<BenchScorer>();
  }
};

core::FleetObservation observation_for(std::uint32_t drive, std::int32_t day) {
  trace::DailyRecord rec;
  rec.day = day;
  rec.reads = 100 + drive;
  rec.writes = 40 + static_cast<std::uint32_t>(day);
  rec.erases = 4;
  rec.pe_cycles = 10 + 2 * static_cast<std::uint32_t>(day);
  rec.bad_blocks = 1 + static_cast<std::uint32_t>(day) / 64;
  rec.factory_bad_blocks = 4;
  rec.errors[0] = drive % 3;
  return {trace::DriveModel::MlcA, drive, 0, rec};
}

void BM_DaemonIngest(benchmark::State& state) {
  const auto producers = static_cast<std::uint32_t>(state.range(0));
  const bool wal = state.range(1) == 1;

  std::string wal_dir;
  if (wal) {
    wal_dir = (std::filesystem::temp_directory_path() / "ssdfail_bench_daemon_ingest").string();
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
  }

  daemon::DaemonConfig cfg;
  cfg.shards = 4;
  cfg.ring_capacity = 4096;
  cfg.max_batch = 512;
  cfg.backpressure = daemon::Backpressure::kBlock;
  cfg.block_timeout = std::chrono::milliseconds(50);
  cfg.wal_dir = wal_dir;
  cfg.fsync = daemon::FsyncPolicy::kNever;
  cfg.threshold = 0.95;
  daemon::TelemetryDaemon daemon(std::make_shared<BenchScorer>(), cfg);
  daemon.start();

  const bench::RegistryDelta delta;
  const daemon::DaemonStats before = daemon.stats();
  std::int32_t day = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::uint32_t p = 0; p < producers; ++p) {
      threads.emplace_back([&daemon, p, producers, day] {
        for (std::uint32_t d = p; d < kDrives; d += producers)
          (void)daemon.push(observation_for(d, day));
      });
    }
    for (auto& t : threads) t.join();
    ++day;
  }
  // Only the atomic counters are safe to read while appenders run.
  const daemon::DaemonStats after = daemon.stats();
  daemon.stop();

  const auto offered = static_cast<double>(state.iterations()) * kDrives;
  state.SetItemsProcessed(state.iterations() * kDrives);
  state.counters["shed_rate"] =
      static_cast<double>(after.shed - before.shed) / offered;
  delta.export_into(state, "daemon");

  if (wal) std::filesystem::remove_all(wal_dir);
}

BENCHMARK(BM_DaemonIngest)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"producers", "wal"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

SSDFAIL_BENCH_MAIN()
