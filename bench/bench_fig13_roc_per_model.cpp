// Figure 13: ROC curves per drive model (random forest, N = 1).

#include "bench_common.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Figure 13 — per-model ROC curves (RF, N = 1)",
                      "the forest performs nearly identically across MLC-A/B/D "
                      "(AUC 0.905 / 0.900 / 0.918)",
                      fleet);

  const double paper_auc[] = {0.905, 0.900, 0.918};
  const double fpr_grid[] = {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8};

  io::TextTable table("Fig 13 series: TPR at FPR grid, per model");
  std::vector<std::string> header = {"model", "AUC"};
  for (double f : fpr_grid) header.push_back("TPR@" + io::TextTable::num(f, 2));
  table.set_header(header);

  for (trace::DriveModel m : trace::kMlcModels) {
    auto opts = bench::default_build_options(1);
    opts.model_filter = m;
    const ml::Dataset data = core::build_dataset(fleet, opts);
    const auto model = ml::make_model(ml::ModelKind::kRandomForest);
    const core::PooledScores pooled = core::pooled_cv_scores(*model, data);
    const double auc = ml::roc_auc(pooled.scores, pooled.labels);
    const auto curve = ml::roc_curve(pooled.scores, pooled.labels);

    std::vector<std::string> row = {
        std::string(trace::model_name(m)),
        bench::vs(auc, paper_auc[static_cast<std::size_t>(m)])};
    for (double target_fpr : fpr_grid) {
      double tpr = 0.0;
      for (const auto& p : curve) {
        if (p.fpr > target_fpr) break;
        tpr = p.tpr;
      }
      row.push_back(io::TextTable::num(tpr, 3));
    }
    table.add_row(row);
    table.print(std::cout);
  }
  return 0;
}
