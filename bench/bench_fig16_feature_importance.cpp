// Figure 16: random-forest feature importances for the infant-drive and
// mature-drive models.

#include "bench_common.hpp"
#include "core/prediction.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 16 — feature importance, young vs old models",
      "young model: drive age, read counts, cum bad blocks, cum final read / "
      "uncorrectable errors dominate; old model: wear-and-tear features "
      "(read/write counts, correctable errors, cum bad blocks)",
      fleet);

  using AF = core::DatasetBuildOptions::AgeFilter;
  const std::pair<AF, const char*> parts[] = {{AF::kYoungOnly, "Young drives"},
                                              {AF::kOldOnly, "Old drives"}};
  for (const auto& [filter, title] : parts) {
    auto opts = bench::default_build_options(1);
    opts.age_filter = filter;
    if (filter == AF::kYoungOnly) opts.negative_keep_prob = 0.05;
    const ml::Dataset data = core::build_dataset(fleet, opts);
    const auto ranked = core::forest_feature_importance(data);

    io::TextTable table(std::string(title) + " — top 10 features");
    table.set_header({"rank", "feature", "importance"});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i)
      table.add_row({std::to_string(i + 1), ranked[i].name,
                     io::TextTable::num(ranked[i].importance, 4)});
    table.print(std::cout);
  }

  std::printf("paper (young top-10): drive age, read count, cum read count, cum bad\n"
              "block count, cum final read error, cum uncorr error, write count,\n"
              "status read only, cum corr error, corr error.\n"
              "paper (old top-10): read count, corr error, cum bad block count, write\n"
              "count, cum final read error, cum read count, drive age, corr err rate,\n"
              "final read error, cum write count.\n");
  return 0;
}
