#pragma once

// Bridge between the obs metrics registry and google-benchmark's counter
// JSON, so every bench binary reports pipeline telemetry with the same
// keys the exporters use (docs/OBSERVABILITY.md, docs/BENCHMARKS.md).
//
// Two pieces:
//
//  - RegistryDelta: snapshot the global registry when constructed; after
//    the measurement loop, export_into() diffs against a fresh snapshot
//    and reports each counter family that moved as a per-iteration rate
//    in state.counters.  Benches share one process (and one registry), so
//    a before/after diff is what attributes increments to *this* bench.
//    Label sets are summed per family — shard/monitor labels vary by
//    instance, and a stable key matters more to a JSON consumer than the
//    breakdown.
//
//  - SSDFAIL_BENCH_MAIN(): BENCHMARK_MAIN() plus a post-run hook: when
//    SSDFAIL_BENCH_METRICS_OUT=<file> is set, publishes span stats and
//    dumps the full registry (labels and all) as JSON lines for offline
//    inspection.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ssdfail::bench {

class RegistryDelta {
 public:
  RegistryDelta() : before_(obs::MetricsRegistry::global().snapshot()) {}

  /// Export every counter family whose name starts with `prefix` (all
  /// when empty) and whose total moved since construction, divided by the
  /// iteration count — deterministic per-iteration work, independent of
  /// how many iterations the harness chose.
  void export_into(benchmark::State& state, std::string_view prefix = {}) const {
    const obs::RegistrySnapshot after = obs::MetricsRegistry::global().snapshot();
    std::map<std::string, double> family_delta;
    for (const obs::Sample& s : after.samples) {
      if (s.type != obs::MetricType::kCounter) continue;
      if (!prefix.empty() && s.name.rfind(prefix, 0) != 0) continue;
      double baseline = 0.0;
      if (const obs::Sample* b = before_.find(s.name, s.labels)) baseline = b->value;
      if (s.value != baseline) family_delta[s.name] += s.value - baseline;
    }
    for (const auto& [name, delta] : family_delta)
      state.counters[name] =
          benchmark::Counter(delta, benchmark::Counter::kAvgIterations);
  }

 private:
  obs::RegistrySnapshot before_;
};

inline int run_benchmark_main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("SSDFAIL_BENCH_METRICS_OUT")) {
    obs::TraceCollector::global().publish(obs::MetricsRegistry::global());
    std::ofstream out(path);
    obs::write_json_lines(out, obs::MetricsRegistry::global().snapshot());
  }
  return 0;
}

}  // namespace ssdfail::bench

#define SSDFAIL_BENCH_MAIN()                               \
  int main(int argc, char** argv) {                        \
    return ssdfail::bench::run_benchmark_main(argc, argv); \
  }
