// Table 2: Spearman correlations among cumulative error counts, P/E cycle
// count, bad-block count, and drive age.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Table 2 — Spearman correlation matrix of cumulative counts",
      "rho(UE, final read)=0.97; rho(P/E, age)=0.73; rho(P/E, erase)=0.32; "
      "bad blocks correlate ~0.34-0.38 with erase/final-read/UE/write; "
      "response-timeout pair at 0.53; P/E barely correlates with UE (0.19)",
      fleet);

  const auto suite = core::characterize(fleet);
  const auto matrix = suite.correlation_matrix();

  io::TextTable table("Table 2 (reproduced; lower triangle)");
  std::vector<std::string> header = {""};
  for (std::size_t v = 0; v < core::kCorrVars; ++v)
    header.emplace_back(core::corr_var_name(static_cast<core::CorrVar>(v)));
  table.set_header(header);
  for (std::size_t i = 0; i < core::kCorrVars; ++i) {
    std::vector<std::string> row = {
        std::string(core::corr_var_name(static_cast<core::CorrVar>(i)))};
    for (std::size_t j = 0; j < core::kCorrVars; ++j)
      row.push_back(j <= i ? io::TextTable::num(matrix[i][j], 2) : "");
    table.add_row(row);
  }
  table.print(std::cout);

  // Spot-check the paper's headline cells.
  io::TextTable spots("Headline cells (reproduced vs paper)");
  spots.set_header({"pair", "rho"});
  auto cell = [&](core::CorrVar a, core::CorrVar b, double paper) {
    spots.add_row({std::string(core::corr_var_name(a)) + " ~ " +
                       std::string(core::corr_var_name(b)),
                   bench::vs(matrix[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                             paper, 2)});
  };
  cell(core::CorrVar::kUncorrectable, core::CorrVar::kFinalRead, 0.97);
  cell(core::CorrVar::kPeCycle, core::CorrVar::kDriveAge, 0.73);
  cell(core::CorrVar::kPeCycle, core::CorrVar::kErase, 0.32);
  cell(core::CorrVar::kPeCycle, core::CorrVar::kUncorrectable, 0.19);
  cell(core::CorrVar::kBadBlock, core::CorrVar::kErase, 0.38);
  cell(core::CorrVar::kBadBlock, core::CorrVar::kUncorrectable, 0.37);
  cell(core::CorrVar::kResponse, core::CorrVar::kTimeout, 0.53);
  cell(core::CorrVar::kDriveAge, core::CorrVar::kUncorrectable, 0.36);
  spots.print(std::cout);
  return 0;
}
