// Cost of the observability layer itself (google-benchmark).
//
// The acceptance bar for src/obs/: the fully instrumented FleetMonitor
// batched scoring path (spans + counters + latency histogram live) must
// stay within 5% of the identical run with obs::set_enabled(false), and
// the disabled primitives must be near-no-ops (a relaxed load + branch).
//
//   BM_MonitorBatchScoring/obs:<0|1>  the macro check: one fleet-day per
//                                     iteration through an 8-shard monitor
//                                     on an 8-worker pool; obs:1 is the
//                                     instrumented path, obs:0 the same
//                                     code with the global switch off.
//                                     Compare real_time of the two rows.
//   BM_CounterInc/obs:<0|1>           one striped-counter increment
//   BM_HistogramObserve/obs:<0|1>     one fixed-bucket observation
//   BM_SpanScope/obs:<0|1>            one enter/exit of a scoped span
//   BM_RegistrySnapshot/<n>           snapshot of n counter families
//   BM_PrometheusExposition/<n>       snapshot + text exposition
//
// The enabled/disabled pairs share one binary run, so keep them adjacent
// when filtering; obs is re-enabled after every disabled measurement.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "core/dataset_builder.hpp"
#include "core/online_monitor.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/fleet_simulator.hpp"

namespace {

using namespace ssdfail;

/// Flip the global switch for one benchmark's measurement loop and always
/// restore it — a disabled registry must never leak into the next bench.
class ScopedObsEnabled {
 public:
  explicit ScopedObsEnabled(bool on) { obs::set_enabled(on); }
  ~ScopedObsEnabled() { obs::set_enabled(true); }
  ScopedObsEnabled(const ScopedObsEnabled&) = delete;
  ScopedObsEnabled& operator=(const ScopedObsEnabled&) = delete;
};

const trace::FleetTrace& small_fleet() {
  static const trace::FleetTrace fleet = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 150;
    return sim::FleetSimulator(cfg).generate_all();
  }();
  return fleet;
}

std::shared_ptr<const ml::Classifier> monitor_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    core::DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.02;
    const ml::Dataset data = core::build_dataset(small_fleet(), opts);
    auto forest = ml::make_model(ml::ModelKind::kRandomForest);
    forest->fit(ml::downsample_negatives(data, 1.0, 1));
    return std::shared_ptr<const ml::Classifier>(std::move(forest));
  }();
  return model;
}

/// Mirror of bench_perf_components' BM_FleetMonitorScoring at 8 shards,
/// parameterized on the global obs switch instead of the shard count.
void BM_MonitorBatchScoring(benchmark::State& state) {
  const bool instrumented = state.range(0) == 1;
  static parallel::ThreadPool pool(8);
  core::FleetMonitor monitor(monitor_model(), 0.9, 8);
  std::vector<core::FleetObservation> batch;
  for (const auto& d : small_fleet().drives)
    if (!d.records.empty())
      batch.push_back({d.model, d.drive_index, 0, d.records.front()});

  const ScopedObsEnabled guard(instrumented);
  std::int32_t day = 0;
  std::uint64_t scored = 0;
  for (auto _ : state) {
    for (auto& obs : batch) obs.record.day = day;
    const auto assessments = monitor.observe_batch(batch, pool);
    benchmark::DoNotOptimize(assessments.data());
    ++day;
    scored += batch.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(scored));
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(scored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MonitorBatchScoring)->ArgName("obs")->Arg(0)->Arg(1)->UseRealTime();

void BM_CounterInc(benchmark::State& state) {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "bench_obs_increments_total", {}, "bench_obs_overhead scratch counter");
  const ScopedObsEnabled guard(state.range(0) == 1);
  for (auto _ : state) counter.inc();
}
BENCHMARK(BM_CounterInc)->ArgName("obs")->Arg(0)->Arg(1);

void BM_HistogramObserve(benchmark::State& state) {
  static const std::vector<double>& bounds =
      *new std::vector<double>(obs::equal_width_bounds(0.0, 2000.0, 40));
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "bench_obs_scratch_us", bounds, {}, "bench_obs_overhead scratch histogram");
  const ScopedObsEnabled guard(state.range(0) == 1);
  double v = 0.0;
  for (auto _ : state) {
    hist.observe(v);
    v += 17.0;
    if (v > 2100.0) v = 0.0;  // exercise interior buckets and +Inf
  }
}
BENCHMARK(BM_HistogramObserve)->ArgName("obs")->Arg(0)->Arg(1);

void BM_SpanScope(benchmark::State& state) {
  static const obs::SiteId kSite = obs::intern_site("bench.overhead_span");
  const ScopedObsEnabled guard(state.range(0) == 1);
  for (auto _ : state) {
    obs::Span span(kSite);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanScope)->ArgName("obs")->Arg(0)->Arg(1);

/// A private registry with n counter families (4 labeled children each)
/// and n/8 histograms — roughly the shape the pipeline populates.
obs::MetricsRegistry& synthetic_registry(std::size_t n) {
  static auto& registries = *new std::vector<std::unique_ptr<obs::MetricsRegistry>>();
  static auto& sizes = *new std::vector<std::size_t>();
  for (std::size_t i = 0; i < sizes.size(); ++i)
    if (sizes[i] == n) return *registries[i];
  auto reg = std::make_unique<obs::MetricsRegistry>();
  const std::vector<double> bounds = obs::equal_width_bounds(0.0, 2000.0, 40);
  for (std::size_t f = 0; f < n; ++f) {
    const std::string name = "bench_family_" + std::to_string(f) + "_total";
    for (int child = 0; child < 4; ++child)
      reg->counter(name, {{"shard", std::to_string(child)}}, "synthetic").inc(f + 1);
    if (f % 8 == 0)
      reg->histogram("bench_family_" + std::to_string(f) + "_us", bounds, {},
                     "synthetic")
          .observe(static_cast<double>(f));
  }
  registries.push_back(std::move(reg));
  sizes.push_back(n);
  return *registries.back();
}

void BM_RegistrySnapshot(benchmark::State& state) {
  obs::MetricsRegistry& reg = synthetic_registry(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const obs::RegistrySnapshot snap = reg.snapshot();
    benchmark::DoNotOptimize(snap.samples.data());
  }
}
BENCHMARK(BM_RegistrySnapshot)->Arg(16)->Arg(128);

void BM_PrometheusExposition(benchmark::State& state) {
  obs::MetricsRegistry& reg = synthetic_registry(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = obs::to_prometheus(reg.snapshot());
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.counters["exposition_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_PrometheusExposition)->Arg(16)->Arg(128);

}  // namespace

SSDFAIL_BENCH_MAIN();
