// Figure 1: CDFs of maximum observed drive age and of the number of
// observed drive days per drive.

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner("Figure 1 — observation-horizon CDFs",
                      "for over 50% of drives the log spans 4-6 years; the data-count "
                      "CDF sits slightly left of max age (missing days)",
                      fleet);

  const auto suite = core::characterize(fleet);
  io::TextTable table("Fig 1 series (CDF at x years)");
  table.set_header({"x (years)", "Max Age CDF", "Data Count CDF"});
  for (double x : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0}) {
    table.add_row({io::TextTable::num(x, 1),
                   io::TextTable::num(suite.max_age_years().at(x), 3),
                   io::TextTable::num(suite.data_count_years().at(x), 3)});
  }
  table.print(std::cout);

  const double over4y = 1.0 - suite.max_age_years().at(4.0);
  std::printf("share of drives observed for >= 4 years: %.1f%%  (paper: >50%%)\n",
              100.0 * over4y);
  return 0;
}
