// Figure 6: CDF of the age of failed drives + population-normalized
// failure rate per month of age (infant mortality).

#include "bench_common.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Figure 6 — failure age CDF and monthly failure rate",
      "15% of failures within 30 days, 25% within 90 days; normalized rate is "
      "elevated for the first ~3 months, then roughly constant (no old-age wearout)",
      fleet);

  const auto suite = core::characterize(fleet);
  const auto& cdf = suite.failure_age_months();
  const auto& rate = suite.failure_rate_by_month();

  io::TextTable table("Fig 6 series");
  table.set_header({"age (months)", "CDF of failure age", "failure rate (per drive-month)"});
  for (std::size_t m : {0u, 1u, 2u, 3u, 6u, 9u, 12u, 18u, 24u, 36u, 48u, 60u, 71u}) {
    table.add_row({std::to_string(m + 1),
                   io::TextTable::num(cdf.at(static_cast<double>(m + 1)), 3),
                   io::TextTable::num(rate.rate(m), 4)});
  }
  table.print(std::cout);

  io::TextTable anchors("Anchors (reproduced vs paper)");
  anchors.set_header({"statistic", "value"});
  anchors.add_row({"share of failures at age <= 30d", bench::vs(cdf.at(1.0), 0.15, 2)});
  anchors.add_row({"share of failures at age <= 90d", bench::vs(cdf.at(3.0), 0.25, 2)});
  const double infant_rate = (rate.rate(0) + rate.rate(1) + rate.rate(2)) / 3.0;
  double mature_rate = 0.0;
  int mature_bins = 0;
  for (std::size_t m = 6; m < 48; ++m) {
    mature_rate += rate.rate(m);
    ++mature_bins;
  }
  mature_rate /= mature_bins;
  anchors.add_row({"infant/mature monthly-rate ratio",
                   io::TextTable::num(infant_rate / mature_rate, 1) + " (paper: >3x)"});
  anchors.print(std::cout);
  return 0;
}
