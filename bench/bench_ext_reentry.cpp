// Extension (the paper's stated future work, Section 7): characterize
// drive behavior directly following re-entry from repair, and quantify how
// much riskier a repaired drive is than a never-failed peer.
//
// Outputs: (a) re-failure incidence of returned drives vs first-failure
// incidence of fresh drives over matched exposure; (b) error incidence in
// the first 90 days after re-entry vs a pre-failure baseline window.

#include "bench_common.hpp"
#include "core/failure_timeline.hpp"

int main() {
  using namespace ssdfail;
  const auto fleet = bench::default_fleet();
  bench::print_banner(
      "Extension — drive behavior after repair re-entry",
      "(paper Section 7: 'advancing our understanding of disk activity prior "
      "to a swap and directly following re-entry') — repaired drives carry "
      "elevated hazard; Table 4's repeat failures come from this population",
      fleet);

  struct Accumulator {
    // Exposure (drive-days) and failures for fresh vs re-entered periods.
    std::uint64_t fresh_days = 0, fresh_failures = 0;
    std::uint64_t reentry_days = 0, reentry_failures = 0;
    // Error-day counts within 90 days after re-entry vs matched-age fresh.
    std::uint64_t post_reentry_days = 0, post_reentry_ue_days = 0;
    std::uint64_t baseline_days = 0, baseline_ue_days = 0;
    // Time from re-entry to next failure (when observed).
    stats::CensoredEcdf refail_days;
    void merge(const Accumulator& o) {
      fresh_days += o.fresh_days;
      fresh_failures += o.fresh_failures;
      reentry_days += o.reentry_days;
      reentry_failures += o.reentry_failures;
      post_reentry_days += o.post_reentry_days;
      post_reentry_ue_days += o.post_reentry_ue_days;
      baseline_days += o.baseline_days;
      baseline_ue_days += o.baseline_ue_days;
      refail_days.merge(o.refail_days);
    }
  };

  const Accumulator acc = fleet.visit(
      [] { return Accumulator{}; },
      [](Accumulator& a, const trace::DriveHistory& drive) {
        const auto timeline = core::derive_timeline(drive);
        for (std::size_t p = 0; p < timeline.periods.size(); ++p) {
          const auto& period = timeline.periods[p];
          const bool reentered = p > 0;  // later periods follow a repair
          const auto days = static_cast<std::uint64_t>(period.length());
          if (reentered) {
            a.reentry_days += days;
            if (period.ended_in_failure) ++a.reentry_failures;
            if (period.ended_in_failure)
              a.refail_days.add_observed(period.length());
            else
              a.refail_days.add_censored();
          } else {
            a.fresh_days += days;
            if (period.ended_in_failure) ++a.fresh_failures;
          }
          // UE incidence in the first 90 days of the period.
          for (const auto& rec : drive.records) {
            if (rec.day < period.start_day || rec.day > period.end_day) continue;
            if (rec.day - period.start_day >= 90) continue;
            const bool ue = rec.error(trace::ErrorType::kUncorrectable) > 0;
            if (reentered) {
              ++a.post_reentry_days;
              if (ue) ++a.post_reentry_ue_days;
            } else {
              ++a.baseline_days;
              if (ue) ++a.baseline_ue_days;
            }
          }
        }
      },
      [](Accumulator& dst, const Accumulator& src) { dst.merge(src); });

  io::TextTable table("Re-entered vs fresh operational periods");
  table.set_header({"population", "drive-days", "failures",
                    "failures per 1000 drive-years"});
  auto rate = [](std::uint64_t fails, std::uint64_t days) {
    return days == 0 ? 0.0
                     : 1000.0 * 365.0 * static_cast<double>(fails) /
                           static_cast<double>(days);
  };
  table.add_row({"fresh (first period)", std::to_string(acc.fresh_days),
                 std::to_string(acc.fresh_failures),
                 io::TextTable::num(rate(acc.fresh_failures, acc.fresh_days), 1)});
  table.add_row({"re-entered (post-repair)", std::to_string(acc.reentry_days),
                 std::to_string(acc.reentry_failures),
                 io::TextTable::num(rate(acc.reentry_failures, acc.reentry_days), 1)});
  table.print(std::cout);

  io::TextTable errors("UE incidence in the first 90 days of a period");
  errors.set_header({"population", "UE days / total days", "rate"});
  auto frac = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  };
  errors.add_row({"fresh",
                  std::to_string(acc.baseline_ue_days) + " / " +
                      std::to_string(acc.baseline_days),
                  io::TextTable::num(frac(acc.baseline_ue_days, acc.baseline_days), 5)});
  errors.add_row(
      {"post-re-entry",
       std::to_string(acc.post_reentry_ue_days) + " / " +
           std::to_string(acc.post_reentry_days),
       io::TextTable::num(frac(acc.post_reentry_ue_days, acc.post_reentry_days), 5)});
  errors.print(std::cout);

  if (acc.refail_days.total() > 0) {
    io::TextTable refail("Time from re-entry to next failure");
    refail.set_header({"days", "CDF"});
    for (double x : {30.0, 90.0, 180.0, 365.0, 730.0})
      refail.add_row({io::TextTable::num(x, 0),
                      io::TextTable::num(acc.refail_days.at(x), 3)});
    refail.add_row({"never (censored)",
                    io::TextTable::num(acc.refail_days.censored_fraction(), 3)});
    refail.print(std::cout);
  }

  const double hazard_ratio = rate(acc.reentry_failures, acc.reentry_days) /
                              std::max(rate(acc.fresh_failures, acc.fresh_days), 1e-9);
  std::printf("re-entered drives fail %.1fx more often per unit time than fresh "
              "drives\n(consistent with Table 4's repeat-failure population)\n",
              hazard_ratio);
  return 0;
}
