# Empty dependencies file for spare_provisioning.
# This may be replaced when dependencies are built.
