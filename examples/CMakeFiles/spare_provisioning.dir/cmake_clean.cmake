file(REMOVE_RECURSE
  "CMakeFiles/spare_provisioning.dir/spare_provisioning.cpp.o"
  "CMakeFiles/spare_provisioning.dir/spare_provisioning.cpp.o.d"
  "spare_provisioning"
  "spare_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
