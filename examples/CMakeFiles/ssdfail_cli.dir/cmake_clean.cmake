file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_cli.dir/ssdfail_cli.cpp.o"
  "CMakeFiles/ssdfail_cli.dir/ssdfail_cli.cpp.o.d"
  "ssdfail_cli"
  "ssdfail_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
