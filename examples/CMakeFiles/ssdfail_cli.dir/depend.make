# Empty dependencies file for ssdfail_cli.
# This may be replaced when dependencies are built.
