file(REMOVE_RECURSE
  "CMakeFiles/trace_roundtrip_analysis.dir/trace_roundtrip_analysis.cpp.o"
  "CMakeFiles/trace_roundtrip_analysis.dir/trace_roundtrip_analysis.cpp.o.d"
  "trace_roundtrip_analysis"
  "trace_roundtrip_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_roundtrip_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
