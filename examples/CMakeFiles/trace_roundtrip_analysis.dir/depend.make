# Empty dependencies file for trace_roundtrip_analysis.
# This may be replaced when dependencies are built.
