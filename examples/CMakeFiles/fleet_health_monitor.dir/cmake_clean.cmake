file(REMOVE_RECURSE
  "CMakeFiles/fleet_health_monitor.dir/fleet_health_monitor.cpp.o"
  "CMakeFiles/fleet_health_monitor.dir/fleet_health_monitor.cpp.o.d"
  "fleet_health_monitor"
  "fleet_health_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_health_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
