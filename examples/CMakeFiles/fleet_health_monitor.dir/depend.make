# Empty dependencies file for fleet_health_monitor.
# This may be replaced when dependencies are built.
