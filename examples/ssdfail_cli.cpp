// ssdfail_cli — command-line front end for the library.
//
//   ssdfail_cli simulate   --drives N --seed S --out PREFIX [--binary|--columnar]
//   ssdfail_cli analyze    --in PREFIX [--binary]
//   ssdfail_cli convert    --in FILE --out FILE [--to v1|v2|v3] [--chunk N]
//   ssdfail_cli compact    --wal-dir DIR --store-dir DIR
//   ssdfail_cli benchmark  --drives N [--lookahead N]
//   ssdfail_cli transfer   [--drives N | --fleet FILE] [--gate] ...
//   ssdfail_cli train      --out MODEL.bin [--model forest|logistic] ...
//   ssdfail_cli serve      --model-file MODEL.bin [--shards K] ...
//   ssdfail_cli daemon     --wal-dir DIR [--model-file MODEL.bin] ...
//   ssdfail_cli metrics    [--out FILE] [--drives N]
//
// `simulate` writes a fleet as PREFIX_daily.csv + PREFIX_swaps.csv (or
// PREFIX.bin with --binary for the v1 row format, --columnar for the v2
// columnar store); `analyze` re-imports and prints the headline
// characterization (binary reads auto-detect the version); `convert`
// re-encodes a binary fleet between v1, v2 and v3 (compressed columnar)
// and reports bytes/row; `compact` folds the daemon's sealed WAL segments
// into v3 shards of a sharded store (daemon/compactor.hpp); `benchmark`
// trains the
// paper's random forest and reports cross-validated AUC.  `train` fits a
// model once and persists it (ml/serialize); `serve` loads it and replays
// a fleet as a day-ordered stream through the sharded FleetMonitor,
// printing the metrics snapshot — the always-on scoring service in
// miniature.  `train` and `serve` accept `--fleet FILE` to use a recorded
// binary fleet instead of simulating one; a v2 file feeds `train` through
// the zero-copy chunk-parallel dataset build (store/columnar.hpp).
//
// `daemon` runs the crash-safe streaming service (src/daemon): multi-
// threaded producers push the fleet into per-shard ingest rings, appender
// threads WAL every batch before scoring it, and SIGTERM/SIGINT trigger a
// graceful drain (rings emptied, WALs fsynced) before exit.  On startup it
// replays any WAL left in --wal-dir, rebuilding per-drive state; with
// --recover-only it stops there and just reports the replay.
// --state-digest-out writes the order-independent state digest the crash-
// recovery tests compare.
//
// Observability (docs/OBSERVABILITY.md): `train` and `serve` accept
// `--metrics-out FILE` to dump the process-wide metrics registry as
// Prometheus text (FILE) plus JSON lines (FILE.jsonl) on exit; `serve`
// additionally accepts `--metrics-stream FILE` to append per-replay-day
// JSON delta lines.  `metrics` runs a built-in end-to-end smoke (simulate
// -> train -> replay with chaos -> trace round-trip) and prints the
// Prometheus exposition — the target of the CI metrics-lint step.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/transfer.hpp"
#include "daemon/compactor.hpp"
#include "daemon/daemon.hpp"
#include "core/fleet_analysis.hpp"
#include "core/online_monitor.hpp"
#include "core/prediction.hpp"
#include "io/table.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshotter.hpp"
#include "obs/trace_span.hpp"
#include "online/drift.hpp"
#include "online/learner.hpp"
#include "ml/downsample.hpp"
#include "ml/flat_forest.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "parallel/thread_pool.hpp"
#include "robustness/fault_injector.hpp"
#include "sim/drifting_fleet.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"
#include "store/sharded.hpp"
#include "trace/binary_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/validation.hpp"

namespace {

using namespace ssdfail;

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count("--" + name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : it->second;
  }
  long get_long(const std::string& name, long fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[i + 1];
      ++i;
    } else {
      args.named[key] = "1";
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ssdfail_cli simulate  --drives N [--days N] [--seed S] --out PREFIX\n"
      "                        [--device-class mlc|hdd|nvme|mixed]\n"
      "                        [--binary | --columnar [--chunk N]]\n"
      "  ssdfail_cli analyze   --in PREFIX [--binary]\n"
      "  ssdfail_cli convert   --in FILE --out FILE [--to v1|v2|v3] [--chunk N]\n"
      "  ssdfail_cli compact   --wal-dir DIR --store-dir DIR [--chunk N] [--keep-wal]\n"
      "  ssdfail_cli benchmark [--drives N] [--lookahead N] [--seed S]\n"
      "  ssdfail_cli transfer  [--drives N | --fleet FILE] [--days N] [--seed S]\n"
      "                        [--lookahead N] [--label failure|uncorrectable]\n"
      "                        [--neg-keep P] [--train-frac F] [--train-ratio R]\n"
      "                        [--split-seed S] [--model forest|logistic] [--gate]\n"
      "                        (3x3 train-class x test-class AUC matrix;\n"
      "                        --gate: exit 3 unless the diagonal dominates)\n"
      "  ssdfail_cli train     --out MODEL.bin [--model forest|logistic]\n"
      "                        [--drives N | --fleet FILE] [--seed S]\n"
      "                        [--lookahead N] [--threads K] [--metrics-out FILE]\n"
      "  ssdfail_cli serve     --model-file MODEL.bin [--drives N | --fleet FILE]\n"
      "                        [--seed S] [--threshold T] [--shards K]\n"
      "                        [--engine flat|walker] [--sequential]\n"
      "                        [--chaos PCT] [--metrics-out FILE]\n"
      "                        [--metrics-stream FILE]\n"
      "  ssdfail_cli daemon    --wal-dir DIR [--model-file MODEL.bin]\n"
      "                        [--drives N | --fleet FILE] [--days N] [--seed S]\n"
      "                        [--producers P] [--shards K] [--ring N]\n"
      "                        [--backpressure block|shed] [--fsync every|never]\n"
      "                        [--wal-rotate BYTES]\n"
      "                        [--threshold T] [--chaos PCT] [--recover-only]\n"
      "                        [--state-digest-out FILE] [--metrics-out FILE]\n"
      "                        [--online --store-dir DIR [--promote-out FILE]\n"
      "                         --online-step-days K --online-lookahead N\n"
      "                         --online-min-samples N --online-min-positives N\n"
      "                         --promote-margin M --drift-psi T --drift-ks T\n"
      "                         --drift-min-rows N\n"
      "                         --retrain-always --drift-day D --drift-frac F\n"
      "                         --drift-hazard M --drift-errors M\n"
      "                         --drift-bad-blocks M]\n"
      "  ssdfail_cli drift     --reference PATH --current PATH [--psi T] [--ks T]\n"
      "                        [--min-rows N]   (PATH: .ssdf2 file or store dir;\n"
      "                        exit 3 when drift exceeds thresholds)\n"
      "  ssdfail_cli metrics   [--out FILE] [--drives N] [--seed S]\n");
  return 2;
}

/// Publish the trace aggregates into the global registry and dump it as
/// Prometheus text to `path` plus JSON lines to `path`.jsonl.  Returns
/// false (with a logged reason) on I/O failure.
bool write_metrics_out(const std::string& path) {
  obs::TraceCollector::global().publish(obs::MetricsRegistry::global());
  const obs::RegistrySnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  std::ofstream prom(path);
  if (!prom) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  obs::write_prometheus(prom, snapshot);
  const std::string jsonl_path = path + ".jsonl";
  std::ofstream jsonl(jsonl_path);
  if (!jsonl) {
    std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
    return false;
  }
  obs::write_json_lines(jsonl, snapshot);
  std::printf("wrote %s (%zu samples) + %s\n", path.c_str(), snapshot.samples.size(),
              jsonl_path.c_str());
  return true;
}

/// Resolve `--device-class mlc|hdd|nvme|mixed` into the fleet's model list.
/// Default "mlc" keeps every pre-existing CLI invocation bit-identical.
bool apply_device_class(sim::FleetConfig& cfg, const Args& args) {
  const std::string klass = args.get("device-class", "mlc");
  if (klass == "mlc") {
    // FleetConfig default: the paper's three MLC models.
  } else if (klass == "hdd") {
    cfg = cfg.for_class(trace::DeviceClass::kHdd);
  } else if (klass == "nvme") {
    cfg = cfg.for_class(trace::DeviceClass::kNvmeSsd);
  } else if (klass == "mixed") {
    cfg = cfg.mixed();
  } else {
    std::fprintf(stderr, "--device-class must be 'mlc', 'hdd', 'nvme' or 'mixed'\n");
    return false;
  }
  return true;
}

sim::FleetConfig config_from(const Args& args) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = static_cast<std::uint32_t>(args.get_long("drives", 500));
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 2019));
  cfg.window_days =
      static_cast<std::int32_t>(args.get_long("days", cfg.window_days));
  cfg.keep_ground_truth = false;  // CLI emits observable data only
  return cfg;
}

int cmd_simulate(const Args& args) {
  const std::string prefix = args.get("out", "");
  if (prefix.empty()) return usage();
  sim::FleetConfig cfg = config_from(args);
  if (!apply_device_class(cfg, args)) return 2;
  std::printf("simulating %u drives/model x %zu models (seed %llu)...\n",
              cfg.drives_per_model, cfg.models.size(),
              static_cast<unsigned long long>(cfg.seed));
  const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  if (args.flag("columnar")) {
    std::ofstream out(prefix + ".bin", std::ios::binary);
    trace::write_binary_v2(out, fleet,
                           static_cast<std::uint32_t>(args.get_long("chunk", 0)));
    std::printf("wrote %s.bin (columnar v2, %zu drive-days)\n", prefix.c_str(),
                fleet.total_records());
  } else if (args.flag("binary")) {
    std::ofstream out(prefix + ".bin", std::ios::binary);
    trace::write_binary(out, fleet);
    std::printf("wrote %s.bin (%zu drive-days)\n", prefix.c_str(), fleet.total_records());
  } else {
    std::ofstream daily(prefix + "_daily.csv");
    std::ofstream swaps(prefix + "_swaps.csv");
    trace::write_daily_log(daily, fleet);
    trace::write_swap_log(swaps, fleet);
    std::printf("wrote %s_daily.csv + %s_swaps.csv (%zu drive-days, %zu swaps)\n",
                prefix.c_str(), prefix.c_str(), fleet.total_records(),
                fleet.total_swaps());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string prefix = args.get("in", "");
  if (prefix.empty()) return usage();
  trace::FleetTrace fleet;
  if (args.flag("binary")) {
    std::ifstream in(prefix + ".bin", std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s.bin\n", prefix.c_str());
      return 1;
    }
    fleet = trace::read_binary(in);
  } else {
    std::ifstream daily(prefix + "_daily.csv");
    std::ifstream swaps(prefix + "_swaps.csv");
    if (!daily || !swaps) {
      std::fprintf(stderr, "cannot open %s_daily.csv / %s_swaps.csv\n", prefix.c_str(),
                   prefix.c_str());
      return 1;
    }
    fleet = trace::read_fleet(daily, swaps);
  }
  std::printf("loaded %zu drives, %zu drive-days\n", fleet.drives.size(),
              fleet.total_records());

  const auto violations = trace::validate_fleet(fleet);
  if (violations.empty()) {
    std::printf("trace validation: clean\n");
  } else {
    std::printf("trace validation: %zu violation(s); first few:\n", violations.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, violations.size()); ++i)
      std::printf("  drive %llu day %d: %s %s\n",
                  static_cast<unsigned long long>(violations[i].drive_uid),
                  violations[i].day,
                  std::string(trace::violation_name(violations[i].kind)).c_str(),
                  violations[i].detail.c_str());
  }

  const core::CharacterizationSuite suite = core::characterize(fleet);
  io::TextTable table("fleet characterization");
  table.set_header({"model", "drives", "%failed", "UE day-rate", "median repair (d)"});
  for (trace::DriveModel m : trace::kAllModels) {
    const auto& fi = suite.failure_incidence(m);
    if (fi.drives == 0) continue;
    const auto& inc = suite.incidence(m);
    const double ue =
        static_cast<double>(
            inc.error_days[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)]) /
        std::max<double>(static_cast<double>(inc.drive_days), 1.0);
    const auto& repair = suite.repair_time_days(m);
    table.add_row({std::string(trace::model_name(m)), std::to_string(fi.drives),
                   io::TextTable::pct(static_cast<double>(fi.drives_failed) /
                                      static_cast<double>(fi.drives)),
                   io::TextTable::num(ue, 5),
                   repair.finite_part().empty()
                       ? std::string("--")
                       : io::TextTable::num(repair.finite_part().quantile(0.5), 0)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_convert(const Args& args) {
  const std::string in_path = args.get("in", "");
  const std::string out_path = args.get("out", "");
  if (in_path.empty() || out_path.empty()) return usage();
  const std::string to = args.get("to", "v2");
  std::uint32_t to_version = 0;
  if (to == "v1") to_version = trace::kBinaryFormatVersion;
  else if (to == "v2") to_version = trace::kColumnarFormatVersion;
  else if (to == "v3") to_version = trace::kColumnarV3FormatVersion;
  else {
    std::fprintf(stderr, "convert: --to must be 'v1', 'v2' or 'v3'\n");
    return 2;
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  try {
    const std::uint32_t from_version = trace::peek_binary_version(in);
    const trace::FleetTrace fleet = trace::read_binary(in);
    if (to_version == trace::kBinaryFormatVersion)
      trace::write_binary(out, fleet);
    else if (to_version == trace::kColumnarFormatVersion)
      trace::write_binary_v2(out, fleet,
                             static_cast<std::uint32_t>(args.get_long("chunk", 0)));
    else
      trace::write_binary_v3(out, fleet,
                             static_cast<std::uint32_t>(args.get_long("chunk", 0)));
    out.flush();
    if (!out) {
      std::fprintf(stderr, "write failed for %s\n", out_path.c_str());
      return 1;
    }
    const auto bytes = std::filesystem::file_size(out_path);
    const std::size_t rows = fleet.total_records();
    std::printf("converted %s (v%u, %zu drive-days) -> %s (%s, %llu bytes",
                in_path.c_str(), from_version, rows, out_path.c_str(), to.c_str(),
                static_cast<unsigned long long>(bytes));
    if (rows > 0)
      std::printf(", %.2f bytes/row", static_cast<double>(bytes) /
                                          static_cast<double>(rows));
    std::printf(")\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "convert: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_compact(const Args& args) {
  const std::string wal_dir = args.get("wal-dir", "");
  const std::string store_dir = args.get("store-dir", "");
  if (wal_dir.empty() || store_dir.empty()) return usage();
  daemon::CompactorOptions options;
  options.keep_wal = args.flag("keep-wal");
  const long chunk = args.get_long("chunk", 0);
  if (chunk > 0) options.store.chunk_drives = static_cast<std::uint32_t>(chunk);
  try {
    const daemon::CompactionResult result =
        daemon::compact_sealed_wals(wal_dir, store_dir, options);
    if (result.shards_written == 0) {
      std::printf("compact: nothing to do (%zu sealed wal file(s), 0 records)\n",
                  result.wal_files);
      return 0;
    }
    std::printf(
        "compacted %zu sealed wal file(s) (%llu bytes) -> %s/%s\n"
        "  %zu drives, %llu records, %llu swaps, %llu out-of-order dropped\n"
        "  %llu bytes (%.2f bytes/row)\n",
        result.wal_files, static_cast<unsigned long long>(result.wal_bytes_in),
        store_dir.c_str(), result.shard_file.c_str(), result.drives,
        static_cast<unsigned long long>(result.records),
        static_cast<unsigned long long>(result.retires),
        static_cast<unsigned long long>(result.out_of_order_dropped),
        static_cast<unsigned long long>(result.shard_bytes_out),
        static_cast<double>(result.shard_bytes_out) /
            static_cast<double>(std::max<std::uint64_t>(result.records, 1)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compact: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_benchmark(const Args& args) {
  sim::FleetConfig cfg = config_from(args);
  cfg.keep_ground_truth = true;
  const sim::FleetSimulator fleet(cfg);
  core::DatasetBuildOptions opts;
  opts.lookahead_days = static_cast<int>(args.get_long("lookahead", 1));
  opts.negative_keep_prob = 0.01;
  std::printf("building N=%d dataset from %zu drives...\n", opts.lookahead_days,
              fleet.drive_count());
  const ml::Dataset data = core::build_dataset(fleet, opts);
  std::printf("%zu rows, %zu positives\n", data.size(), data.positives());
  const auto model = ml::make_model(ml::ModelKind::kRandomForest);
  const auto ms = core::evaluate_auc(*model, data).auc();
  std::printf("random forest ROC AUC (5-fold drive-partitioned CV): %.3f +- %.3f\n",
              ms.mean, ms.sd);
  return 0;
}

/// Cross-device-class transfer matrix (core/transfer.hpp): train on class
/// A's drives, score class B's held-out drives, for all nine ordered
/// pairs.  --gate turns the expected structure — diagonal dominance — into
/// an exit code for CI.
int cmd_transfer(const Args& args) {
  sim::FleetConfig cfg = config_from(args);
  // Defaults are the gate configuration: large enough that every class's
  // train half holds a stable positive count (NVMe failures are the
  // scarcest) and the column structure is well clear of split noise.
  cfg.drives_per_model = static_cast<std::uint32_t>(args.get_long("drives", 800));
  cfg.keep_ground_truth = true;
  cfg = cfg.mixed();  // transfer needs every class present

  trace::FleetTrace fleet;
  const std::string fleet_path = args.get("fleet", "");
  if (!fleet_path.empty()) {
    try {
      std::ifstream in(fleet_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open " + fleet_path);
      fleet = trace::read_binary(in);
      std::printf("loaded %zu drives (%zu drive-days) from %s\n", fleet.drives.size(),
                  fleet.total_records(), fleet_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "transfer: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("simulating mixed fleet: %u drives/model x %zu models (seed %llu)...\n",
                cfg.drives_per_model, cfg.models.size(),
                static_cast<unsigned long long>(cfg.seed));
    fleet = sim::FleetSimulator(cfg).generate_all();
  }

  core::TransferOptions opts;
  opts.build.lookahead_days = static_cast<int>(args.get_long("lookahead", 10));
  opts.build.negative_keep_prob =
      std::strtod(args.get("neg-keep", "0.05").c_str(), nullptr);
  const std::string label = args.get("label", "failure");
  if (label == "uncorrectable") {
    // Error-occurrence label (Table 8 style): positives are dense, but the
    // UE process is mechanically similar across classes so cross-class
    // transfer works WELL under this label — useful as a contrast run, not
    // expected to show diagonal dominance.
    opts.build.error_label = trace::ErrorType::kUncorrectable;
    opts.build.positive_keep_prob = 0.5;
  } else if (label != "failure") {
    std::fprintf(stderr, "transfer: --label must be 'failure' or 'uncorrectable'\n");
    return 2;
  }
  opts.train_fraction = std::strtod(args.get("train-frac", "0.5").c_str(), nullptr);
  // Keep several negatives per positive: classes with few positives (NVMe
  // failures are infant-heavy and scarce) need the extra rows for a stable
  // forest, and plentiful classes are unaffected in ranking terms.
  opts.protocol.train_downsample_ratio =
      std::strtod(args.get("train-ratio", "4").c_str(), nullptr);
  opts.split_seed = static_cast<std::uint64_t>(args.get_long("split-seed", 77));
  const std::string kind = args.get("model", "forest");
  if (kind == "logistic") {
    opts.model = ml::ModelKind::kLogisticRegression;
  } else if (kind != "forest") {
    std::fprintf(stderr, "transfer: --model must be 'forest' or 'logistic'\n");
    return 2;
  }

  core::TransferMatrix matrix;
  try {
    matrix = core::cross_class_transfer(fleet, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "transfer: %s\n", e.what());
    return 1;
  }

  io::TextTable shapes("per-class datasets (drive-partitioned halves)");
  shapes.set_header({"class", "train rows", "train pos", "eval rows", "eval pos"});
  for (trace::DeviceClass c : trace::kAllDeviceClasses) {
    const auto i = static_cast<std::size_t>(c);
    shapes.add_row({std::string(trace::device_class_name(c)),
                    std::to_string(matrix.train_rows[i]),
                    std::to_string(matrix.train_positives[i]),
                    std::to_string(matrix.eval_rows[i]),
                    std::to_string(matrix.eval_positives[i])});
  }
  shapes.print(std::cout);

  io::TextTable table("transfer ROC AUC: rows = train class, cols = test class");
  table.set_header({"train \\ test", "mlc-ssd", "hdd", "nvme-ssd"});
  for (trace::DeviceClass train : trace::kAllDeviceClasses) {
    std::vector<std::string> row{std::string(trace::device_class_name(train))};
    for (trace::DeviceClass test : trace::kAllDeviceClasses)
      row.push_back(io::TextTable::num(matrix.cell(train, test), 4));
    table.add_row(row);
  }
  table.print(std::cout);

  const bool dominant = matrix.diagonal_dominant();
  std::printf("diagonal (column) dominance: %s\n", dominant ? "HOLDS" : "VIOLATED");
  if (args.flag("gate") && !dominant) {
    std::fprintf(stderr,
                 "transfer: gate failed — for some test class a foreign-trained "
                 "model matches or beats the same-class model\n");
    return 3;
  }
  return 0;
}

int cmd_train(const Args& args) {
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) return usage();
  const std::string kind = args.get("model", "forest");
  if (kind != "forest" && kind != "logistic") {
    std::fprintf(stderr, "train: --model must be 'forest' or 'logistic'\n");
    return 2;
  }

  sim::FleetConfig cfg = config_from(args);
  cfg.keep_ground_truth = true;
  core::DatasetBuildOptions opts;
  opts.lookahead_days = static_cast<int>(args.get_long("lookahead", 1));
  opts.negative_keep_prob = 0.02;
  const std::string fleet_path = args.get("fleet", "");
  ml::Dataset data;
  if (!fleet_path.empty()) {
    try {
      std::ifstream in(fleet_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open " + fleet_path);
      const std::uint32_t version = trace::peek_binary_version(in);
      std::printf("building N=%d dataset from %s (v%u)...\n", opts.lookahead_days,
                  fleet_path.c_str(), version);
      if (version == trace::kColumnarFormatVersion) {
        // v2: chunk-parallel zero-copy build straight off the mapped file.
        data = core::build_dataset(store::ColumnarFleetView::open(fleet_path), opts);
      } else {
        data = core::build_dataset(trace::read_binary(in), opts);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "train: %s\n", e.what());
      return 1;
    }
  } else {
    const sim::FleetSimulator fleet(cfg);
    std::printf("building N=%d dataset from %zu drives...\n", opts.lookahead_days,
                fleet.drive_count());
    data = core::build_dataset(fleet, opts);
  }
  const ml::Dataset train = ml::downsample_negatives(data, 1.0, cfg.seed);
  std::printf("%zu rows (%zu positives) -> %zu after 1:1 downsampling\n", data.size(),
              data.positives(), train.size());

  // Atomic persistence (tmp + rename): a crash mid-write must never leave a
  // truncated model where `serve` would find it.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (kind == "forest") {
      ml::RandomForest forest;
      forest.fit(train);
      ml::save_model_file(out_path, forest);
    } else {
      ml::LogisticRegression logistic;
      logistic.fit(train);
      ml::save_model_file(out_path, logistic);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(), e.what());
    return 1;
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("trained %s in %.1fs, wrote %s\n", kind.c_str(), secs, out_path.c_str());
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !write_metrics_out(metrics_path)) return 1;
  return 0;
}

/// Try to load the serving model; returns nullptr (with a logged reason)
/// instead of throwing, so `serve` can degrade rather than die.
std::shared_ptr<const ml::Classifier> try_load_model(const std::string& path) {
  try {
    // Compiles tree ensembles for the selected inference engine on load.
    return ml::load_serving_classifier_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: cannot load %s: %s\n", path.c_str(), e.what());
    return nullptr;
  }
}

/// Degraded-mode scorer: the paper's statistical threshold baseline, fitted
/// on a small simulated fleet.  Much weaker than the trained model, but it
/// keeps risk scores flowing while the real model file is broken.
std::shared_ptr<const ml::Classifier> fallback_model(std::uint64_t seed) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 60;
  cfg.seed = seed;
  cfg.keep_ground_truth = true;
  const sim::FleetSimulator fleet(cfg);
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 1;
  opts.negative_keep_prob = 0.02;
  const ml::Dataset data = core::build_dataset(fleet, opts);
  auto baseline = ml::make_model(ml::ModelKind::kThresholdBaseline);
  baseline->fit(ml::downsample_negatives(data, 1.0, cfg.seed));
  return std::shared_ptr<const ml::Classifier>(std::move(baseline));
}

int cmd_serve(const Args& args) {
  const std::string model_path = args.get("model-file", "");
  if (model_path.empty()) return usage();

  const std::string engine_name =
      args.get("engine", std::string(ml::inference_engine_name(ml::inference_engine())));
  const auto engine = ml::parse_inference_engine(engine_name);
  if (!engine) {
    std::fprintf(stderr, "serve: unknown engine '%s' (flat|walker)\n",
                 engine_name.c_str());
    return usage();
  }
  ml::set_inference_engine(*engine);

  sim::FleetConfig cfg = config_from(args);
  cfg.drives_per_model = static_cast<std::uint32_t>(args.get_long("drives", 200));

  std::shared_ptr<const ml::Classifier> model = try_load_model(model_path);
  bool degraded = model == nullptr;
  if (degraded) {
    std::fprintf(stderr, "serve: DEGRADED — scoring on the threshold baseline\n");
    model = fallback_model(cfg.seed);
  } else {
    std::printf("loaded %s from %s (engine %s)\n", model->name().c_str(),
                model_path.c_str(), engine_name.c_str());
  }

  trace::FleetTrace fleet;
  const std::string fleet_path = args.get("fleet", "");
  if (!fleet_path.empty()) {
    try {
      // read_binary auto-detects v1/v2; the replay loop needs row structs
      // either way, so a v2 file is materialized on load.
      std::ifstream in(fleet_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open " + fleet_path);
      fleet = trace::read_binary(in);
      std::printf("loaded %zu drives (%zu drive-days) from %s\n", fleet.drives.size(),
                  fleet.total_records(), fleet_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: %s\n", e.what());
      return 1;
    }
  } else {
    fleet = sim::FleetSimulator(cfg).generate_all();
  }

  const double threshold = std::strtod(args.get("threshold", "0.9").c_str(), nullptr);
  const auto shards = static_cast<std::size_t>(args.get_long("shards", 8));
  core::FleetMonitor monitor(model, threshold, shards);
  monitor.set_degraded(degraded);

  // Optional per-replay-day metric stream: one JSON line per changed
  // sample, diffed by a manually ticked Snapshotter (the replay day is the
  // service's clock, so cadence 0 + force gives one capture per day).
  const std::string stream_path = args.get("metrics-stream", "");
  std::ofstream stream_out;
  std::optional<obs::Snapshotter> snapshotter;
  if (!stream_path.empty()) {
    stream_out.open(stream_path);
    if (!stream_out) {
      std::fprintf(stderr, "cannot write %s\n", stream_path.c_str());
      return 1;
    }
    stream_out.precision(17);
    snapshotter.emplace(obs::MetricsRegistry::global(), std::chrono::milliseconds(0));
  }

  // Optional chaos: corrupt the replay stream with a seeded injector so the
  // sanitizer's repairs/quarantines show up in the final report.
  const long chaos_pct = args.get_long("chaos", 0);
  robustness::FaultInjector injector(
      cfg.seed ^ 0x9e3779b97f4a7c15ull,
      robustness::FaultRates::uniform(static_cast<double>(chaos_pct) / 100.0));

  // Bounded reload-with-backoff while degraded, measured in replay days
  // (the replay clock is the service's wall clock).
  constexpr std::int32_t kMaxBackoffDays = 64;
  std::int32_t backoff_days = 1;

  // Replay the fleet as the live stream a data-center operator would feed
  // the service: one batch per calendar day, all drives reporting that day.
  std::int32_t first_day = 0;
  std::int32_t last_day = 0;
  for (const auto& d : fleet.drives) {
    if (d.records.empty()) continue;
    first_day = std::min(first_day, d.records.front().day);
    last_day = std::max(last_day, d.records.back().day);
  }
  std::int32_t next_retry_day = first_day + backoff_days;
  std::vector<std::size_t> cursor(fleet.drives.size(), 0);
  const bool sequential = args.flag("sequential");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<core::FleetObservation> day_batch;
  for (std::int32_t day = first_day; day <= last_day; ++day) {
    if (degraded && day >= next_retry_day) {
      if (auto reloaded = try_load_model(model_path)) {
        std::printf("serve: model reload succeeded on day %d — leaving degraded mode\n",
                    day);
        model = std::move(reloaded);
        monitor.set_model(model);
        degraded = false;
        monitor.set_degraded(false);
      } else {
        backoff_days = std::min(backoff_days * 2, kMaxBackoffDays);
        next_retry_day = day + backoff_days;
      }
    }
    day_batch.clear();
    for (std::size_t d = 0; d < fleet.drives.size(); ++d) {
      const auto& drive = fleet.drives[d];
      if (cursor[d] >= drive.records.size() || drive.records[cursor[d]].day != day)
        continue;
      day_batch.push_back({drive.model, drive.drive_index, drive.deploy_day,
                           drive.records[cursor[d]]});
      ++cursor[d];
    }
    if (day_batch.empty()) continue;
    if (chaos_pct > 0) {
      const auto corrupted = injector.corrupt(day_batch);
      day_batch = corrupted.observations;
      if (day_batch.empty()) continue;
    }
    if (sequential) {
      for (const auto& obs : day_batch)
        (void)monitor.observe(obs.drive_model, obs.drive_index, obs.deploy_day,
                              obs.record);
    } else {
      (void)monitor.observe_batch(day_batch);
    }
    // Retire drives whose history ended (their slot was swapped out).
    for (std::size_t d = 0; d < fleet.drives.size(); ++d) {
      const auto& drive = fleet.drives[d];
      if (cursor[d] == drive.records.size() && !drive.records.empty() &&
          drive.records.back().day == day)
        monitor.retire(drive.model, drive.drive_index);
    }
    if (snapshotter) {
      if (auto deltas = snapshotter->tick(obs::Snapshotter::Clock::now(), true)) {
        for (const auto& d : *deltas) {
          if (d.delta == 0.0) continue;
          stream_out << "{\"day\":" << day << ",\"delta\":" << d.delta
                     << ",\"sample\":" << obs::to_json(d.sample) << "}\n";
        }
      }
    }
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto snapshot = monitor.metrics();
  std::printf("replayed days %d..%d in %.1fs (%.0f records/s, %s path%s)\n", first_day,
              last_day, secs, static_cast<double>(snapshot.records_scored) / secs,
              sequential ? "sequential" : "batched",
              chaos_pct > 0 ? ", chaos on" : "");
  std::fputs(snapshot.to_text().c_str(), stdout);
  if (!stream_path.empty())
    std::printf("streamed per-day metric deltas to %s\n", stream_path.c_str());
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !write_metrics_out(metrics_path)) return 1;
  return 0;
}

/// SIGTERM/SIGINT flag for the daemon's graceful drain.  sig_atomic_t and
/// a lock-free loop check are all a signal handler may touch.
volatile std::sig_atomic_t g_daemon_stop = 0;

extern "C" void daemon_signal_handler(int) { g_daemon_stop = 1; }

int cmd_daemon(const Args& args) {
  const std::string wal_dir = args.get("wal-dir", "");
  if (wal_dir.empty()) return usage();
  {
    // Best-effort: a dir we cannot create degrades the WAL, not the run.
    std::error_code ec;
    std::filesystem::create_directories(wal_dir, ec);
  }

  daemon::DaemonConfig cfg;
  cfg.wal_dir = wal_dir;
  cfg.shards = static_cast<std::size_t>(args.get_long("shards", 4));
  cfg.ring_capacity = static_cast<std::size_t>(args.get_long("ring", 1024));
  cfg.threshold = std::strtod(args.get("threshold", "0.9").c_str(), nullptr);
  const std::string bp = args.get("backpressure", "block");
  if (bp == "shed") {
    cfg.backpressure = daemon::Backpressure::kShed;
  } else if (bp != "block") {
    std::fprintf(stderr, "daemon: --backpressure must be 'block' or 'shed'\n");
    return 2;
  }
  const std::string fsync = args.get("fsync", "every");
  if (fsync == "never") {
    cfg.fsync = daemon::FsyncPolicy::kNever;
  } else if (fsync != "every") {
    std::fprintf(stderr, "daemon: --fsync must be 'every' or 'never'\n");
    return 2;
  }
  cfg.wal_rotate_bytes =
      static_cast<std::uint64_t>(args.get_long("wal-rotate", 0));

  const std::string model_path = args.get("model-file", "");
  std::shared_ptr<const ml::Classifier> model;
  if (!model_path.empty()) model = try_load_model(model_path);
  if (model == nullptr)
    std::fprintf(stderr, "daemon: DEGRADED — ingesting and WAL-ing without scores\n");

  // --online: attach the online-learning loop (src/online) as the daemon's
  // batch observer.  Needs a scoring champion (shadow AUC is meaningless
  // without champion scores) and WAL rotation (the retrainer reads the
  // store compacted from SEALED segments only).
  const bool online = args.flag("online");
  std::unique_ptr<online::OnlineLearner> learner;
  if (online) {
    if (model == nullptr) {
      std::fprintf(stderr, "daemon: --online requires a loadable --model-file\n");
      return 2;
    }
    if (cfg.wal_rotate_bytes == 0) cfg.wal_rotate_bytes = 64 * 1024;
    online::OnlineConfig ocfg;
    ocfg.wal_dir = wal_dir;
    ocfg.store_dir = args.get("store-dir", wal_dir + "/store");
    ocfg.model_path = args.get("promote-out", wal_dir + "/champion.bin");
    ocfg.drift.psi_alert = std::strtod(args.get("drift-psi", "0.25").c_str(), nullptr);
    ocfg.drift.ks_alert = std::strtod(args.get("drift-ks", "0.35").c_str(), nullptr);
    ocfg.drift.min_window_rows =
        static_cast<std::uint64_t>(args.get_long("drift-min-rows", 512));
    ocfg.arena.lookahead_days =
        static_cast<int>(args.get_long("online-lookahead", 7));
    ocfg.arena.min_samples =
        static_cast<std::size_t>(args.get_long("online-min-samples", 256));
    ocfg.arena.min_positives =
        static_cast<std::size_t>(args.get_long("online-min-positives", 8));
    ocfg.arena.promote_margin =
        std::strtod(args.get("promote-margin", "0.01").c_str(), nullptr);
    ocfg.retrainer.lookahead_days = ocfg.arena.lookahead_days;
    ocfg.retrainer.negative_keep_prob =
        std::strtod(args.get("retrain-neg-keep", "0.1").c_str(), nullptr);
    ocfg.retrain_on_alert_only = !args.flag("retrain-always");
    learner = std::make_unique<online::OnlineLearner>(nullptr, std::move(ocfg));
    cfg.batch_observer = learner.get();
  }

  daemon::TelemetryDaemon daemon(model, cfg);
  if (learner != nullptr) learner->attach(&daemon);
  daemon.start();  // replays any WAL left in --wal-dir
  const daemon::DaemonStats after_recovery = daemon.stats();
  if (after_recovery.recovery.segments_replayed > 0 ||
      after_recovery.recovery.truncated_bytes > 0)
    std::printf(
        "recovered %llu segments (%llu records, %llu retires), skipped %llu "
        "duplicates, truncated %llu torn bytes\n",
        static_cast<unsigned long long>(after_recovery.recovery.segments_replayed),
        static_cast<unsigned long long>(after_recovery.recovery.records_replayed),
        static_cast<unsigned long long>(after_recovery.recovery.retires_replayed),
        static_cast<unsigned long long>(after_recovery.recovery.duplicates_skipped),
        static_cast<unsigned long long>(after_recovery.recovery.truncated_bytes));

  if (args.flag("recover-only")) {
    daemon.stop();
    const std::uint64_t digest = daemon.state_digest();
    std::printf("recovered state: %zu drives tracked, digest %016llx\n",
                after_recovery.drives_tracked,
                static_cast<unsigned long long>(digest));
    const std::string digest_path = args.get("state-digest-out", "");
    if (!digest_path.empty()) {
      std::ofstream out(digest_path);
      out << std::hex << digest << "\n";
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", digest_path.c_str());
        return 1;
      }
    }
    return 0;
  }

  // Build the stream: one observation per drive-day, day-ordered, with
  // optional seeded pre-corruption (single-threaded so the fault sequence
  // is reproducible regardless of --producers).
  sim::FleetConfig fleet_cfg = config_from(args);
  fleet_cfg.drives_per_model = static_cast<std::uint32_t>(args.get_long("drives", 100));
  trace::FleetTrace fleet;
  const std::string fleet_path = args.get("fleet", "");
  if (!fleet_path.empty()) {
    try {
      std::ifstream in(fleet_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open " + fleet_path);
      fleet = trace::read_binary(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "daemon: %s\n", e.what());
      return 1;
    }
  } else if (const long drift_day = args.get_long("drift-day", -1); drift_day >= 0) {
    // Drifting-regime fleet: a post-drift cohort with shifted workload,
    // error, and hazard characteristics (sim/drifting_fleet.hpp) — the
    // drift-gate scenario for --online.
    sim::DriftingFleetConfig dcfg;
    dcfg.base = fleet_cfg;
    dcfg.drift.drift_day = static_cast<std::int32_t>(drift_day);
    dcfg.drift.drifted_fraction =
        std::strtod(args.get("drift-frac", "0.4").c_str(), nullptr);
    dcfg.drift.hazard_mult = std::strtod(
        args.get("drift-hazard", std::to_string(dcfg.drift.hazard_mult)).c_str(),
        nullptr);
    dcfg.drift.error_rate_mult = std::strtod(
        args.get("drift-errors", std::to_string(dcfg.drift.error_rate_mult)).c_str(),
        nullptr);
    dcfg.drift.bad_block_mult = std::strtod(
        args.get("drift-bad-blocks", std::to_string(dcfg.drift.bad_block_mult))
            .c_str(),
        nullptr);
    fleet = sim::DriftingFleetSimulator(dcfg).generate_all();
  } else {
    fleet = sim::FleetSimulator(fleet_cfg).generate_all();
  }
  std::vector<core::FleetObservation> stream;
  for (const auto& d : fleet.drives)
    for (const auto& r : d.records)
      stream.push_back({d.model, d.drive_index, d.deploy_day, r});
  std::stable_sort(stream.begin(), stream.end(),
                   [](const core::FleetObservation& a, const core::FleetObservation& b) {
                     return a.record.day < b.record.day;
                   });
  const long chaos_pct = args.get_long("chaos", 0);
  if (chaos_pct > 0) {
    robustness::FaultInjector injector(
        fleet_cfg.seed ^ 0x9e3779b97f4a7c15ull,
        robustness::FaultRates::uniform(static_cast<double>(chaos_pct) / 100.0));
    stream = injector.corrupt(stream).observations;
  }

  std::signal(SIGTERM, daemon_signal_handler);
  std::signal(SIGINT, daemon_signal_handler);

  const auto t0 = std::chrono::steady_clock::now();
  if (online) {
    // Day-paced ingest: push one stream day, drain it through the
    // pipeline, and run the learner's control step every K stream days —
    // so drift windows, retraining, and shadow scoring interleave with
    // ingest exactly as they would against a real-time fleet, just with
    // stream days standing in for wall-clock days.
    //
    // Retirements are routed to retire() after the drive's last record:
    // the compactor turns kRetires into SwapEvents, which is what gives
    // the retrainer its positive labels.  A drive retires when its stream
    // carries a dead-flagged limbo record, or when the trace shows a
    // terminal swap (last swap after the last record — the drive was
    // replaced and never re-entered).  Mid-life swaps with repair
    // re-entry are not routed: retire() is terminal in the health
    // tracker, and a retire pinned at the post-repair tail would mislabel
    // the early failure anyway.
    std::unordered_map<std::uint64_t, std::size_t> last_index_of_retired;
    for (const auto& d : fleet.drives) {
      const bool dead_flagged =
          std::any_of(d.records.begin(), d.records.end(),
                      [](const trace::DailyRecord& r) { return r.dead; });
      const bool terminal_swap = !d.swaps.empty() && !d.records.empty() &&
                                 d.swaps.back().day > d.records.back().day;
      if (dead_flagged || terminal_swap) last_index_of_retired[d.uid()] = 0;
    }
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto it = last_index_of_retired.find(stream[i].uid());
      if (it != last_index_of_retired.end()) it->second = i;  // last record wins
    }
    const auto drained = [&] {
      const daemon::DaemonStats s = daemon.stats();
      return s.scored + s.quarantined + s.duplicates_dropped + s.shed >= s.ingested;
    };
    const long step_days = std::max(1L, args.get_long("online-step-days", 15));
    std::int64_t last_step_day = std::numeric_limits<std::int64_t>::min() / 2;
    std::size_t i = 0;
    while (i < stream.size() && g_daemon_stop == 0) {
      const std::int32_t day = stream[i].record.day;
      for (; i < stream.size() && stream[i].record.day == day; ++i) {
        (void)daemon.push(stream[i]);
        const auto it = last_index_of_retired.find(stream[i].uid());
        if (it != last_index_of_retired.end() && it->second == i)
          daemon.retire(stream[i].drive_model, stream[i].drive_index);
      }
      while (!drained()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (day - last_step_day >= step_days) {
        const online::StepReport report = learner->step();
        last_step_day = day;
        std::printf(
            "online step day %d: drift psi %.3f ks %.3f%s, window %llu rows%s%s%s\n",
            day, report.drift.max_psi, report.drift.max_ks,
            report.drift.alert ? " ALERT" : "",
            static_cast<unsigned long long>(report.drift.window_rows),
            report.retrained ? ", retrained" : "",
            report.verdict.enough_data ? "" : " (gate: warming)",
            report.promoted ? ", PROMOTED" : "");
      }
    }
    daemon.stop();  // graceful drain: rings emptied, WALs fsynced
  } else {
    // Producers partition the stream BY DRIVE (uid mod producers) so each
    // drive's records are pushed in day order by exactly one thread.
    const auto producers = std::max<std::size_t>(
        1, static_cast<std::size_t>(args.get_long("producers", 2)));
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (const core::FleetObservation& obs : stream) {
          if (g_daemon_stop != 0) return;
          if (static_cast<std::size_t>(obs.uid() % producers) != p) continue;
          (void)daemon.push(obs);
        }
      });
    }
    for (auto& t : threads) t.join();
    daemon.stop();  // graceful drain: rings emptied, WALs fsynced
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const daemon::DaemonStats stats = daemon.stats();
  std::printf(
      "%s after %.1fs: ingested %llu (%.0f rows/s), shed %llu, scored %llu, "
      "alerts %llu, quarantined %llu, wal segments %llu (%llu bytes)%s%s\n",
      g_daemon_stop != 0 ? "drained on signal" : "stream complete", secs,
      static_cast<unsigned long long>(stats.ingested),
      static_cast<double>(stats.ingested) / std::max(secs, 1e-9),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.scored),
      static_cast<unsigned long long>(stats.alerts),
      static_cast<unsigned long long>(stats.quarantined),
      static_cast<unsigned long long>(stats.segments_appended),
      static_cast<unsigned long long>(stats.wal_bytes),
      stats.degraded ? ", DEGRADED (no model)" : "",
      stats.wal_degraded ? ", WAL-DEGRADED" : "");
  std::printf("health: %llu healthy, %llu ramping, %llu alert, %llu swapped "
              "(%zu drives tracked)\n",
              static_cast<unsigned long long>(stats.health_counts[0]),
              static_cast<unsigned long long>(stats.health_counts[1]),
              static_cast<unsigned long long>(stats.health_counts[2]),
              static_cast<unsigned long long>(stats.health_counts[3]),
              stats.drives_tracked);
  if (online) {
    std::printf("online: %llu steps, %zu promotions\n",
                static_cast<unsigned long long>(learner->steps_run()),
                learner->promotions().size());
    for (const auto& p : learner->promotions())
      std::printf("promotion: challenger=%s champion_auc=%.4f "
                  "challenger_auc=%.4f matured=%zu day=%d\n",
                  p.challenger.c_str(), p.champion_auc, p.challenger_auc,
                  p.matured_rows, p.watermark_day);
  }
  const std::uint64_t digest = daemon.state_digest();
  std::printf("state digest: %016llx\n", static_cast<unsigned long long>(digest));
  const std::string digest_path = args.get("state-digest-out", "");
  if (!digest_path.empty()) {
    std::ofstream out(digest_path);
    out << std::hex << digest << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", digest_path.c_str());
      return 1;
    }
  }
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !write_metrics_out(metrics_path)) return 1;
  return 0;
}

/// Sketch one fleet for the drift report: a sharded store directory
/// (manifest.ssdm) or a single columnar .ssdf2 file.
std::optional<online::FeatureSketches> sketch_path(const std::string& path) {
  try {
    if (std::filesystem::is_directory(path))
      return online::sketch_fleet(store::ShardedFleetView::open(path));
    return online::sketch_fleet(store::ColumnarFleetView::open(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drift: cannot sketch %s: %s\n", path.c_str(), e.what());
    return std::nullopt;
  }
}

/// Offline shard-vs-shard drift report (online/drift.hpp): per-column PSI
/// and binned KS between a reference fleet and a current one.  Exit 0 when
/// quiet, 3 when drift exceeds the thresholds — scriptable as a CI gate.
int cmd_drift(const Args& args) {
  const std::string ref_path = args.get("reference", "");
  const std::string cur_path = args.get("current", "");
  if (ref_path.empty() || cur_path.empty()) return usage();
  const auto reference = sketch_path(ref_path);
  const auto current = sketch_path(cur_path);
  if (!reference || !current) return 1;

  online::DriftConfig config;
  config.psi_alert = std::strtod(args.get("psi", "0.25").c_str(), nullptr);
  config.ks_alert = std::strtod(args.get("ks", "0.35").c_str(), nullptr);
  config.min_window_rows = static_cast<std::uint64_t>(args.get_long("min-rows", 1));
  const online::DriftReport report =
      online::compare_fleets(*reference, *current, config);

  io::TextTable table("drift: reference vs current, per zone column");
  table.set_header({"column", "psi", "ks", "status"});
  for (std::size_t c = 0; c < store::kNumZoneColumns; ++c) {
    const online::DriftStat& stat = report.columns[c];
    const bool hot = stat.psi >= config.psi_alert || stat.ks >= config.ks_alert;
    table.add_row({online::zone_column_name(static_cast<store::ZoneColumn>(c)),
                   io::TextTable::num(stat.psi), io::TextTable::num(stat.ks),
                   hot ? "DRIFT" : "ok"});
  }
  table.print(std::cout);
  std::printf("reference %llu rows, current %llu rows; max psi %.4f (%s), "
              "max ks %.4f -> %s\n",
              static_cast<unsigned long long>(report.reference_rows),
              static_cast<unsigned long long>(report.window_rows), report.max_psi,
              online::zone_column_name(
                  static_cast<store::ZoneColumn>(report.worst_column))
                  .c_str(),
              report.max_ks, report.alert ? "DRIFT" : "stable");
  return report.alert ? 3 : 0;
}

/// Built-in end-to-end smoke that exercises every instrumented layer —
/// simulator, trace I/O, training (CV + forest), thread pool, monitor,
/// sanitizer (via chaos) — then prints the Prometheus exposition.  CI's
/// metrics-lint step validates this output (scripts/metrics_lint.py).
int cmd_metrics(const Args& args) {
  sim::FleetConfig cfg = config_from(args);
  cfg.drives_per_model = static_cast<std::uint32_t>(args.get_long("drives", 30));
  cfg.keep_ground_truth = true;
  const sim::FleetSimulator sim_fleet(cfg);

  // Trace I/O byte counters: binary round-trip through a string stream.
  const trace::FleetTrace fleet = sim_fleet.generate_all();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_binary(buffer, fleet);
  buffer.seekg(0);
  (void)trace::read_binary(buffer);

  // Training metrics: a small cross-validated forest (cv.fold spans,
  // forest tree counters, thread-pool task metrics).
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 1;
  opts.negative_keep_prob = 0.05;
  const ml::Dataset data = core::build_dataset(sim_fleet, opts);
  const auto model = ml::make_model(ml::ModelKind::kRandomForest);
  (void)core::evaluate_auc(*model, data);

  // Monitor + sanitizer metrics: replay the fleet with chaos so repairs
  // and quarantines occur.
  auto scorer = ml::make_model(ml::ModelKind::kThresholdBaseline);
  scorer->fit(ml::downsample_negatives(data, 1.0, cfg.seed));
  core::FleetMonitor monitor(std::shared_ptr<const ml::Classifier>(std::move(scorer)),
                             0.9, 4);
  robustness::FaultInjector injector(cfg.seed ^ 0x9e3779b97f4a7c15ull,
                                     robustness::FaultRates::uniform(0.10));
  std::vector<core::FleetObservation> batch;
  for (const auto& d : fleet.drives)
    for (const auto& r : d.records)
      batch.push_back({d.model, d.drive_index, d.deploy_day, r});
  std::stable_sort(batch.begin(), batch.end(),
                   [](const core::FleetObservation& a, const core::FleetObservation& b) {
                     return a.record.day < b.record.day;
                   });
  const auto corrupted = injector.corrupt(batch);
  (void)monitor.observe_batch(corrupted.observations);

  obs::TraceCollector::global().publish(obs::MetricsRegistry::global());
  const obs::RegistrySnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    obs::write_prometheus(std::cout, snapshot);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::write_prometheus(out, snapshot);
  std::fprintf(stderr, "wrote %s (%zu samples)\n", out_path.c_str(),
               snapshot.samples.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv, 2);
  // Cap worker threads before the first pool use (beats SSDFAIL_THREADS).
  // Results are identical at any thread count; only wall time changes.
  const long threads = args.get_long("threads", 0);
  if (threads > 0)
    parallel::set_default_thread_count(static_cast<unsigned>(threads));
  if (command == "simulate") return cmd_simulate(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "convert") return cmd_convert(args);
  if (command == "compact") return cmd_compact(args);
  if (command == "benchmark") return cmd_benchmark(args);
  if (command == "transfer") return cmd_transfer(args);
  if (command == "train") return cmd_train(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "daemon") return cmd_daemon(args);
  if (command == "drift") return cmd_drift(args);
  if (command == "metrics") return cmd_metrics(args);
  return usage();
}
