// Spare-drive provisioning: size a spare pool from the failure and repair
// characteristics the library measures (Tables 3/5, Figs 4/6).
//
// A data center holding S spares per 1000 drives replaces each swapped
// drive from the pool; repaired drives eventually return (about half never
// do).  We replay the fleet's derived swap/re-entry events day by day and
// report the pool occupancy distribution for several pool sizes — the
// operational question the paper's repair-time analysis informs.
//
//   ./examples/spare_provisioning

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/failure_timeline.hpp"
#include "io/table.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/streaming.hpp"

int main() {
  using namespace ssdfail;

  sim::FleetConfig config;
  config.drives_per_model = 1200;
  config.seed = 7;
  const sim::FleetSimulator fleet(config);

  // Collect every (swap -> optional re-entry) event from derived timelines.
  struct Event {
    std::int32_t day;
    int delta;  // +1 spare consumed (swap), -1 spare restocked (re-entry)
  };
  std::vector<Event> events;
  std::uint64_t swaps = 0;
  for (std::size_t i = 0; i < fleet.drive_count(); ++i) {
    const auto drive = fleet.simulate(i);
    const auto timeline = core::derive_timeline(drive);
    for (const auto& repair : timeline.repairs) {
      events.push_back({repair.swap_day, +1});
      ++swaps;
      if (repair.reentry_day) events.push_back({*repair.reentry_day, -1});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.day < b.day; });
  std::printf("fleet of %zu drives produced %llu swaps over %d days\n",
              fleet.drive_count(), static_cast<unsigned long long>(swaps),
              config.window_days);

  // Replay: spares_in_use(t) = swaps so far - returns so far.  The pool
  // must cover the running maximum; smaller pools stock out.
  std::vector<int> in_use_by_day(config.window_days, 0);
  int in_use = 0;
  std::size_t e = 0;
  for (std::int32_t day = 0; day < config.window_days; ++day) {
    while (e < events.size() && events[e].day <= day) in_use += events[e++].delta;
    in_use_by_day[day] = in_use;
  }

  stats::StreamingSummary occupancy;
  for (int v : in_use_by_day) occupancy.add(v);
  std::printf("spares in use: mean %.1f, peak %.0f (per %zu drives)\n\n",
              occupancy.mean(), occupancy.max(), fleet.drive_count());

  io::TextTable table("Stock-out analysis: days the pool is exhausted");
  table.set_header({"pool size per 1000 drives", "stock-out days", "share of horizon"});
  const double per_1000 = 1000.0 / static_cast<double>(fleet.drive_count());
  for (double pool_per_1000 : {10.0, 20.0, 30.0, 40.0, 60.0}) {
    const int pool = static_cast<int>(pool_per_1000 / per_1000);
    int stockout_days = 0;
    for (int v : in_use_by_day)
      if (v > pool) ++stockout_days;
    table.add_row({io::TextTable::num(pool_per_1000, 0), std::to_string(stockout_days),
                   io::TextTable::pct(static_cast<double>(stockout_days) /
                                      static_cast<double>(config.window_days)) +
                       "%"});
  }
  table.print(std::cout);
  std::printf("takeaway: because ~half of swapped drives never return (Table 5),\n"
              "spares are consumed, not borrowed — the pool must be sized against\n"
              "cumulative attrition, not just the repair pipeline's depth.\n");
  return 0;
}
