// Trace export / re-import: the path a real deployment would use.
//
// Writes a simulated fleet out as the paper's two CSV logs (daily
// performance log + swap log), reads them back with no simulator-side
// ground truth, and runs the characterization pipeline on the re-imported
// data — proving the analysis layer works from serialized observables
// alone, exactly like the authors' own workflow over Google's logs.
//
//   ./examples/trace_roundtrip_analysis [output_dir=/tmp]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/fleet_analysis.hpp"
#include "sim/fleet_simulator.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace ssdfail;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string daily_path = dir + "/ssdfail_daily_log.csv";
  const std::string swap_path = dir + "/ssdfail_swap_log.csv";

  // 1. Simulate and export (ground truth is never serialized).
  sim::FleetConfig config;
  config.drives_per_model = 250;
  config.seed = 31337;
  const trace::FleetTrace fleet = sim::FleetSimulator(config).generate_all();
  {
    std::ofstream daily(daily_path);
    std::ofstream swaps(swap_path);
    trace::write_daily_log(daily, fleet);
    trace::write_swap_log(swaps, fleet);
  }
  std::printf("exported %zu drive-day records and %zu swap events\n  %s\n  %s\n",
              fleet.total_records(), fleet.total_swaps(), daily_path.c_str(),
              swap_path.c_str());

  // 2. Re-import: this fleet knows nothing the CSV doesn't say.
  std::ifstream daily_in(daily_path);
  std::ifstream swaps_in(swap_path);
  const trace::FleetTrace imported = trace::read_fleet(daily_in, swaps_in);
  std::printf("re-imported %zu drives (%zu records)\n", imported.drives.size(),
              imported.total_records());

  // 3. Characterize the imported data.
  const core::CharacterizationSuite suite = core::characterize(imported);
  std::printf("\ncharacterization from re-imported logs:\n");
  for (trace::DriveModel m : trace::kAllModels) {
    const auto& fi = suite.failure_incidence(m);
    const auto& inc = suite.incidence(m);
    const double ue_rate =
        static_cast<double>(
            inc.error_days[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)]) /
        static_cast<double>(inc.drive_days);
    std::printf("  %s: %.1f%% drives failed; UE on %.3f%% of drive days\n",
                std::string(trace::model_name(m)).c_str(),
                100.0 * static_cast<double>(fi.drives_failed) /
                    static_cast<double>(fi.drives),
                100.0 * ue_rate);
  }
  std::printf("median non-operational period before swap: %.0f days\n",
              suite.nonop_days().quantile(0.5));
  std::printf("operational periods censored (no failure): %.1f%%\n",
              100.0 * suite.op_period_years().censored_fraction());

  // 4. Sanity: the analysis of imported data must match the in-memory one.
  const core::CharacterizationSuite reference = core::characterize(fleet);
  const auto& a = suite.failure_incidence(trace::DriveModel::MlcB);
  const auto& b = reference.failure_incidence(trace::DriveModel::MlcB);
  std::printf("\nround-trip check (MLC-B failures): imported=%llu in-memory=%llu %s\n",
              static_cast<unsigned long long>(a.failures),
              static_cast<unsigned long long>(b.failures),
              a.failures == b.failures ? "[OK]" : "[MISMATCH]");
  return a.failures == b.failures ? 0 : 1;
}
