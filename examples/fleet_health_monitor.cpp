// Fleet health monitor: the paper's motivating use case (Section 5 intro).
//
// Train a failure predictor on historical fleet data, pick an operating
// threshold under a false-alarm budget, then run it as a daily monitor
// over a *new* fleet: every morning, score yesterday's telemetry for every
// drive and emit replacement tickets.  Finally, audit how many real
// failures the policy caught and what the early-replacement cost was.
//
//   ./examples/fleet_health_monitor

#include <cstdio>
#include <map>

#include "core/dataset_builder.hpp"
#include "core/failure_timeline.hpp"
#include "core/online_monitor.hpp"
#include "core/policy.hpp"
#include "core/prediction.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;

  // --- Phase 1: train on last year's fleet. ---
  sim::FleetConfig train_config;
  train_config.drives_per_model = 800;
  train_config.seed = 1001;
  const sim::FleetSimulator train_fleet(train_config);

  core::DatasetBuildOptions options;
  options.lookahead_days = 2;  // two days' warning to migrate data
  options.negative_keep_prob = 0.02;
  const ml::Dataset history = core::build_dataset(train_fleet, options);
  std::printf("training history: %zu drive-days (%zu pre-failure)\n", history.size(),
              history.positives());

  // Threshold selection on held-out folds: at most ~2 false tickets per
  // drive-century (FPR 5e-5/day ~ 0.02/drive-year).
  const auto forest = ml::make_model(ml::ModelKind::kRandomForest);
  const core::PooledScores validation = core::pooled_cv_scores(*forest, history);
  const double threshold = core::threshold_for_fpr(validation.scores, validation.labels,
                                                   /*max_fpr=*/5e-3);
  const auto planned =
      core::evaluate_policy(validation.scores, validation.labels, threshold,
                            options.negative_keep_prob);
  std::printf("chosen threshold %.3f: expected recall %.2f, ~%.1f false tickets "
              "per drive-year\n\n",
              threshold, planned.recall, planned.false_alarms_per_drive_year);

  forest->fit(ml::downsample_negatives(history, 1.0, 99));

  // --- Phase 2: monitor a brand-new fleet day by day. ---
  sim::FleetConfig live_config;
  live_config.drives_per_model = 300;
  live_config.seed = 2002;  // different seed: genuinely unseen drives
  const sim::FleetSimulator live_fleet(live_config);

  std::uint64_t tickets = 0;
  std::uint64_t caught = 0;
  std::uint64_t missed = 0;
  std::uint64_t scored_days = 0;

  for (std::size_t i = 0; i < live_fleet.drive_count(); ++i) {
    const trace::DriveHistory drive = live_fleet.simulate(i);
    const core::DriveTimeline timeline = core::derive_timeline(drive);

    core::OnlineDriveMonitor monitor(*forest, threshold, drive.model, drive.deploy_day);
    bool ticketed = false;
    std::int32_t ticket_day = -1;
    for (const auto& rec : drive.records) {
      const core::RiskAssessment assessment = monitor.observe(rec);
      if (core::in_failed_state(timeline, rec.day)) continue;
      ++scored_days;
      if (!ticketed && assessment.alert) {
        ticketed = true;
        ticket_day = rec.day;
        ++tickets;
      }
    }
    // Audit against the derived failures: a catch means the ticket came at
    // or before the failure day (early enough to act).
    for (const auto& failure : timeline.failures) {
      if (ticketed && ticket_day <= failure.fail_day)
        ++caught;
      else
        ++missed;
      break;  // audit the first failure only; the drive left the fleet
    }
  }

  std::printf("live fleet: scored %llu drive-days across %zu drives\n",
              static_cast<unsigned long long>(scored_days), live_fleet.drive_count());
  std::printf("replacement tickets issued: %llu\n",
              static_cast<unsigned long long>(tickets));
  std::printf("failures caught in advance:  %llu\n",
              static_cast<unsigned long long>(caught));
  std::printf("failures missed:             %llu\n",
              static_cast<unsigned long long>(missed));
  if (caught + missed > 0)
    std::printf("fleet-level recall: %.2f\n",
                static_cast<double>(caught) / static_cast<double>(caught + missed));
  return 0;
}
