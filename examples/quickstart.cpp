// Quickstart: simulate a small SSD fleet, characterize its failures, train
// a failure predictor, and score a held-out drive — the whole library in
// ~80 lines.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/dataset_builder.hpp"
#include "core/fleet_analysis.hpp"
#include "core/prediction.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"

int main() {
  using namespace ssdfail;

  // 1. Simulate a fleet: 600 drives of each MLC model over six years.
  sim::FleetConfig config;
  config.drives_per_model = 600;
  config.seed = 42;
  sim::FleetSimulator fleet(config);
  std::printf("simulating %zu drives over %d days...\n", fleet.drive_count(),
              config.window_days);

  // 2. Characterize: failure incidence and repair behavior.
  const core::CharacterizationSuite suite = core::characterize(fleet);
  for (trace::DriveModel m : trace::kAllModels) {
    const auto& fi = suite.failure_incidence(m);
    std::printf("  %s: %llu/%llu drives failed at least once (%.1f%%)\n",
                std::string(trace::model_name(m)).c_str(),
                static_cast<unsigned long long>(fi.drives_failed),
                static_cast<unsigned long long>(fi.drives),
                100.0 * static_cast<double>(fi.drives_failed) /
                    static_cast<double>(fi.drives));
  }

  // 3. Build a prediction dataset: will this drive fail within 3 days?
  core::DatasetBuildOptions options;
  options.lookahead_days = 3;
  options.negative_keep_prob = 0.02;
  const ml::Dataset data = core::build_dataset(fleet, options);
  std::printf("dataset: %zu drive-days, %zu positives, %zu features\n", data.size(),
              data.positives(), data.features());

  // 4. Cross-validate a random forest with the paper's protocol
  //    (drive-partitioned folds, 1:1 training downsampling).
  const auto forest = ml::make_model(ml::ModelKind::kRandomForest);
  const auto result = core::evaluate_auc(*forest, data);
  const auto auc = result.auc();
  std::printf("random forest ROC AUC (5-fold CV): %.3f +- %.3f\n", auc.mean, auc.sd);

  // 5. Score one fresh drive's latest day the way a monitoring daemon
  //    would: extract features for its newest record and ask the model.
  const ml::Dataset train = ml::downsample_negatives(data, 1.0, 7);
  forest->fit(train);

  const trace::DriveHistory probe = fleet.simulate(/*flat_index=*/0);
  core::FeatureExtractor::State state;
  ml::Matrix row(1, core::FeatureExtractor::count());
  for (const auto& rec : probe.records) {
    core::FeatureExtractor::advance(state, rec);
    core::FeatureExtractor::extract(probe, rec, state, row.row(0));
  }
  const float risk = forest->predict_proba(row)[0];
  std::printf("drive %llu latest-day failure risk: %.3f\n",
              static_cast<unsigned long long>(probe.uid()), risk);
  return 0;
}
