file(REMOVE_RECURSE
  "CMakeFiles/test_snapshotter.dir/test_snapshotter.cpp.o"
  "CMakeFiles/test_snapshotter.dir/test_snapshotter.cpp.o.d"
  "test_snapshotter"
  "test_snapshotter.pdb"
  "test_snapshotter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
