# Empty dependencies file for test_snapshotter.
# This may be replaced when dependencies are built.
