# Empty dependencies file for test_exposition.
# This may be replaced when dependencies are built.
