file(REMOVE_RECURSE
  "CMakeFiles/test_exposition.dir/test_exposition.cpp.o"
  "CMakeFiles/test_exposition.dir/test_exposition.cpp.o.d"
  "test_exposition"
  "test_exposition.pdb"
  "test_exposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
