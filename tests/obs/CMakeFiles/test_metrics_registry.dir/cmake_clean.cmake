file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_registry.dir/test_metrics_registry.cpp.o"
  "CMakeFiles/test_metrics_registry.dir/test_metrics_registry.cpp.o.d"
  "test_metrics_registry"
  "test_metrics_registry.pdb"
  "test_metrics_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
