# Empty dependencies file for test_metrics_registry.
# This may be replaced when dependencies are built.
