# Empty dependencies file for test_trace_spans.
# This may be replaced when dependencies are built.
