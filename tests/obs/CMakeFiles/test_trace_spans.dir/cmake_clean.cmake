file(REMOVE_RECURSE
  "CMakeFiles/test_trace_spans.dir/test_trace_spans.cpp.o"
  "CMakeFiles/test_trace_spans.dir/test_trace_spans.cpp.o.d"
  "test_trace_spans"
  "test_trace_spans.pdb"
  "test_trace_spans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_spans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
