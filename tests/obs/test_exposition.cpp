#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ssdfail::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Exposition, PrometheusCounterFamily) {
  MetricsRegistry reg;
  reg.counter("requests_total", {{"shard", "0"}}, "requests served").inc(7);
  reg.counter("requests_total", {{"shard", "1"}}, "requests served").inc(2);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "# HELP requests_total requests served\n"));
  EXPECT_TRUE(contains(text, "# TYPE requests_total counter\n"));
  EXPECT_TRUE(contains(text, "requests_total{shard=\"0\"} 7\n"));
  EXPECT_TRUE(contains(text, "requests_total{shard=\"1\"} 2\n"));
  // One header block per family, not per child.
  EXPECT_EQ(text.find("# TYPE requests_total"),
            text.rfind("# TYPE requests_total"));
}

TEST(Exposition, PrometheusGauge) {
  MetricsRegistry reg;
  reg.gauge("queue_depth", {}, "tasks waiting").set(3.5);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE queue_depth gauge\n"));
  EXPECT_TRUE(contains(text, "queue_depth 3.5\n"));
}

TEST(Exposition, PrometheusHistogramIsCumulative) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("latency_us", std::vector<double>{10.0, 20.0}, {}, "per record");
  h.observe(5.0);
  h.observe(15.0, 2);
  h.observe(99.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE latency_us histogram\n"));
  EXPECT_TRUE(contains(text, "latency_us_bucket{le=\"10\"} 1\n"));
  EXPECT_TRUE(contains(text, "latency_us_bucket{le=\"20\"} 3\n"));
  EXPECT_TRUE(contains(text, "latency_us_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(text, "latency_us_count 4\n"));
  EXPECT_TRUE(contains(text, "latency_us_sum 134\n"));
}

TEST(Exposition, PrometheusHistogramKeepsExistingLabels) {
  MetricsRegistry reg;
  reg.histogram("w_us", std::vector<double>{1.0}, {{"shard", "3"}}).observe(0.5);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "w_us_bucket{shard=\"3\",le=\"1\"} 1\n"));
  EXPECT_TRUE(contains(text, "w_us_count{shard=\"3\"} 1\n"));
}

TEST(Exposition, EscapesHelpAndLabelValues) {
  MetricsRegistry reg;
  reg.counter("odd_total", {{"path", "a\\b\"c\nd"}}, "line1\nline2\\end").inc();
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "# HELP odd_total line1\\nline2\\\\end\n"));
  EXPECT_TRUE(contains(text, "odd_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"));
}

TEST(Exposition, IntegersRenderWithoutExponent) {
  MetricsRegistry reg;
  reg.counter("big_total").inc(1234567890);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_TRUE(contains(text, "big_total 1234567890\n"));
}

TEST(Exposition, JsonLinesOnePerSample) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"k", "v"}}, "help").inc(3);
  reg.gauge("b").set(1.5);
  const std::string json = to_json_lines(reg.snapshot());
  EXPECT_TRUE(contains(
      json, "{\"name\":\"a_total\",\"type\":\"counter\",\"labels\":{\"k\":\"v\"},"
            "\"value\":3}\n"));
  EXPECT_TRUE(contains(json, "{\"name\":\"b\",\"type\":\"gauge\",\"value\":1.5}\n"));
  // Exactly one newline-terminated object per sample.
  std::size_t lines = 0;
  for (char ch : json)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(Exposition, JsonHistogramBucketsCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h_us", std::vector<double>{10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  const std::string json = to_json_lines(reg.snapshot());
  EXPECT_TRUE(contains(json, "\"type\":\"histogram\""));
  EXPECT_TRUE(contains(json, "{\"le\":10,\"count\":1}"));
  EXPECT_TRUE(contains(json, "{\"le\":20,\"count\":2}"));
  EXPECT_TRUE(contains(json, "{\"le\":\"+Inf\",\"count\":2}"));
  EXPECT_TRUE(contains(json, "\"sum\":20,\"count\":2"));
}

TEST(Exposition, JsonEscapesStrings) {
  MetricsRegistry reg;
  reg.counter("e_total", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string json = to_json_lines(reg.snapshot());
  EXPECT_TRUE(contains(json, "\"k\":\"a\\\"b\\\\c\\nd\""));
}

TEST(Exposition, DeterministicAcrossInterleavedInterning) {
  // Whatever order metrics were interned in, exposition is sorted.
  MetricsRegistry a;
  a.counter("x_total").inc();
  a.gauge("m").set(2.0);
  MetricsRegistry b;
  b.gauge("m").set(2.0);
  b.counter("x_total").inc();
  EXPECT_EQ(to_prometheus(a.snapshot()), to_prometheus(b.snapshot()));
  EXPECT_EQ(to_json_lines(a.snapshot()), to_json_lines(b.snapshot()));
}

TEST(Exposition, ToJsonSingleSampleMatchesLines) {
  MetricsRegistry reg;
  reg.counter("one_total").inc(9);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(to_json(snap.samples[0]) + "\n", to_json_lines(snap));
}

}  // namespace
}  // namespace ssdfail::obs
