#include "obs/trace_span.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace ssdfail::obs {
namespace {

const SpanStats* find_site(const std::vector<SpanStats>& stats, const std::string& name) {
  for (const SpanStats& s : stats)
    if (s.name == name) return &s;
  return nullptr;
}

/// Each test works against the process-global collector; reset first so
/// earlier tests (and fixture setup) don't leak spans in.
class TraceSpans : public ::testing::Test {
 protected:
  void SetUp() override { TraceCollector::global().reset(); }
};

TEST_F(TraceSpans, InterningIsIdempotent) {
  const SiteId a = intern_site("test.site_a");
  EXPECT_EQ(intern_site("test.site_a"), a);
  EXPECT_NE(intern_site("test.site_b"), a);
  EXPECT_EQ(site_name(a), "test.site_a");
  EXPECT_EQ(site_name(0), "");
}

TEST_F(TraceSpans, NestedSpansSplitSelfTime) {
  const SiteId parent = intern_site("test.parent");
  const SiteId child = intern_site("test.child");
  {
    Span outer(parent);
    for (int i = 0; i < 3; ++i) Span inner(child);
  }
  const auto stats = TraceCollector::global().aggregate();
  const SpanStats* p = find_site(stats, "test.parent");
  const SpanStats* c = find_site(stats, "test.child");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(p->count, 1u);
  EXPECT_EQ(c->count, 3u);
  // Parent's self time excludes the children; every duration is non-negative.
  EXPECT_LE(p->self_us, p->total_us);
  EXPECT_GE(c->total_us, 0.0);
  EXPECT_GE(p->total_us, c->total_us);
}

TEST_F(TraceSpans, RecentRecordsCarryParentSite) {
  const SiteId parent = intern_site("test.ring_parent");
  const SiteId child = intern_site("test.ring_child");
  {
    Span outer(parent);
    Span inner(child);
  }
  bool found_child = false;
  for (const SpanRecord& r : TraceCollector::global().recent()) {
    if (r.site != child) continue;
    found_child = true;
    EXPECT_EQ(r.parent_site, parent);
    EXPECT_GE(r.duration_ns, r.self_ns);
  }
  EXPECT_TRUE(found_child);
}

TEST_F(TraceSpans, PublishExportsGauges) {
  const SiteId site = intern_site("test.published");
  { Span span(site); }
  MetricsRegistry reg;
  TraceCollector::global().publish(reg);
  const RegistrySnapshot snap = reg.snapshot();
  const Sample* count = snap.find("trace_span_count", {{"site", "test.published"}});
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 1.0);
  EXPECT_NE(snap.find("trace_span_total_us", {{"site", "test.published"}}), nullptr);
  EXPECT_NE(snap.find("trace_span_self_us", {{"site", "test.published"}}), nullptr);
  EXPECT_NE(snap.find("trace_span_p50_us", {{"site", "test.published"}}), nullptr);
  EXPECT_NE(snap.find("trace_span_p99_us", {{"site", "test.published"}}), nullptr);
}

TEST_F(TraceSpans, ResetDropsEverything) {
  { Span span(intern_site("test.dropped")); }
  TraceCollector::global().reset();
  EXPECT_EQ(find_site(TraceCollector::global().aggregate(), "test.dropped"), nullptr);
  EXPECT_TRUE(TraceCollector::global().recent().empty());
}

TEST_F(TraceSpans, DisabledSpansAreInert) {
  set_enabled(false);
  { Span span(intern_site("test.disabled")); }
  set_enabled(true);
  EXPECT_EQ(find_site(TraceCollector::global().aggregate(), "test.disabled"), nullptr);
}

TEST_F(TraceSpans, ContextPropagatesAcrossPoolWorkers) {
  const SiteId parent = intern_site("test.submit_site");
  const SiteId child = intern_site("test.worker_span");
  parallel::ThreadPool pool(2);
  {
    Span submit_span(parent);
    parallel::TaskGroup group(pool);
    for (int i = 0; i < 16; ++i)
      group.submit([child] { Span span(child); });
    group.wait();
  }
  std::size_t attributed = 0;
  for (const SpanRecord& r : TraceCollector::global().recent(128))
    if (r.site == child) {
      EXPECT_EQ(r.parent_site, parent) << "worker span lost its submitter context";
      ++attributed;
    }
  EXPECT_EQ(attributed, 16u);
}

TEST_F(TraceSpans, ContextPropagatesThroughNestedWaitHelping) {
  // A task submits a nested group and wait()s inside the pool: with a
  // single worker the nested tasks can only run by the waiting thread
  // *helping* — spans they open must still attribute to the nested
  // submit site, and the outer tasks to the outer site.
  const SiteId outer_site = intern_site("test.outer_submit");
  const SiteId inner_site = intern_site("test.inner_submit");
  const SiteId leaf = intern_site("test.leaf");
  parallel::ThreadPool pool(1);
  {
    Span root(outer_site);
    parallel::TaskGroup group(pool);
    group.submit([&pool, inner_site, leaf] {
      Span nested(inner_site);
      parallel::TaskGroup inner(pool);
      for (int i = 0; i < 8; ++i)
        inner.submit([leaf] { Span span(leaf); });
      inner.wait();  // single worker is *this* thread: wait() helps
    });
    group.wait();
  }
  std::size_t leaves = 0;
  for (const SpanRecord& r : TraceCollector::global().recent(128))
    if (r.site == leaf) {
      EXPECT_EQ(r.parent_site, inner_site);
      ++leaves;
    }
  EXPECT_EQ(leaves, 8u);
  const auto stats = TraceCollector::global().aggregate();
  ASSERT_NE(find_site(stats, "test.inner_submit"), nullptr);
  EXPECT_EQ(find_site(stats, "test.inner_submit")->count, 1u);
}

// TSan target (ci.yml tsan job): exposition racing live span writers and
// counter increments must be clean — each thread's buffer has its own
// mutex, aggregate() locks them briefly.
TEST_F(TraceSpans, ExpositionWhileSpansCloseIsRaceFree) {
  const SiteId site = intern_site("test.racing_span");
  MetricsRegistry reg;
  Counter& hits = reg.counter("racing_span_total");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&stop, &hits, site] {
      do {  // at least one span even if stop wins the scheduling race
        Span span(site);
        hits.inc();
      } while (!stop.load(std::memory_order_relaxed));
    });
  for (int i = 0; i < 50; ++i) {
    TraceCollector::global().publish(reg);
    const std::string text = to_prometheus(reg.snapshot());
    EXPECT_FALSE(text.empty());
    (void)TraceCollector::global().recent();
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  const SpanStats* s = find_site(TraceCollector::global().aggregate(), "test.racing_span");
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->count, 0u);
}

}  // namespace
}  // namespace ssdfail::obs
