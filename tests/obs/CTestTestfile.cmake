# CMake generated Testfile for 
# Source directory: /root/repo/tests/obs
# Build directory: /root/repo/tests/obs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/obs/test_metrics_registry[1]_include.cmake")
include("/root/repo/tests/obs/test_exposition[1]_include.cmake")
include("/root/repo/tests/obs/test_trace_spans[1]_include.cmake")
include("/root/repo/tests/obs/test_snapshotter[1]_include.cmake")
