#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ssdfail::obs {
namespace {

TEST(MetricsRegistry, CounterIncrementsAndSums) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistry, InterningIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits_total", {{"shard", "0"}});
  Counter& b = reg.counter("hits_total", {{"shard", "0"}});
  Counter& other = reg.counter("hits_total", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitChildren) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.counter("x_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("volume_total");
  EXPECT_THROW((void)reg.gauge("volume_total"), std::invalid_argument);
  const std::vector<double> bounds{1.0, 2.0};
  EXPECT_THROW((void)reg.histogram("volume_total", bounds), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBucketLayoutMismatchThrows) {
  MetricsRegistry reg;
  const std::vector<double> bounds{1.0, 2.0};
  (void)reg.histogram("latency_us", bounds);
  const std::vector<double> other{1.0, 3.0};
  EXPECT_THROW((void)reg.histogram("latency_us", other), std::invalid_argument);
  EXPECT_NO_THROW((void)reg.histogram("latency_us", bounds, {{"shard", "1"}}));
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(5.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsRegistry, HistogramBucketsAndInfOverflow) {
  MetricsRegistry reg;
  const std::vector<double> bounds{10.0, 20.0, 30.0};
  Histogram& h = reg.histogram("size_bytes", bounds);
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 finite + implicit +Inf
  h.observe(10.0);  // le semantics: 10 <= bound 10 lands in bucket 0
  h.observe(15.0);  // first bound >= 15 is 20: bucket 1
  h.observe(1e9);   // overflow -> +Inf bucket
  h.observe(25.0, 3);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 3u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 15.0 + 1e9 + 3 * 25.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(2), 30.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(MetricsRegistry, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry reg;
  reg.counter("zeta_total").inc(3);
  reg.counter("alpha_total", {{"shard", "1"}}).inc();
  reg.counter("alpha_total", {{"shard", "0"}}).inc(2);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].key(), "alpha_total{shard=\"0\"}");
  EXPECT_EQ(snap.samples[1].key(), "alpha_total{shard=\"1\"}");
  EXPECT_EQ(snap.samples[2].key(), "zeta_total");
  EXPECT_DOUBLE_EQ(snap.samples[2].value, 3.0);
  const Sample* found = snap.find("alpha_total", {{"shard", "1"}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value, 1.0);
  EXPECT_EQ(snap.find("missing_total"), nullptr);
}

TEST(MetricsRegistry, MetricCountCountsChildren) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.metric_count(), 0u);
  (void)reg.counter("a_total");
  (void)reg.counter("a_total", {{"k", "v"}});
  (void)reg.gauge("b");
  EXPECT_EQ(reg.metric_count(), 3u);
}

TEST(MetricsRegistry, DisabledGateStopsWrites) {
  MetricsRegistry reg;
  Counter& c = reg.counter("gated_total");
  Gauge& g = reg.gauge("gated");
  const std::vector<double> bounds{1.0};
  Histogram& h = reg.histogram("gated_us", bounds);
  c.inc();
  set_enabled(false);
  c.inc(100);
  g.set(9.0);
  h.observe(0.5);
  set_enabled(true);
  EXPECT_EQ(c.value(), 1u);  // reads still work, writes were dropped
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total_count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistry, ValidMetricNames) {
  EXPECT_TRUE(valid_metric_name("monitor_records_scored_total"));
  EXPECT_TRUE(valid_metric_name("_private"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(valid_metric_name("has-dash"));
  EXPECT_FALSE(valid_metric_name("has space"));
}

TEST(MetricsRegistry, EqualWidthBoundsLayout) {
  const std::vector<double> bounds = equal_width_bounds(0.0, 2000.0, 40);
  ASSERT_EQ(bounds.size(), 40u);
  EXPECT_DOUBLE_EQ(bounds.front(), 50.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 2000.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

// The concurrency contract: increments from many threads are never lost.
// Striped relaxed atomics must still produce the exact total.
TEST(MetricsRegistry, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("contended_total");
  Histogram& h =
      reg.histogram("contended_us", std::vector<double>{10.0, 100.0, 1000.0});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, &h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>((i + static_cast<std::uint64_t>(t)) % 2000));
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.total_count(), kThreads * kPerThread);
}

// Snapshots taken while writers run must be internally plausible (no
// torn families, counts monotone across repeated snapshots).
TEST(MetricsRegistry, SnapshotWhileWritingIsMonotone) {
  MetricsRegistry reg;
  Counter& c = reg.counter("racing_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    c.inc();  // at least one increment even if stop wins the race
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      // A pure spin loop can starve the snapshotting thread for an entire
      // scheduler quantum per iteration on a single-core machine, turning
      // this test into a timing flake under full-suite load.
      std::this_thread::yield();
    }
  });
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const RegistrySnapshot snap = reg.snapshot();
    const Sample* s = snap.find("racing_total");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->value, last);
    last = s->value;
  }
  stop.store(true);
  writer.join();
  // The loop above may finish before the writer is ever scheduled (single
  // core); after join() its increments are guaranteed visible.
  const RegistrySnapshot final_snap = reg.snapshot();
  const Sample* final_sample = final_snap.find("racing_total");
  ASSERT_NE(final_sample, nullptr);
  EXPECT_GE(final_sample->value, last);
  EXPECT_GT(final_sample->value, 0.0);
}

}  // namespace
}  // namespace ssdfail::obs
