#include "obs/snapshotter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ssdfail::obs {
namespace {

using namespace std::chrono_literals;

const SampleDelta* find_delta(const std::vector<SampleDelta>& deltas,
                              const std::string& name) {
  for (const SampleDelta& d : deltas)
    if (d.sample.name == name) return &d;
  return nullptr;
}

TEST(Snapshotter, FirstTickCapturesEverythingFromZero) {
  MetricsRegistry reg;
  reg.counter("boot_total").inc(5);
  Snapshotter snap(reg, 1000ms);
  const auto deltas = snap.tick(Snapshotter::Clock::now());
  ASSERT_TRUE(deltas.has_value());
  const SampleDelta* d = find_delta(*deltas, "boot_total");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->delta, 5.0);
  EXPECT_DOUBLE_EQ(d->sample.value, 5.0);
}

TEST(Snapshotter, RespectsCadence) {
  MetricsRegistry reg;
  Counter& c = reg.counter("paced_total");
  Snapshotter snap(reg, 1000ms);
  const auto t0 = Snapshotter::Clock::now();
  ASSERT_TRUE(snap.tick(t0).has_value());  // first capture is free
  c.inc();
  EXPECT_FALSE(snap.tick(t0 + 10ms).has_value());  // too soon
  const auto due = snap.tick(t0 + 1001ms);
  ASSERT_TRUE(due.has_value());
  EXPECT_DOUBLE_EQ(find_delta(*due, "paced_total")->delta, 1.0);
}

TEST(Snapshotter, ForceOverridesCadence) {
  MetricsRegistry reg;
  Counter& c = reg.counter("forced_total");
  Snapshotter snap(reg, 1000ms);
  const auto t0 = Snapshotter::Clock::now();
  ASSERT_TRUE(snap.tick(t0).has_value());
  c.inc(3);
  const auto forced = snap.tick(t0 + 1ms, /*force=*/true);
  ASSERT_TRUE(forced.has_value());
  EXPECT_DOUBLE_EQ(find_delta(*forced, "forced_total")->delta, 3.0);
}

TEST(Snapshotter, DeltasAreSinceLastCaptureNotStart) {
  MetricsRegistry reg;
  Counter& c = reg.counter("steps_total");
  Snapshotter snap(reg, 0ms);
  c.inc(2);
  (void)snap.tick(Snapshotter::Clock::now(), true);
  c.inc(7);
  const auto second = snap.tick(Snapshotter::Clock::now(), true);
  ASSERT_TRUE(second.has_value());
  const SampleDelta* d = find_delta(*second, "steps_total");
  EXPECT_DOUBLE_EQ(d->delta, 7.0);
  EXPECT_DOUBLE_EQ(d->sample.value, 9.0);
}

TEST(Snapshotter, NewMetricsDeltaFromZero) {
  MetricsRegistry reg;
  Snapshotter snap(reg, 0ms);
  (void)snap.tick(Snapshotter::Clock::now(), true);
  reg.counter("late_total").inc(4);
  const auto deltas = snap.tick(Snapshotter::Clock::now(), true);
  EXPECT_DOUBLE_EQ(find_delta(*deltas, "late_total")->delta, 4.0);
}

TEST(Snapshotter, HistogramDeltaIsObservationCount) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lag_us", std::vector<double>{10.0, 20.0});
  Snapshotter snap(reg, 0ms);
  h.observe(5.0, 2);
  (void)snap.tick(Snapshotter::Clock::now(), true);
  h.observe(15.0, 3);
  const auto deltas = snap.tick(Snapshotter::Clock::now(), true);
  const SampleDelta* d = find_delta(*deltas, "lag_us");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->delta, 3.0);
  EXPECT_EQ(d->sample.count, 5u);
}

TEST(Snapshotter, LastHoldsMostRecentCapture) {
  MetricsRegistry reg;
  reg.gauge("level").set(2.5);
  Snapshotter snap(reg, 0ms);
  EXPECT_TRUE(snap.last().samples.empty());
  (void)snap.tick(Snapshotter::Clock::now(), true);
  ASSERT_EQ(snap.last().samples.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.last().samples[0].value, 2.5);
}

TEST(Snapshotter, BackgroundThreadDeliversCaptures) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bg_total");
  Snapshotter snap(reg, 1ms);
  std::atomic<int> captures{0};
  snap.start([&captures](const RegistrySnapshot&, const std::vector<SampleDelta>&) {
    captures.fetch_add(1);
  });
  c.inc();
  const auto deadline = Snapshotter::Clock::now() + 2s;
  while (captures.load() == 0 && Snapshotter::Clock::now() < deadline)
    std::this_thread::yield();
  snap.stop();
  EXPECT_GT(captures.load(), 0);
  snap.stop();  // idempotent
}

}  // namespace
}  // namespace ssdfail::obs
