#include "ml/standardizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

TEST(Standardizer, ZeroMeanUnitVariance) {
  stats::Rng rng(1);
  Matrix x(1000, 2);
  for (std::size_t r = 0; r < 1000; ++r) {
    x(r, 0) = static_cast<float>(rng.normal(50.0, 10.0));
    x(r, 1) = static_cast<float>(rng.normal(-3.0, 0.1));
  }
  Standardizer s;
  s.fit(x);
  s.transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum2 = 0.0;
    for (std::size_t r = 0; r < 1000; ++r) {
      sum += x(r, c);
      sum2 += static_cast<double>(x(r, c)) * x(r, c);
    }
    EXPECT_NEAR(sum / 1000.0, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / 1000.0, 1.0, 1e-2);
  }
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  Matrix x(10, 1, 42.0f);
  Standardizer s;
  s.fit(x);
  s.transform(x);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_FLOAT_EQ(x(r, 0), 0.0f);
}

TEST(Standardizer, TransformRowMatchesTransform) {
  Matrix x(5, 2);
  for (std::size_t r = 0; r < 5; ++r) {
    x(r, 0) = static_cast<float>(r);
    x(r, 1) = static_cast<float>(r * r);
  }
  Standardizer s;
  s.fit(x);
  Matrix copy = x;
  s.transform(copy);
  std::vector<float> row(x.row(3).begin(), x.row(3).end());
  s.transform_row(row);
  EXPECT_FLOAT_EQ(row[0], copy(3, 0));
  EXPECT_FLOAT_EQ(row[1], copy(3, 1));
}

TEST(Standardizer, FitOnEmptyThrows) {
  Standardizer s;
  Matrix empty;
  EXPECT_THROW(s.fit(empty), std::invalid_argument);
  EXPECT_FALSE(s.fitted());
}

TEST(Standardizer, TestSetUsesTrainStatistics) {
  Matrix train(2, 1);
  train(0, 0) = 0.0f;
  train(1, 0) = 2.0f;  // mean 1, sd 1
  Standardizer s;
  s.fit(train);
  Matrix test(1, 1);
  test(0, 0) = 3.0f;
  s.transform(test);
  EXPECT_FLOAT_EQ(test(0, 0), 2.0f);  // (3-1)/1
}

}  // namespace
}  // namespace ssdfail::ml
