// Compiled flat-forest engine: bit-identity with the pointer-walk path,
// the frozen NaN routing contract, the serial small-batch cutoff, and the
// Classifier wrapper / serving-model factory semantics.

#include "ml/flat_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/gradient_boosting.hpp"
#include "ml/logistic.hpp"
#include "ml/model_zoo.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Small learnable binary task (two shifted gaussian blobs).
Dataset make_task(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(rows, cols);
  d.y.resize(rows);
  d.groups.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool positive = rng.bernoulli(0.4);
    for (std::size_t c = 0; c < cols; ++c)
      d.x(r, c) = static_cast<float>(rng.normal() + (positive ? 0.8 : -0.2));
    d.y[r] = positive ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

Matrix probe_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = static_cast<float>(3.0 * rng.normal());
  return m;
}

/// A probe with NaN and +/-Inf features scattered through real data.
Matrix hostile_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m = probe_matrix(rows, cols, seed);
  stats::Rng rng(seed + 1);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const double dice = rng.uniform();
      if (dice < 0.1)
        m(r, c) = kNaN;
      else if (dice < 0.15)
        m(r, c) = kInf;
      else if (dice < 0.2)
        m(r, c) = -kInf;
    }
  return m;
}

RandomForest fitted_forest(std::size_t n_trees = 20) {
  RandomForest::Params params;
  params.n_trees = n_trees;
  RandomForest forest(params);
  forest.fit(make_task(400, 6, 1));
  return forest;
}

GradientBoosting fitted_boosting() {
  GradientBoosting::Params params;
  params.n_rounds = 40;
  GradientBoosting model(params);
  model.fit(make_task(400, 6, 2));
  return model;
}

void expect_identical(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "row " << i;
}

// Row counts straddling the traversal block (16), the serial cutoff (64),
// and the parallel chunk (256).
const std::size_t kProbeSizes[] = {1, 7, 16, 17, 63, 64, 65, 200, 300};

TEST(FlatForest, BitIdenticalToForestWalker) {
  const RandomForest forest = fitted_forest();
  const FlatForest engine = FlatForest::compile(forest);
  EXPECT_EQ(engine.kind(), FlatForest::Kind::kAverage);
  EXPECT_EQ(engine.tree_count(), forest.tree_count());
  for (const std::size_t rows : kProbeSizes) {
    const Matrix probe = probe_matrix(rows, 6, 10 + rows);
    expect_identical(engine.predict_proba(probe), forest.predict_proba(probe));
  }
}

TEST(FlatForest, BitIdenticalToBoostingWalker) {
  const GradientBoosting model = fitted_boosting();
  const FlatForest engine = FlatForest::compile(model);
  EXPECT_EQ(engine.kind(), FlatForest::Kind::kLogitSum);
  for (const std::size_t rows : kProbeSizes) {
    const Matrix probe = probe_matrix(rows, 6, 20 + rows);
    expect_identical(engine.predict_proba(probe), model.predict_proba(probe));
  }
}

TEST(FlatForest, BitIdenticalOnNanAndInfRows) {
  const RandomForest forest = fitted_forest();
  const GradientBoosting boosting = fitted_boosting();
  const FlatForest flat_forest = FlatForest::compile(forest);
  const FlatForest flat_boosting = FlatForest::compile(boosting);
  for (const std::size_t rows : {1u, 16u, 100u}) {
    const Matrix probe = hostile_matrix(rows, 6, 30 + rows);
    expect_identical(flat_forest.predict_proba(probe), forest.predict_proba(probe));
    expect_identical(flat_boosting.predict_proba(probe), boosting.predict_proba(probe));
    for (const float s : flat_forest.predict_proba(probe))
      EXPECT_TRUE(std::isfinite(s));  // tree outputs are leaf fractions
  }
}

TEST(FlatForest, NanRoutesRightLikePlusInfinity) {
  // The frozen contract (kNanRoutesRight): every comparison against NaN
  // fails, so a NaN feature takes the right child — the exact path an
  // always-greater feature (+Inf) takes.
  static_assert(kNanRoutesRight);
  const RandomForest forest = fitted_forest();
  const GradientBoosting boosting = fitted_boosting();
  const FlatForest flat_forest = FlatForest::compile(forest);
  const FlatForest flat_boosting = FlatForest::compile(boosting);
  const Matrix nan_row(1, 6, kNaN);
  const Matrix inf_row(1, 6, kInf);
  EXPECT_EQ(forest.predict_proba(nan_row)[0], forest.predict_proba(inf_row)[0]);
  EXPECT_EQ(flat_forest.predict_proba(nan_row)[0], flat_forest.predict_proba(inf_row)[0]);
  EXPECT_EQ(flat_forest.predict_proba(nan_row)[0], forest.predict_proba(nan_row)[0]);
  EXPECT_EQ(boosting.predict_proba(nan_row)[0], boosting.predict_proba(inf_row)[0]);
  EXPECT_EQ(flat_boosting.predict_proba(nan_row)[0],
            boosting.predict_proba(nan_row)[0]);
}

TEST(FlatForest, PredictRowMatchesBatchPath) {
  const RandomForest forest = fitted_forest();
  const FlatForest engine = FlatForest::compile(forest);
  const Matrix probe = probe_matrix(50, 6, 40);
  const auto batch = engine.predict_proba(probe);
  for (std::size_t r = 0; r < probe.rows(); ++r)
    EXPECT_EQ(engine.predict_row(probe.row(r)), batch[r]) << "row " << r;
}

TEST(FlatForest, SerialAndParallelScoresAreBitIdentical) {
  const RandomForest forest = fitted_forest();
  const FlatForest engine = FlatForest::compile(forest);
  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool8(8);
  for (const std::size_t rows : kProbeSizes) {
    const Matrix probe = probe_matrix(rows, 6, 50 + rows);
    expect_identical(engine.predict_proba(probe, pool1),
                     engine.predict_proba(probe, pool8));
  }
}

TEST(FlatForest, CompileBeforeFitThrows) {
  EXPECT_THROW((void)FlatForest::compile(RandomForest{}), std::logic_error);
  EXPECT_THROW((void)FlatForest::compile(GradientBoosting{}), std::logic_error);
  EXPECT_THROW((void)FlatForest{}.predict_proba(Matrix(1, 1)), std::logic_error);
}

TEST(FlatForest, StructuralHashIsStableAndDiscriminating) {
  const RandomForest forest = fitted_forest();
  const FlatForest a = FlatForest::compile(forest);
  const FlatForest b = FlatForest::compile(forest);
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  const FlatForest other = FlatForest::compile(fitted_forest(21));
  EXPECT_NE(a.structural_hash(), other.structural_hash());
}

// ---------------------------------------------------------------------------
// RandomForest serial small-batch cutoff (satellite: tiny batches must not
// pay pool dispatch, and the cutoff must not move any score bit).
// ---------------------------------------------------------------------------

TEST(RandomForestCutoff, SerialAndParallelPredictionsAreBitIdentical) {
  const RandomForest forest = fitted_forest();
  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool8(8);
  for (const std::size_t rows :
       {std::size_t{1}, RandomForest::kSerialPredictRows - 1,
        RandomForest::kSerialPredictRows, RandomForest::kSerialPredictRows + 1,
        std::size_t{500}}) {
    const Matrix probe = probe_matrix(rows, 6, 60 + rows);
    const auto serial = forest.predict_proba(probe, pool1);
    const auto parallel_scores = forest.predict_proba(probe, pool8);
    const auto default_pool = forest.predict_proba(probe);
    expect_identical(serial, parallel_scores);
    expect_identical(serial, default_pool);
  }
}

// ---------------------------------------------------------------------------
// Classifier wrapper + serving factory.
// ---------------------------------------------------------------------------

TEST(FlatForestClassifier, ServingWrapperScoresIdenticallyAndKeepsName) {
  auto forest = std::make_shared<RandomForest>(fitted_forest());
  FlatForestClassifier wrapper{std::shared_ptr<const Classifier>(forest)};
  EXPECT_EQ(wrapper.name(), "random_forest");
  const Matrix probe = probe_matrix(100, 6, 70);
  expect_identical(wrapper.predict_proba(probe), forest->predict_proba(probe));
  EXPECT_THROW(wrapper.fit(make_task(50, 6, 71)), std::logic_error);
}

TEST(FlatForestClassifier, TrainableWrapperFitsAndClones) {
  FlatForestClassifier wrapper(
      std::unique_ptr<Classifier>(std::make_unique<RandomForest>()));
  const Dataset train = make_task(300, 6, 80);
  wrapper.fit(train);
  const Matrix probe = probe_matrix(50, 6, 81);
  RandomForest reference;
  reference.fit(train);
  expect_identical(wrapper.predict_proba(probe), reference.predict_proba(probe));

  // clone() hands back an unfitted trainable wrapper (the CV protocol).
  auto cloned = wrapper.clone();
  EXPECT_EQ(cloned->name(), "random_forest");
  cloned->fit(train);
  expect_identical(cloned->predict_proba(probe), reference.predict_proba(probe));
}

TEST(FlatForestClassifier, RejectsNonEnsembles) {
  auto logistic = std::make_shared<LogisticRegression>();
  logistic->fit(make_task(200, 4, 90));
  EXPECT_THROW(FlatForestClassifier{std::shared_ptr<const Classifier>(logistic)},
               std::invalid_argument);
  EXPECT_THROW(
      FlatForestClassifier{
          std::unique_ptr<Classifier>(std::make_unique<LogisticRegression>())},
      std::invalid_argument);
  EXPECT_THROW(FlatForestClassifier{std::shared_ptr<const Classifier>{}},
               std::invalid_argument);
}

/// Restores the process-wide engine selection on scope exit.
struct EngineGuard {
  InferenceEngine saved = inference_engine();
  ~EngineGuard() { set_inference_engine(saved); }
};

TEST(MakeServingModel, WrapsEnsemblesOnlyUnderFlatEngine) {
  const EngineGuard guard;
  set_inference_engine(InferenceEngine::kFlat);

  auto forest = std::make_shared<RandomForest>(fitted_forest());
  const auto serving = make_serving_model(forest);
  ASSERT_NE(serving, nullptr);
  EXPECT_NE(dynamic_cast<const FlatForestClassifier*>(serving.get()), nullptr);
  // Idempotent: wrapping a wrapped model is a passthrough.
  EXPECT_EQ(make_serving_model(serving), serving);

  // Non-ensembles, unfitted ensembles, and null pass through untouched.
  auto logistic = std::make_shared<LogisticRegression>();
  logistic->fit(make_task(200, 4, 91));
  EXPECT_EQ(make_serving_model(logistic).get(), logistic.get());
  auto unfitted = std::make_shared<RandomForest>();
  EXPECT_EQ(make_serving_model(unfitted).get(), unfitted.get());
  EXPECT_EQ(make_serving_model(nullptr), nullptr);

  // Under the walker engine everything passes through.
  set_inference_engine(InferenceEngine::kWalker);
  EXPECT_EQ(make_serving_model(forest).get(), forest.get());
}

TEST(InferenceEngineConfig, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_inference_engine("flat"), InferenceEngine::kFlat);
  EXPECT_EQ(parse_inference_engine("walker"), InferenceEngine::kWalker);
  EXPECT_EQ(parse_inference_engine("quantum"), std::nullopt);
  EXPECT_EQ(inference_engine_name(InferenceEngine::kFlat), "flat");
  EXPECT_EQ(inference_engine_name(InferenceEngine::kWalker), "walker");
  const EngineGuard guard;
  set_inference_engine(InferenceEngine::kWalker);
  EXPECT_EQ(inference_engine(), InferenceEngine::kWalker);
  set_inference_engine(InferenceEngine::kFlat);
  EXPECT_EQ(inference_engine(), InferenceEngine::kFlat);
}

}  // namespace
}  // namespace ssdfail::ml
