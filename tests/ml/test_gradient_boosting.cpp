#include "ml/gradient_boosting.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ml/metrics.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

Dataset make_xor_task(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n, 3);
  d.y.resize(n);
  d.groups.resize(n);
  d.feature_names = {"x0", "x1", "noise"};
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    d.x(r, 0) = static_cast<float>(x0);
    d.x(r, 1) = static_cast<float>(x1);
    d.x(r, 2) = static_cast<float>(rng.normal());
    d.y[r] = ((x0 > 0.0) != (x1 > 0.0)) ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

Dataset make_linear_task(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n, 2);
  d.y.resize(n);
  d.groups.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.normal();
    d.x(r, 0) = static_cast<float>(x0);
    d.x(r, 1) = static_cast<float>(rng.normal());
    d.y[r] = x0 + 0.4 * rng.normal() > 0.0 ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

TEST(GradientBoosting, SolvesXor) {
  const Dataset train = make_xor_task(2000, 1);
  const Dataset test = make_xor_task(600, 2);
  GradientBoosting model;
  model.fit(train);
  EXPECT_GT(roc_auc(model.predict_proba(test.x), test.y), 0.97);
}

TEST(GradientBoosting, SolvesLinearTask) {
  const Dataset train = make_linear_task(1500, 3);
  const Dataset test = make_linear_task(600, 4);
  GradientBoosting model;
  model.fit(train);
  EXPECT_GT(roc_auc(model.predict_proba(test.x), test.y), 0.90);
}

TEST(GradientBoosting, MoreRoundsHelpUpToConvergence) {
  // Depth-2 trees: a handful of rounds cannot tile XOR's four quadrants,
  // a hundred can.
  const Dataset train = make_xor_task(1500, 5);
  const Dataset test = make_xor_task(600, 6);
  auto auc_with = [&](std::size_t rounds) {
    GradientBoosting::Params p;
    p.n_rounds = rounds;
    p.max_depth = 2;
    p.learning_rate = 0.05;
    GradientBoosting model(p);
    model.fit(train);
    return roc_auc(model.predict_proba(test.x), test.y);
  };
  EXPECT_GT(auc_with(100), auc_with(2) + 0.05);
}

TEST(GradientBoosting, DeterministicForFixedSeed) {
  const Dataset train = make_xor_task(800, 7);
  const Dataset test = make_xor_task(200, 8);
  GradientBoosting a;
  GradientBoosting b;
  a.fit(train);
  b.fit(train);
  const auto sa = a.predict_proba(test.x);
  const auto sb = b.predict_proba(test.x);
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_FLOAT_EQ(sa[i], sb[i]);
}

TEST(GradientBoosting, ScoresAreProbabilities) {
  const Dataset train = make_linear_task(500, 9);
  GradientBoosting model;
  model.fit(train);
  for (float s : model.predict_proba(train.x)) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST(GradientBoosting, PredictBeforeFitThrows) {
  GradientBoosting model;
  Matrix x(1, 3);
  EXPECT_THROW((void)model.predict_proba(x), std::logic_error);
}

TEST(GradientBoosting, CloneCarriesParams) {
  GradientBoosting::Params p;
  p.n_rounds = 17;
  GradientBoosting model(p);
  auto copy = model.clone();
  const Dataset train = make_linear_task(300, 10);
  copy->fit(train);
  EXPECT_EQ(static_cast<GradientBoosting*>(copy.get())->rounds_fitted(), 17u);
}

TEST(GradientBoosting, ImportanceConcentratesOnSignal) {
  const Dataset train = make_xor_task(3000, 11);
  GradientBoosting model;
  model.fit(train);
  const auto imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.9);
}

TEST(GradientBoosting, PriorMatchesBaseRateWithZeroRounds) {
  GradientBoosting::Params p;
  p.n_rounds = 0;
  GradientBoosting model(p);
  Dataset d = make_linear_task(1000, 12);
  model.fit(d);
  EXPECT_EQ(model.rounds_fitted(), 0u);
  Matrix x(1, 2);
  // With no trees the score is the prior log-odds: p ~ base rate.
  double base = 0.0;
  for (float y : d.y) base += y;
  base /= static_cast<double>(d.y.size());
  EXPECT_THROW((void)model.predict_proba(x), std::logic_error);
}

}  // namespace
}  // namespace ssdfail::ml
