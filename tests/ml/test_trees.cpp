#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

/// XOR-style task: label = (x0 > 0) != (x1 > 0).  Linear models cannot
/// solve this; trees must (the reason the paper cites for forests winning:
/// "they work well with discrete data and model nonlinear effects").
Dataset make_xor_task(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n, 3);
  d.y.resize(n);
  d.groups.resize(n);
  d.feature_names = {"x0", "x1", "noise"};
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    d.x(r, 0) = static_cast<float>(x0);
    d.x(r, 1) = static_cast<float>(x1);
    d.x(r, 2) = static_cast<float>(rng.normal());
    d.y[r] = ((x0 > 0.0) != (x1 > 0.0)) ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

TEST(DecisionTree, SolvesXor) {
  const Dataset train = make_xor_task(2000, 1);
  const Dataset test = make_xor_task(500, 2);
  DecisionTree::Params p;
  p.max_depth = 6;
  DecisionTree tree(p);
  tree.fit(train);
  EXPECT_GT(roc_auc(tree.predict_proba(test.x), test.y), 0.95);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  Dataset d;
  d.x = Matrix(4, 1);
  d.y = {1.0f, 1.0f, 1.0f, 1.0f};
  d.groups = {0, 1, 2, 3};
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  Matrix q(1, 1);
  EXPECT_FLOAT_EQ(tree.predict_proba(q)[0], 1.0f);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset train = make_xor_task(2000, 3);
  DecisionTree::Params p;
  p.max_depth = 1;
  DecisionTree stump(p);
  stump.fit(train);
  // A depth-1 tree has at most 3 nodes (root + 2 leaves).
  EXPECT_LE(stump.node_count(), 3u);
}

TEST(DecisionTree, MinSamplesLeafHonored) {
  const Dataset train = make_xor_task(200, 4);
  DecisionTree::Params p;
  p.min_samples_leaf = 150;  // impossible to satisfy -> no split
  DecisionTree tree(p);
  tree.fit(train);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, ImportanceConcentratesOnSignalFeatures) {
  const Dataset train = make_xor_task(3000, 5);
  DecisionTree tree;
  tree.fit(train);
  const auto& imp = tree.impurity_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0] + imp[1], 20.0 * imp[2]);
}

TEST(DecisionTree, ConstantFeaturesYieldLeaf) {
  Dataset d;
  d.x = Matrix(10, 2, 1.0f);
  d.y.assign(10, 0.0f);
  d.y[0] = 1.0f;
  d.groups.resize(10);
  std::iota(d.groups.begin(), d.groups.end(), 0);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  Matrix q(1, 2, 1.0f);
  EXPECT_NEAR(tree.predict_proba(q)[0], 0.1f, 1e-6);
}

TEST(RandomForest, SolvesXorBetterThanAStump) {
  const Dataset train = make_xor_task(2000, 6);
  const Dataset test = make_xor_task(500, 7);
  RandomForest::Params p;
  p.n_trees = 50;
  RandomForest forest(p);
  forest.fit(train);
  EXPECT_GT(roc_auc(forest.predict_proba(test.x), test.y), 0.97);
}

TEST(RandomForest, DeterministicRegardlessOfThreads) {
  const Dataset train = make_xor_task(800, 8);
  const Dataset test = make_xor_task(100, 9);
  RandomForest::Params p;
  p.n_trees = 16;
  RandomForest a(p);
  RandomForest b(p);
  a.fit(train);
  b.fit(train);
  const auto sa = a.predict_proba(test.x);
  const auto sb = b.predict_proba(test.x);
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_FLOAT_EQ(sa[i], sb[i]);
}

TEST(RandomForest, SeedChangesTrees) {
  const Dataset train = make_xor_task(800, 10);
  const Dataset test = make_xor_task(200, 11);
  RandomForest::Params pa;
  pa.n_trees = 8;
  pa.seed = 1;
  RandomForest::Params pb = pa;
  pb.seed = 2;
  RandomForest a(pa);
  RandomForest b(pb);
  a.fit(train);
  b.fit(train);
  const auto sa = a.predict_proba(test.x);
  const auto sb = b.predict_proba(test.x);
  int differing = 0;
  for (std::size_t i = 0; i < sa.size(); ++i)
    if (sa[i] != sb[i]) ++differing;
  EXPECT_GT(differing, 10);
}

TEST(RandomForest, ImportanceIsNormalized) {
  const Dataset train = make_xor_task(1500, 12);
  RandomForest::Params p;
  p.n_trees = 30;
  RandomForest forest(p);
  forest.fit(train);
  const auto imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.8);
}

TEST(RandomForest, MoreTreesReduceVariance) {
  // Spread of predictions on ambiguous points narrows with ensemble size.
  const Dataset train = make_xor_task(1000, 13);
  Matrix ambiguous(1, 3);  // the origin: perfectly ambiguous for XOR
  auto spread = [&](std::size_t n_trees, std::uint64_t seed_base) {
    std::vector<double> preds;
    for (std::uint64_t s = 0; s < 8; ++s) {
      RandomForest::Params p;
      p.n_trees = n_trees;
      p.seed = seed_base + s;
      RandomForest f(p);
      f.fit(train);
      preds.push_back(f.predict_proba(ambiguous)[0]);
    }
    const auto ms = mean_sd(preds);
    return ms.sd;
  };
  EXPECT_LT(spread(64, 100), spread(2, 200) + 1e-12);
}

}  // namespace
}  // namespace ssdfail::ml
