# CMake generated Testfile for 
# Source directory: /root/repo/tests/ml
# Build directory: /root/repo/tests/ml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/ml/test_matrix[1]_include.cmake")
include("/root/repo/tests/ml/test_metrics[1]_include.cmake")
include("/root/repo/tests/ml/test_standardizer[1]_include.cmake")
include("/root/repo/tests/ml/test_models[1]_include.cmake")
include("/root/repo/tests/ml/test_trees[1]_include.cmake")
include("/root/repo/tests/ml/test_cross_validation[1]_include.cmake")
include("/root/repo/tests/ml/test_gradient_boosting[1]_include.cmake")
include("/root/repo/tests/ml/test_metrics_extended[1]_include.cmake")
include("/root/repo/tests/ml/test_serialize[1]_include.cmake")
include("/root/repo/tests/ml/test_parallel_training[1]_include.cmake")
