#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"

namespace ssdfail::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m(1, 0) = 3.0f;
  auto row = m.row(1);
  EXPECT_FLOAT_EQ(row[0], 3.0f);
  row[1] = 4.0f;
  EXPECT_FLOAT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, PushRowGrowsAndChecksWidth) {
  Matrix m;
  const float a[] = {1.0f, 2.0f};
  m.push_row(a);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  const float b[] = {3.0f, 4.0f, 5.0f};
  EXPECT_THROW(m.push_row(b), std::invalid_argument);
}

TEST(Matrix, SelectRows) {
  Matrix m(3, 1);
  m(0, 0) = 10.0f;
  m(1, 0) = 20.0f;
  m(2, 0) = 30.0f;
  const std::size_t idx[] = {2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(s(1, 0), 10.0f);
}

TEST(Dataset, PositivesCount) {
  Dataset d;
  d.x = Matrix(4, 1);
  d.y = {0.0f, 1.0f, 1.0f, 0.0f};
  d.groups = {1, 1, 2, 2};
  EXPECT_EQ(d.positives(), 2u);
}

TEST(Dataset, SubsetPreservesAlignment) {
  Dataset d;
  d.x = Matrix(3, 1);
  d.x(0, 0) = 5.0f;
  d.x(2, 0) = 9.0f;
  d.y = {1.0f, 0.0f, 1.0f};
  d.groups = {10, 20, 30};
  d.feature_names = {"f"};
  const std::size_t idx[] = {2, 0};
  const Dataset s = d.subset(idx);
  EXPECT_FLOAT_EQ(s.x(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(s.y[0], 1.0f);
  EXPECT_EQ(s.groups[0], 30u);
  EXPECT_EQ(s.groups[1], 10u);
  EXPECT_EQ(s.feature_names.size(), 1u);
}

TEST(Dataset, ValidateCatchesMismatch) {
  Dataset d;
  d.x = Matrix(2, 1);
  d.y = {1.0f};
  d.groups = {1, 2};
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.y = {1.0f, 0.0f};
  EXPECT_NO_THROW(d.validate());
  d.feature_names = {"a", "b"};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::ml
