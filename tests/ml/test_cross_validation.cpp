#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "ml/downsample.hpp"
#include "ml/grid_search.hpp"
#include "ml/logistic.hpp"
#include "ml/model_zoo.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

Dataset make_grouped_task(std::size_t n_groups, std::size_t rows_per_group,
                          std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n_groups * rows_per_group, 2);
  d.y.resize(n_groups * rows_per_group);
  d.groups.resize(n_groups * rows_per_group);
  std::size_t r = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const double group_shift = rng.normal();
    for (std::size_t i = 0; i < rows_per_group; ++i, ++r) {
      const double x0 = rng.normal() + group_shift;
      d.x(r, 0) = static_cast<float>(x0);
      d.x(r, 1) = static_cast<float>(rng.normal());
      d.y[r] = x0 + 0.3 * rng.normal() > 0.0 ? 1.0f : 0.0f;
      d.groups[r] = g;
    }
  }
  return d;
}

TEST(GroupFold, DeterministicAndInRange) {
  for (std::uint64_t g = 0; g < 1000; ++g) {
    const std::size_t f = group_fold(g, 5, 1);
    EXPECT_LT(f, 5u);
    EXPECT_EQ(f, group_fold(g, 5, 1));
  }
}

TEST(GroupFold, RoughlyBalanced) {
  std::vector<int> counts(5, 0);
  for (std::uint64_t g = 0; g < 10000; ++g) ++counts[group_fold(g, 5, 2)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(GroupFold, SeedChangesAssignment) {
  int moved = 0;
  for (std::uint64_t g = 0; g < 1000; ++g)
    if (group_fold(g, 5, 1) != group_fold(g, 5, 999)) ++moved;
  EXPECT_GT(moved, 500);
}

TEST(GroupKFold, NoGroupSpansTrainAndTest) {
  const Dataset d = make_grouped_task(100, 8, 3);
  const auto splits = group_k_fold(d, 5, 7);
  ASSERT_EQ(splits.size(), 5u);
  for (const auto& split : splits) {
    std::set<std::uint64_t> train_groups;
    for (std::size_t i : split.train) train_groups.insert(d.groups[i]);
    for (std::size_t i : split.test)
      EXPECT_EQ(train_groups.count(d.groups[i]), 0u)
          << "drive " << d.groups[i] << " leaked across the split";
  }
}

TEST(GroupKFold, EveryRowTestedExactlyOnce) {
  const Dataset d = make_grouped_task(60, 5, 4);
  const auto splits = group_k_fold(d, 5, 8);
  std::vector<int> tested(d.size(), 0);
  for (const auto& split : splits)
    for (std::size_t i : split.test) ++tested[i];
  for (int t : tested) EXPECT_EQ(t, 1);
}

TEST(CrossValidate, ReasonableAucOnLearnableTask) {
  const Dataset d = make_grouped_task(200, 6, 5);
  LogisticRegression model;
  const CvResult result = cross_validate(model, d);
  ASSERT_EQ(result.fold_aucs.size(), 5u);
  EXPECT_EQ(result.folds_requested, 5u);
  EXPECT_EQ(result.folds_skipped, 0u);
  EXPECT_GT(result.auc().mean, 0.85);
  EXPECT_LT(result.auc().sd, 0.1);
}

TEST(CrossValidate, CountsSkippedDegenerateFolds) {
  // Force fold 0's training set to a single class via the train transform:
  // that fold must be skipped AND visibly accounted for, not silently
  // folded into a smaller k.
  const Dataset d = make_grouped_task(200, 6, 5);
  LogisticRegression model;
  CvOptions opts;
  opts.train_transform = [](const Dataset& train, std::size_t fold) {
    if (fold != 0) return train;
    std::vector<std::size_t> negatives;
    for (std::size_t i = 0; i < train.size(); ++i)
      if (train.y[i] < 0.5f) negatives.push_back(i);
    return train.subset(negatives);
  };
  const CvResult result = cross_validate(model, d, opts);
  EXPECT_EQ(result.folds_requested, 5u);
  EXPECT_EQ(result.folds_skipped, 1u);
  EXPECT_EQ(result.fold_aucs.size(), 4u);
}

TEST(CrossValidate, ThrowsWhenAllFoldsDegenerate) {
  // A single-class dataset has no valid fold anywhere; claiming a k-fold
  // result (or returning an empty one) would be a lie, so it must throw.
  Dataset d = make_grouped_task(50, 4, 13);
  std::fill(d.y.begin(), d.y.end(), 0.0f);
  LogisticRegression model;
  EXPECT_THROW((void)cross_validate(model, d), std::runtime_error);
}

TEST(CrossValidate, TransformsAreApplied) {
  const Dataset d = make_grouped_task(150, 6, 6);
  LogisticRegression model;
  CvOptions opts;
  std::atomic<int> train_calls{0};  // folds transform concurrently
  opts.train_transform = [&](const Dataset& train, std::size_t) {
    train_calls.fetch_add(1);
    return downsample_negatives(train, 1.0, 42);
  };
  const CvResult result = cross_validate(model, d, opts);
  EXPECT_EQ(train_calls.load(), 5);
  EXPECT_GT(result.auc().mean, 0.8);
}

TEST(Downsample, AchievesRequestedRatio) {
  stats::Rng rng(9);
  Dataset d;
  d.x = Matrix(5000, 1);
  d.y.resize(5000);
  d.groups.resize(5000);
  for (std::size_t i = 0; i < 5000; ++i) {
    d.y[i] = rng.bernoulli(0.02) ? 1.0f : 0.0f;
    d.groups[i] = i;
  }
  const std::size_t pos = d.positives();
  const Dataset down = downsample_negatives(d, 1.0, 1);
  EXPECT_EQ(down.positives(), pos);
  EXPECT_EQ(down.size(), 2 * pos);
  const Dataset down3 = downsample_negatives(d, 3.0, 1);
  EXPECT_EQ(down3.size(), 4 * pos);
}

TEST(Downsample, KeepsAllWhenAlreadyBalanced) {
  Dataset d;
  d.x = Matrix(4, 1);
  d.y = {1.0f, 1.0f, 0.0f, 0.0f};
  d.groups = {0, 1, 2, 3};
  const Dataset down = downsample_negatives(d, 5.0, 1);
  EXPECT_EQ(down.size(), 4u);
}

TEST(Downsample, DeterministicPerSeed) {
  const Dataset d = make_grouped_task(100, 4, 10);
  const Dataset a = downsample_negatives(d, 1.0, 7);
  const Dataset b = downsample_negatives(d, 1.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.groups[i], b.groups[i]);
}

TEST(Downsample, SamplingNoiseBarelyMovesAuc) {
  // The paper verified downsampling-induced AUC wobble is ~±0.001; with
  // our smaller data we allow a little more but it must stay small.
  const Dataset d = make_grouped_task(400, 5, 11);
  std::vector<double> aucs;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    LogisticRegression model;
    CvOptions opts;
    opts.train_transform = [seed](const Dataset& train, std::size_t fold) {
      return downsample_negatives(train, 1.0, seed * 100 + fold);
    };
    aucs.push_back(cross_validate(model, d, opts).auc().mean);
  }
  const auto ms = mean_sd(aucs);
  EXPECT_LT(ms.sd, 0.01);
}

TEST(GridSearch, PicksBestCandidate) {
  std::vector<Candidate> candidates;
  for (double l2 : {1e-6, 1e-3, 10.0})
    candidates.push_back({"l2", [l2] {
                            return std::make_unique<LogisticRegression>(
                                LogisticRegression::Params{l2, 0.5, 100});
                          }});
  const Dataset d = make_grouped_task(150, 4, 12);
  const auto result = grid_search(candidates, [&](const Classifier& m) {
    return cross_validate(m, d, {3, 5, {}, {}}).auc().mean;
  });
  EXPECT_EQ(result.scores.size(), 3u);
  // The absurdly strong regularizer (10.0) cannot win.
  EXPECT_NE(result.best_index, 2u);
}

TEST(GridSearch, EmptyThrows) {
  EXPECT_THROW((void)grid_search({}, [](const Classifier&) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::ml
