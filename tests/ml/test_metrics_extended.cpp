#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

TEST(BootstrapAucCi, CoversThePointEstimate) {
  stats::Rng rng(1);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 3000; ++i) {
    const bool pos = rng.bernoulli(0.2);
    scores.push_back(static_cast<float>((pos ? 0.4 : 0.0) + rng.uniform()));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const AucCi ci = bootstrap_auc_ci(scores, labels, 0.95, 200, 7);
  EXPECT_LE(ci.lo, ci.auc);
  EXPECT_GE(ci.hi, ci.auc);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
  EXPECT_LT(ci.hi - ci.lo, 0.1);  // 3000 samples -> narrow interval
}

TEST(BootstrapAucCi, WiderForSmallerSamples) {
  stats::Rng rng(2);
  auto make = [&](int n) {
    std::vector<float> scores;
    std::vector<float> labels;
    for (int i = 0; i < n; ++i) {
      const bool pos = rng.bernoulli(0.3);
      scores.push_back(static_cast<float>((pos ? 0.3 : 0.0) + rng.uniform()));
      labels.push_back(pos ? 1.0f : 0.0f);
    }
    const AucCi ci = bootstrap_auc_ci(scores, labels, 0.95, 150, 9);
    return ci.hi - ci.lo;
  };
  EXPECT_GT(make(100), make(5000));
}

TEST(BootstrapAucCi, DeterministicForFixedSeed) {
  const std::vector<float> scores = {0.9f, 0.7f, 0.4f, 0.2f, 0.6f, 0.1f};
  const std::vector<float> labels = {1.0f, 1.0f, 0.0f, 0.0f, 1.0f, 0.0f};
  const AucCi a = bootstrap_auc_ci(scores, labels, 0.9, 100, 3);
  const AucCi b = bootstrap_auc_ci(scores, labels, 0.9, 100, 3);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BrierScore, PerfectAndWorst) {
  const std::vector<float> labels = {1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(brier_score(std::vector<float>{1.0f, 0.0f}, labels), 0.0);
  EXPECT_DOUBLE_EQ(brier_score(std::vector<float>{0.0f, 1.0f}, labels), 1.0);
  EXPECT_DOUBLE_EQ(brier_score(std::vector<float>{0.5f, 0.5f}, labels), 0.25);
}

TEST(BrierScore, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(brier_score({}, {})));
}

TEST(CalibrationCurve, PerfectlyCalibratedScores) {
  // Scores equal to true event probabilities: event rate ~= mean score per bin.
  stats::Rng rng(4);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 200000; ++i) {
    const float p = static_cast<float>(rng.uniform());
    scores.push_back(p);
    labels.push_back(rng.bernoulli(p) ? 1.0f : 0.0f);
  }
  const auto curve = calibration_curve(scores, labels, 10);
  ASSERT_EQ(curve.size(), 10u);
  for (const auto& bin : curve) EXPECT_NEAR(bin.event_rate, bin.mean_score, 0.02);
}

TEST(CalibrationCurve, OverconfidentScoresShowUp) {
  // Predict 0.9 when the true rate is 0.5: the top bin's event rate must
  // fall well below its mean score.
  stats::Rng rng(5);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(0.9f);
    labels.push_back(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  }
  const auto curve = calibration_curve(scores, labels, 10);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].mean_score, 0.9, 1e-5);
  EXPECT_NEAR(curve[0].event_rate, 0.5, 0.03);
}

TEST(CalibrationCurve, SkipsEmptyBinsAndValidates) {
  const std::vector<float> scores = {0.05f, 0.95f};
  const std::vector<float> labels = {0.0f, 1.0f};
  const auto curve = calibration_curve(scores, labels, 10);
  EXPECT_EQ(curve.size(), 2u);
  EXPECT_THROW((void)calibration_curve(scores, labels, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::ml
