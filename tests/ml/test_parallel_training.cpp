// Determinism regression tests for the parallel training pipeline:
// training and cross-validation results must be BIT-identical at every
// thread count (reproducibility is the repo's first design goal; see
// src/parallel/thread_pool.hpp for the mechanisms).
//
// Two surfaces are pinned:
//   - the parallel candidate-split scan inside DecisionTree /
//     GradientBoosting (chunk-ordered strictly-greater merge == the serial
//     first-wins loop), and
//   - fold-level CV parallelism (each fold a pure function of
//     (data, options, fold), collected in fold order).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/downsample.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/model_zoo.hpp"
#include "ml/random_forest.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

/// Learnable grouped task with enough rows * features to cross the
/// kMinParallelSplitWork threshold at the tree root (n * 10 >= 2^15).
Dataset make_task(std::size_t n_groups, std::size_t rows_per_group,
                  std::uint64_t seed) {
  constexpr std::size_t kFeatures = 10;
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n_groups * rows_per_group, kFeatures);
  d.y.resize(n_groups * rows_per_group);
  d.groups.resize(n_groups * rows_per_group);
  std::size_t r = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const double group_shift = rng.normal();
    for (std::size_t i = 0; i < rows_per_group; ++i, ++r) {
      double signal = group_shift;
      for (std::size_t f = 0; f < kFeatures; ++f) {
        const double v = rng.normal() + (f < 2 ? group_shift : 0.0);
        d.x(r, f) = static_cast<float>(v);
        if (f < 3) signal += v;
      }
      d.y[r] = signal + 0.5 * rng.normal() > 0.0 ? 1.0f : 0.0f;
      d.groups[r] = g;
    }
  }
  return d;
}

/// Fit + score entirely inside a 1-thread pool task: every nested parallel
/// loop sees on_worker_thread() and degrades to the serial reference path.
std::vector<float> serial_fit_predict(Classifier& model, const Dataset& data) {
  parallel::ThreadPool serial(1);
  std::vector<float> scores;
  parallel::TaskGroup group(serial);
  group.submit([&] {
    model.fit(data);
    scores = model.predict_proba(data.x);
  });
  group.wait();
  return scores;
}

// NOTE: this test must run FIRST in this binary: it forces the shared pool
// to 8 workers before its one-time construction, so the parallel
// candidate-split scan is exercised even on a single-core host.
TEST(ParallelTraining, SplitScanBitIdenticalToSerial) {
  parallel::set_default_thread_count(8);
  const Dataset data = make_task(700, 6, 21);  // 4200 rows x 10 features

  {
    DecisionTree parallel_tree;
    parallel_tree.fit(data);  // current() == 8-worker shared pool
    const auto parallel_scores = parallel_tree.predict_proba(data.x);
    DecisionTree serial_tree;
    EXPECT_EQ(parallel_scores, serial_fit_predict(serial_tree, data));
  }
  {
    GradientBoosting::Params p;
    p.n_rounds = 15;
    GradientBoosting parallel_gb(p);
    parallel_gb.fit(data);
    const auto parallel_scores = parallel_gb.predict_proba(data.x);
    GradientBoosting serial_gb(p);
    EXPECT_EQ(parallel_scores, serial_fit_predict(serial_gb, data));
  }
  {
    RandomForest::Params p;
    p.n_trees = 12;
    p.max_depth = 8;
    RandomForest parallel_rf(p);
    parallel_rf.fit(data);  // trees fan out across the shared pool
    const auto parallel_scores = parallel_rf.predict_proba(data.x);
    RandomForest serial_rf(p);
    EXPECT_EQ(parallel_scores, serial_fit_predict(serial_rf, data));
  }
  parallel::set_default_thread_count(0);
}

std::vector<double> cv_fold_aucs(const Classifier& model, const Dataset& data,
                                 unsigned threads) {
  parallel::ThreadPool pool(threads);
  CvOptions options;
  options.folds = 5;
  options.seed = 7;
  options.pool = &pool;
  // The paper's protocol: balance each training fold 1:1, seeded by fold.
  options.train_transform = [](const Dataset& train, std::size_t fold) {
    return downsample_negatives(train, 1.0, 1000 + fold);
  };
  return cross_validate(model, data, options).fold_aucs;
}

TEST(ParallelTraining, CvFoldAucsBitIdenticalAcrossThreadCounts) {
  const Dataset data = make_task(300, 6, 33);

  std::vector<std::pair<std::string, std::unique_ptr<Classifier>>> models;
  {
    RandomForest::Params p;
    p.n_trees = 15;
    p.max_depth = 8;
    models.emplace_back("forest", std::make_unique<RandomForest>(p));
  }
  {
    GradientBoosting::Params p;
    p.n_rounds = 15;
    models.emplace_back("boosting", std::make_unique<GradientBoosting>(p));
  }
  models.emplace_back("logistic", make_model(ModelKind::kLogisticRegression));
  models.emplace_back("baseline", make_model(ModelKind::kThresholdBaseline));

  for (const auto& [name, model] : models) {
    const std::vector<double> reference = cv_fold_aucs(*model, data, 1);
    ASSERT_EQ(reference.size(), 5u) << name;
    for (const unsigned threads : {2u, 4u, 8u})
      EXPECT_EQ(reference, cv_fold_aucs(*model, data, threads))
          << name << " diverged at " << threads << " threads";
  }
}

TEST(ParallelTraining, CvRepeatableOnSamePool) {
  const Dataset data = make_task(150, 5, 44);
  RandomForest::Params p;
  p.n_trees = 10;
  p.max_depth = 6;
  const RandomForest model(p);
  EXPECT_EQ(cv_fold_aucs(model, data, 4), cv_fold_aucs(model, data, 4));
}

}  // namespace
}  // namespace ssdfail::ml
