#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/threshold_baseline.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

/// Noisy linearly-separable-ish task: y depends on x0 + 0.5*x1 with noise,
/// plus two distractor features.
Dataset make_linear_task(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n, 4);
  d.y.resize(n);
  d.groups.resize(n);
  d.feature_names = {"signal0", "signal1", "noise0", "noise1"};
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    d.x(r, 0) = static_cast<float>(x0);
    d.x(r, 1) = static_cast<float>(x1);
    d.x(r, 2) = static_cast<float>(rng.normal());
    d.x(r, 3) = static_cast<float>(rng.normal());
    const double logit = 2.0 * x0 + 1.0 * x1 + 0.5 * rng.normal();
    d.y[r] = logit > 0.0 ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

class ModelZooTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelZooTest, LearnsLinearTask) {
  const Dataset train = make_linear_task(1500, 11);
  const Dataset test = make_linear_task(800, 22);
  auto model = make_model(GetParam());
  model->fit(train);
  const auto scores = model->predict_proba(test.x);
  const double auc = roc_auc(scores, test.y);
  EXPECT_GT(auc, 0.85) << model->name();
}

TEST_P(ModelZooTest, ScoresAreProbabilities) {
  const Dataset train = make_linear_task(500, 33);
  auto model = make_model(GetParam());
  model->fit(train);
  const auto scores = model->predict_proba(train.x);
  ASSERT_EQ(scores.size(), train.size());
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST_P(ModelZooTest, DeterministicAcrossRefits) {
  const Dataset train = make_linear_task(400, 44);
  const Dataset test = make_linear_task(100, 55);
  auto a = make_model(GetParam());
  auto b = make_model(GetParam());
  a->fit(train);
  b->fit(train);
  const auto sa = a->predict_proba(test.x);
  const auto sb = b->predict_proba(test.x);
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_FLOAT_EQ(sa[i], sb[i]);
}

TEST_P(ModelZooTest, PredictBeforeFitThrows) {
  auto model = make_model(GetParam());
  Matrix x(1, 4);
  EXPECT_THROW((void)model->predict_proba(x), std::logic_error);
}

TEST_P(ModelZooTest, CloneIsUnfittedWithSameConfig) {
  const Dataset train = make_linear_task(300, 66);
  auto model = make_model(GetParam());
  model->fit(train);
  auto fresh = model->clone();
  EXPECT_EQ(fresh->name(), model->name());
  Matrix x(1, 4);
  EXPECT_THROW((void)fresh->predict_proba(x), std::logic_error);
  // And the clone trains identically.
  fresh->fit(train);
  const auto sa = model->predict_proba(train.x);
  const auto sb = fresh->predict_proba(train.x);
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_FLOAT_EQ(sa[i], sb[i]);
}

TEST_P(ModelZooTest, RefitForgetsOldData) {
  // Train on task A, then refit on inverted labels: predictions must flip.
  Dataset train = make_linear_task(800, 77);
  auto model = make_model(GetParam());
  model->fit(train);
  const Dataset test = make_linear_task(400, 88);
  const double auc_before = roc_auc(model->predict_proba(test.x), test.y);
  for (float& y : train.y) y = 1.0f - y;
  model->fit(train);
  const double auc_after = roc_auc(model->predict_proba(test.x), test.y);
  EXPECT_GT(auc_before, 0.8) << model->name();
  EXPECT_LT(auc_after, 0.3) << model->name();
}

TEST_P(ModelZooTest, EmptyTrainThrows) {
  auto model = make_model(GetParam());
  Dataset empty;
  EXPECT_THROW(model->fit(empty), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values(ModelKind::kLogisticRegression, ModelKind::kKnn, ModelKind::kSvm,
                      ModelKind::kNeuralNetwork, ModelKind::kDecisionTree,
                      ModelKind::kRandomForest, ModelKind::kThresholdBaseline),
    [](const auto& info) {
      std::string n = model_display_name(info.param);
      std::erase_if(n, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
      return n;
    });

TEST(ModelZoo, PaperModelsAreTheSixOfTable6) {
  EXPECT_EQ(paper_models().size(), 6u);
  EXPECT_EQ(paper_models().back(), ModelKind::kRandomForest);
}

TEST(ModelZoo, GridsAreNonEmpty) {
  for (ModelKind kind : paper_models()) EXPECT_FALSE(model_grid(kind).empty());
}

TEST(ThresholdBaselineBehavior, PicksTheInformativeFeature) {
  const Dataset train = make_linear_task(2000, 99);
  ThresholdBaseline model;
  model.fit(train);
  EXPECT_EQ(model.chosen_feature(), 0u);  // x0 carries the strongest signal
}

}  // namespace
}  // namespace ssdfail::ml
