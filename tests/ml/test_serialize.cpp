#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ml/flat_forest.hpp"
#include "ml/gradient_boosting.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

/// Small learnable binary task (two shifted gaussian blobs).
Dataset make_task(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(rows, cols);
  d.y.resize(rows);
  d.groups.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool positive = rng.bernoulli(0.4);
    for (std::size_t c = 0; c < cols; ++c)
      d.x(r, c) = static_cast<float>(rng.normal() + (positive ? 0.8 : -0.2));
    d.y[r] = positive ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

Matrix probe_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = static_cast<float>(3.0 * rng.normal());
  return m;
}

TEST(Serialize, RandomForestRoundTripIsBitExact) {
  const Dataset train = make_task(400, 6, 1);
  RandomForest::Params params;
  params.n_trees = 20;
  RandomForest forest(params);
  forest.fit(train);

  std::stringstream stream;
  save_model(stream, forest);
  const RandomForest loaded = load_random_forest(stream);

  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  const Matrix probe = probe_matrix(200, 6, 2);
  const auto before = forest.predict_proba(probe);
  const auto after = loaded.predict_proba(probe);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "row " << i;  // bit-exact, not NEAR

  const auto imp_before = forest.feature_importance();
  const auto imp_after = loaded.feature_importance();
  ASSERT_EQ(imp_before.size(), imp_after.size());
  for (std::size_t f = 0; f < imp_before.size(); ++f)
    EXPECT_DOUBLE_EQ(imp_before[f], imp_after[f]);
}

TEST(Serialize, LogisticRegressionRoundTripIsBitExact) {
  const Dataset train = make_task(500, 5, 3);
  LogisticRegression model;
  model.fit(train);

  std::stringstream stream;
  save_model(stream, model);
  const LogisticRegression loaded = load_logistic_regression(stream);

  ASSERT_EQ(loaded.weights().size(), model.weights().size());
  for (std::size_t c = 0; c < model.weights().size(); ++c)
    EXPECT_EQ(loaded.weights()[c], model.weights()[c]);
  EXPECT_EQ(loaded.bias(), model.bias());

  const Matrix probe = probe_matrix(150, 5, 4);
  const auto before = model.predict_proba(probe);
  const auto after = loaded.predict_proba(probe);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(Serialize, StandardizerRoundTrip) {
  Standardizer scaler;
  scaler.fit(probe_matrix(100, 4, 5));

  std::stringstream stream;
  save_model(stream, scaler);
  const Standardizer loaded = load_standardizer(stream);
  ASSERT_TRUE(loaded.fitted());
  ASSERT_EQ(loaded.mean().size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(loaded.mean()[c], scaler.mean()[c]);
    EXPECT_EQ(loaded.stddev()[c], scaler.stddev()[c]);
  }
}

TEST(Serialize, GenericLoadDispatchesOnKind) {
  const Dataset train = make_task(300, 4, 6);

  std::stringstream forest_stream;
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  save_model(forest_stream, forest);
  EXPECT_EQ(load_classifier(forest_stream)->name(), "random_forest");

  std::stringstream logistic_stream;
  LogisticRegression logistic;
  logistic.fit(train);
  save_model(logistic_stream, logistic);
  EXPECT_EQ(load_classifier(logistic_stream)->name(), "logistic_regression");
}

TEST(Serialize, UnfittedModelsRefuseToSave) {
  std::stringstream stream;
  EXPECT_THROW(save_model(stream, RandomForest{}), std::logic_error);
  EXPECT_THROW(save_model(stream, LogisticRegression{}), std::logic_error);
  EXPECT_THROW(save_model(stream, Standardizer{}), std::logic_error);
}

TEST(Serialize, RejectsBadMagicKindMismatchAndTruncation) {
  std::stringstream garbage("definitely not a model file");
  EXPECT_THROW((void)load_random_forest(garbage), std::runtime_error);

  const Dataset train = make_task(300, 4, 7);
  LogisticRegression logistic;
  logistic.fit(train);
  std::stringstream logistic_stream;
  save_model(logistic_stream, logistic);
  EXPECT_THROW((void)load_random_forest(logistic_stream), std::runtime_error);

  std::stringstream full;
  RandomForest::Params params;
  params.n_trees = 3;
  RandomForest forest(params);
  forest.fit(train);
  save_model(full, forest);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)load_random_forest(truncated), std::runtime_error);

  // A standalone standardizer is not a classifier.
  Standardizer scaler;
  scaler.fit(probe_matrix(50, 4, 8));
  std::stringstream scaler_stream;
  save_model(scaler_stream, scaler);
  EXPECT_THROW((void)load_classifier(scaler_stream), std::runtime_error);
}

TEST(SerializeFile, AtomicSaveRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "ssdfail_model_roundtrip.bin";
  const Dataset train = make_task(300, 4, 9);
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  save_model_file(path, forest);

  const auto loaded = load_classifier_file(path);
  const Matrix probe = probe_matrix(100, 4, 10);
  const auto before = forest.predict_proba(probe);
  const auto after = loaded->predict_proba(probe);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
  // The commit was atomic: no temp file left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(SerializeFile, PartialWriteNeverReplacesThePreviousModel) {
  // Simulate a crash mid-write: a stale .tmp exists and the "new" model
  // write fails (unfitted model throws after the temp file is opened).
  // The previously committed model file must survive byte-for-byte.
  const std::string path = testing::TempDir() + "ssdfail_model_partial.bin";
  const Dataset train = make_task(300, 4, 11);
  LogisticRegression logistic;
  logistic.fit(train);
  save_model_file(path, logistic);
  std::string committed;
  {
    std::ifstream in(path, std::ios::binary);
    committed.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(committed.empty());

  EXPECT_THROW(save_model_file(path, LogisticRegression{}), std::logic_error);
  // Failed write: target untouched, temp cleaned up.
  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    after.assign(std::istreambuf_iterator<char>(in), {});
  }
  EXPECT_EQ(after, committed);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // A reader pointed at a half-written file (the simulated torn write the
  // rename protects against) refuses to load it rather than serving junk.
  const std::string torn_path = path + ".torn";
  {
    std::ofstream torn(torn_path, std::ios::binary);
    torn.write(committed.data(),
               static_cast<std::streamsize>(committed.size() / 2));
  }
  EXPECT_THROW((void)load_classifier_file(torn_path), std::runtime_error);
  std::remove(torn_path.c_str());
  std::remove(path.c_str());
}

TEST(Serialize, GradientBoostingRoundTripIsBitExact) {
  const Dataset train = make_task(400, 6, 12);
  GradientBoosting::Params params;
  params.n_rounds = 30;
  GradientBoosting model(params);
  model.fit(train);

  std::stringstream stream;
  save_model(stream, model);
  const GradientBoosting loaded = load_gradient_boosting(stream);

  EXPECT_EQ(loaded.rounds_fitted(), model.rounds_fitted());
  const Matrix probe = probe_matrix(200, 6, 13);
  const auto before = model.predict_proba(probe);
  const auto after = loaded.predict_proba(probe);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "row " << i;

  std::stringstream again;
  save_model(again, model);
  EXPECT_EQ(load_classifier(again)->name(), "gradient_boosting");
}

TEST(Serialize, LoadedEnsemblesCompileToTheSameFlatEngine) {
  const Dataset train = make_task(400, 6, 14);
  const Matrix probe = probe_matrix(150, 6, 15);

  RandomForest::Params fp;
  fp.n_trees = 10;
  RandomForest forest(fp);
  forest.fit(train);
  std::stringstream fs;
  save_model(fs, forest);
  const RandomForest forest_loaded = load_random_forest(fs);
  const FlatForest a = FlatForest::compile(forest);
  const FlatForest b = FlatForest::compile(forest_loaded);
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  EXPECT_EQ(a.predict_proba(probe), b.predict_proba(probe));

  GradientBoosting::Params gp;
  gp.n_rounds = 20;
  GradientBoosting gb(gp);
  gb.fit(train);
  std::stringstream gs;
  save_model(gs, gb);
  const GradientBoosting gb_loaded = load_gradient_boosting(gs);
  const FlatForest c = FlatForest::compile(gb);
  const FlatForest d = FlatForest::compile(gb_loaded);
  EXPECT_EQ(c.structural_hash(), d.structural_hash());
  EXPECT_EQ(c.predict_proba(probe), d.predict_proba(probe));
}

/// The 29-byte engine manifest appended after v2 ensemble bodies:
/// u8 tag + u64 nodes + u64 trees + u32 depth + u64 hash.
constexpr std::size_t kManifestBytes = 1 + 8 + 8 + 4 + 8;

TEST(Serialize, VersionOneStreamsStillLoad) {
  const Dataset train = make_task(300, 4, 16);
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  std::stringstream v2;
  save_model(v2, forest);
  std::string bytes = v2.str();
  ASSERT_GT(bytes.size(), kManifestBytes + 9);

  // Rewrite as a v1 stream: version field back to 1, manifest stripped —
  // exactly what a pre-engine writer produced.
  const std::uint32_t one = 1;
  std::memcpy(bytes.data() + 4, &one, sizeof(one));
  bytes.resize(bytes.size() - kManifestBytes);

  std::stringstream v1(bytes);
  const RandomForest loaded = load_random_forest(v1);
  const Matrix probe = probe_matrix(100, 4, 17);
  EXPECT_EQ(loaded.predict_proba(probe), forest.predict_proba(probe));
}

TEST(Serialize, VersionOneStreamsRejectGradientBoostingKind) {
  // Kind tag 4 (gradient boosting) did not exist in v1 — a v1 header
  // claiming it is corrupt, not forward-compatible.
  const Dataset train = make_task(300, 4, 18);
  GradientBoosting::Params params;
  params.n_rounds = 5;
  GradientBoosting model(params);
  model.fit(train);
  std::stringstream out;
  save_model(out, model);
  std::string bytes = out.str();
  const std::uint32_t one = 1;
  std::memcpy(bytes.data() + 4, &one, sizeof(one));
  std::stringstream doctored(bytes);
  EXPECT_THROW((void)load_classifier(doctored), std::runtime_error);
}

TEST(SerializeFuzz, EveryTruncatedPrefixIsRejected) {
  const Dataset train = make_task(300, 5, 19);
  GradientBoosting::Params params;
  params.n_rounds = 8;
  GradientBoosting model(params);
  model.fit(train);
  std::stringstream out;
  save_model(out, model);
  const std::string bytes = out.str();

  // Every strict prefix must fail: the trailing manifest means even a
  // stream cut exactly at the end of the tree body is caught.
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 97);
  for (std::size_t len = 0; len < bytes.size(); len += step) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_THROW((void)load_classifier(truncated), std::runtime_error)
        << "prefix of " << len << " of " << bytes.size() << " bytes loaded";
  }
}

TEST(SerializeFuzz, BitFlipsEitherThrowOrLeaveScoresUntouched) {
  const Dataset train = make_task(300, 5, 20);
  RandomForest::Params params;
  params.n_trees = 6;
  RandomForest forest(params);
  forest.fit(train);
  std::stringstream out;
  save_model(out, forest);
  const std::string bytes = out.str();
  const Matrix probe = probe_matrix(120, 5, 21);
  const auto truth = forest.predict_proba(probe);

  // Flip one bit at a time across the stream.  Loads may fail (good) but a
  // successful load must score bit-identically: the engine manifest pins
  // every threshold, feature index, child link, and leaf value, so the
  // only flippable bytes are ones inference never reads.
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 211);
  std::size_t survived = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += step) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << (pos % 8)));
    std::stringstream in(corrupt);
    std::unique_ptr<Classifier> loaded;
    try {
      loaded = load_classifier(in);
    } catch (const std::exception&) {
      continue;  // rejected: the desired outcome for most positions
    }
    ++survived;
    EXPECT_EQ(loaded->predict_proba(probe), truth)
        << "bit flip at byte " << pos << " changed scores silently";
  }
  // Sanity: the loop exercised real corruption, not just rejections.
  SUCCEED() << survived << " flips loaded cleanly";
}

TEST(SerializeFuzz, ManifestHashCorruptionIsRejected) {
  const Dataset train = make_task(300, 4, 22);
  RandomForest::Params params;
  params.n_trees = 4;
  RandomForest forest(params);
  forest.fit(train);
  std::stringstream out;
  save_model(out, forest);
  std::string bytes = out.str();
  // Last 8 bytes are the structural hash.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  std::stringstream corrupt(bytes);
  EXPECT_THROW((void)load_random_forest(corrupt), std::runtime_error);
}

/// Restores the process-wide engine selection on scope exit.
struct EngineGuard {
  InferenceEngine saved = inference_engine();
  ~EngineGuard() { set_inference_engine(saved); }
};

TEST(SerializeFile, ServingLoaderCompilesUnderFlatEngine) {
  const EngineGuard guard;
  const std::string path = testing::TempDir() + "ssdfail_model_serving.bin";
  const Dataset train = make_task(300, 4, 23);
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  save_model_file(path, forest);

  set_inference_engine(InferenceEngine::kFlat);
  const auto serving = load_serving_classifier_file(path);
  ASSERT_NE(serving, nullptr);
  EXPECT_NE(dynamic_cast<const FlatForestClassifier*>(serving.get()), nullptr);
  EXPECT_EQ(serving->name(), "random_forest");
  const Matrix probe = probe_matrix(100, 4, 24);
  EXPECT_EQ(serving->predict_proba(probe), forest.predict_proba(probe));

  set_inference_engine(InferenceEngine::kWalker);
  const auto walker = load_serving_classifier_file(path);
  EXPECT_EQ(dynamic_cast<const FlatForestClassifier*>(walker.get()), nullptr);
  EXPECT_EQ(walker->predict_proba(probe), forest.predict_proba(probe));
  std::remove(path.c_str());
}

TEST(SerializeFile, LoadFromMissingPathThrows) {
  EXPECT_THROW((void)load_classifier_file(testing::TempDir() + "nope/missing.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace ssdfail::ml
