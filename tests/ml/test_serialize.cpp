#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

/// Small learnable binary task (two shifted gaussian blobs).
Dataset make_task(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  d.x = Matrix(rows, cols);
  d.y.resize(rows);
  d.groups.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool positive = rng.bernoulli(0.4);
    for (std::size_t c = 0; c < cols; ++c)
      d.x(r, c) = static_cast<float>(rng.normal() + (positive ? 0.8 : -0.2));
    d.y[r] = positive ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

Matrix probe_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = static_cast<float>(3.0 * rng.normal());
  return m;
}

TEST(Serialize, RandomForestRoundTripIsBitExact) {
  const Dataset train = make_task(400, 6, 1);
  RandomForest::Params params;
  params.n_trees = 20;
  RandomForest forest(params);
  forest.fit(train);

  std::stringstream stream;
  save_model(stream, forest);
  const RandomForest loaded = load_random_forest(stream);

  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  const Matrix probe = probe_matrix(200, 6, 2);
  const auto before = forest.predict_proba(probe);
  const auto after = loaded.predict_proba(probe);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "row " << i;  // bit-exact, not NEAR

  const auto imp_before = forest.feature_importance();
  const auto imp_after = loaded.feature_importance();
  ASSERT_EQ(imp_before.size(), imp_after.size());
  for (std::size_t f = 0; f < imp_before.size(); ++f)
    EXPECT_DOUBLE_EQ(imp_before[f], imp_after[f]);
}

TEST(Serialize, LogisticRegressionRoundTripIsBitExact) {
  const Dataset train = make_task(500, 5, 3);
  LogisticRegression model;
  model.fit(train);

  std::stringstream stream;
  save_model(stream, model);
  const LogisticRegression loaded = load_logistic_regression(stream);

  ASSERT_EQ(loaded.weights().size(), model.weights().size());
  for (std::size_t c = 0; c < model.weights().size(); ++c)
    EXPECT_EQ(loaded.weights()[c], model.weights()[c]);
  EXPECT_EQ(loaded.bias(), model.bias());

  const Matrix probe = probe_matrix(150, 5, 4);
  const auto before = model.predict_proba(probe);
  const auto after = loaded.predict_proba(probe);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(Serialize, StandardizerRoundTrip) {
  Standardizer scaler;
  scaler.fit(probe_matrix(100, 4, 5));

  std::stringstream stream;
  save_model(stream, scaler);
  const Standardizer loaded = load_standardizer(stream);
  ASSERT_TRUE(loaded.fitted());
  ASSERT_EQ(loaded.mean().size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(loaded.mean()[c], scaler.mean()[c]);
    EXPECT_EQ(loaded.stddev()[c], scaler.stddev()[c]);
  }
}

TEST(Serialize, GenericLoadDispatchesOnKind) {
  const Dataset train = make_task(300, 4, 6);

  std::stringstream forest_stream;
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  save_model(forest_stream, forest);
  EXPECT_EQ(load_classifier(forest_stream)->name(), "random_forest");

  std::stringstream logistic_stream;
  LogisticRegression logistic;
  logistic.fit(train);
  save_model(logistic_stream, logistic);
  EXPECT_EQ(load_classifier(logistic_stream)->name(), "logistic_regression");
}

TEST(Serialize, UnfittedModelsRefuseToSave) {
  std::stringstream stream;
  EXPECT_THROW(save_model(stream, RandomForest{}), std::logic_error);
  EXPECT_THROW(save_model(stream, LogisticRegression{}), std::logic_error);
  EXPECT_THROW(save_model(stream, Standardizer{}), std::logic_error);
}

TEST(Serialize, RejectsBadMagicKindMismatchAndTruncation) {
  std::stringstream garbage("definitely not a model file");
  EXPECT_THROW((void)load_random_forest(garbage), std::runtime_error);

  const Dataset train = make_task(300, 4, 7);
  LogisticRegression logistic;
  logistic.fit(train);
  std::stringstream logistic_stream;
  save_model(logistic_stream, logistic);
  EXPECT_THROW((void)load_random_forest(logistic_stream), std::runtime_error);

  std::stringstream full;
  RandomForest::Params params;
  params.n_trees = 3;
  RandomForest forest(params);
  forest.fit(train);
  save_model(full, forest);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)load_random_forest(truncated), std::runtime_error);

  // A standalone standardizer is not a classifier.
  Standardizer scaler;
  scaler.fit(probe_matrix(50, 4, 8));
  std::stringstream scaler_stream;
  save_model(scaler_stream, scaler);
  EXPECT_THROW((void)load_classifier(scaler_stream), std::runtime_error);
}

TEST(SerializeFile, AtomicSaveRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "ssdfail_model_roundtrip.bin";
  const Dataset train = make_task(300, 4, 9);
  RandomForest::Params params;
  params.n_trees = 5;
  RandomForest forest(params);
  forest.fit(train);
  save_model_file(path, forest);

  const auto loaded = load_classifier_file(path);
  const Matrix probe = probe_matrix(100, 4, 10);
  const auto before = forest.predict_proba(probe);
  const auto after = loaded->predict_proba(probe);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
  // The commit was atomic: no temp file left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(SerializeFile, PartialWriteNeverReplacesThePreviousModel) {
  // Simulate a crash mid-write: a stale .tmp exists and the "new" model
  // write fails (unfitted model throws after the temp file is opened).
  // The previously committed model file must survive byte-for-byte.
  const std::string path = testing::TempDir() + "ssdfail_model_partial.bin";
  const Dataset train = make_task(300, 4, 11);
  LogisticRegression logistic;
  logistic.fit(train);
  save_model_file(path, logistic);
  std::string committed;
  {
    std::ifstream in(path, std::ios::binary);
    committed.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(committed.empty());

  EXPECT_THROW(save_model_file(path, LogisticRegression{}), std::logic_error);
  // Failed write: target untouched, temp cleaned up.
  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    after.assign(std::istreambuf_iterator<char>(in), {});
  }
  EXPECT_EQ(after, committed);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // A reader pointed at a half-written file (the simulated torn write the
  // rename protects against) refuses to load it rather than serving junk.
  const std::string torn_path = path + ".torn";
  {
    std::ofstream torn(torn_path, std::ios::binary);
    torn.write(committed.data(),
               static_cast<std::streamsize>(committed.size() / 2));
  }
  EXPECT_THROW((void)load_classifier_file(torn_path), std::runtime_error);
  std::remove(torn_path.c_str());
  std::remove(path.c_str());
}

TEST(SerializeFile, LoadFromMissingPathThrows) {
  EXPECT_THROW((void)load_classifier_file(testing::TempDir() + "nope/missing.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace ssdfail::ml
