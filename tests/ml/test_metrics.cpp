#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

TEST(RocAuc, PerfectClassifier) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<float> labels = {0.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(RocAuc, PerfectlyWrongClassifier) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<float> labels = {0.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(RocAuc, RandomScoresGiveHalf) {
  stats::Rng rng(3);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(static_cast<float>(rng.uniform()));
    labels.push_back(rng.bernoulli(0.3f) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(RocAuc, TiesGetHalfCredit) {
  // All scores equal: AUC must be exactly 0.5.
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(RocAuc, SingleClassIsNaN) {
  const std::vector<float> scores = {0.1f, 0.9f};
  EXPECT_TRUE(std::isnan(roc_auc(scores, std::vector<float>{1.0f, 1.0f})));
  EXPECT_TRUE(std::isnan(roc_auc(scores, std::vector<float>{0.0f, 0.0f})));
}

TEST(RocAuc, InsensitiveToClassImbalance) {
  // Same score distributions, 100x more negatives: AUC unchanged.
  auto make = [](int neg_per_pos) {
    stats::Rng rng(4);  // identical positive draws across both calls
    std::vector<float> scores;
    std::vector<float> labels;
    for (int i = 0; i < 500; ++i) {
      scores.push_back(static_cast<float>(0.6 + 0.3 * rng.normal()));
      labels.push_back(1.0f);
      for (int n = 0; n < neg_per_pos; ++n) {
        scores.push_back(static_cast<float>(0.4 + 0.3 * rng.normal()));
        labels.push_back(0.0f);
      }
    }
    return roc_auc(scores, labels);
  };
  EXPECT_NEAR(make(1), make(100), 0.03);
}

TEST(RocCurve, MonotoneAndAnchored) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.7f, 0.3f, 0.2f, 0.1f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f, 1.0f, 0.0f};
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(RocCurve, TrapezoidAreaMatchesRankAuc) {
  stats::Rng rng(5);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 3000; ++i) {
    const bool pos = rng.bernoulli(0.2);
    scores.push_back(static_cast<float>((pos ? 0.3 : 0.0) + rng.uniform()));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const auto curve = roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i)
    area += 0.5 * (curve[i].tpr + curve[i - 1].tpr) * (curve[i].fpr - curve[i - 1].fpr);
  EXPECT_NEAR(area, roc_auc(scores, labels), 1e-9);
}

TEST(Confusion, CountsAndRates) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.3f, 0.1f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f};
  const Confusion c = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Confusion, ThresholdSweep) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.3f, 0.1f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(confusion_at(scores, labels, 0.0).tpr(), 1.0);
  EXPECT_DOUBLE_EQ(confusion_at(scores, labels, 1.0).tpr(), 0.0);
}

TEST(MeanSd, SmallSample) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const MeanSd ms = mean_sd(v);
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.sd, 1.0);
}

TEST(MeanSd, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_sd(std::vector<double>{}).mean, 0.0);
  const MeanSd one = mean_sd(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.sd, 0.0);
}

}  // namespace
}  // namespace ssdfail::ml
