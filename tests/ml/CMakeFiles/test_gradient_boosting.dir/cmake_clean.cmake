file(REMOVE_RECURSE
  "CMakeFiles/test_gradient_boosting.dir/test_gradient_boosting.cpp.o"
  "CMakeFiles/test_gradient_boosting.dir/test_gradient_boosting.cpp.o.d"
  "test_gradient_boosting"
  "test_gradient_boosting.pdb"
  "test_gradient_boosting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradient_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
