# Empty dependencies file for test_gradient_boosting.
# This may be replaced when dependencies are built.
