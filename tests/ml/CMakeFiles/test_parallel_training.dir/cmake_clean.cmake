file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_training.dir/test_parallel_training.cpp.o"
  "CMakeFiles/test_parallel_training.dir/test_parallel_training.cpp.o.d"
  "test_parallel_training"
  "test_parallel_training.pdb"
  "test_parallel_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
