# Empty dependencies file for test_parallel_training.
# This may be replaced when dependencies are built.
