
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_matrix.cpp" "tests/ml/CMakeFiles/test_matrix.dir/test_matrix.cpp.o" "gcc" "tests/ml/CMakeFiles/test_matrix.dir/test_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/ml/CMakeFiles/ssdfail_ml.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/ssdfail_stats.dir/DependInfo.cmake"
  "/root/repo/src/parallel/CMakeFiles/ssdfail_parallel.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
