file(REMOVE_RECURSE
  "CMakeFiles/test_standardizer.dir/test_standardizer.cpp.o"
  "CMakeFiles/test_standardizer.dir/test_standardizer.cpp.o.d"
  "test_standardizer"
  "test_standardizer.pdb"
  "test_standardizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standardizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
