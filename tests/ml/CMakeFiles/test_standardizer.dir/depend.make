# Empty dependencies file for test_standardizer.
# This may be replaced when dependencies are built.
