# Empty dependencies file for test_metrics_extended.
# This may be replaced when dependencies are built.
