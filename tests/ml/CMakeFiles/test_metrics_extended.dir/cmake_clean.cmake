file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_extended.dir/test_metrics_extended.cpp.o"
  "CMakeFiles/test_metrics_extended.dir/test_metrics_extended.cpp.o.d"
  "test_metrics_extended"
  "test_metrics_extended.pdb"
  "test_metrics_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
