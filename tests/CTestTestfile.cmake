# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("obs")
subdirs("parallel")
subdirs("io")
subdirs("store")
subdirs("trace")
subdirs("robustness")
subdirs("sim")
subdirs("ml")
subdirs("core")
subdirs("integration")
