#include "sim/fleet_simulator.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ssdfail::sim {
namespace {

TEST(FleetSimulator, IndexLayoutIsModelMajor) {
  FleetConfig cfg;
  cfg.drives_per_model = 10;
  FleetSimulator sim(cfg);
  EXPECT_EQ(sim.drive_count(), 30u);
  EXPECT_EQ(sim.simulate(0).model, trace::DriveModel::MlcA);
  EXPECT_EQ(sim.simulate(9).model, trace::DriveModel::MlcA);
  EXPECT_EQ(sim.simulate(10).model, trace::DriveModel::MlcB);
  EXPECT_EQ(sim.simulate(29).model, trace::DriveModel::MlcD);
  EXPECT_EQ(sim.simulate(13).drive_index, 3u);
}

TEST(FleetSimulator, SimulateIsIdempotent) {
  FleetConfig cfg;
  cfg.drives_per_model = 5;
  FleetSimulator sim(cfg);
  const auto a = sim.simulate(7);
  const auto b = sim.simulate(7);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.deploy_day, b.deploy_day);
}

TEST(FleetSimulator, DriveUnaffectedByFleetSize) {
  // Scaling the fleet must not change already-existing drives (stable
  // subsets under SSDFAIL_DRIVES_PER_MODEL scaling).
  FleetConfig small;
  small.drives_per_model = 5;
  FleetConfig large;
  large.drives_per_model = 50;
  const auto a = FleetSimulator(small).simulate(2);   // MLC-A drive 2
  const auto b = FleetSimulator(large).simulate(2);   // same drive
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    ASSERT_EQ(a.records[i].writes, b.records[i].writes);
}

TEST(FleetSimulator, GenerateAllMatchesSimulate) {
  FleetConfig cfg;
  cfg.drives_per_model = 4;
  FleetSimulator sim(cfg);
  const auto fleet = sim.generate_all();
  ASSERT_EQ(fleet.drives.size(), 12u);
  for (std::size_t i = 0; i < fleet.drives.size(); ++i) {
    const auto d = sim.simulate(i);
    EXPECT_EQ(fleet.drives[i].uid(), d.uid());
    EXPECT_EQ(fleet.drives[i].records.size(), d.records.size());
  }
}

TEST(FleetSimulator, VisitCountsEveryDriveOnce) {
  FleetConfig cfg;
  cfg.drives_per_model = 20;
  FleetSimulator sim(cfg);
  parallel::ThreadPool pool(4);
  const auto count = sim.visit(
      [] { return std::size_t{0}; },
      [](std::size_t& acc, const trace::DriveHistory&) { ++acc; },
      [](std::size_t& dst, const std::size_t& src) { dst += src; }, pool);
  EXPECT_EQ(count, 60u);
}

TEST(FleetSimulator, VisitResultIndependentOfThreadCount) {
  FleetConfig cfg;
  cfg.drives_per_model = 15;
  FleetSimulator sim(cfg);
  parallel::ThreadPool p1(1);
  parallel::ThreadPool p4(4);
  auto total_writes = [&](parallel::ThreadPool& pool) {
    return sim.visit(
        [] { return std::uint64_t{0}; },
        [](std::uint64_t& acc, const trace::DriveHistory& d) {
          for (const auto& r : d.records) acc += r.writes;
        },
        [](std::uint64_t& dst, const std::uint64_t& src) { dst += src; }, pool);
  };
  EXPECT_EQ(total_writes(p1), total_writes(p4));
}

TEST(FleetSimulator, KeepGroundTruthFlagPropagates) {
  FleetConfig cfg;
  cfg.drives_per_model = 2;
  cfg.keep_ground_truth = false;
  FleetSimulator sim(cfg);
  EXPECT_FALSE(sim.simulate(0).truth.has_value());
}

TEST(FleetConfig, EnvOverrides) {
  ::setenv("SSDFAIL_DRIVES_PER_MODEL", "123", 1);
  ::setenv("SSDFAIL_SEED", "77", 1);
  const FleetConfig cfg = FleetConfig::from_env();
  EXPECT_EQ(cfg.drives_per_model, 123u);
  EXPECT_EQ(cfg.seed, 77u);
  ::unsetenv("SSDFAIL_DRIVES_PER_MODEL");
  ::unsetenv("SSDFAIL_SEED");
  const FleetConfig def = FleetConfig::from_env();
  EXPECT_EQ(def.drives_per_model, FleetConfig{}.drives_per_model);
}

}  // namespace
}  // namespace ssdfail::sim
