// Calibration of the heterogeneous device classes (HDD-E, NVME-F) against
// the Pinciroli-derived targets documented in the presets (PAPERS.md), plus
// the cross-class structural invariants: every class-specific telemetry
// channel is identically zero outside its own class, and the symptom
// channels separate failed from healthy drives.
//
// The fleets are seeded (FleetConfig default seed 2019), so the tolerance
// bands below cover the pinned seed plus the sampling noise of a
// kDrives-drive fleet — they are NOT distribution-free confidence
// intervals.  If a band trips after an intentional preset change,
// re-derive it from the new observed value (the failure message prints
// it) the same way the MLC bands in test_fleet_calibration.cpp are
// maintained.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/fleet_simulator.hpp"
#include "stats/spearman.hpp"

namespace ssdfail::sim {
namespace {

using trace::DriveModel;
using trace::ErrorType;

constexpr std::uint32_t kDrives = 2000;

/// Days before the (first) failure that count as the symptomatic window
/// when comparing failed-drive symptom rates against healthy baselines.
constexpr std::int32_t kSymptomWindowDays = 30;

struct ClassStats {
  std::uint64_t drive_days = 0;
  std::uint64_t drives_failed = 0;
  std::uint64_t failures = 0;
  std::uint64_t young_failures = 0;
  std::uint64_t ue_days = 0;

  // Structural zero-channel checks (max over every record of every drive).
  std::uint32_t max_erases = 0;
  std::uint32_t max_pe_cycles = 0;
  std::uint32_t max_realloc = 0;
  std::uint32_t max_seek = 0;
  std::uint32_t max_wear = 0;
  std::uint32_t max_throttle = 0;

  // Symptom-prevalence aggregates.  Realloc is compared as GROWTH over the
  // final kSymptomWindowDays (raw final values confound the pre-failure
  // burst with plain age accrual — healthy drives live longer and keep
  // remapping in the background).
  double healthy_realloc_delta_sum = 0.0;  ///< last-window growth, never-failed
  std::uint64_t healthy_drives = 0;
  double failed_realloc_delta_sum = 0.0;   ///< pre-failure-window growth
  std::uint64_t failed_window_drives = 0;
  std::uint64_t healthy_seek_days = 0, healthy_throttle_days = 0;
  std::uint64_t healthy_days = 0;
  std::uint64_t failed_seek_days = 0, failed_throttle_days = 0;
  std::uint64_t failed_window_days = 0;

  // Wear-vs-writes correlation inputs (one point per drive).
  std::vector<double> wear_end, cum_writes;
};

const ClassStats& stats_for(DriveModel model) {
  static std::array<ClassStats, trace::kNumModels> cache;
  static std::array<bool, trace::kNumModels> ready{};
  const auto mi = static_cast<std::size_t>(model);
  if (!ready[mi]) {
    ClassStats s;
    FleetConfig cfg;
    cfg.drives_per_model = kDrives;
    cfg.models = {model};
    FleetSimulator sim(cfg);
    for (std::uint32_t i = 0; i < kDrives; ++i) {
      const auto d = sim.simulate(i);
      const auto& truth = *d.truth;
      const bool failed = !truth.failure_days.empty();
      const std::int32_t first_fail = failed ? truth.failure_days[0] : 0;

      s.drive_days += d.records.size();
      s.failures += truth.failure_days.size();
      if (failed) ++s.drives_failed;
      for (std::int32_t fd : truth.failure_days)
        if (fd - d.deploy_day <= kInfantAgeDays) ++s.young_failures;

      double writes = 0.0;
      for (const auto& r : d.records) {
        writes += static_cast<double>(r.writes);
        if (r.error(ErrorType::kUncorrectable) > 0) ++s.ue_days;
        s.max_erases = std::max(s.max_erases, r.erases);
        s.max_pe_cycles = std::max(s.max_pe_cycles, r.pe_cycles);
        s.max_realloc = std::max(s.max_realloc, r.reallocated_sectors);
        s.max_seek = std::max(s.max_seek, r.seek_errors);
        s.max_wear = std::max(s.max_wear, r.media_wear);
        s.max_throttle = std::max(s.max_throttle, r.throttle_events);
        if (failed) {
          if (r.day <= first_fail && r.day > first_fail - kSymptomWindowDays) {
            ++s.failed_window_days;
            if (r.seek_errors > 0) ++s.failed_seek_days;
            if (r.throttle_events > 0) ++s.failed_throttle_days;
          }
        } else {
          ++s.healthy_days;
          if (r.seek_errors > 0) ++s.healthy_seek_days;
          if (r.throttle_events > 0) ++s.healthy_throttle_days;
        }
      }
      // Reallocated-sector growth across a window ending at end_day.
      const auto realloc_delta = [&](std::int32_t end_day) {
        std::uint32_t start_v = 0, end_v = 0;
        for (const auto& r : d.records) {
          if (r.day <= end_day - kSymptomWindowDays) start_v = r.reallocated_sectors;
          if (r.day <= end_day) end_v = r.reallocated_sectors;
        }
        return static_cast<double>(end_v) - static_cast<double>(start_v);
      };
      if (failed) {
        ++s.failed_window_drives;
        s.failed_realloc_delta_sum += realloc_delta(first_fail);
      } else if (!d.records.empty()) {
        ++s.healthy_drives;
        s.healthy_realloc_delta_sum += realloc_delta(d.records.back().day);
      }
      s.wear_end.push_back(d.records.empty() ? 0.0 : d.records.back().media_wear);
      s.cum_writes.push_back(writes);
    }
    cache[mi] = std::move(s);
    ready[mi] = true;
  }
  return cache[mi];
}

double infant_share(const ClassStats& s) {
  return static_cast<double>(s.young_failures) / static_cast<double>(s.failures);
}

// --- Failure-rate bands (Pinciroli: HDD AFR a few percent over multi-year
// windows; NVMe slightly higher lifetime fraction because of the steep
// infancy on top of a healthy mature hazard). ---

TEST(DeviceClassCalibration, HddFailedFractionInBand) {
  const ClassStats& s = stats_for(DriveModel::Hdd);
  const double frac = static_cast<double>(s.drives_failed) / kDrives;
  EXPECT_GT(frac, 0.030) << "observed " << frac;
  EXPECT_LT(frac, 0.085) << "observed " << frac;
}

TEST(DeviceClassCalibration, NvmeFailedFractionInBand) {
  const ClassStats& s = stats_for(DriveModel::Nvme);
  const double frac = static_cast<double>(s.drives_failed) / kDrives;
  EXPECT_GT(frac, 0.040) << "observed " << frac;
  EXPECT_LT(frac, 0.105) << "observed " << frac;
}

// --- Hazard shape: NVMe's infancy (14x boost, tau 28d) concentrates far
// more of its failures inside the first 90 days than HDD's near-flat
// bathtub (2.2x over tau 60d) does. ---

TEST(DeviceClassCalibration, InfantFailureShareSeparatesTheClasses) {
  const ClassStats& hdd = stats_for(DriveModel::Hdd);
  const ClassStats& nvme = stats_for(DriveModel::Nvme);
  ASSERT_GT(hdd.failures, 30u);
  ASSERT_GT(nvme.failures, 30u);
  const double hdd_share = infant_share(hdd);
  const double nvme_share = infant_share(nvme);
  EXPECT_GT(nvme_share, 0.12) << "observed " << nvme_share;
  EXPECT_LT(nvme_share, 0.45) << "observed " << nvme_share;
  EXPECT_LT(hdd_share, 0.22) << "observed " << hdd_share;
  EXPECT_GT(nvme_share, 1.5 * hdd_share)
      << "nvme " << nvme_share << " vs hdd " << hdd_share;
}

// --- Cross-class zero assertions: a channel outside its own device class
// is identically zero in every record (what makes zone-map pruning on
// class columns exact, and foreign-class training sets blind to them). ---

TEST(DeviceClassCalibration, HddHasNoFlashOrNvmeTelemetry) {
  const ClassStats& s = stats_for(DriveModel::Hdd);
  EXPECT_EQ(s.max_erases, 0u);
  EXPECT_EQ(s.max_pe_cycles, 0u);
  EXPECT_EQ(s.max_wear, 0u);
  EXPECT_EQ(s.max_throttle, 0u);
  // ... while its own channels are live.
  EXPECT_GT(s.max_realloc, 0u);
  EXPECT_GT(s.max_seek, 0u);
}

TEST(DeviceClassCalibration, NvmeHasNoHddTelemetry) {
  const ClassStats& s = stats_for(DriveModel::Nvme);
  EXPECT_EQ(s.max_realloc, 0u);
  EXPECT_EQ(s.max_seek, 0u);
  EXPECT_GT(s.max_wear, 0u);
  EXPECT_GT(s.max_throttle, 0u);
  // NVMe is flash: the shared wear telemetry stays live.
  EXPECT_GT(s.max_pe_cycles, 0u);
}

TEST(DeviceClassCalibration, MlcHasNoClassSpecificTelemetry) {
  const ClassStats& s = stats_for(DriveModel::MlcA);
  EXPECT_EQ(s.max_realloc, 0u);
  EXPECT_EQ(s.max_seek, 0u);
  EXPECT_EQ(s.max_wear, 0u);
  EXPECT_EQ(s.max_throttle, 0u);
}

// --- Symptom prevalence: the class channels must separate failed drives
// from healthy ones (that separation is what the transfer-matrix diagonal
// trades on), while staying non-degenerate on healthy drives (background
// remapping/throttling exists, so the channel alone is not a label). ---

TEST(DeviceClassCalibration, HddReallocatedSectorsSeparateFailedDrives) {
  const ClassStats& s = stats_for(DriveModel::Hdd);
  ASSERT_GT(s.failed_window_drives, 30u);
  const double failed_mean =
      s.failed_realloc_delta_sum / static_cast<double>(s.failed_window_drives);
  const double healthy_mean =
      s.healthy_realloc_delta_sum / static_cast<double>(s.healthy_drives);
  EXPECT_GT(healthy_mean, 0.2) << "background remapping must exist";
  EXPECT_GT(failed_mean, 5.0 * healthy_mean)
      << "failed " << failed_mean << " vs healthy " << healthy_mean;
}

TEST(DeviceClassCalibration, HddSeekErrorsRampBeforeFailure) {
  const ClassStats& s = stats_for(DriveModel::Hdd);
  ASSERT_GT(s.failed_window_days, 500u);
  const double failed_rate = static_cast<double>(s.failed_seek_days) /
                             static_cast<double>(s.failed_window_days);
  const double healthy_rate = static_cast<double>(s.healthy_seek_days) /
                              static_cast<double>(s.healthy_days);
  EXPECT_GT(healthy_rate, 5e-4) << "background seek errors must exist";
  EXPECT_GT(failed_rate, 2.5 * healthy_rate)
      << "failed " << failed_rate << " vs healthy " << healthy_rate;
}

TEST(DeviceClassCalibration, NvmeThrottlingRampsBeforeFailure) {
  const ClassStats& s = stats_for(DriveModel::Nvme);
  ASSERT_GT(s.failed_window_days, 500u);
  const double failed_rate = static_cast<double>(s.failed_throttle_days) /
                             static_cast<double>(s.failed_window_days);
  const double healthy_rate = static_cast<double>(s.healthy_throttle_days) /
                              static_cast<double>(s.healthy_days);
  EXPECT_GT(healthy_rate, 2e-4) << "background throttling must exist";
  EXPECT_LT(healthy_rate, 2e-2) << "cool racks: background throttling is rare";
  EXPECT_GT(failed_rate, 10.0 * healthy_rate)
      << "failed " << failed_rate << " vs healthy " << healthy_rate;
}

TEST(DeviceClassCalibration, NvmeMediaWearTracksWrittenVolume) {
  const ClassStats& s = stats_for(DriveModel::Nvme);
  const double rho = stats::spearman(s.wear_end, s.cum_writes);
  EXPECT_GT(rho, 0.80) << "observed " << rho;
}

// --- HDD latent-sector errors surface late (UE onset mean 7000 days), so
// the HDD UE-day incidence sits well below the MLC Table 1 rates. ---

TEST(DeviceClassCalibration, HddUncorrectableDaysAreRare) {
  const ClassStats& s = stats_for(DriveModel::Hdd);
  const double rate =
      static_cast<double>(s.ue_days) / static_cast<double>(s.drive_days);
  EXPECT_LT(rate, 1.5e-3) << "observed " << rate;
  EXPECT_GT(rate, 1e-5) << "observed " << rate;  // but not extinct
}

}  // namespace
}  // namespace ssdfail::sim
