#include "sim/drive_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ssdfail::sim {
namespace {

using trace::DriveHistory;
using trace::DriveModel;
using trace::ErrorType;

const DriveModelSpec& spec_a() { return preset(DriveModel::MlcA); }

TEST(DriveSimulator, DeterministicForSameInputs) {
  const DriveHistory a = simulate_drive(spec_a(), 42, 7, 2190);
  const DriveHistory b = simulate_drive(spec_a(), 42, 7, 2190);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].day, b.records[i].day);
    EXPECT_EQ(a.records[i].writes, b.records[i].writes);
    EXPECT_EQ(a.records[i].errors, b.records[i].errors);
  }
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  EXPECT_EQ(a.truth->failure_days, b.truth->failure_days);
}

TEST(DriveSimulator, DifferentDrivesDiffer) {
  const DriveHistory a = simulate_drive(spec_a(), 42, 1, 2190);
  const DriveHistory b = simulate_drive(spec_a(), 42, 2, 2190);
  // Astronomically unlikely to coincide in both deploy day and first write.
  const bool same = a.deploy_day == b.deploy_day && !a.records.empty() &&
                    !b.records.empty() && a.records[0].writes == b.records[0].writes;
  EXPECT_FALSE(same);
}

TEST(DriveSimulator, RecordsStrictlyIncreasingWithinWindow) {
  for (std::uint32_t idx = 0; idx < 50; ++idx) {
    const DriveHistory d = simulate_drive(spec_a(), 1, idx, 1000);
    for (std::size_t i = 1; i < d.records.size(); ++i)
      ASSERT_LT(d.records[i - 1].day, d.records[i].day) << "drive " << idx;
    if (!d.records.empty()) {
      EXPECT_GE(d.records.front().day, d.deploy_day);
      EXPECT_LT(d.records.back().day, 1000);
    }
  }
}

TEST(DriveSimulator, CumulativeCountersAreMonotone) {
  for (std::uint32_t idx = 0; idx < 50; ++idx) {
    const DriveHistory d = simulate_drive(spec_a(), 2, idx, 2190);
    for (std::size_t i = 1; i < d.records.size(); ++i) {
      ASSERT_GE(d.records[i].pe_cycles, d.records[i - 1].pe_cycles);
      ASSERT_GE(d.records[i].bad_blocks, d.records[i - 1].bad_blocks);
      ASSERT_EQ(d.records[i].factory_bad_blocks, d.records[i - 1].factory_bad_blocks);
    }
  }
}

TEST(DriveSimulator, SwapsFollowFailuresInOrder) {
  int checked = 0;
  for (std::uint32_t idx = 0; idx < 2000 && checked < 40; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 3, idx, 2190);
    const auto& truth = *d.truth;
    ASSERT_LE(d.swaps.size(), truth.failure_days.size());
    for (std::size_t s = 0; s < d.swaps.size(); ++s) {
      ASSERT_GT(d.swaps[s].day, truth.failure_days[s]);
      ++checked;
    }
  }
  EXPECT_GE(checked, 40) << "fleet produced too few swaps to exercise the check";
}

TEST(DriveSimulator, NoOperationalRecordsBetweenFailureAndReentry) {
  // Between a failure and the drive's re-entry, any logged day must be
  // inactive (zero reads/writes): the drive is failed or in repair.
  int verified = 0;
  for (std::uint32_t idx = 0; idx < 3000 && verified < 30; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 4, idx, 2190);
    const auto& truth = *d.truth;
    for (std::size_t f = 0; f < d.swaps.size(); ++f) {
      const std::int32_t fail = truth.failure_days[f];
      // Find where the next operational period starts (if any).
      std::int32_t next_start = 2190;
      if (f + 1 < truth.failure_days.size() || d.records.back().day > d.swaps[f].day) {
        for (const auto& r : d.records)
          if (r.day > d.swaps[f].day && !r.inactive()) {
            next_start = r.day;
            break;
          }
      }
      for (const auto& r : d.records) {
        if (r.day > fail && r.day < next_start) {
          ASSERT_TRUE(r.inactive()) << "drive " << idx << " day " << r.day;
          ++verified;
        }
      }
    }
  }
  EXPECT_GT(verified, 0);
}

TEST(DriveSimulator, GroundTruthOmittedWhenRequested) {
  const DriveHistory d = simulate_drive(spec_a(), 5, 0, 500, /*keep_truth=*/false);
  EXPECT_FALSE(d.truth.has_value());
}

TEST(DriveSimulator, TruthVectorsConsistent) {
  for (std::uint32_t idx = 0; idx < 500; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 6, idx, 2190);
    ASSERT_EQ(d.truth->failure_days.size(), d.truth->silent.size());
    for (std::size_t i = 1; i < d.truth->failure_days.size(); ++i)
      ASSERT_LT(d.truth->failure_days[i - 1], d.truth->failure_days[i]);
  }
}

TEST(DriveSimulator, FailureDayIsLastActiveDay) {
  // The ground-truth failure day must be the last day with activity before
  // the swap: this is the invariant the analysis layer relies on to
  // re-derive failure points from observables.
  int checked = 0;
  for (std::uint32_t idx = 0; idx < 3000 && checked < 50; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 7, idx, 2190);
    const auto& truth = *d.truth;
    for (std::size_t f = 0; f < d.swaps.size(); ++f) {
      const std::int32_t fail = truth.failure_days[f];
      const std::int32_t swap = d.swaps[f].day;
      for (const auto& r : d.records)
        if (r.day > fail && r.day < swap) ASSERT_TRUE(r.inactive());
      ++checked;
    }
  }
  EXPECT_GE(checked, 50);
}

TEST(DriveSimulator, WindowBoundsRespected) {
  for (std::int32_t window : {1, 10, 100, 2190}) {
    const DriveHistory d = simulate_drive(spec_a(), 8, 3, window);
    for (const auto& r : d.records) {
      EXPECT_GE(r.day, 0);
      EXPECT_LT(r.day, window);
    }
    for (const auto& s : d.swaps) EXPECT_LT(s.day, window);
  }
}

TEST(DriveSimulator, ShortWindowProducesNoOutOfRangeDeploys) {
  for (std::uint32_t idx = 0; idx < 200; ++idx) {
    const DriveHistory d = simulate_drive(spec_a(), 9, idx, 50);
    EXPECT_GE(d.deploy_day, 0);
    EXPECT_LT(d.deploy_day, 50);
  }
}

TEST(DriveSimulator, FinalReadErrorsOnlyOnUncorrectableDays) {
  // rho(final read, UE) = 0.97 in Table 2 because a finally-failed read IS
  // an uncorrectable error; the generator enforces co-occurrence.
  for (std::uint32_t idx = 0; idx < 300; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcD), 10, idx, 2190);
    for (const auto& r : d.records)
      if (r.error(ErrorType::kFinalRead) > 0)
        ASSERT_GT(r.error(ErrorType::kUncorrectable), 0u);
  }
}

}  // namespace
}  // namespace ssdfail::sim
