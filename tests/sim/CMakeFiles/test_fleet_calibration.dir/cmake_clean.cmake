file(REMOVE_RECURSE
  "CMakeFiles/test_fleet_calibration.dir/test_fleet_calibration.cpp.o"
  "CMakeFiles/test_fleet_calibration.dir/test_fleet_calibration.cpp.o.d"
  "test_fleet_calibration"
  "test_fleet_calibration.pdb"
  "test_fleet_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
