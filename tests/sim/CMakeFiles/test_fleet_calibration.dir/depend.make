# Empty dependencies file for test_fleet_calibration.
# This may be replaced when dependencies are built.
