file(REMOVE_RECURSE
  "CMakeFiles/test_fleet_simulator.dir/test_fleet_simulator.cpp.o"
  "CMakeFiles/test_fleet_simulator.dir/test_fleet_simulator.cpp.o.d"
  "test_fleet_simulator"
  "test_fleet_simulator.pdb"
  "test_fleet_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
