# Empty dependencies file for test_fleet_simulator.
# This may be replaced when dependencies are built.
