file(REMOVE_RECURSE
  "CMakeFiles/test_model_spec.dir/test_model_spec.cpp.o"
  "CMakeFiles/test_model_spec.dir/test_model_spec.cpp.o.d"
  "test_model_spec"
  "test_model_spec.pdb"
  "test_model_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
