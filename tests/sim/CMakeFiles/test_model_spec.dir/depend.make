# Empty dependencies file for test_model_spec.
# This may be replaced when dependencies are built.
