file(REMOVE_RECURSE
  "CMakeFiles/test_drive_simulator.dir/test_drive_simulator.cpp.o"
  "CMakeFiles/test_drive_simulator.dir/test_drive_simulator.cpp.o.d"
  "test_drive_simulator"
  "test_drive_simulator.pdb"
  "test_drive_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drive_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
