# Empty dependencies file for test_drive_simulator.
# This may be replaced when dependencies are built.
