file(REMOVE_RECURSE
  "CMakeFiles/test_lifecycle_properties.dir/test_lifecycle_properties.cpp.o"
  "CMakeFiles/test_lifecycle_properties.dir/test_lifecycle_properties.cpp.o.d"
  "test_lifecycle_properties"
  "test_lifecycle_properties.pdb"
  "test_lifecycle_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifecycle_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
