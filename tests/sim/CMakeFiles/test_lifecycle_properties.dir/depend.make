# Empty dependencies file for test_lifecycle_properties.
# This may be replaced when dependencies are built.
