# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/sim/test_model_spec[1]_include.cmake")
include("/root/repo/tests/sim/test_drive_simulator[1]_include.cmake")
include("/root/repo/tests/sim/test_fleet_simulator[1]_include.cmake")
include("/root/repo/tests/sim/test_fleet_calibration[1]_include.cmake")
include("/root/repo/tests/sim/test_lifecycle_properties[1]_include.cmake")
