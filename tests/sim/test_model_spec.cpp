#include "sim/model_spec.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ssdfail::sim {
namespace {

using trace::DriveModel;
using trace::ErrorType;

class ModelPresetTest : public ::testing::TestWithParam<DriveModel> {};

TEST_P(ModelPresetTest, ErrorProbabilitiesAreValid) {
  const DriveModelSpec& s = preset(GetParam());
  for (std::size_t i = 0; i < trace::kNumErrorTypes; ++i) {
    const ErrorTypeSpec& es = s.errors[i];
    EXPECT_GE(es.base_day_prob, 0.0) << "error type " << i;
    EXPECT_LE(es.base_day_prob, 1.0) << "error type " << i;
    EXPECT_GE(es.count_sigma_log, 0.0);
    EXPECT_GE(es.ramp_weight, 0.0);
    EXPECT_LE(es.ramp_weight, 1.0);
  }
}

TEST_P(ModelPresetTest, RepairDistributionIsProper) {
  const RepairSpec& r = preset(GetParam()).repair;
  EXPECT_GT(r.return_probability, 0.0);
  EXPECT_LT(r.return_probability, 1.0);
  double mass = std::accumulate(r.bin_mass.begin(), r.bin_mass.end(), 0.0);
  EXPECT_NEAR(mass, 1.0, 0.01);  // Table 5 masses sum to ~100%
  for (std::size_t i = 0; i + 1 < r.knot_days.size(); ++i)
    EXPECT_LT(r.knot_days[i], r.knot_days[i + 1]);
  EXPECT_GE(r.knot_days.front(), 1.0);
}

TEST_P(ModelPresetTest, FailureSpecSane) {
  const FailureSpec& f = preset(GetParam()).failure;
  EXPECT_GT(f.mature_hazard_per_day, 0.0);
  EXPECT_LT(f.mature_hazard_per_day, 1e-3);
  EXPECT_GT(f.infant_boost, 0.0);
  EXPECT_GT(f.infant_tau_days, 0.0);
  EXPECT_LT(f.fully_silent_young, f.fully_silent_old)
      << "young failures have the more robust symptoms (Section 5.3)";
  EXPECT_GT(f.ue_channel_young, f.ue_channel_old)
      << "P(UE in the final days) is higher for young failures (Fig 11 top); "
         "their higher zero-UE-EVER share (Fig 10) comes from short lifetimes";
  EXPECT_LT(f.failure_day_activity_lo, f.failure_day_activity_hi);
}

TEST_P(ModelPresetTest, DeployAndWorkloadSane) {
  const DriveModelSpec& s = preset(GetParam());
  EXPECT_GT(s.deploy.report_probability, 0.8);
  EXPECT_LE(s.deploy.report_probability, 1.0);
  EXPECT_LT(s.deploy.early_span_days, s.deploy.late_span_days);
  EXPECT_GT(s.workload.write_base_per_day, 1e7);
  EXPECT_GT(s.workload.young_factor, 0.0);
  EXPECT_LT(s.workload.young_factor, 1.0)
      << "young drives see markedly fewer writes (Fig 7)";
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelPresetTest,
                         ::testing::ValuesIn(trace::kAllModels),
                         [](const auto& param_info) {
                           // "MLC-A" -> "A", "HDD-E" -> "E": keep only the
                           // letter after the dash (gtest names must be
                           // alphanumeric).
                           std::string name(trace::model_name(param_info.param));
                           return name.substr(name.find('-') + 1);
                         });

TEST(ModelPresets, HazardOrderingMatchesTable3) {
  // Table 3: MLC-B fails most (14.3%), then MLC-D (12.5%), then MLC-A (6.95%).
  const double ha = preset(DriveModel::MlcA).failure.mature_hazard_per_day;
  const double hb = preset(DriveModel::MlcB).failure.mature_hazard_per_day;
  const double hd = preset(DriveModel::MlcD).failure.mature_hazard_per_day;
  EXPECT_GT(hb, hd);
  EXPECT_GT(hd, ha);
}

TEST(ModelPresets, ReturnProbabilityMatchesTable5InfinityColumn) {
  EXPECT_NEAR(preset(DriveModel::MlcA).repair.return_probability, 0.534, 1e-9);
  EXPECT_NEAR(preset(DriveModel::MlcB).repair.return_probability, 0.439, 1e-9);
  EXPECT_NEAR(preset(DriveModel::MlcD).repair.return_probability, 0.576, 1e-9);
}

TEST(ModelPresets, WriteErrorQuirkOfMlcB) {
  // Table 1: MLC-B's write-error incidence is ~10x the other two models.
  const auto rate = [](DriveModel m) {
    return preset(m).errors[static_cast<std::size_t>(ErrorType::kWrite)].base_day_prob;
  };
  EXPECT_GT(rate(DriveModel::MlcB), 5.0 * rate(DriveModel::MlcA));
  EXPECT_GT(rate(DriveModel::MlcB), 5.0 * rate(DriveModel::MlcD));
}

TEST(ModelPresets, UncorrectableRampIsStrongest) {
  // The UE ramp drives Fig 11; no other error type should outrank it.
  for (DriveModel m : trace::kAllModels) {
    const auto& errors = preset(m).errors;
    const double ue_w =
        errors[static_cast<std::size_t>(ErrorType::kUncorrectable)].ramp_weight;
    for (std::size_t i = 0; i < trace::kNumErrorTypes; ++i)
      EXPECT_LE(errors[i].ramp_weight, ue_w);
  }
}

TEST(ModelPresets, PresetThrowsOnBadModel) {
  EXPECT_THROW((void)preset(static_cast<DriveModel>(7)), std::out_of_range);
}

}  // namespace
}  // namespace ssdfail::sim
