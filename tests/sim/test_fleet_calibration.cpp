// Statistical calibration tests: the generated fleet must reproduce the
// paper's published statistics within tolerances sized to the sampling
// noise of the test fleet (2000 drives/model).  These are the tests that
// anchor the simulator to the paper.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/fleet_simulator.hpp"
#include "stats/spearman.hpp"

namespace ssdfail::sim {
namespace {

using trace::DriveModel;
using trace::ErrorType;

constexpr std::uint32_t kDrives = 2000;

/// Fleet-level aggregates for one model, shared by the calibration tests.
struct ModelStats {
  std::uint64_t drive_days = 0;
  std::array<std::uint64_t, trace::kNumErrorTypes> error_days{};
  std::uint64_t failures = 0;
  std::uint64_t drives_failed = 0;
  std::uint64_t young_failures = 0;
  std::uint64_t swaps = 0;
  std::uint64_t reentries = 0;
  std::uint64_t failed_no_ue_young = 0, failed_young = 0;
  std::uint64_t failed_no_ue_old = 0, failed_old = 0;
  std::uint64_t not_failed_no_ue = 0, not_failed = 0;
  std::vector<double> max_age, pe_end, ue_cum, final_read_cum, erase_cum, bad_blocks;
  std::vector<double> swap_lags;
};

const ModelStats& stats_for(DriveModel model) {
  static std::array<ModelStats, trace::kNumModels> cache;
  static std::array<bool, trace::kNumModels> ready{};
  const auto mi = static_cast<std::size_t>(model);
  if (!ready[mi]) {
    ModelStats s;
    FleetConfig cfg;
    cfg.drives_per_model = kDrives;
    FleetSimulator sim(cfg);
    for (std::uint32_t i = 0; i < kDrives; ++i) {
      const auto d = sim.simulate(mi * kDrives + i);
      s.drive_days += d.records.size();
      for (const auto& r : d.records)
        for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
          if (r.errors[e] > 0) ++s.error_days[e];
      const auto cum = d.final_cumulative();
      const auto& truth = *d.truth;
      s.failures += truth.failure_days.size();
      s.swaps += d.swaps.size();
      if (!truth.failure_days.empty()) ++s.drives_failed;
      for (std::size_t f = 0; f < d.swaps.size(); ++f)
        s.swap_lags.push_back(d.swaps[f].day - truth.failure_days[f]);
      // Re-entries: operational records after a swap.
      for (const auto& sw : d.swaps)
        for (const auto& r : d.records)
          if (r.day > sw.day && !r.inactive()) {
            ++s.reentries;
            break;
          }
      const bool any_ue = cum.error(ErrorType::kUncorrectable) > 0;
      if (truth.failure_days.empty()) {
        ++s.not_failed;
        if (!any_ue) ++s.not_failed_no_ue;
      } else {
        const std::int32_t age0 = truth.failure_days[0] - d.deploy_day;
        if (age0 <= kInfantAgeDays) {
          ++s.failed_young;
          if (!any_ue) ++s.failed_no_ue_young;
        } else {
          ++s.failed_old;
          if (!any_ue) ++s.failed_no_ue_old;
        }
        for (std::int32_t fd : truth.failure_days)
          if (fd - d.deploy_day <= kInfantAgeDays) ++s.young_failures;
      }
      s.max_age.push_back(d.max_observed_age());
      s.pe_end.push_back(d.records.empty() ? 0.0 : d.records.back().pe_cycles);
      s.ue_cum.push_back(static_cast<double>(cum.error(ErrorType::kUncorrectable)));
      s.final_read_cum.push_back(static_cast<double>(cum.error(ErrorType::kFinalRead)));
      s.erase_cum.push_back(static_cast<double>(cum.error(ErrorType::kErase)));
      s.bad_blocks.push_back(d.records.empty() ? 0.0 : d.records.back().bad_blocks);
    }
    cache[mi] = std::move(s);
    ready[mi] = true;
  }
  return cache[mi];
}

class CalibrationTest : public ::testing::TestWithParam<DriveModel> {};

TEST_P(CalibrationTest, FailedFractionMatchesTable3) {
  static constexpr std::array<double, 3> target = {0.0695, 0.143, 0.125};
  const ModelStats& s = stats_for(GetParam());
  const double observed = static_cast<double>(s.drives_failed) / kDrives;
  EXPECT_NEAR(observed, target[static_cast<std::size_t>(GetParam())], 0.025);
}

TEST_P(CalibrationTest, UncorrectableIncidenceMatchesTable1) {
  static constexpr std::array<double, 3> target = {0.002176, 0.002349, 0.002583};
  const ModelStats& s = stats_for(GetParam());
  const double observed =
      static_cast<double>(s.error_days[static_cast<std::size_t>(ErrorType::kUncorrectable)]) /
      static_cast<double>(s.drive_days);
  const double t = target[static_cast<std::size_t>(GetParam())];
  EXPECT_GT(observed, t / 1.8);
  EXPECT_LT(observed, t * 1.8);
}

TEST_P(CalibrationTest, CorrectableIncidenceMatchesTable1) {
  static constexpr std::array<double, 3> target = {0.829, 0.776, 0.768};
  const ModelStats& s = stats_for(GetParam());
  const double observed =
      static_cast<double>(s.error_days[static_cast<std::size_t>(ErrorType::kCorrectable)]) /
      static_cast<double>(s.drive_days);
  EXPECT_NEAR(observed, target[static_cast<std::size_t>(GetParam())], 0.08);
}

TEST_P(CalibrationTest, RareErrorsStayRare) {
  const ModelStats& s = stats_for(GetParam());
  for (ErrorType e : {ErrorType::kMeta, ErrorType::kResponse, ErrorType::kTimeout,
                      ErrorType::kFinalWrite}) {
    const double rate = static_cast<double>(s.error_days[static_cast<std::size_t>(e)]) /
                        static_cast<double>(s.drive_days);
    EXPECT_LT(rate, 3e-4) << trace::error_name(e);
  }
}

TEST_P(CalibrationTest, InfantMortalityShare) {
  // Fig 6: ~25% of failures occur within the first 90 days.
  const ModelStats& s = stats_for(GetParam());
  ASSERT_GT(s.failures, 0u);
  const double share = static_cast<double>(s.young_failures) / static_cast<double>(s.failures);
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.40);
}

TEST_P(CalibrationTest, ZeroUeFractionsMatchFig10) {
  // Fig 10: ~80% of non-failed drives never see a UE; failed drives see
  // them far more often (young 68%, old 45% zero-UE in the paper).
  const ModelStats& s = stats_for(GetParam());
  const double nf = static_cast<double>(s.not_failed_no_ue) / static_cast<double>(s.not_failed);
  EXPECT_NEAR(nf, 0.80, 0.07);
  if (s.failed_old >= 30) {
    const double old_frac =
        static_cast<double>(s.failed_no_ue_old) / static_cast<double>(s.failed_old);
    EXPECT_GT(old_frac, 0.20);
    EXPECT_LT(old_frac, 0.62);
    EXPECT_LT(old_frac, nf) << "failed drives must see more UEs than healthy ones";
  }
  if (s.failed_young >= 30) {
    const double young_frac =
        static_cast<double>(s.failed_no_ue_young) / static_cast<double>(s.failed_young);
    EXPECT_GT(young_frac, 0.35);
    EXPECT_LT(young_frac, 0.90);
  }
}

TEST_P(CalibrationTest, SwapLagDistributionMatchesFig4) {
  const ModelStats& s = stats_for(GetParam());
  ASSERT_GT(s.swap_lags.size(), 30u);
  double within7 = 0;
  double over100 = 0;
  for (double lag : s.swap_lags) {
    if (lag <= 7.0) ++within7;
    if (lag > 100.0) ++over100;
  }
  within7 /= static_cast<double>(s.swap_lags.size());
  over100 /= static_cast<double>(s.swap_lags.size());
  EXPECT_GT(within7, 0.60);  // paper: ~80% within a week
  EXPECT_LT(within7, 0.92);
  EXPECT_GT(over100, 0.015);  // paper: ~8% beyond 100 days
  EXPECT_LT(over100, 0.14);
}

TEST_P(CalibrationTest, AgeAndWearCorrelate) {
  // Table 2: rho(drive age, P/E cycles) = 0.73.
  const ModelStats& s = stats_for(GetParam());
  const double rho = stats::spearman(s.max_age, s.pe_end);
  EXPECT_GT(rho, 0.50);
  EXPECT_LT(rho, 0.90);
}

TEST_P(CalibrationTest, UncorrectableAndFinalReadNearlyIdentical) {
  // Table 2: rho = 0.97 — they describe the same event.
  const ModelStats& s = stats_for(GetParam());
  const double rho = stats::spearman(s.ue_cum, s.final_read_cum);
  EXPECT_GT(rho, 0.85);
}

TEST_P(CalibrationTest, BadBlocksTrackSeriousErrors) {
  // Table 2: rho(bad blocks, UE) ~ 0.37, rho(bad blocks, erase) ~ 0.38.
  const ModelStats& s = stats_for(GetParam());
  const double rho_ue = stats::spearman(s.bad_blocks, s.ue_cum);
  const double rho_erase = stats::spearman(s.bad_blocks, s.erase_cum);
  EXPECT_GT(rho_ue, 0.15);
  EXPECT_LT(rho_ue, 0.65);
  EXPECT_GT(rho_erase, 0.15);
}

TEST_P(CalibrationTest, SomeSwappedDrivesReenter) {
  // Table 5: 40-60% of swapped drives eventually return, but window
  // censoring cuts the observable fraction down.
  const ModelStats& s = stats_for(GetParam());
  ASSERT_GT(s.swaps, 0u);
  const double frac = static_cast<double>(s.reentries) / static_cast<double>(s.swaps);
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.60);
}

TEST_P(CalibrationTest, MaxAgeDistributionMatchesFig1) {
  // Fig 1: >50% of drives are observed for 4+ years.
  const ModelStats& s = stats_for(GetParam());
  double over4y = 0;
  for (double a : s.max_age)
    if (a >= 4 * 365.0) ++over4y;
  over4y /= static_cast<double>(s.max_age.size());
  EXPECT_GT(over4y, 0.35);
  EXPECT_LT(over4y, 0.75);
}

// The paper's published statistics cover the three MLC study models only;
// HDD/NVMe calibration lives in tests/sim/test_device_classes.cpp against
// the Pinciroli-derived targets.  The target arrays above are indexed by
// the MLC model values, and stats_for's flat-index math assumes the
// default (MLC-only) fleet layout.
INSTANTIATE_TEST_SUITE_P(MlcModels, CalibrationTest,
                         ::testing::ValuesIn(trace::kMlcModels),
                         [](const auto& info) {
                           std::string name(trace::model_name(info.param));
                           return name.substr(name.find('-') + 1);
                         });

TEST(CalibrationCrossModel, FailureOrderingMatchesTable3) {
  const double fa = static_cast<double>(stats_for(DriveModel::MlcA).drives_failed);
  const double fb = static_cast<double>(stats_for(DriveModel::MlcB).drives_failed);
  const double fd = static_cast<double>(stats_for(DriveModel::MlcD).drives_failed);
  EXPECT_GT(fb, fa * 1.4);
  EXPECT_GT(fd, fa * 1.2);
}

TEST(CalibrationCrossModel, WriteErrorQuirkVisibleInData) {
  const auto rate = [](DriveModel m) {
    const ModelStats& s = stats_for(m);
    return static_cast<double>(s.error_days[static_cast<std::size_t>(ErrorType::kWrite)]) /
           static_cast<double>(s.drive_days);
  };
  EXPECT_GT(rate(DriveModel::MlcB), 4.0 * rate(DriveModel::MlcA));
}

}  // namespace
}  // namespace ssdfail::sim
