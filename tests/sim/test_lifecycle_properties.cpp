// Property-style sweeps over the drive lifecycle: the structural
// invariants of Fig 2's timeline must hold for every drive, every model,
// every seed, and every window length.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/drive_simulator.hpp"

namespace ssdfail::sim {
namespace {

using trace::DriveHistory;
using trace::DriveModel;

struct LifecycleCase {
  DriveModel model;
  std::uint64_t seed;
  std::int32_t window;
};

class LifecyclePropertyTest : public ::testing::TestWithParam<LifecycleCase> {};

TEST_P(LifecyclePropertyTest, StructuralInvariantsHoldForManyDrives) {
  const auto& param = GetParam();
  const DriveModelSpec& spec = preset(param.model);
  for (std::uint32_t idx = 0; idx < 300; ++idx) {
    const DriveHistory d = simulate_drive(spec, param.seed, idx, param.window);

    // Deploy day within the window, records within [deploy, window).
    ASSERT_GE(d.deploy_day, 0);
    ASSERT_LT(d.deploy_day, param.window);
    std::int32_t prev_day = d.deploy_day - 1;
    std::uint32_t prev_pe = 0;
    std::uint32_t prev_bb = 0;
    for (const auto& r : d.records) {
      ASSERT_GT(r.day, prev_day);
      ASSERT_LT(r.day, param.window);
      ASSERT_GE(r.pe_cycles, prev_pe);
      ASSERT_GE(r.bad_blocks, prev_bb);
      prev_day = r.day;
      prev_pe = r.pe_cycles;
      prev_bb = r.bad_blocks;
      // Erases imply writes happened (block recycling needs written pages).
      if (r.writes == 0) ASSERT_EQ(r.erases, 0u);
    }

    // Swap events strictly increasing and paired 1:1 (prefix) with truth
    // failures, each strictly after its failure day.
    const auto& truth = *d.truth;
    ASSERT_LE(d.swaps.size(), truth.failure_days.size());
    std::int32_t prev_swap = -1;
    for (std::size_t s = 0; s < d.swaps.size(); ++s) {
      ASSERT_GT(d.swaps[s].day, truth.failure_days[s]);
      ASSERT_GT(d.swaps[s].day, prev_swap);
      ASSERT_LT(d.swaps[s].day, param.window);
      prev_swap = d.swaps[s].day;
    }
    // At most one unswapped failure (the final one, censored by the window).
    ASSERT_LE(truth.failure_days.size() - d.swaps.size(), 1u);

    // The dead flag never appears on an operational (active) day.
    for (const auto& r : d.records)
      if (r.dead) ASSERT_TRUE(r.inactive());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LifecyclePropertyTest,
    ::testing::Values(LifecycleCase{DriveModel::MlcA, 1, 2190},
                      LifecycleCase{DriveModel::MlcB, 2, 2190},
                      LifecycleCase{DriveModel::MlcD, 3, 2190},
                      LifecycleCase{DriveModel::MlcB, 4, 365},
                      LifecycleCase{DriveModel::MlcD, 5, 90},
                      LifecycleCase{DriveModel::MlcA, 6, 30},
                      LifecycleCase{DriveModel::MlcB, 99, 1000}),
    [](const auto& info) {
      return std::string(trace::model_name(info.param.model)).substr(4) + "_w" +
             std::to_string(info.param.window) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(LifecycleEdgeCases, WindowOfOneDay) {
  for (std::uint32_t idx = 0; idx < 100; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 11, idx, 1);
    ASSERT_LE(d.records.size(), 1u);
    ASSERT_TRUE(d.swaps.empty());  // swap lag >= 1 puts any swap past day 0
  }
}

TEST(LifecycleEdgeCases, TruthFailuresMatchRecordsEnd) {
  // A drive whose last failure has no swap within the window must have no
  // operational records after that failure.
  int verified = 0;
  for (std::uint32_t idx = 0; idx < 2000 && verified < 10; ++idx) {
    const DriveHistory d = simulate_drive(preset(DriveModel::MlcB), 12, idx, 2190);
    const auto& truth = *d.truth;
    if (truth.failure_days.size() != d.swaps.size() + 1) continue;
    const std::int32_t last_failure = truth.failure_days.back();
    for (const auto& r : d.records)
      if (r.day > last_failure) ASSERT_TRUE(r.inactive());
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(LifecycleEdgeCases, GroundTruthProbabilisticFieldsPopulated) {
  const DriveHistory d = simulate_drive(preset(DriveModel::MlcA), 13, 5, 2190);
  EXPECT_GT(d.truth->frailty, 0.0);
  EXPECT_GE(d.truth->error_proneness, 0.0);
}

}  // namespace
}  // namespace ssdfail::sim
