// Zone-map predicate-pushdown correctness (the v3 tentpole property): a
// pruned scan must return row sets IDENTICAL to the unpruned scan — the
// zone map may only skip chunks that provably contain no matching row.
//
// Covers: dataset builds with model filters across the row path, v2, and
// v3 (bit-identical floats), the conservative may_match contract checked
// exhaustively against decoded chunk contents over seeded fleets, and the
// edge shapes named by the issue: all-swap-free fleets, single-chunk
// stores, and filters matching nothing.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "core/dataset_builder.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"

namespace ssdfail::store {
namespace {

trace::FleetTrace simulated_fleet(std::uint32_t drives_per_model = 12,
                                  std::uint64_t seed = 1234) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = seed;
  return sim::FleetSimulator(cfg).generate_all();
}

ColumnarFleetView encode_view(const trace::FleetTrace& fleet, std::uint32_t version,
                              std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriteOptions opts;
  opts.chunk_drives = chunk_drives;
  opts.version = version;
  write_columnar(out, fleet, opts);
  const std::string s = out.str();
  return ColumnarFleetView::from_buffer({s.begin(), s.end()});
}

void expect_datasets_identical(const ml::Dataset& a, const ml::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.x.cols(), b.x.cols());
  ASSERT_EQ(a.x.data(), b.x.data());  // bit-identical floats
  ASSERT_EQ(a.y, b.y);
  ASSERT_EQ(a.groups, b.groups);
  ASSERT_EQ(a.feature_names, b.feature_names);
}

/// Ground truth for may_match: does any row of the chunk satisfy the
/// predicate?  (Decodes the chunk — the point is that the zone map must
/// never disagree in the pruning direction.)
bool chunk_has_match(const ChunkView& chunk, const ScanPredicate& pred) {
  for (const DriveRef& ref : chunk.drives) {
    if (pred.model && *pred.model != ref.model) continue;
    if (pred.with_swaps_only && ref.swap_count == 0) continue;
    for (std::size_t i = 0; i < ref.row_count; ++i) {
      const std::int32_t day = chunk.day[ref.row_begin + i];
      if (pred.min_day && day < *pred.min_day) continue;
      if (pred.max_day && day > *pred.max_day) continue;
      return true;
    }
  }
  return false;
}

TEST(ZoneMapPruning, ModelFilteredBuildsMatchRowPathBothVersions) {
  const trace::FleetTrace fleet = simulated_fleet();
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.2;
  for (const trace::DriveModel model : trace::kAllModels) {
    opts.model_filter = model;
    const ml::Dataset expected = core::build_dataset(fleet, opts);
    for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
      for (const std::uint32_t chunk_drives : {3u, 1000000u}) {  // multi / single chunk
        const ColumnarFleetView view = encode_view(fleet, version, chunk_drives);
        expect_datasets_identical(expected, core::build_dataset(view, opts));
      }
    }
  }
}

TEST(ZoneMapPruning, UnfilteredBuildsMatchRowPathBothVersions) {
  const trace::FleetTrace fleet = simulated_fleet(8);
  core::DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.3;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3})
    expect_datasets_identical(
        expected, core::build_dataset(encode_view(fleet, version, 5), opts));
}

TEST(ZoneMapPruning, FilterMatchingNothingYieldsEmptyDatasetIdentically) {
  // A fleet of only MlcA drives, filtered for MlcD: every chunk prunes.
  trace::FleetTrace fleet = simulated_fleet(9);
  std::erase_if(fleet.drives, [](const trace::DriveHistory& d) {
    return d.model != trace::DriveModel::MlcA;
  });
  core::DatasetBuildOptions opts;
  opts.model_filter = trace::DriveModel::MlcD;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  EXPECT_EQ(expected.size(), 0u);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3})
    expect_datasets_identical(
        expected, core::build_dataset(encode_view(fleet, version, 4), opts));
}

TEST(ZoneMapPruning, AllSwapFreeFleetBuildsIdentically) {
  trace::FleetTrace fleet = simulated_fleet(10, 77);
  for (trace::DriveHistory& d : fleet.drives) d.swaps.clear();
  core::DatasetBuildOptions opts;
  opts.model_filter = trace::DriveModel::MlcB;
  opts.negative_keep_prob = 0.25;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
    const ColumnarFleetView view = encode_view(fleet, version, 4);
    EXPECT_EQ(view.total_swaps(), 0u);
    expect_datasets_identical(expected, core::build_dataset(view, opts));
    // with_swaps_only over a swap-free fleet: every chunk is provably
    // irrelevant.
    ScanPredicate swaps_only;
    swaps_only.with_swaps_only = true;
    for (std::size_t c = 0; c < view.chunk_count(); ++c)
      EXPECT_FALSE(view.zone_map(c).may_match(swaps_only));
  }
}

TEST(ZoneMapPruning, MayMatchIsConservativeOverSeededFleets) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const trace::FleetTrace fleet = simulated_fleet(6, seed);
    const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);

    std::vector<ScanPredicate> predicates;
    predicates.push_back({});  // match-all
    for (const trace::DriveModel model : trace::kAllModels) {
      ScanPredicate p;
      p.model = model;
      predicates.push_back(p);
    }
    for (const std::int32_t lo : {-5, 0, 50, 400, 5000}) {
      ScanPredicate p;
      p.min_day = lo;
      p.max_day = lo + 100;
      predicates.push_back(p);
      p.with_swaps_only = true;
      predicates.push_back(p);
    }

    for (const ScanPredicate& pred : predicates) {
      for (std::size_t c = 0; c < view.chunk_count(); ++c) {
        if (chunk_has_match(view.chunk(c), pred))
          EXPECT_TRUE(view.zone_map(c).may_match(pred))
              << "seed " << seed << " chunk " << c << " pruned a matching chunk";
      }
    }
  }
}

TEST(ZoneMapPruning, DayRangePredicatesPruneDisjointChunksInV3) {
  const trace::FleetTrace fleet = simulated_fleet(6);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);
  ASSERT_GT(view.chunk_count(), 0u);
  ScanPredicate far_future;
  far_future.min_day = 1 << 28;  // beyond any simulated day
  for (std::size_t c = 0; c < view.chunk_count(); ++c)
    EXPECT_FALSE(view.zone_map(c).may_match(far_future));
  // v2 zone maps lack day stats: the same predicate must NOT prune (it
  // cannot prove emptiness), only stay conservative.
  const ColumnarFleetView v2 = encode_view(fleet, kColumnarVersion, 4);
  for (std::size_t c = 0; c < v2.chunk_count(); ++c)
    EXPECT_TRUE(v2.zone_map(c).may_match(far_future));
}

TEST(ZoneMapPruning, V3ZoneStatsMatchDecodedColumns) {
  const trace::FleetTrace fleet = simulated_fleet(5);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 3);
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const ChunkZoneMap& zone = view.zone_map(c);
    ASSERT_TRUE(zone.stats_valid);
    const ChunkView& chunk = view.chunk(c);
    if (chunk.day.empty()) continue;
    std::int32_t lo = chunk.day.front(), hi = chunk.day.front();
    for (const std::int32_t d : chunk.day) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    EXPECT_EQ(zone.stats(ZoneColumn::kDay).min, lo);
    EXPECT_EQ(zone.stats(ZoneColumn::kDay).max, hi);
  }
}

}  // namespace
}  // namespace ssdfail::store
