// Zone-map predicate-pushdown correctness (the v3 tentpole property): a
// pruned scan must return row sets IDENTICAL to the unpruned scan — the
// zone map may only skip chunks that provably contain no matching row.
//
// Covers: dataset builds with model filters across the row path, v2, and
// v3 (bit-identical floats), the conservative may_match contract checked
// exhaustively against decoded chunk contents over seeded fleets, and the
// edge shapes named by the issue: all-swap-free fleets, single-chunk
// stores, and filters matching nothing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <vector>

#include "core/dataset_builder.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"
#include "store/sharded.hpp"

namespace ssdfail::store {
namespace {

trace::FleetTrace simulated_fleet(std::uint32_t drives_per_model = 12,
                                  std::uint64_t seed = 1234) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = seed;
  return sim::FleetSimulator(cfg).generate_all();
}

ColumnarFleetView encode_view(const trace::FleetTrace& fleet, std::uint32_t version,
                              std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriteOptions opts;
  opts.chunk_drives = chunk_drives;
  opts.version = version;
  write_columnar(out, fleet, opts);
  const std::string s = out.str();
  return ColumnarFleetView::from_buffer({s.begin(), s.end()});
}

void expect_datasets_identical(const ml::Dataset& a, const ml::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.x.cols(), b.x.cols());
  ASSERT_EQ(a.x.data(), b.x.data());  // bit-identical floats
  ASSERT_EQ(a.y, b.y);
  ASSERT_EQ(a.groups, b.groups);
  ASSERT_EQ(a.feature_names, b.feature_names);
}

/// Ground truth for may_match: does any row of the chunk satisfy the
/// predicate?  (Decodes the chunk — the point is that the zone map must
/// never disagree in the pruning direction.)
bool chunk_has_match(const ChunkView& chunk, const ScanPredicate& pred) {
  for (const DriveRef& ref : chunk.drives) {
    if (pred.model && *pred.model != ref.model) continue;
    if (pred.wants_swaps() && ref.swap_count == 0) continue;
    if (pred.min_swap_day || pred.max_swap_day) {
      bool swap_hit = false;
      for (std::size_t s = 0; s < ref.swap_count; ++s) {
        const std::int32_t d = chunk.swap_days[ref.swap_begin + s];
        if (pred.min_swap_day && d < *pred.min_swap_day) continue;
        if (pred.max_swap_day && d > *pred.max_swap_day) continue;
        swap_hit = true;
        break;
      }
      if (!swap_hit) continue;
    }
    for (std::size_t i = 0; i < ref.row_count; ++i) {
      const std::int32_t day = chunk.day[ref.row_begin + i];
      if (pred.min_day && day < *pred.min_day) continue;
      if (pred.max_day && day > *pred.max_day) continue;
      return true;
    }
  }
  return false;
}

TEST(ZoneMapPruning, ModelFilteredBuildsMatchRowPathBothVersions) {
  const trace::FleetTrace fleet = simulated_fleet();
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.2;
  for (const trace::DriveModel model : trace::kAllModels) {
    opts.model_filter = model;
    const ml::Dataset expected = core::build_dataset(fleet, opts);
    for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
      for (const std::uint32_t chunk_drives : {3u, 1000000u}) {  // multi / single chunk
        const ColumnarFleetView view = encode_view(fleet, version, chunk_drives);
        expect_datasets_identical(expected, core::build_dataset(view, opts));
      }
    }
  }
}

TEST(ZoneMapPruning, UnfilteredBuildsMatchRowPathBothVersions) {
  const trace::FleetTrace fleet = simulated_fleet(8);
  core::DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.3;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3})
    expect_datasets_identical(
        expected, core::build_dataset(encode_view(fleet, version, 5), opts));
}

TEST(ZoneMapPruning, FilterMatchingNothingYieldsEmptyDatasetIdentically) {
  // A fleet of only MlcA drives, filtered for MlcD: every chunk prunes.
  trace::FleetTrace fleet = simulated_fleet(9);
  std::erase_if(fleet.drives, [](const trace::DriveHistory& d) {
    return d.model != trace::DriveModel::MlcA;
  });
  core::DatasetBuildOptions opts;
  opts.model_filter = trace::DriveModel::MlcD;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  EXPECT_EQ(expected.size(), 0u);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3})
    expect_datasets_identical(
        expected, core::build_dataset(encode_view(fleet, version, 4), opts));
}

TEST(ZoneMapPruning, AllSwapFreeFleetBuildsIdentically) {
  trace::FleetTrace fleet = simulated_fleet(10, 77);
  for (trace::DriveHistory& d : fleet.drives) d.swaps.clear();
  core::DatasetBuildOptions opts;
  opts.model_filter = trace::DriveModel::MlcB;
  opts.negative_keep_prob = 0.25;
  const ml::Dataset expected = core::build_dataset(fleet, opts);
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
    const ColumnarFleetView view = encode_view(fleet, version, 4);
    EXPECT_EQ(view.total_swaps(), 0u);
    expect_datasets_identical(expected, core::build_dataset(view, opts));
    // with_swaps_only over a swap-free fleet: every chunk is provably
    // irrelevant.
    ScanPredicate swaps_only;
    swaps_only.with_swaps_only = true;
    for (std::size_t c = 0; c < view.chunk_count(); ++c)
      EXPECT_FALSE(view.zone_map(c).may_match(swaps_only));
  }
}

TEST(ZoneMapPruning, MayMatchIsConservativeOverSeededFleets) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const trace::FleetTrace fleet = simulated_fleet(6, seed);
    const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);

    std::vector<ScanPredicate> predicates;
    predicates.push_back({});  // match-all
    for (const trace::DriveModel model : trace::kAllModels) {
      ScanPredicate p;
      p.model = model;
      predicates.push_back(p);
    }
    for (const std::int32_t lo : {-5, 0, 50, 400, 5000}) {
      ScanPredicate p;
      p.min_day = lo;
      p.max_day = lo + 100;
      predicates.push_back(p);
      p.with_swaps_only = true;
      predicates.push_back(p);
    }
    for (const std::int32_t lo : {-100, 0, 30, 200, 700, 100000}) {
      ScanPredicate p;
      p.min_swap_day = lo;
      predicates.push_back(p);
      p.max_swap_day = lo + 150;
      predicates.push_back(p);
      p.min_swap_day.reset();
      predicates.push_back(p);
    }

    for (const ScanPredicate& pred : predicates) {
      for (std::size_t c = 0; c < view.chunk_count(); ++c) {
        if (chunk_has_match(view.chunk(c), pred))
          EXPECT_TRUE(view.zone_map(c).may_match(pred))
              << "seed " << seed << " chunk " << c << " pruned a matching chunk";
      }
    }
  }
}

TEST(ZoneMapPruning, DayRangePredicatesPruneDisjointChunksInV3) {
  const trace::FleetTrace fleet = simulated_fleet(6);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);
  ASSERT_GT(view.chunk_count(), 0u);
  ScanPredicate far_future;
  far_future.min_day = 1 << 28;  // beyond any simulated day
  for (std::size_t c = 0; c < view.chunk_count(); ++c)
    EXPECT_FALSE(view.zone_map(c).may_match(far_future));
  // v2 zone maps lack day stats: the same predicate must NOT prune (it
  // cannot prove emptiness), only stay conservative.
  const ColumnarFleetView v2 = encode_view(fleet, kColumnarVersion, 4);
  for (std::size_t c = 0; c < v2.chunk_count(); ++c)
    EXPECT_TRUE(v2.zone_map(c).may_match(far_future));
}

TEST(ZoneMapPruning, SwapRangeAndDayWindowBuildsMatchRowPathBothVersions) {
  // The Retrainer's scan shape: drives with a swap inside a recent window,
  // prediction rows restricted to a label-matured day range.  Pruned
  // columnar builds must stay bit-identical to the row path.
  const trace::FleetTrace fleet = simulated_fleet(14, 99);
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.5;
  struct Window {
    std::optional<std::int32_t> min_swap, max_swap, min_day, max_day;
  };
  const Window windows[] = {
      {200, std::nullopt, std::nullopt, std::nullopt},
      {std::nullopt, 300, std::nullopt, std::nullopt},
      {100, 500, 50, 450},
      {1 << 28, std::nullopt, std::nullopt, std::nullopt},  // matches nothing
      {std::nullopt, std::nullopt, 100, 400},               // day window only
  };
  for (const Window& w : windows) {
    opts.min_swap_day = w.min_swap;
    opts.max_swap_day = w.max_swap;
    opts.min_day = w.min_day;
    opts.max_day = w.max_day;
    const ml::Dataset expected = core::build_dataset(fleet, opts);
    for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
      for (const std::uint32_t chunk_drives : {3u, 1000000u}) {
        const ColumnarFleetView view = encode_view(fleet, version, chunk_drives);
        expect_datasets_identical(expected, core::build_dataset(view, opts));
      }
    }
  }
}

TEST(ZoneMapPruning, DayWindowedBuildIsSubsetOfUnwindowedBuild) {
  // Windowed rows must be the unwindowed build's matching rows, same
  // floats — the property the Retrainer's maturation window relies on.
  const trace::FleetTrace fleet = simulated_fleet(10, 5);
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 1.0;  // keep everything so row sets are dense
  const ml::Dataset full = core::build_dataset(fleet, opts);
  opts.min_day = 120;
  opts.max_day = 480;
  const ml::Dataset windowed = core::build_dataset(fleet, opts);
  ASSERT_GT(windowed.size(), 0u);
  ASSERT_LT(windowed.size(), full.size());
  // Every windowed row appears in the full build, in order.
  std::size_t j = 0;
  for (std::size_t i = 0; i < windowed.x.rows(); ++i) {
    while (j < full.x.rows() &&
           !(full.groups[j] == windowed.groups[i] &&
             std::equal(full.x.row(j).begin(), full.x.row(j).end(),
                        windowed.x.row(i).begin(), windowed.x.row(i).end()) &&
             full.y[j] == windowed.y[i]))
      ++j;
    ASSERT_LT(j, full.x.rows()) << "windowed row " << i << " not found in full build";
    ++j;
  }
}

TEST(ZoneMapPruning, SwapRangePredicatePrunesSwapFreeChunksEvenInV2) {
  trace::FleetTrace fleet = simulated_fleet(10, 77);
  for (trace::DriveHistory& d : fleet.drives) d.swaps.clear();
  ScanPredicate pred;
  pred.min_swap_day = 0;
  for (const std::uint32_t version : {kColumnarVersion, kColumnarVersionV3}) {
    const ColumnarFleetView view = encode_view(fleet, version, 4);
    for (std::size_t c = 0; c < view.chunk_count(); ++c)
      EXPECT_FALSE(view.zone_map(c).may_match(pred));
  }
}

TEST(ZoneMapPruning, SwapDayStatsPruneDisjointRangesInV3) {
  const trace::FleetTrace fleet = simulated_fleet(12, 3);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);
  ScanPredicate far_future;
  far_future.min_swap_day = 1 << 28;
  for (std::size_t c = 0; c < view.chunk_count(); ++c)
    EXPECT_FALSE(view.zone_map(c).may_match(far_future));
  ScanPredicate far_past;
  far_past.max_swap_day = -(1 << 28);
  for (std::size_t c = 0; c < view.chunk_count(); ++c)
    EXPECT_FALSE(view.zone_map(c).may_match(far_past));
}

// --- Heterogeneous device classes through the store (the PR 10 property):
// a mixed-class fleet must round-trip bit-identically through v3 and the
// sharded layout, and device-class predicates must prune chunks without
// ever changing the produced row set. ---

trace::FleetTrace mixed_fleet(std::uint32_t drives_per_model = 8,
                              std::uint64_t seed = 4242) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = seed;
  cfg = cfg.mixed();
  return sim::FleetSimulator(cfg).generate_all();
}

TEST(ZoneMapPruning, MixedClassFleetRoundTripsThroughV3AndShardedStore) {
  const trace::FleetTrace fleet = mixed_fleet();
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.2;
  for (const std::optional<trace::DeviceClass> cls :
       {std::optional<trace::DeviceClass>{},
        std::optional<trace::DeviceClass>{trace::DeviceClass::kMlcSsd},
        std::optional<trace::DeviceClass>{trace::DeviceClass::kHdd},
        std::optional<trace::DeviceClass>{trace::DeviceClass::kNvmeSsd}}) {
    opts.class_filter = cls;
    const ml::Dataset expected = core::build_dataset(fleet, opts);
    ASSERT_GT(expected.size(), 0u);
    // Single-file v3, multi-chunk and single-chunk.
    for (const std::uint32_t chunk_drives : {3u, 1000000u})
      expect_datasets_identical(
          expected,
          core::build_dataset(encode_view(fleet, kColumnarVersionV3, chunk_drives),
                              opts));
    // Sharded v3 store: write to disk, reopen, build.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("ssdfail_zonemap_mixed_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    ShardedWriteOptions wopts;
    wopts.store.version = kColumnarVersionV3;
    wopts.store.chunk_drives = 4;
    wopts.drives_per_shard = 10;
    write_sharded(dir.string(), fleet, wopts);
    const ShardedFleetView sharded = ShardedFleetView::open(dir.string());
    EXPECT_GT(sharded.shard_count(), 1u);
    expect_datasets_identical(expected, core::build_dataset(sharded, opts));
    std::filesystem::remove_all(dir);
  }
}

TEST(ZoneMapPruning, DeviceClassPredicatePrunesExactlyLikeAnUnprunedScan) {
  // The class mask may only skip chunks containing no drive of the class;
  // chunk_has_match (a full decode) is the ground truth.  Chunks are small
  // so single-class runs of the model-major fleet produce genuinely
  // prunable chunks for every class.
  const trace::FleetTrace fleet = mixed_fleet(6, 7);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 4);
  for (const trace::DeviceClass cls : trace::kAllDeviceClasses) {
    ScanPredicate pred;
    pred.device_class = cls;
    std::size_t pruned = 0;
    for (std::size_t c = 0; c < view.chunk_count(); ++c) {
      const bool has = [&] {
        for (const DriveRef& ref : view.chunk(c).drives)
          if (trace::device_class(ref.model) == cls && ref.row_count > 0) return true;
        return false;
      }();
      if (!view.zone_map(c).may_match(pred)) {
        ++pruned;
        EXPECT_FALSE(has) << "pruned a chunk holding class "
                          << trace::device_class_name(cls);
      }
    }
    EXPECT_GT(pruned, 0u) << "class " << trace::device_class_name(cls)
                          << " never pruned a chunk";
  }
  // model ∩ device_class of a DIFFERENT class is unsatisfiable: every
  // chunk must prune.
  ScanPredicate clash;
  clash.model = trace::DriveModel::Hdd;
  clash.device_class = trace::DeviceClass::kNvmeSsd;
  for (std::size_t c = 0; c < view.chunk_count(); ++c)
    EXPECT_FALSE(view.zone_map(c).may_match(clash));
}

TEST(ZoneMapPruning, V3ZoneStatsMatchDecodedColumns) {
  const trace::FleetTrace fleet = simulated_fleet(5);
  const ColumnarFleetView view = encode_view(fleet, kColumnarVersionV3, 3);
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const ChunkZoneMap& zone = view.zone_map(c);
    ASSERT_TRUE(zone.stats_valid);
    const ChunkView& chunk = view.chunk(c);
    if (chunk.day.empty()) continue;
    std::int32_t lo = chunk.day.front(), hi = chunk.day.front();
    for (const std::int32_t d : chunk.day) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    EXPECT_EQ(zone.stats(ZoneColumn::kDay).min, lo);
    EXPECT_EQ(zone.stats(ZoneColumn::kDay).max, hi);
  }
}

}  // namespace
}  // namespace ssdfail::store
