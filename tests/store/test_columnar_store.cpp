#include "store/columnar.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/crc32.hpp"

namespace ssdfail::store {
namespace {

trace::FleetTrace simulated_fleet(std::uint32_t drives_per_model = 12) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = 77;
  return sim::FleetSimulator(cfg).generate_all();
}

/// A tiny hand-built fleet hitting the edge shapes: empty record lists,
/// swaps, all models, non-zero deploy days.
trace::FleetTrace tiny_fleet() {
  trace::FleetTrace fleet;
  for (std::uint32_t d = 0; d < 7; ++d) {
    trace::DriveHistory drive;
    drive.model = trace::kAllModels[d % trace::kNumModels];
    drive.drive_index = 100 + d;
    drive.deploy_day = static_cast<std::int32_t>(d);
    for (std::uint32_t day = 0; day < d * 3; ++day) {
      trace::DailyRecord r;
      r.day = drive.deploy_day + static_cast<std::int32_t>(day);
      r.reads = d * 1000 + day;
      r.writes = day * 7;
      r.erases = day % 5;
      r.pe_cycles = day * 2;
      r.bad_blocks = day / 4;
      r.factory_bad_blocks = static_cast<std::uint16_t>(d);
      r.read_only = day % 3 == 0;
      r.dead = day + 1 == d * 3 && d % 2 == 0;
      for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
        r.errors[e] = static_cast<std::uint32_t>(day * 10 + e);
      drive.records.push_back(r);
    }
    if (d % 2 == 1) drive.swaps.push_back({drive.deploy_day + 2});
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

std::vector<char> encode(const trace::FleetTrace& fleet, std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  write_columnar(out, fleet, {chunk_drives});
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

void expect_fleets_equal(const trace::FleetTrace& a, const trace::FleetTrace& b) {
  ASSERT_EQ(a.drives.size(), b.drives.size());
  for (std::size_t d = 0; d < a.drives.size(); ++d) {
    const trace::DriveHistory& x = a.drives[d];
    const trace::DriveHistory& y = b.drives[d];
    ASSERT_EQ(x.uid(), y.uid());
    ASSERT_EQ(x.deploy_day, y.deploy_day);
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t r = 0; r < x.records.size(); ++r)
      ASSERT_EQ(x.records[r], y.records[r]) << "drive " << d << " record " << r;
    ASSERT_EQ(x.swaps.size(), y.swaps.size());
    for (std::size_t s = 0; s < x.swaps.size(); ++s)
      ASSERT_EQ(x.swaps[s].day, y.swaps[s].day);
    EXPECT_FALSE(y.truth.has_value());  // ground truth never serialized
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ssdf2_" + name + ".bin";
}

TEST(ColumnarStore, RoundTripsSimulatedFleet) {
  const trace::FleetTrace fleet = simulated_fleet();
  const auto view = ColumnarFleetView::from_buffer(encode(fleet, 5));
  EXPECT_EQ(view.drive_count(), fleet.drives.size());
  EXPECT_EQ(view.total_records(), fleet.total_records());
  EXPECT_EQ(view.total_swaps(), fleet.total_swaps());
  expect_fleets_equal(fleet, materialize(view));
}

TEST(ColumnarStore, RoundTripsTinyFleetAtEveryChunkSize) {
  const trace::FleetTrace fleet = tiny_fleet();
  for (std::uint32_t chunk_drives : {1u, 2u, 3u, 7u, 64u}) {
    const auto view = ColumnarFleetView::from_buffer(encode(fleet, chunk_drives));
    expect_fleets_equal(fleet, materialize(view));
    EXPECT_EQ(view.chunk_drives(), chunk_drives);
    EXPECT_EQ(view.chunk_count(),
              (fleet.drives.size() + chunk_drives - 1) / chunk_drives);
  }
}

TEST(ColumnarStore, EmptyFleetRoundTrips) {
  const auto view = ColumnarFleetView::from_buffer(encode(trace::FleetTrace{}, 8));
  EXPECT_EQ(view.chunk_count(), 0u);
  EXPECT_EQ(view.drive_count(), 0u);
  EXPECT_EQ(view.total_records(), 0u);
  EXPECT_TRUE(materialize(view).drives.empty());
}

TEST(ColumnarStore, WriterTreatsZeroChunkDrivesAsOne) {
  const trace::FleetTrace fleet = tiny_fleet();
  const auto view = ColumnarFleetView::from_buffer(encode(fleet, 0));
  EXPECT_EQ(view.chunk_count(), fleet.drives.size());
  expect_fleets_equal(fleet, materialize(view));
}

TEST(ColumnarStore, DriveRefsMatchSourceOrderAndUids) {
  const trace::FleetTrace fleet = tiny_fleet();
  const auto view = ColumnarFleetView::from_buffer(encode(fleet, 3));
  std::size_t d = 0;
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const ChunkView& chunk = view.chunk(c);
    std::size_t expect_row = 0;
    for (const DriveRef& ref : chunk.drives) {
      EXPECT_EQ(ref.uid(), fleet.drives[d].uid());
      EXPECT_EQ(ref.row_begin, expect_row);
      EXPECT_EQ(ref.row_count, fleet.drives[d].records.size());
      expect_row += ref.row_count;
      ++d;
    }
    EXPECT_EQ(chunk.day.size(), expect_row);
  }
  EXPECT_EQ(d, fleet.drives.size());
}

TEST(ColumnarStore, GatherDriveReusesScratchVectors) {
  const trace::FleetTrace fleet = tiny_fleet();
  const auto view = ColumnarFleetView::from_buffer(encode(fleet, 64));
  const ChunkView& chunk = view.chunk(0);
  trace::DriveHistory scratch;
  scratch.truth.emplace();  // must be cleared by gather
  for (std::size_t d = 0; d < fleet.drives.size(); ++d) {
    chunk.gather_drive(chunk.drives[d], scratch);
    EXPECT_FALSE(scratch.truth.has_value());
    ASSERT_EQ(scratch.records.size(), fleet.drives[d].records.size());
    for (std::size_t r = 0; r < scratch.records.size(); ++r)
      EXPECT_EQ(scratch.records[r], fleet.drives[d].records[r]);
  }
}

TEST(ColumnarStore, OpenIsMmapBackedAndMatchesHeapOpen) {
  const trace::FleetTrace fleet = simulated_fleet(6);
  const std::string path = temp_path("mmap_vs_heap");
  write_columnar_file(path, fleet, {4});

  const auto mapped = ColumnarFleetView::open(path);
  OpenOptions no_mmap;
  no_mmap.allow_mmap = false;
  const auto heap = ColumnarFleetView::open(path, no_mmap);

#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(mapped.mmap_backed());
#endif
  EXPECT_FALSE(heap.mmap_backed());
  expect_fleets_equal(materialize(mapped), materialize(heap));
  expect_fleets_equal(fleet, materialize(mapped));
  std::remove(path.c_str());
}

TEST(ColumnarStore, ViewCopiesShareBackingAndOutliveTheOriginal) {
  const trace::FleetTrace fleet = tiny_fleet();
  std::vector<ColumnarFleetView> copies;
  {
    const auto view = ColumnarFleetView::from_buffer(encode(fleet, 2));
    copies.push_back(view);
    copies.push_back(view);
  }
  expect_fleets_equal(fleet, materialize(copies[0]));
  EXPECT_EQ(copies[1].chunk(0).day.data(), copies[0].chunk(0).day.data());
}

TEST(ColumnarStore, OpenMissingFileThrows) {
  EXPECT_THROW((void)ColumnarFleetView::open(temp_path("does_not_exist_xyz")),
               std::runtime_error);
}

TEST(ColumnarStore, DetectsCorruptionInEveryRegion) {
  const trace::FleetTrace fleet = tiny_fleet();
  const std::vector<char> good = encode(fleet, 3);
  // One probe byte in each structural region: header, chunk drive index,
  // column data, footer directory, trailer.
  const std::size_t probes[] = {5, 30, good.size() / 2, good.size() - 40,
                                good.size() - 4};
  for (const std::size_t pos : probes) {
    std::vector<char> bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW((void)ColumnarFleetView::from_buffer(std::move(bad)),
                 std::runtime_error)
        << "flip at byte " << pos << " was not detected";
  }
}

TEST(ColumnarStore, CrcFailureIncrementsCounter) {
  const trace::FleetTrace fleet = tiny_fleet();
  std::vector<char> bad = encode(fleet, 64);
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 1);
  auto& counter = obs::MetricsRegistry::global().counter("store_crc_failures_total");
  const std::uint64_t before = counter.value();
  EXPECT_THROW((void)ColumnarFleetView::from_buffer(std::move(bad)),
               std::runtime_error);
  EXPECT_GT(counter.value(), before);
}

TEST(ColumnarStore, VerifyCrcOffSkipsColumnChecks) {
  const trace::FleetTrace fleet = tiny_fleet();
  std::vector<char> good = encode(fleet, 64);
  // Flip one column byte far from the structural metadata: with CRC
  // verification off the open succeeds and the corruption is silent —
  // exactly the trade the OpenOptions comment documents.
  std::vector<char> bad = good;
  const std::size_t pos = good.size() / 2;
  bad[pos] = static_cast<char>(bad[pos] ^ 1);
  OpenOptions trusting;
  trusting.verify_crc = false;
  const auto view = ColumnarFleetView::from_buffer(std::move(bad), trusting);
  EXPECT_EQ(view.drive_count(), fleet.drives.size());
}

TEST(ColumnarStore, EveryTruncationThrows) {
  const trace::FleetTrace fleet = tiny_fleet();
  const std::vector<char> good = encode(fleet, 3);
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<char> prefix(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)ColumnarFleetView::from_buffer(std::move(prefix)),
                 std::runtime_error)
        << "prefix of " << len << " bytes was accepted";
  }
}

TEST(ColumnarStore, ChunksReadCounterAdvances) {
  const trace::FleetTrace fleet = tiny_fleet();
  auto& counter = obs::MetricsRegistry::global().counter("store_chunks_read_total");
  const std::uint64_t before = counter.value();
  const auto view = ColumnarFleetView::from_buffer(encode(fleet, 2));
  EXPECT_EQ(counter.value() - before, view.chunk_count());
}

TEST(Crc32, MatchesKnownVectorAndChains) {
  // The standard IEEE test vector: crc32("123456789") == 0xCBF43926.
  const char data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(0, {data, sizeof(data)}), 0xCBF43926u);
  // zlib-style chaining: crc(a ++ b) == crc(crc(a), b).
  EXPECT_EQ(crc32(crc32(0, {data, 4}), {data + 4, sizeof(data) - 4}),
            crc32(0, {data, sizeof(data)}));
}

}  // namespace
}  // namespace ssdfail::store
