file(REMOVE_RECURSE
  "CMakeFiles/test_columnar_store.dir/test_columnar_store.cpp.o"
  "CMakeFiles/test_columnar_store.dir/test_columnar_store.cpp.o.d"
  "test_columnar_store"
  "test_columnar_store.pdb"
  "test_columnar_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_columnar_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
