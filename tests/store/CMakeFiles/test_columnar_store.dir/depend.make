# Empty dependencies file for test_columnar_store.
# This may be replaced when dependencies are built.
