// Sharded SSDF2 layout (store/sharded.hpp): manifest round-trip and
// corruption rejection, multi-shard write/open/materialize equivalence,
// and manifest/shard cross-checks.

#include "store/sharded.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "sim/fleet_simulator.hpp"

namespace ssdfail::store {
namespace {

trace::FleetTrace simulated_fleet(std::uint32_t drives_per_model = 10) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = 99;
  return sim::FleetSimulator(cfg).generate_all();
}

void expect_fleets_equal(const trace::FleetTrace& a, const trace::FleetTrace& b) {
  ASSERT_EQ(a.drives.size(), b.drives.size());
  for (std::size_t d = 0; d < a.drives.size(); ++d) {
    ASSERT_EQ(a.drives[d].uid(), b.drives[d].uid());
    ASSERT_EQ(a.drives[d].records.size(), b.drives[d].records.size());
    for (std::size_t r = 0; r < a.drives[d].records.size(); ++r)
      ASSERT_EQ(a.drives[d].records[r], b.drives[d].records[r]);
    ASSERT_EQ(a.drives[d].swaps.size(), b.drives[d].swaps.size());
  }
}

/// Unique per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("ssdfail_sharded_" + name + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(ShardManifest, RoundTrips) {
  ShardManifest m;
  m.shards.push_back({"shard-000000.ssdf2", 1234, 10, 2000, 3});
  m.shards.push_back({"shard-000001.ssdf2", 999, 7, 1500, 0});
  const ShardManifest back = decode_manifest(encode_manifest(m));
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.shards[0].file, "shard-000000.ssdf2");
  EXPECT_EQ(back.shards[0].bytes, 1234u);
  EXPECT_EQ(back.shards[1].n_records, 1500u);
}

TEST(ShardManifest, EmptyManifestRoundTrips) {
  const ShardManifest back = decode_manifest(encode_manifest({}));
  EXPECT_TRUE(back.shards.empty());
}

TEST(ShardManifest, EveryBitFlipIsDetected) {
  ShardManifest m;
  m.shards.push_back({"shard-000000.ssdf2", 64, 1, 10, 0});
  const std::string image = encode_manifest(m);
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = image;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_THROW((void)decode_manifest(corrupt), std::runtime_error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ShardManifest, EveryTruncationThrows) {
  ShardManifest m;
  m.shards.push_back({"shard-000000.ssdf2", 64, 1, 10, 0});
  const std::string image = encode_manifest(m);
  for (std::size_t len = 0; len < image.size(); ++len)
    EXPECT_THROW((void)decode_manifest(image.substr(0, len)), std::runtime_error)
        << "length " << len;
}

TEST(ShardManifest, RejectsPathTraversalNames) {
  ShardManifest m;
  m.shards.push_back({"../evil.ssdf2", 1, 1, 1, 0});
  EXPECT_THROW((void)encode_manifest(m), std::runtime_error);
}

TEST(ShardedStore, WriteOpenMaterializeRoundTrips) {
  const trace::FleetTrace fleet = simulated_fleet();
  TempDir dir("roundtrip");
  ShardedWriteOptions opts;
  opts.drives_per_shard = 7;  // forces several shards
  opts.store.version = kColumnarVersionV3;
  opts.store.chunk_drives = 3;
  write_sharded(dir.str(), fleet, opts);

  const ShardedFleetView view = ShardedFleetView::open(dir.str());
  EXPECT_GT(view.shard_count(), 1u);
  EXPECT_EQ(view.drive_count(), fleet.drives.size());
  expect_fleets_equal(fleet, materialize(view));
}

TEST(ShardedStore, SingleShardAndV2ShardsWork) {
  const trace::FleetTrace fleet = simulated_fleet(4);
  TempDir dir("v2");
  ShardedWriteOptions opts;
  opts.drives_per_shard = 100000;
  opts.store.version = kColumnarVersion;
  write_sharded(dir.str(), fleet, opts);
  const ShardedFleetView view = ShardedFleetView::open(dir.str());
  EXPECT_EQ(view.shard_count(), 1u);
  expect_fleets_equal(fleet, materialize(view));
}

TEST(ShardedStore, EmptyFleetYieldsEmptyManifest) {
  TempDir dir("empty");
  write_sharded(dir.str(), trace::FleetTrace{}, {});
  const ShardedFleetView view = ShardedFleetView::open(dir.str());
  EXPECT_EQ(view.shard_count(), 0u);
  EXPECT_EQ(view.drive_count(), 0u);
  EXPECT_TRUE(materialize(view).drives.empty());
}

TEST(ShardedStore, OpenRejectsShardSizeMismatch) {
  const trace::FleetTrace fleet = simulated_fleet(4);
  TempDir dir("sizemismatch");
  write_sharded(dir.str(), fleet, {});
  ShardManifest m = read_manifest(dir.str());
  ASSERT_FALSE(m.shards.empty());
  m.shards[0].bytes += 1;
  write_manifest(dir.str(), m);
  EXPECT_THROW((void)ShardedFleetView::open(dir.str()), std::runtime_error);
}

TEST(ShardedStore, OpenRejectsMissingShard) {
  const trace::FleetTrace fleet = simulated_fleet(4);
  TempDir dir("missing");
  write_sharded(dir.str(), fleet, {});
  const ShardManifest m = read_manifest(dir.str());
  ASSERT_FALSE(m.shards.empty());
  std::filesystem::remove(std::filesystem::path(dir.str()) / m.shards[0].file);
  EXPECT_THROW((void)ShardedFleetView::open(dir.str()), std::runtime_error);
}

TEST(ShardedStore, OpenRejectsTotalsMismatch) {
  const trace::FleetTrace fleet = simulated_fleet(4);
  TempDir dir("totals");
  write_sharded(dir.str(), fleet, {});
  ShardManifest m = read_manifest(dir.str());
  ASSERT_FALSE(m.shards.empty());
  m.shards[0].n_records += 1;
  write_manifest(dir.str(), m);
  EXPECT_THROW((void)ShardedFleetView::open(dir.str()), std::runtime_error);
}

}  // namespace
}  // namespace ssdfail::store
