# CMake generated Testfile for 
# Source directory: /root/repo/tests/store
# Build directory: /root/repo/tests/store
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/store/test_columnar_store[1]_include.cmake")
