// Unit suite for the v3 column codecs (store/encoding.hpp): round-trips
// across every encoding and value shape, writer selection sanity, and the
// corrupt-payload rejection contract (clean throw, never UB — this binary
// runs in the ASan CI lane via the store test targets).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"
#include "store/encoding.hpp"

namespace ssdfail::store {
namespace {

std::vector<std::uint64_t> widen_i32(const std::vector<std::int32_t>& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const std::int32_t x : v)
    out.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
  return out;
}

void roundtrip(const std::vector<std::uint64_t>& values, std::size_t elem_bytes,
               bool is_signed) {
  const EncodedColumn enc = encode_column(values, elem_bytes);
  std::vector<std::uint64_t> back;
  decode_column(enc.encoding, enc.payload, values.size(), elem_bytes, is_signed,
                back);
  ASSERT_EQ(values, back) << "winner encoding " << encoding_name(enc.encoding);
}

TEST(ColumnCodec, EmptyColumn) {
  roundtrip({}, 4, false);
  roundtrip({}, 1, false);
  const EncodedColumn enc = encode_column({}, 4);
  EXPECT_TRUE(enc.payload.empty());
}

TEST(ColumnCodec, MonotoneCumulativePrefersDelta) {
  std::vector<std::uint64_t> values;
  std::uint64_t v = 1000;
  for (int i = 0; i < 1000; ++i) values.push_back(v += 3);
  const EncodedColumn enc = encode_column(values, 4);
  EXPECT_EQ(enc.encoding, ColumnEncoding::kDeltaPack);
  EXPECT_LT(enc.payload.size(), values.size());  // ~2 bits/value + headers
  roundtrip(values, 4, false);
}

TEST(ColumnCodec, ConstantColumnPacksToNearNothing) {
  const std::vector<std::uint64_t> values(4096, 77);
  const EncodedColumn enc = encode_column(values, 4);
  EXPECT_LE(enc.payload.size(), 64u);  // rle pair or width-0 delta blocks
  roundtrip(values, 4, false);
}

TEST(ColumnCodec, AllZeroColumn) {
  const std::vector<std::uint64_t> values(1000, 0);
  const EncodedColumn enc = encode_column(values, 4);
  EXPECT_LE(enc.payload.size(), 40u);
  roundtrip(values, 4, false);
}

TEST(ColumnCodec, NoisyBoundedValuesBeatRaw) {
  stats::Rng rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.next_u32() % 100000);
  const EncodedColumn enc = encode_column(values, 4);
  EXPECT_LT(enc.payload.size(), values.size() * 4);  // <17 of 32 bits/value
  roundtrip(values, 4, false);
}

TEST(ColumnCodec, FullRangeUnsignedRoundTrips) {
  stats::Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 777; ++i) values.push_back(rng.next_u32());
  values.push_back(std::numeric_limits<std::uint32_t>::max());
  values.push_back(0);
  roundtrip(values, 4, false);
}

TEST(ColumnCodec, SignedValuesRoundTripAllEncodings) {
  const std::vector<std::int32_t> days = {-100, -1, 0, 1, 5, 5, 5, 1000,
                                          std::numeric_limits<std::int32_t>::min(),
                                          std::numeric_limits<std::int32_t>::max()};
  roundtrip(widen_i32(days), 4, true);
}

TEST(ColumnCodec, NarrowTypesRoundTrip) {
  stats::Rng rng(9);
  std::vector<std::uint64_t> u8s, u16s;
  for (int i = 0; i < 500; ++i) {
    u8s.push_back(rng.next_u32() % 4);  // flags-like
    u16s.push_back(rng.next_u32() % 60000);
  }
  roundtrip(u8s, 1, false);
  roundtrip(u16s, 2, false);
}

TEST(ColumnCodec, FlagRunsPreferRle) {
  std::vector<std::uint64_t> flags(10000, 0);
  for (std::size_t i = 9000; i < flags.size(); ++i) flags[i] = 2;  // died late
  const EncodedColumn enc = encode_column(flags, 1);
  EXPECT_LE(enc.payload.size(), 16u);
  roundtrip(flags, 1, false);
}

TEST(ColumnCodec, DecodeRejectsWrongPayloadSizes) {
  const std::vector<std::uint64_t> values = {1, 2, 3, 4, 5};
  std::vector<std::uint64_t> out;
  for (const ColumnEncoding e :
       {ColumnEncoding::kRaw, ColumnEncoding::kDeltaPack, ColumnEncoding::kBitPack,
        ColumnEncoding::kRle}) {
    EncodedColumn enc = encode_column(values, 4);
    // Build payloads for each encoding by re-encoding; exercise truncation
    // and extension against the winner too.
    (void)e;
    std::vector<char> truncated = enc.payload;
    if (!truncated.empty()) {
      truncated.pop_back();
      EXPECT_THROW(
          decode_column(enc.encoding, truncated, values.size(), 4, false, out),
          std::runtime_error);
    }
    std::vector<char> extended = enc.payload;
    extended.push_back('\0');
    EXPECT_THROW(
        decode_column(enc.encoding, extended, values.size(), 4, false, out),
        std::runtime_error);
  }
}

TEST(ColumnCodec, DecodeRejectsOverWideBitWidth) {
  // Hand-built bitpack block: width byte says 65.
  const std::vector<char> payload = {static_cast<char>(65)};
  std::vector<std::uint64_t> out;
  EXPECT_THROW(decode_column(ColumnEncoding::kBitPack, payload, 1, 4, false, out),
               std::runtime_error);
}

TEST(ColumnCodec, DecodeRejectsValueOutOfTypeRange) {
  // A width-33 bitpacked value cannot fit u32.
  const std::vector<std::uint64_t> big = {std::uint64_t{1} << 32};
  const EncodedColumn enc = encode_column(big, 8);  // encode as 8-byte elems
  std::vector<std::uint64_t> out;
  EXPECT_THROW(decode_column(enc.encoding, enc.payload, 1, 4, false, out),
               std::runtime_error);
}

TEST(ColumnCodec, DecodeRejectsRleRunOverrun) {
  // run=5 but n=3.
  std::vector<char> payload;
  const std::uint32_t run = 5;
  payload.insert(payload.end(), reinterpret_cast<const char*>(&run),
                 reinterpret_cast<const char*>(&run) + 4);
  payload.insert(payload.end(), 4, '\0');
  std::vector<std::uint64_t> out;
  EXPECT_THROW(decode_column(ColumnEncoding::kRle, payload, 3, 4, false, out),
               std::runtime_error);
}

TEST(ColumnCodec, DecodeRejectsUnknownEncoding) {
  std::vector<std::uint64_t> out;
  EXPECT_THROW(decode_column(static_cast<ColumnEncoding>(99), {}, 0, 4, false, out),
               std::runtime_error);
}

TEST(ColumnCodec, RandomColumnsRoundTripAllShapes) {
  stats::Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng.uniform_index(600);  // includes empty
    const int shape = static_cast<int>(rng.uniform_index(4));
    std::vector<std::uint64_t> values;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      switch (shape) {
        case 0: values.push_back(rng.next_u32()); break;             // noise
        case 1: values.push_back(cum += rng.uniform_index(10)); break;  // cumulative
        case 2: values.push_back(rng.uniform_index(3)); break;       // tiny runs
        default: values.push_back(0); break;                          // zeros
      }
    }
    roundtrip(values, 4, false);
  }
}

}  // namespace
}  // namespace ssdfail::store
