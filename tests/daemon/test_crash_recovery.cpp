// Crash-recovery integration test: a child process runs the daemon with
// per-segment fsync and is SIGKILLed mid-stream.  The parent then proves
// the PR's headline invariant:
//
//   * recovery replays the surviving WAL without crashing, losing at most
//     the final unsynced segment;
//   * the recovered per-drive state is bit-identical to a daemon that
//     processed the same surviving records live;
//   * replay is deterministic (two recoveries agree).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon_test_util.hpp"

namespace ssdfail::daemon {
namespace {

using testing::StubModel;
using testing::TempDir;
using testing::make_stream;

DaemonConfig crash_config(const std::string& wal_dir) {
  DaemonConfig cfg;
  cfg.shards = 2;
  cfg.ring_capacity = 32;
  cfg.max_batch = 8;
  cfg.wal_dir = wal_dir;
  cfg.fsync = FsyncPolicy::kEverySegment;  // the durability the test pins
  cfg.threshold = 0.7;
  return cfg;
}

std::uintmax_t wal_bytes_on_disk(const std::string& dir) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    total += std::filesystem::file_size(entry.path(), ec);
  return total;
}

TEST(CrashRecovery, SigkillLosesAtMostTheUnsyncedTailAndReplaysBitIdentically) {
  TempDir dir("sigkill");
  const auto stream = make_stream(6, 400);  // 2400 records

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: run the daemon and push the whole stream.  No gtest beyond
    // this point — the parent kills us somewhere in the middle.
    {
      TelemetryDaemon daemon(std::make_shared<StubModel>(), crash_config(dir.path()));
      daemon.start();
      for (const auto& obs : stream) (void)daemon.push(obs);
      daemon.stop();
    }
    _exit(0);
  }

  // Parent: wait for real WAL progress, then SIGKILL mid-flight.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (wal_bytes_on_disk(dir.path()) < 40000 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  // Either we killed it mid-flight (the interesting case) or it finished
  // first (fast machine) — both must recover cleanly below.

  // Replay the raw WALs: every surviving record must be from the pushed
  // stream, in per-drive day order, with no replay crash.
  std::vector<core::FleetObservation> survivors_in_wal_order;
  WalReplayStats replay_stats;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    WalReplayStats s =
        replay_wal(wal_path(dir.path(), shard), [&](const WalSegment& seg) {
          for (const auto& obs : seg.records) survivors_in_wal_order.push_back(obs);
        });
    replay_stats.merge(s);
  }
  ASSERT_GT(replay_stats.records_replayed, 0u) << "no durable progress before kill";
  ASSERT_LE(replay_stats.records_replayed, stream.size());
  std::unordered_map<std::uint64_t, std::int32_t> last_day;
  for (const auto& obs : survivors_in_wal_order) {
    EXPECT_EQ(obs.drive_model, trace::DriveModel::MlcA);
    const auto it = last_day.find(obs.uid());
    if (it != last_day.end()) {
      EXPECT_GT(obs.record.day, it->second);
    }
    last_day[obs.uid()] = obs.record.day;
  }

  // Recover in-process; digest must equal a fresh daemon fed exactly the
  // surviving records live (per-shard WAL order == push order here, since
  // a single producer re-pushes and sharding is deterministic).
  TelemetryDaemon recovered(std::make_shared<StubModel>(), crash_config(dir.path()));
  recovered.start();
  recovered.stop();
  const DaemonStats rstats = recovered.stats();
  EXPECT_EQ(rstats.recovery.records_replayed, replay_stats.records_replayed);

  DaemonConfig live_cfg = crash_config("");  // no WAL: pure in-memory reference
  TelemetryDaemon reference(std::make_shared<StubModel>(), live_cfg);
  reference.start();
  for (const auto& obs : survivors_in_wal_order)
    ASSERT_EQ(reference.push(obs), PushResult::kAccepted);
  reference.stop();

  EXPECT_EQ(recovered.state_digest(), reference.state_digest());
  EXPECT_EQ(recovered.stats().drives_tracked, reference.stats().drives_tracked);

  // Determinism: a second recovery lands on the same digest.
  TelemetryDaemon again(std::make_shared<StubModel>(), crash_config(dir.path()));
  again.start();
  again.stop();
  EXPECT_EQ(again.state_digest(), recovered.state_digest());
}

}  // namespace
}  // namespace ssdfail::daemon
