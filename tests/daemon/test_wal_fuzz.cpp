// WAL chaos/fuzz suite (slow lane): seeded hostile images — injected WAL
// faults, random bit flips, every possible truncation, and pure garbage —
// against the recovery contract of daemon/wal.hpp:
//
//   * replay never crashes or throws on corrupt CONTENT;
//   * whatever replay accepts is a self-consistent durable prefix: re-
//     scanning image[0, durable_bytes) reproduces the same segments with
//     zero discarded bytes, and seqs strictly increase;
//   * a WalWriter reopened on any corrupted file resumes at the durable
//     boundary and appends a cleanly replayable segment.
//
// All randomness flows through stats::Rng with fixed seeds, so a failure
// reproduces bit-for-bit.

#include "daemon/wal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "daemon_test_util.hpp"
#include "robustness/fault_injector.hpp"
#include "stats/rng.hpp"

namespace ssdfail::daemon {
namespace {

using robustness::FaultInjector;
using robustness::FaultKind;
using testing::TempDir;
using testing::make_stream;

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct BuiltWal {
  std::vector<char> image;
  std::vector<std::size_t> segment_offsets;  ///< as reported by the writer
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  std::uint64_t retires = 0;
};

/// Write a fresh WAL with randomly sized record batches and occasional
/// retire segments, returning the image plus per-segment byte offsets.
BuiltWal build_wal(const std::string& path, stats::Rng& rng) {
  std::filesystem::remove(path);
  BuiltWal out;
  const auto stream = make_stream(3, 20);  // 60 records
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    std::size_t at = 0;
    while (at < stream.size()) {
      out.segment_offsets.push_back(writer.bytes_written());
      const std::size_t take =
          std::min<std::size_t>(1 + rng.uniform_index(8), stream.size() - at);
      writer.append(std::span<const core::FleetObservation>(stream).subspan(at, take));
      out.records += take;
      at += take;
      if (rng.bernoulli(0.2)) {
        out.segment_offsets.push_back(writer.bytes_written());
        const std::vector<std::uint64_t> uids{
            stream[rng.uniform_index(stream.size())].uid()};
        writer.append_retires(uids);
        ++out.retires;
      }
    }
    out.segments = writer.segments_written();
  }
  out.image = read_bytes(path);
  return out;
}

struct ReplayCapture {
  WalReplayStats stats;
  std::vector<std::uint64_t> seqs;
  std::uint64_t records = 0;
  std::uint64_t retires = 0;
};

ReplayCapture replay_image(std::span<const char> image) {
  ReplayCapture cap;
  cap.stats = replay_wal_image(image, [&](const WalSegment& seg) {
    cap.seqs.push_back(seg.seq);
    cap.records += seg.records.size();
    cap.retires += seg.retired_uids.size();
  });
  return cap;
}

/// The core fuzz invariant: replay accepted a prefix it fully stands
/// behind.  Returns the capture for kind-specific assertions.
ReplayCapture expect_valid_prefix(std::span<const char> image) {
  const ReplayCapture full = replay_image(image);
  EXPECT_LE(full.stats.durable_bytes, image.size());
  EXPECT_EQ(full.stats.durable_bytes + full.stats.truncated_bytes, image.size());
  for (std::size_t i = 1; i < full.seqs.size(); ++i)
    EXPECT_LT(full.seqs[i - 1], full.seqs[i]);

  // Re-scan exactly the durable prefix: it must replay identically and be
  // judged fully clean (nothing further discarded).
  const ReplayCapture prefix = replay_image(image.first(full.stats.durable_bytes));
  EXPECT_EQ(prefix.stats.truncated_bytes, 0u);
  EXPECT_EQ(prefix.stats.segments_replayed, full.stats.segments_replayed);
  EXPECT_EQ(prefix.stats.records_replayed, full.stats.records_replayed);
  EXPECT_EQ(prefix.stats.retires_replayed, full.stats.retires_replayed);
  EXPECT_EQ(prefix.stats.duplicates_skipped, full.stats.duplicates_skipped);
  EXPECT_EQ(prefix.stats.last_seq, full.stats.last_seq);
  EXPECT_EQ(prefix.seqs, full.seqs);
  return full;
}

/// Reopen a (possibly corrupted) file with a WalWriter and append one more
/// batch: the writer must resume at the durable boundary and the result
/// must replay with zero discarded bytes.
void expect_safe_resume(const std::string& path) {
  const ReplayCapture before = replay_image(read_bytes(path));
  const auto extra = make_stream(1, 2);
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    EXPECT_EQ(writer.next_seq(), before.stats.last_seq + 1);
    writer.append(extra);
  }
  const ReplayCapture after = replay_image(read_bytes(path));
  EXPECT_EQ(after.stats.truncated_bytes, 0u);
  EXPECT_EQ(after.stats.segments_replayed, before.stats.segments_replayed + 1);
  EXPECT_EQ(after.stats.records_replayed, before.stats.records_replayed + extra.size());
  EXPECT_EQ(after.stats.last_seq, before.stats.last_seq + 1);
}

TEST(WalFuzz, InjectedWalFaultsRecoverPredictably) {
  TempDir dir("fuzz_faults");
  const std::string path = wal_path(dir.path(), 0);
  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    stats::Rng build_rng({0xFA017u, iter});
    const BuiltWal wal = build_wal(path, build_rng);
    ASSERT_GE(wal.segments, 2u);

    for (const FaultKind kind : {FaultKind::kTornWrite, FaultKind::kPartialSegment,
                                 FaultKind::kDuplicateDelivery}) {
      SCOPED_TRACE(::testing::Message()
                   << "iter " << iter << " fault "
                   << robustness::fault_name(kind));
      std::vector<char> image = wal.image;
      stats::Rng fault_rng({0xFA11u, iter, static_cast<std::uint64_t>(kind)});
      const FaultInjector::WalFault fault =
          FaultInjector::inject_into_wal(image, kind, fault_rng, wal.segment_offsets);
      const ReplayCapture cap = expect_valid_prefix(image);

      switch (kind) {
        case FaultKind::kTornWrite:
          // The cut lands strictly inside the final segment: everything
          // before it survives, the tail is discarded.
          EXPECT_EQ(cap.stats.segments_replayed, wal.segments - 1);
          EXPECT_GT(cap.stats.truncated_bytes, 0u);
          break;
        case FaultKind::kPartialSegment:
          // Replay stops at the zeroed segment — unless the zeroing was a
          // byte-for-byte no-op, in which case the full log survives.
          EXPECT_TRUE(cap.stats.segments_replayed == fault.segment ||
                      cap.stats.segments_replayed == wal.segments)
              << "segments_replayed " << cap.stats.segments_replayed
              << " fault segment " << fault.segment;
          break;
        case FaultKind::kDuplicateDelivery:
          // Redelivered segment is recognized by its stale seq: nothing
          // discarded, nothing double-applied.
          EXPECT_EQ(cap.stats.duplicates_skipped, 1u);
          EXPECT_EQ(cap.stats.records_replayed, wal.records);
          EXPECT_EQ(cap.stats.retires_replayed, wal.retires);
          EXPECT_EQ(cap.stats.truncated_bytes, 0u);
          break;
        default:
          FAIL() << "not a WAL fault kind";
      }

      write_bytes(path, image);
      expect_safe_resume(path);
      std::filesystem::remove(path);
    }
  }
}

TEST(WalFuzz, RandomBitFlipsNeverCrashReplayOrResume) {
  TempDir dir("fuzz_bitflip");
  const std::string path = wal_path(dir.path(), 0);
  for (std::uint64_t iter = 0; iter < 120; ++iter) {
    stats::Rng rng({0xB17F11Bu, iter});
    const BuiltWal wal = build_wal(path, rng);
    std::vector<char> image = wal.image;
    const std::uint64_t flips = 1 + rng.uniform_index(6);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform_index(image.size());
      image[byte] = static_cast<char>(
          static_cast<unsigned char>(image[byte]) ^ (1u << rng.uniform_index(8)));
    }
    SCOPED_TRACE(::testing::Message() << "iter " << iter << " flips " << flips);
    const ReplayCapture cap = expect_valid_prefix(image);
    EXPECT_LE(cap.stats.segments_replayed, wal.segments);
    EXPECT_LE(cap.stats.records_replayed, wal.records);

    write_bytes(path, image);
    expect_safe_resume(path);
  }
}

TEST(WalFuzz, EveryPossibleTruncationYieldsACleanPrefix) {
  TempDir dir("fuzz_trunc");
  const std::string path = wal_path(dir.path(), 0);
  stats::Rng rng(0x7121C47Eu);
  const BuiltWal wal = build_wal(path, rng);
  for (std::size_t cut = 0; cut <= wal.image.size(); ++cut) {
    std::vector<char> image(wal.image.begin(),
                            wal.image.begin() + static_cast<std::ptrdiff_t>(cut));
    const ReplayCapture cap = expect_valid_prefix(image);
    if (cut == wal.image.size()) {
      EXPECT_EQ(cap.stats.segments_replayed, wal.segments);
      EXPECT_EQ(cap.stats.truncated_bytes, 0u);
    } else {
      EXPECT_LT(cap.stats.segments_replayed, wal.segments);
    }
    if (::testing::Test::HasFailure()) FAIL() << "first failing cut at byte " << cut;
  }
  // A handful of truncations must also be writer-resumable.
  for (std::uint64_t iter = 0; iter < 25; ++iter) {
    const std::size_t cut = rng.uniform_index(wal.image.size() + 1);
    write_bytes(path, {wal.image.begin(),
                       wal.image.begin() + static_cast<std::ptrdiff_t>(cut)});
    SCOPED_TRACE(::testing::Message() << "resume after cut " << cut);
    expect_safe_resume(path);
  }
}

TEST(WalFuzz, PureGarbageImagesReplayAsEmpty) {
  for (std::uint64_t iter = 0; iter < 200; ++iter) {
    stats::Rng rng({0x6A12BA6Eu, iter});
    std::vector<char> image(rng.uniform_index(2048));
    for (char& b : image) b = static_cast<char>(rng.next_u32() & 0xFF);
    SCOPED_TRACE(::testing::Message() << "iter " << iter << " size " << image.size());
    const ReplayCapture cap = expect_valid_prefix(image);
    // A random 16-byte prefix is (essentially) never a valid header; if it
    // somehow is, the prefix invariant above already vouches for it.
    if (!cap.stats.header_valid) {
      EXPECT_EQ(cap.stats.segments_replayed, 0u);
      EXPECT_EQ(cap.stats.durable_bytes, 0u);
    }
  }
}

TEST(WalFuzz, ValidHeaderFollowedByGarbageIsTruncatedToTheHeader) {
  TempDir dir("fuzz_hdr");
  const std::string path = wal_path(dir.path(), 0);
  for (std::uint64_t iter = 0; iter < 100; ++iter) {
    stats::Rng rng({0x6EADE12u, iter});
    std::filesystem::remove(path);
    {
      WalWriter writer(path, 0, FsyncPolicy::kNever);  // header only
    }
    std::vector<char> image = read_bytes(path);
    ASSERT_EQ(image.size(), kWalFileHeaderSize);
    const std::size_t garbage = 1 + rng.uniform_index(512);
    for (std::size_t i = 0; i < garbage; ++i)
      image.push_back(static_cast<char>(rng.next_u32() & 0xFF));
    SCOPED_TRACE(::testing::Message() << "iter " << iter << " garbage " << garbage);
    const ReplayCapture cap = expect_valid_prefix(image);
    EXPECT_TRUE(cap.stats.header_valid);
    // The garbage could by cosmic luck parse as segments; if not, the
    // durable prefix is exactly the header.
    if (cap.stats.segments_replayed == 0) {
      EXPECT_EQ(cap.stats.durable_bytes, kWalFileHeaderSize);
      EXPECT_EQ(cap.stats.truncated_bytes, garbage);
    }
    write_bytes(path, image);
    expect_safe_resume(path);
  }
}

}  // namespace
}  // namespace ssdfail::daemon
