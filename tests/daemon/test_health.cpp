// HealthTracker tests: the escalation/cool-off table, terminal swap
// semantics, registry mirroring, and digest order-independence.

#include "daemon/health.hpp"

#include <gtest/gtest.h>

namespace ssdfail::daemon {
namespace {

HealthConfig fast_config() {
  HealthConfig cfg;
  cfg.ramp_threshold = 0.5;
  cfg.alert_threshold = 0.9;
  cfg.ramp_days = 3;
  cfg.alert_days = 2;
  cfg.cooloff_days = 4;
  return cfg;
}

TEST(HealthTracker, SingleNoisyScoreDoesNotEscalate) {
  HealthTracker tracker(fast_config(), nullptr);
  EXPECT_EQ(tracker.observe(1, 0.95, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.1, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.95, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.state(1), HealthState::kHealthy);
}

TEST(HealthTracker, ConsecutiveRampStrikesEscalateToRamping) {
  HealthTracker tracker(fast_config(), nullptr);
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kRamping);
}

TEST(HealthTracker, SanitizerViolationsCountAsRampStrikes) {
  HealthTracker tracker(fast_config(), nullptr);
  EXPECT_EQ(tracker.observe(1, 0.0, true, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.0, true, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.0, true, false), HealthState::kRamping);
}

TEST(HealthTracker, SustainedHighScoresEscalateToAlert) {
  HealthTracker tracker(fast_config(), nullptr);
  EXPECT_EQ(tracker.observe(1, 0.95, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.95, false, false), HealthState::kAlert);
  // Alert holds through moderate days (they reset the alert streak but are
  // not quiet days).
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kAlert);
}

TEST(HealthTracker, CooloffStepsDownOneTierAtATime) {
  HealthTracker tracker(fast_config(), nullptr);
  tracker.observe(1, 0.95, false, false);
  ASSERT_EQ(tracker.observe(1, 0.95, false, false), HealthState::kAlert);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(tracker.observe(1, 0.1, false, false), HealthState::kAlert);
  EXPECT_EQ(tracker.observe(1, 0.1, false, false), HealthState::kRamping);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(tracker.observe(1, 0.1, false, false), HealthState::kRamping);
  EXPECT_EQ(tracker.observe(1, 0.1, false, false), HealthState::kHealthy);
}

TEST(HealthTracker, DeadRecordJumpsStraightToSwapped) {
  HealthTracker tracker(fast_config(), nullptr);
  EXPECT_EQ(tracker.observe(1, 0.1, false, true), HealthState::kSwapped);
  // Terminal: further observations cannot resurrect the drive.
  EXPECT_EQ(tracker.observe(1, 0.0, false, false), HealthState::kSwapped);
  EXPECT_EQ(tracker.counts()[static_cast<std::size_t>(HealthState::kSwapped)], 1u);
}

TEST(HealthTracker, RetireIsTerminalEvenForUnseenDrives) {
  HealthTracker tracker(fast_config(), nullptr);
  tracker.retire(42);
  EXPECT_EQ(tracker.state(42), HealthState::kSwapped);
  EXPECT_EQ(tracker.observe(42, 0.99, false, false), HealthState::kSwapped);
  EXPECT_EQ(tracker.tracked_drives(), 1u);
}

TEST(HealthTracker, CountsTrackEveryTransition) {
  HealthTracker tracker(fast_config(), nullptr);
  for (std::uint64_t uid = 1; uid <= 4; ++uid) tracker.observe(uid, 0.1, false, false);
  tracker.observe(1, 0.95, false, false);
  tracker.observe(1, 0.95, false, false);  // 1 -> alert
  tracker.observe(2, 0.0, false, true);    // 2 -> swapped
  const auto counts = tracker.counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(HealthState::kHealthy)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(HealthState::kRamping)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(HealthState::kAlert)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(HealthState::kSwapped)], 1u);
}

TEST(HealthTracker, MirrorsStatesAndTransitionsIntoTheRegistry) {
  obs::MetricsRegistry registry;
  HealthTracker tracker(fast_config(), &registry);
  tracker.observe(1, 0.6, false, false);
  tracker.observe(1, 0.6, false, false);
  tracker.observe(1, 0.6, false, false);  // -> ramping
  tracker.observe(2, 0.0, false, true);   // -> swapped

  const obs::RegistrySnapshot snap = registry.snapshot();
  const obs::Sample* ramping =
      snap.find("daemon_drive_health", {{"state", "ramping"}});
  ASSERT_NE(ramping, nullptr);
  EXPECT_DOUBLE_EQ(ramping->value, 1.0);
  const obs::Sample* healthy =
      snap.find("daemon_drive_health", {{"state", "healthy"}});
  ASSERT_NE(healthy, nullptr);
  EXPECT_DOUBLE_EQ(healthy->value, 0.0);  // both drives moved on
  const obs::Sample* edge = snap.find(
      "daemon_health_transitions_total",
      {{"from", "healthy"}, {"to", "ramping"}});
  ASSERT_NE(edge, nullptr);
  EXPECT_DOUBLE_EQ(edge->value, 1.0);
  const obs::Sample* swap_edge = snap.find(
      "daemon_health_transitions_total",
      {{"from", "healthy"}, {"to", "swapped"}});
  ASSERT_NE(swap_edge, nullptr);
  EXPECT_DOUBLE_EQ(swap_edge->value, 1.0);
}

TEST(HealthTracker, ResetStrikesClearsStreaksButPreservesStates) {
  HealthTracker tracker(fast_config(), nullptr);
  // Drive 1: two of the three strikes toward ramping.
  tracker.observe(1, 0.6, false, false);
  tracker.observe(1, 0.6, false, false);
  // Drive 2: alerted, then one quiet day of cool-off progress.
  tracker.observe(2, 0.95, false, false);
  tracker.observe(2, 0.95, false, false);
  ASSERT_EQ(tracker.state(2), HealthState::kAlert);
  tracker.observe(2, 0.1, false, false);

  // A model swap resets both drives' streaks; the states persist.
  EXPECT_EQ(tracker.reset_strikes(), 2u);
  EXPECT_EQ(tracker.state(1), HealthState::kHealthy);
  EXPECT_EQ(tracker.state(2), HealthState::kAlert);

  // Drive 1 restarts its ramp count from zero under the new model.
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kHealthy);
  EXPECT_EQ(tracker.observe(1, 0.6, false, false), HealthState::kRamping);
  // Drive 2's cool-off starts over: four fresh quiet days to step down.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(tracker.observe(2, 0.1, false, false), HealthState::kAlert);
  EXPECT_EQ(tracker.observe(2, 0.1, false, false), HealthState::kRamping);
}

TEST(HealthTracker, ResetStrikesCountsOnlyDrivesWithLiveStreaks) {
  HealthTracker tracker(fast_config(), nullptr);
  // Drive 1 sits exactly on a transition boundary: the healthy -> ramping
  // edge just zeroed every streak, so there is nothing to clear.
  for (int i = 0; i < 3; ++i) tracker.observe(1, 0.6, false, false);
  ASSERT_EQ(tracker.state(1), HealthState::kRamping);
  // Drive 2 is terminal: swapped drives never count.
  tracker.retire(2);
  // Drive 3 carries a half-built ramp streak.
  tracker.observe(3, 0.6, false, false);

  EXPECT_EQ(tracker.reset_strikes(), 1u);
  EXPECT_EQ(tracker.state(1), HealthState::kRamping);
  EXPECT_EQ(tracker.state(2), HealthState::kSwapped);
  // A second sweep with nothing accumulated touches no drive.
  EXPECT_EQ(tracker.reset_strikes(), 0u);
}

TEST(HealthTracker, DigestIsOrderIndependentAndStateSensitive) {
  HealthTracker a(fast_config(), nullptr);
  HealthTracker b(fast_config(), nullptr);
  // Same per-drive sequences, interleaved differently across drives.
  for (int day = 0; day < 5; ++day) {
    a.observe(1, 0.6, false, false);
    a.observe(2, 0.1, false, false);
  }
  for (int day = 0; day < 5; ++day) b.observe(2, 0.1, false, false);
  for (int day = 0; day < 5; ++day) b.observe(1, 0.6, false, false);
  EXPECT_EQ(a.digest(), b.digest());

  HealthTracker c(fast_config(), nullptr);
  for (int day = 0; day < 5; ++day) {
    c.observe(1, 0.6, false, false);
    c.observe(2, 0.6, false, false);  // drive 2 diverges
  }
  EXPECT_NE(a.digest(), c.digest());
}

}  // namespace
}  // namespace ssdfail::daemon
