// WAL rotation + WAL->v3 compaction tests: the seal/rotate path on the
// writer, daemon recovery across sealed + active files, and the compactor
// turning sealed segments into manifest-published v3 shards that the
// dataset pipeline can open and scan.

#include "daemon/compactor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "core/dataset_builder.hpp"
#include "daemon/daemon.hpp"
#include "daemon/wal.hpp"
#include "daemon_test_util.hpp"
#include "store/sharded.hpp"

namespace ssdfail::daemon {
namespace {

using testing::StubModel;
using testing::TempDir;
using testing::make_stream;

std::size_t sealed_count(const std::string& dir) {
  return list_sealed_wals(dir).size();
}

// ---------------------------------------------------------------------------
// WalWriter seal/rotation primitives
// ---------------------------------------------------------------------------

TEST(WalRotation, SealRenamesAndChainContinues) {
  TempDir dir("seal");
  const std::string active = wal_path(dir.path(), 0);
  const auto stream = make_stream(2, 4);

  std::uint64_t next_seq = 0;
  {
    WalWriter writer(active, 0, FsyncPolicy::kNever);
    writer.append(std::span<const core::FleetObservation>(stream.data(), 4));
    writer.append(std::span<const core::FleetObservation>(stream.data() + 4, 4));
    next_seq = writer.next_seq();
    writer.seal(sealed_wal_path(dir.path(), 0, next_seq - 1));
  }
  EXPECT_FALSE(std::filesystem::exists(active));
  ASSERT_EQ(sealed_count(dir.path()), 1u);

  // The fresh active file continues the seq chain.
  WalWriter fresh(active, 0, FsyncPolicy::kNever, next_seq);
  const std::uint64_t seq =
      fresh.append(std::span<const core::FleetObservation>(stream.data(), 2));
  EXPECT_EQ(seq, next_seq);

  // Replaying sealed then active yields strictly increasing seqs.
  std::uint64_t last = 0;
  const auto check = [&](const WalSegment& seg) {
    EXPECT_GT(seg.seq, last);
    last = seg.seq;
  };
  for (const auto& path : list_sealed_wals(dir.path())) replay_wal(path, check);
  replay_wal(active, check);
  EXPECT_EQ(last, seq);
}

TEST(WalRotation, SealedNamesSortInSeqOrder) {
  TempDir dir("order");
  // Seq 9 vs 10 would invert under naive string order; the zero-padded
  // name must keep lexicographic == numeric.
  const std::string a = sealed_wal_path(dir.path(), 0, 9);
  const std::string b = sealed_wal_path(dir.path(), 0, 10);
  EXPECT_LT(a, b);
}

TEST(WalRotation, DaemonRotatesAndRecoversAcrossSealedFiles) {
  TempDir dir("rotate");
  obs::MetricsRegistry registry;
  DaemonConfig cfg;
  cfg.shards = 1;
  cfg.wal_dir = dir.path();
  cfg.fsync = FsyncPolicy::kNever;
  cfg.registry = &registry;
  cfg.wal_rotate_bytes = 512;  // tiny: force several rotations
  const auto stream = make_stream(4, 25);

  std::uint64_t live_digest = 0;
  {
    TelemetryDaemon live(std::make_shared<StubModel>(), cfg);
    live.start();
    for (const auto& obs : stream) ASSERT_EQ(live.push(obs), PushResult::kAccepted);
    live.stop();
    EXPECT_FALSE(live.stats().wal_degraded);
    live_digest = live.state_digest();
  }
  // How many rotations fire depends on batch coalescing; at least one
  // must (the stream is ~7.6 KB of WAL against a 512-byte threshold).
  ASSERT_GE(sealed_count(dir.path()), 1u);

  // Recovery must replay sealed files before the active one and land on
  // the same per-drive state as the uninterrupted run.
  TelemetryDaemon recovered(std::make_shared<StubModel>(), cfg);
  recovered.start();
  const DaemonStats stats = recovered.stats();
  EXPECT_EQ(stats.recovery.records_replayed, stream.size());
  EXPECT_EQ(stats.recovery.duplicates_skipped, 0u);
  recovered.stop();
  EXPECT_EQ(recovered.state_digest(), live_digest);
}

// ---------------------------------------------------------------------------
// compact_sealed_wals
// ---------------------------------------------------------------------------

TEST(Compactor, NoSealedFilesIsANoop) {
  TempDir wal("empty_wal");
  TempDir store("empty_store");
  const CompactionResult result = compact_sealed_wals(wal.path(), store.path());
  EXPECT_EQ(result.wal_files, 0u);
  EXPECT_EQ(result.shards_written, 0u);
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(store.path()) /
                                       store::kManifestName));
}

TEST(Compactor, SealedWalsBecomeAScannableV3Shard) {
  TempDir wal("compact_wal");
  TempDir store("compact_store");
  const auto stream = make_stream(5, 12);

  // Two sealed files from one shard (a rotation happened), plus retires.
  const std::string active = wal_path(wal.path(), 0);
  {
    WalWriter w(active, 0, FsyncPolicy::kNever);
    w.append(std::span<const core::FleetObservation>(stream.data(), 30));
    const std::uint64_t next = w.next_seq();
    w.seal(sealed_wal_path(wal.path(), 0, next - 1));
    WalWriter w2(active, 0, FsyncPolicy::kNever, next);
    w2.append(std::span<const core::FleetObservation>(stream.data() + 30,
                                                      stream.size() - 30));
    const std::uint64_t retired[] = {stream[0].uid()};
    w2.append_retires(retired);
    const std::uint64_t next2 = w2.next_seq();
    w2.seal(sealed_wal_path(wal.path(), 0, next2 - 1));
  }
  ASSERT_EQ(sealed_count(wal.path()), 2u);

  const CompactionResult result = compact_sealed_wals(wal.path(), store.path());
  EXPECT_EQ(result.wal_files, 2u);
  EXPECT_EQ(result.records, stream.size());
  EXPECT_EQ(result.retires, 1u);
  EXPECT_EQ(result.out_of_order_dropped, 0u);
  EXPECT_EQ(result.drives, 5u);
  EXPECT_EQ(result.shards_written, 1u);
  EXPECT_GT(result.shard_bytes_out, 0u);
  // Consumed sealed files are gone.
  EXPECT_EQ(sealed_count(wal.path()), 0u);

  // The published shard opens as a v3 sharded store with matching totals.
  const auto view = store::ShardedFleetView::open(store.path());
  ASSERT_EQ(view.shard_count(), 1u);
  EXPECT_EQ(view.shard(0).version(), store::kColumnarVersionV3);
  EXPECT_EQ(view.drive_count(), 5u);
  EXPECT_EQ(view.total_records(), stream.size());
  EXPECT_EQ(view.total_swaps(), 1u);

  // The retire landed as a swap on the drive's last record day.
  const trace::FleetTrace fleet = store::materialize(view);
  const auto it = std::find_if(fleet.drives.begin(), fleet.drives.end(),
                               [&](const trace::DriveHistory& d) {
                                 return d.uid() == stream[0].uid();
                               });
  ASSERT_NE(it, fleet.drives.end());
  ASSERT_EQ(it->swaps.size(), 1u);
  EXPECT_EQ(it->swaps[0].day, it->records.back().day);

  // And the dataset pipeline scans it end-to-end.
  core::DatasetBuildOptions opts;
  const ml::Dataset ds = core::build_dataset(view, opts);
  EXPECT_GT(ds.x.rows(), 0u);
}

TEST(Compactor, SuccessiveRunsAppendShardsAtomically) {
  TempDir wal("append_wal");
  TempDir store("append_store");
  const std::string active = wal_path(wal.path(), 0);

  const auto seal_days = [&](std::int32_t first_day, std::int32_t days,
                             std::uint64_t first_seq) {
    auto stream = make_stream(3, first_day + days);
    stream.erase(stream.begin(), stream.begin() + 3 * first_day);
    WalWriter w(active, 0, FsyncPolicy::kNever, first_seq);
    w.append(stream);
    const std::uint64_t next = w.next_seq();
    w.seal(sealed_wal_path(wal.path(), 0, next - 1));
    return next;
  };

  const std::uint64_t next = seal_days(0, 10, 1);
  const CompactionResult first = compact_sealed_wals(wal.path(), store.path());
  ASSERT_EQ(first.shards_written, 1u);

  seal_days(10, 10, next);
  const CompactionResult second = compact_sealed_wals(wal.path(), store.path());
  ASSERT_EQ(second.shards_written, 1u);
  EXPECT_NE(second.shard_file, first.shard_file);

  const auto view = store::ShardedFleetView::open(store.path());
  ASSERT_EQ(view.shard_count(), 2u);
  EXPECT_EQ(view.total_records(), 3u * 20u);
  // Same 3 drives appear in both shards (drive_count sums per shard).
  EXPECT_EQ(view.drive_count(), 6u);
}

TEST(Compactor, OutOfOrderRecordsAreDroppedNotStored) {
  TempDir wal("ooo_wal");
  TempDir store("ooo_store");
  auto stream = make_stream(1, 3);
  stream.push_back(stream[1]);  // replays day 1 after day 2

  WalWriter w(wal_path(wal.path(), 0), 0, FsyncPolicy::kNever);
  w.append(stream);
  w.seal(sealed_wal_path(wal.path(), 0, w.next_seq() - 1));

  const CompactionResult result = compact_sealed_wals(wal.path(), store.path());
  EXPECT_EQ(result.records, 3u);
  EXPECT_EQ(result.out_of_order_dropped, 1u);
  const auto view = store::ShardedFleetView::open(store.path());
  EXPECT_EQ(view.total_records(), 3u);
}

TEST(Compactor, KeepWalLeavesSealedFilesInPlace) {
  TempDir wal("keep_wal");
  TempDir store("keep_store");
  const auto stream = make_stream(2, 4);
  WalWriter w(wal_path(wal.path(), 0), 0, FsyncPolicy::kNever);
  w.append(stream);
  w.seal(sealed_wal_path(wal.path(), 0, w.next_seq() - 1));

  CompactorOptions options;
  options.keep_wal = true;
  const CompactionResult result =
      compact_sealed_wals(wal.path(), store.path(), options);
  EXPECT_EQ(result.shards_written, 1u);
  EXPECT_EQ(sealed_count(wal.path()), 1u);

  // Re-running on the kept files re-compacts them into a second shard —
  // exactly the crash-between-publish-and-delete behaviour.
  const CompactionResult again = compact_sealed_wals(wal.path(), store.path());
  EXPECT_EQ(again.shards_written, 1u);
  EXPECT_EQ(sealed_count(wal.path()), 0u);
  EXPECT_EQ(store::ShardedFleetView::open(store.path()).shard_count(), 2u);
}

TEST(Compactor, EndToEndDaemonRotationThenCompaction) {
  TempDir wal("e2e_wal");
  TempDir store("e2e_store");
  obs::MetricsRegistry registry;
  DaemonConfig cfg;
  cfg.shards = 2;
  cfg.wal_dir = wal.path();
  cfg.fsync = FsyncPolicy::kNever;
  cfg.registry = &registry;
  cfg.wal_rotate_bytes = 1024;
  const auto stream = make_stream(6, 30);

  TelemetryDaemon daemon(std::make_shared<StubModel>(), cfg);
  daemon.start();
  for (const auto& obs : stream) ASSERT_EQ(daemon.push(obs), PushResult::kAccepted);
  daemon.stop();
  ASSERT_GT(sealed_count(wal.path()), 0u);

  const CompactionResult result = compact_sealed_wals(wal.path(), store.path());
  ASSERT_EQ(result.shards_written, 1u);
  const auto view = store::ShardedFleetView::open(store.path());
  EXPECT_EQ(view.drive_count(), 6u);
  // The shard holds exactly the records that had been sealed (the tail
  // still sits in the active logs, waiting for the next rotation).
  EXPECT_EQ(view.total_records(), result.records);
  EXPECT_LE(view.total_records(), stream.size());

  // Restarting the daemon over the remaining active logs still recovers
  // cleanly: compaction consumed only sealed files.
  TelemetryDaemon after(std::make_shared<StubModel>(), cfg);
  after.start();
  after.stop();
}

TEST(Compactor, CompactionRacingRotationNeitherLosesNorDuplicates) {
  TempDir wal("race_wal");
  TempDir store("race_store");
  obs::MetricsRegistry registry;
  DaemonConfig cfg;
  cfg.shards = 2;
  cfg.wal_dir = wal.path();
  cfg.fsync = FsyncPolicy::kNever;
  cfg.registry = &registry;
  cfg.wal_rotate_bytes = 512;  // rotate constantly underneath the compactor
  const auto stream = make_stream(6, 40);

  TelemetryDaemon daemon(std::make_shared<StubModel>(), cfg);
  daemon.start();

  // Chaos: compaction sweeps the WAL directory continuously while the
  // daemon is sealing new segments into it.
  std::atomic<bool> done{false};
  std::uint64_t out_of_order = 0;
  std::thread chaos([&] {
    while (!done.load(std::memory_order_acquire)) {
      out_of_order += compact_sealed_wals(wal.path(), store.path()).out_of_order_dropped;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (const auto& obs : stream) ASSERT_EQ(daemon.push(obs), PushResult::kAccepted);
  daemon.stop();
  done.store(true, std::memory_order_release);
  chaos.join();

  // Final sweep consumes whatever sealed files the race left behind.
  out_of_order += compact_sealed_wals(wal.path(), store.path()).out_of_order_dropped;
  EXPECT_EQ(out_of_order, 0u);
  EXPECT_EQ(sealed_count(wal.path()), 0u);

  // Compacted shards plus the active-file tails exactly partition the
  // stream: every observation lands exactly once, none twice.
  std::map<std::pair<std::uint64_t, std::int32_t>, int> seen;
  if (std::filesystem::exists(std::filesystem::path(store.path()) /
                              store::kManifestName)) {
    const trace::FleetTrace fleet =
        store::materialize(store::ShardedFleetView::open(store.path()));
    for (const auto& d : fleet.drives)
      for (const auto& r : d.records) ++seen[{d.uid(), r.day}];
  }
  for (std::uint32_t shard = 0; shard < cfg.shards; ++shard)
    replay_wal(wal_path(wal.path(), shard), [&](const WalSegment& seg) {
      for (const auto& o : seg.records) ++seen[{o.uid(), o.record.day}];
    });
  ASSERT_EQ(seen.size(), stream.size());
  for (const auto& [key, times] : seen)
    EXPECT_EQ(times, 1) << "uid " << key.first << " day " << key.second;
}

}  // namespace
}  // namespace ssdfail::daemon
