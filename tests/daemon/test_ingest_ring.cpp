// IngestRing tests: bounded capacity, FIFO order, both backpressure
// policies with shed accounting, and a multi-producer stress run (the
// TSan CI job runs this suite to vet the memory ordering).

#include "daemon/ingest_ring.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon_test_util.hpp"

namespace ssdfail::daemon {
namespace {

core::FleetObservation obs_with(std::uint32_t index, std::int32_t day) {
  core::FleetObservation obs;
  obs.drive_model = trace::DriveModel::MlcA;
  obs.drive_index = index;
  obs.record.day = day;
  return obs;
}

TEST(IngestRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(IngestRing(1).capacity(), 2u);
  EXPECT_EQ(IngestRing(8).capacity(), 8u);
  EXPECT_EQ(IngestRing(9).capacity(), 16u);
  EXPECT_EQ(IngestRing(1000).capacity(), 1024u);
}

TEST(IngestRing, SingleThreadFifo) {
  IngestRing ring(8);
  for (std::int32_t day = 0; day < 8; ++day)
    ASSERT_TRUE(ring.try_push(obs_with(1, day)));
  EXPECT_FALSE(ring.try_push(obs_with(1, 99)));  // full
  std::vector<core::FleetObservation> out;
  EXPECT_EQ(ring.pop_into(out, 100), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (std::int32_t day = 0; day < 8; ++day)
    EXPECT_EQ(out[static_cast<std::size_t>(day)].record.day, day);
  EXPECT_TRUE(ring.empty_approx());
  // Wrap around: the ring is reusable after a full drain.
  ASSERT_TRUE(ring.try_push(obs_with(1, 100)));
  out.clear();
  EXPECT_EQ(ring.pop_into(out, 100), 1u);
  EXPECT_EQ(out[0].record.day, 100);
}

TEST(IngestRing, PopRespectsTheBatchCap) {
  IngestRing ring(16);
  for (std::int32_t day = 0; day < 10; ++day)
    ASSERT_TRUE(ring.try_push(obs_with(1, day)));
  std::vector<core::FleetObservation> out;
  EXPECT_EQ(ring.pop_into(out, 4), 4u);
  EXPECT_EQ(ring.pop_into(out, 4), 4u);
  EXPECT_EQ(ring.pop_into(out, 4), 2u);
  ASSERT_EQ(out.size(), 10u);
  for (std::int32_t day = 0; day < 10; ++day)
    EXPECT_EQ(out[static_cast<std::size_t>(day)].record.day, day);
}

TEST(IngestRing, ShedPolicyDropsImmediatelyWhenFull) {
  IngestRing ring(2);
  using std::chrono::milliseconds;
  EXPECT_EQ(ring.push(obs_with(1, 0), Backpressure::kShed, milliseconds(1000)),
            PushResult::kAccepted);
  EXPECT_EQ(ring.push(obs_with(1, 1), Backpressure::kShed, milliseconds(1000)),
            PushResult::kAccepted);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ring.push(obs_with(1, 2), Backpressure::kShed, milliseconds(1000)),
            PushResult::kShed);
  // Shed must not consume the block timeout.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(500));
}

TEST(IngestRing, BlockPolicyTimesOutThenSheds) {
  IngestRing ring(2);
  using std::chrono::milliseconds;
  ASSERT_TRUE(ring.try_push(obs_with(1, 0)));
  ASSERT_TRUE(ring.try_push(obs_with(1, 1)));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ring.push(obs_with(1, 2), Backpressure::kBlock, milliseconds(30)),
            PushResult::kShed);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, milliseconds(30));
}

TEST(IngestRing, BlockPolicySucceedsWhenTheConsumerDrains) {
  IngestRing ring(2);
  ASSERT_TRUE(ring.try_push(obs_with(1, 0)));
  ASSERT_TRUE(ring.try_push(obs_with(1, 1)));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<core::FleetObservation> out;
    ring.pop_into(out, 1);
  });
  EXPECT_EQ(ring.push(obs_with(1, 2), Backpressure::kBlock,
                      std::chrono::milliseconds(5000)),
            PushResult::kAccepted);
  consumer.join();
}

// Multi-producer correctness: nothing lost, nothing duplicated, and each
// producer's records arrive in its own push order (the per-drive day-order
// invariant the sanitizer depends on).
TEST(IngestRing, MultiProducerPreservesPerProducerOrder) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::int32_t kPerProducer = 5000;
  IngestRing ring(64);
  std::vector<core::FleetObservation> drained;
  drained.reserve(kProducers * kPerProducer);
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    while (true) {
      const std::size_t got = ring.pop_into(drained, 128);
      if (got == 0) {
        if (done.load(std::memory_order_acquire) && ring.empty_approx()) break;
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int32_t day = 0; day < kPerProducer; ++day) {
        while (ring.push(obs_with(p, day), Backpressure::kBlock,
                         std::chrono::milliseconds(10)) != PushResult::kAccepted) {
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(drained.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::unordered_map<std::uint32_t, std::int32_t> next_day;
  for (const core::FleetObservation& obs : drained) {
    EXPECT_EQ(obs.record.day, next_day[obs.drive_index])
        << "producer " << obs.drive_index << " out of order";
    ++next_day[obs.drive_index];
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) EXPECT_EQ(next_day[p], kPerProducer);
}

}  // namespace
}  // namespace ssdfail::daemon
