// TelemetryDaemon tests: graceful drain accounting, WAL recovery
// bit-identity, retire-through-the-WAL, degraded modes, backpressure
// shedding, and the watchdog.

#include "daemon/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "daemon_test_util.hpp"

namespace ssdfail::daemon {
namespace {

using testing::StubModel;
using testing::TempDir;
using testing::make_stream;

DaemonConfig base_config(const std::string& wal_dir, obs::MetricsRegistry* registry) {
  DaemonConfig cfg;
  cfg.shards = 2;
  cfg.ring_capacity = 64;
  cfg.wal_dir = wal_dir;
  cfg.fsync = FsyncPolicy::kNever;  // durability is the crash test's job
  cfg.registry = registry;
  cfg.threshold = 0.7;
  return cfg;
}

TEST(TelemetryDaemon, GracefulDrainProcessesEveryAcceptedRecord) {
  TempDir dir("drain");
  obs::MetricsRegistry registry;
  TelemetryDaemon daemon(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
  daemon.start();
  const auto stream = make_stream(6, 20);
  for (const auto& obs : stream)
    ASSERT_EQ(daemon.push(obs), PushResult::kAccepted);
  daemon.stop();

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.ingested, stream.size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.scored, stream.size());  // clean stream: everything scores
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(stats.drives_tracked, 6u);
  EXPECT_GT(stats.segments_appended, 0u);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_FALSE(stats.wal_degraded);
  // Pushes after stop are rejected, not silently dropped.
  EXPECT_EQ(daemon.push(stream[0]), PushResult::kRejected);
  EXPECT_EQ(daemon.stats().rejected, 1u);
}

TEST(TelemetryDaemon, RecoveryRebuildsBitIdenticalState) {
  TempDir dir("recover");
  obs::MetricsRegistry registry;
  const auto stream = make_stream(8, 30);
  std::uint64_t live_digest = 0;
  std::size_t live_drives = 0;
  {
    TelemetryDaemon live(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
    live.start();
    for (const auto& obs : stream) ASSERT_EQ(live.push(obs), PushResult::kAccepted);
    live.stop();
    live_digest = live.state_digest();
    live_drives = live.stats().drives_tracked;
  }
  ASSERT_NE(live_digest, 0u);

  // A fresh process over the same WAL directory must land on the exact
  // same per-drive state — and scoring must continue seamlessly after.
  TelemetryDaemon recovered(std::make_shared<StubModel>(),
                            base_config(dir.path(), &registry));
  recovered.start();
  const DaemonStats after = recovered.stats();
  EXPECT_EQ(after.recovery.records_replayed, stream.size());
  EXPECT_EQ(after.recovery.truncated_bytes, 0u);
  EXPECT_EQ(after.drives_tracked, live_drives);

  // Day 30 continues where the stream stopped; the sanitizer would
  // quarantine it as out-of-order if recovery had lost any day.
  auto next_day = make_stream(8, 31);
  std::size_t accepted = 0;
  for (const auto& obs : next_day) {
    if (obs.record.day != 30) continue;
    ASSERT_EQ(recovered.push(obs), PushResult::kAccepted);
    ++accepted;
  }
  EXPECT_EQ(accepted, 8u);
  recovered.stop();
  EXPECT_EQ(recovered.stats().quarantined, 0u);

  // And a recover-only pass (no new traffic) reproduces the live digest.
  TelemetryDaemon verify(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
  // The previous daemon appended day 30 to the WAL; replay to just after
  // the original stream requires its own directory — so instead compare
  // against a third daemon that processed the same 31-day stream live.
  verify.start();
  verify.stop();
  TelemetryDaemon reference(std::make_shared<StubModel>(),
                            base_config("", &registry));
  reference.start();
  for (const auto& obs : make_stream(8, 31))
    ASSERT_EQ(reference.push(obs), PushResult::kAccepted);
  reference.stop();
  EXPECT_EQ(verify.state_digest(), reference.state_digest());
}

TEST(TelemetryDaemon, ReplayIsIdempotent) {
  TempDir dir("idempotent");
  obs::MetricsRegistry registry;
  {
    TelemetryDaemon live(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
    live.start();
    for (const auto& obs : make_stream(5, 12))
      ASSERT_EQ(live.push(obs), PushResult::kAccepted);
    live.stop();
  }
  std::uint64_t first = 0;
  for (int round = 0; round < 2; ++round) {
    TelemetryDaemon recovered(std::make_shared<StubModel>(),
                              base_config(dir.path(), &registry));
    recovered.start();
    recovered.stop();
    if (round == 0) {
      first = recovered.state_digest();
    } else {
      EXPECT_EQ(recovered.state_digest(), first);
    }
  }
}

TEST(TelemetryDaemon, RetireTravelsThroughTheWal) {
  TempDir dir("retire");
  obs::MetricsRegistry registry;
  const auto stream = make_stream(3, 10);
  {
    TelemetryDaemon live(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
    live.start();
    for (const auto& obs : stream) ASSERT_EQ(live.push(obs), PushResult::kAccepted);
    live.retire(trace::DriveModel::MlcA, 0);
    live.stop();
    EXPECT_EQ(live.stats().drives_tracked, 2u);
    const auto counts = live.stats().health_counts;
    EXPECT_EQ(counts[static_cast<std::size_t>(HealthState::kSwapped)], 1u);
  }
  TelemetryDaemon recovered(std::make_shared<StubModel>(),
                            base_config(dir.path(), &registry));
  recovered.start();
  recovered.stop();
  const DaemonStats stats = recovered.stats();
  EXPECT_EQ(stats.recovery.retires_replayed, 1u);
  EXPECT_EQ(stats.drives_tracked, 2u);
  EXPECT_EQ(stats.health_counts[static_cast<std::size_t>(HealthState::kSwapped)], 1u);
}

TEST(TelemetryDaemon, DegradedDaemonStillIngestsAndWalsEverything) {
  TempDir dir("degraded");
  obs::MetricsRegistry registry;
  const auto stream = make_stream(4, 6);
  {
    TelemetryDaemon degraded(nullptr, base_config(dir.path(), &registry));
    degraded.start();
    for (const auto& obs : stream)
      ASSERT_EQ(degraded.push(obs), PushResult::kAccepted);
    degraded.stop();
    const DaemonStats stats = degraded.stats();
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.ingested, stream.size());
    EXPECT_EQ(stats.scored, 0u);  // no model, no scores
    EXPECT_GT(stats.segments_appended, 0u);
    // Feature state still advances so a later model starts warm.
    EXPECT_EQ(stats.drives_tracked, 4u);
  }
  // A later process with a working scorer replays the degraded WAL and
  // scores every record the degraded daemon could only persist.
  TelemetryDaemon scored(std::make_shared<StubModel>(),
                         base_config(dir.path(), &registry));
  scored.start();
  scored.stop();
  const DaemonStats stats = scored.stats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.recovery.records_replayed, stream.size());
  EXPECT_EQ(stats.scored, stream.size());
}

TEST(TelemetryDaemon, SetModelTogglesDegradedMode) {
  obs::MetricsRegistry registry;
  TelemetryDaemon daemon(nullptr, base_config("", &registry));
  EXPECT_TRUE(daemon.stats().degraded);
  daemon.set_model(std::make_shared<StubModel>());
  EXPECT_FALSE(daemon.stats().degraded);
  daemon.set_model(nullptr);
  EXPECT_TRUE(daemon.stats().degraded);
}

TEST(TelemetryDaemon, NoWalDirMeansWalDegradedButStillScoring) {
  obs::MetricsRegistry registry;
  TelemetryDaemon daemon(std::make_shared<StubModel>(), base_config("", &registry));
  daemon.start();
  const auto stream = make_stream(2, 5);
  for (const auto& obs : stream) ASSERT_EQ(daemon.push(obs), PushResult::kAccepted);
  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_TRUE(stats.wal_degraded);
  EXPECT_EQ(stats.segments_appended, 0u);
  EXPECT_EQ(stats.scored, stream.size());
}

TEST(TelemetryDaemon, UnwritableWalDirDegradesInsteadOfDying) {
  obs::MetricsRegistry registry;
  auto cfg = base_config("/nonexistent_dir_for_ssdfail_daemon/x", &registry);
  TelemetryDaemon daemon(std::make_shared<StubModel>(), cfg);
  daemon.start();
  const auto stream = make_stream(2, 4);
  for (const auto& obs : stream) ASSERT_EQ(daemon.push(obs), PushResult::kAccepted);
  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_TRUE(stats.wal_degraded);
  EXPECT_GT(stats.wal_errors, 0u);
  EXPECT_EQ(stats.scored, stream.size());  // service continued
}

TEST(TelemetryDaemon, ShedPolicyCountsEveryDrop) {
  obs::MetricsRegistry registry;
  auto cfg = base_config("", &registry);
  cfg.shards = 1;
  cfg.ring_capacity = 2;
  cfg.backpressure = Backpressure::kShed;
  std::atomic<bool> release{false};
  cfg.appender_hook = [&](std::uint32_t) {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  TelemetryDaemon daemon(std::make_shared<StubModel>(), cfg);
  daemon.start();
  const auto stream = make_stream(1, 100);
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  for (const auto& obs : stream) {
    const PushResult r = daemon.push(obs);
    if (r == PushResult::kAccepted) ++accepted;
    if (r == PushResult::kShed) ++shed;
  }
  release.store(true, std::memory_order_release);
  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_GT(shed, 0u);  // ring of 2 with a blocked appender must shed
  EXPECT_EQ(stats.ingested, accepted);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.ingested + stats.shed, stream.size());
  // Every accepted record was still processed on drain.
  EXPECT_EQ(stats.scored + stats.quarantined + stats.duplicates_dropped, accepted);
}

TEST(TelemetryDaemon, WatchdogCountsAStalledAppender) {
  obs::MetricsRegistry registry;
  auto cfg = base_config("", &registry);
  cfg.shards = 1;
  cfg.max_batch = 1;  // leave a backlog in the ring while the hook wedges
  cfg.watchdog_interval = std::chrono::milliseconds(5);
  cfg.stall_timeout = std::chrono::milliseconds(40);
  std::atomic<bool> release{false};
  cfg.appender_hook = [&](std::uint32_t) {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  TelemetryDaemon daemon(std::make_shared<StubModel>(), cfg);
  daemon.start();
  const auto stream = make_stream(2, 10);
  for (const auto& obs : stream) (void)daemon.push(obs);
  // The appender is wedged in the hook with a backlog; the watchdog must
  // notice within a few intervals.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.stats().watchdog_stalls == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(daemon.stats().watchdog_stalls, 1u);
  release.store(true, std::memory_order_release);
  daemon.stop();
}

}  // namespace
}  // namespace ssdfail::daemon
