#pragma once

// Shared fixtures for the daemon test suite: a deterministic observation
// stream, a deterministic stub scorer, and a self-cleaning temp directory
// for WAL files.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/fleet_observation.hpp"
#include "ml/classifier.hpp"

namespace ssdfail::daemon::testing {

/// Day-ordered clean stream: `drives` drives reporting every day with
/// growing cumulative counters (same shape as the fault-injector tests).
inline std::vector<core::FleetObservation> make_stream(std::uint32_t drives,
                                                       std::int32_t days) {
  std::vector<core::FleetObservation> stream;
  stream.reserve(static_cast<std::size_t>(drives) * static_cast<std::size_t>(days));
  for (std::int32_t day = 0; day < days; ++day) {
    for (std::uint32_t d = 0; d < drives; ++d) {
      trace::DailyRecord rec;
      rec.day = day;
      rec.reads = 100 + d;
      rec.writes = 40 + static_cast<std::uint32_t>(day);
      rec.erases = 4;
      rec.pe_cycles = 10 + 2 * static_cast<std::uint32_t>(day);
      rec.bad_blocks = 1 + static_cast<std::uint32_t>(day) / 8;
      rec.factory_bad_blocks = 4;
      rec.errors[0] = d % 3;
      stream.push_back({trace::DriveModel::MlcA, d, 0, rec});
    }
  }
  return stream;
}

/// Deterministic per-row scorer: a hash-like fold of the feature vector
/// into [0, 1).  No fit needed; identical scores for identical rows, which
/// is exactly what the replay bit-identity tests require of a model.
class StubModel final : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  [[nodiscard]] std::vector<float> predict_proba(const ml::Matrix& x) const override {
    std::vector<float> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      double acc = 0.0;
      for (const float v : x.row(r)) acc = acc * 31.0 + static_cast<double>(v);
      out[r] = static_cast<float>(std::fabs(acc - std::floor(acc)));
    }
    return out;
  }
  [[nodiscard]] std::string name() const override { return "stub"; }
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override {
    return std::make_unique<StubModel>();
  }
};

/// Unique temp directory, removed (recursively) on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("ssdfail_daemon_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace ssdfail::daemon::testing
