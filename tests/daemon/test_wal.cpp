// WAL framing tests: round-trip fidelity, torn-tail truncation, CRC
// rejection, duplicate-seq dedup, and writer resume semantics — the
// recovery contract of daemon/wal.hpp, piece by piece.

#include "daemon/wal.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "daemon_test_util.hpp"

namespace ssdfail::daemon {
namespace {

using testing::TempDir;
using testing::make_stream;

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Collect every replayed segment.
std::vector<WalSegment> collect(const std::string& path, WalReplayStats* stats = nullptr) {
  std::vector<WalSegment> segments;
  const WalReplayStats s =
      replay_wal(path, [&](const WalSegment& seg) { segments.push_back(seg); });
  if (stats != nullptr) *stats = s;
  return segments;
}

TEST(Wal, RoundTripsRecordsAndRetires) {
  TempDir dir("roundtrip");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(3, 4);  // 12 records
  {
    WalWriter writer(path, 0, FsyncPolicy::kEverySegment);
    writer.append(std::span<const core::FleetObservation>(stream).subspan(0, 7));
    writer.append(std::span<const core::FleetObservation>(stream).subspan(7));
    const std::vector<std::uint64_t> uids{stream[0].uid(), stream[1].uid()};
    writer.append_retires(uids);
    EXPECT_EQ(writer.segments_written(), 3u);
  }
  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_EQ(stats.records_replayed, 12u);
  EXPECT_EQ(stats.retires_replayed, 2u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(segments[0].seq, 1u);
  EXPECT_EQ(segments[1].seq, 2u);
  EXPECT_EQ(segments[2].seq, 3u);
  ASSERT_EQ(segments[0].records.size(), 7u);
  ASSERT_EQ(segments[1].records.size(), 5u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(segments[0].records[i].record, stream[i].record);
    EXPECT_EQ(segments[0].records[i].uid(), stream[i].uid());
    EXPECT_EQ(segments[0].records[i].deploy_day, stream[i].deploy_day);
  }
  ASSERT_EQ(segments[2].retired_uids.size(), 2u);
  EXPECT_EQ(segments[2].retired_uids[0], stream[0].uid());
}

TEST(Wal, RecordPayloadPreservesEveryField) {
  core::FleetObservation obs;
  obs.drive_model = trace::DriveModel::MlcB;
  obs.drive_index = 0xDEADBEEF;
  obs.deploy_day = -17;
  obs.record.day = 123456;
  obs.record.reads = 0xFFFFFFFF;
  obs.record.writes = 7;
  obs.record.erases = 9;
  obs.record.pe_cycles = 100000;
  obs.record.bad_blocks = 321;
  obs.record.factory_bad_blocks = 0xBEEF;
  obs.record.read_only = true;
  obs.record.dead = true;
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    obs.record.errors[e] = static_cast<std::uint32_t>(1000 + e);

  std::vector<char> payload;
  append_record_payload(payload, obs);
  ASSERT_EQ(payload.size(), kWalRecordSize);
  const core::FleetObservation back = parse_record_payload(payload.data());
  EXPECT_EQ(back.drive_model, obs.drive_model);
  EXPECT_EQ(back.drive_index, obs.drive_index);
  EXPECT_EQ(back.deploy_day, obs.deploy_day);
  EXPECT_EQ(back.record, obs.record);
}

TEST(Wal, TornTailIsTruncatedNotFatal) {
  TempDir dir("torn");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(2, 4);
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    for (std::size_t at = 0; at < stream.size(); at += 2)
      writer.append(std::span<const core::FleetObservation>(stream).subspan(at, 2));
  }
  std::vector<char> image = read_bytes(path);
  // Cut mid-way through the last segment: a crash between write() and the
  // data reaching disk.
  image.resize(image.size() - kWalRecordSize - 3);
  write_bytes(path, image);

  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  EXPECT_EQ(segments.size(), 3u);  // 4 appended, last one torn
  EXPECT_EQ(stats.records_replayed, 6u);
  EXPECT_GT(stats.truncated_bytes, 0u);
  EXPECT_EQ(stats.last_seq, 3u);
}

TEST(Wal, CorruptPayloadIsRejectedByCrc) {
  TempDir dir("crc");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(2, 3);
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    writer.append(std::span<const core::FleetObservation>(stream).subspan(0, 4));
    writer.append(std::span<const core::FleetObservation>(stream).subspan(4, 2));
  }
  std::vector<char> image = read_bytes(path);
  // Flip one payload byte inside the FIRST segment: replay must stop at
  // the corrupt frame and discard everything after it (a mid-log CRC
  // mismatch means the boundary itself cannot be trusted).
  image[kWalFileHeaderSize + kWalSegmentHeaderSize + 5] ^= 0x40;
  write_bytes(path, image);

  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  EXPECT_EQ(segments.size(), 0u);
  EXPECT_EQ(stats.records_replayed, 0u);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST(Wal, DuplicateSeqIsSkippedOnReplay) {
  TempDir dir("dup");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(2, 2);
  std::size_t first_segment_offset = 0;
  std::size_t first_segment_size = 0;
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    first_segment_offset = writer.bytes_written();
    writer.append(std::span<const core::FleetObservation>(stream).subspan(0, 2));
    first_segment_size = writer.bytes_written() - first_segment_offset;
    writer.append(std::span<const core::FleetObservation>(stream).subspan(2, 2));
  }
  std::vector<char> image = read_bytes(path);
  // Redeliver segment 1 verbatim at the end of the log (producer retry
  // after an unacknowledged append).
  const std::vector<char> dup(image.begin() + static_cast<std::ptrdiff_t>(first_segment_offset),
                              image.begin() + static_cast<std::ptrdiff_t>(first_segment_offset +
                                                                          first_segment_size));
  image.insert(image.end(), dup.begin(), dup.end());
  write_bytes(path, image);

  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  EXPECT_EQ(segments.size(), 2u);
  EXPECT_EQ(stats.duplicates_skipped, 1u);
  EXPECT_EQ(stats.records_replayed, 4u);
  EXPECT_EQ(stats.truncated_bytes, 0u);  // the duplicate is valid, just stale
}

TEST(Wal, WriterResumeTruncatesTornTailAndContinuesSeq) {
  TempDir dir("resume");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(2, 3);
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    writer.append(std::span<const core::FleetObservation>(stream).subspan(0, 2));
    writer.append(std::span<const core::FleetObservation>(stream).subspan(2, 2));
  }
  {
    // Simulate a torn tail, then reopen: the writer must truncate back to
    // the durable boundary and continue the seq chain.
    std::vector<char> image = read_bytes(path);
    const std::size_t durable = image.size();
    image.push_back('\x7F');  // garbage half-frame
    image.push_back('\x00');
    write_bytes(path, image);
    WalWriter writer(path, 0, FsyncPolicy::kEverySegment);
    EXPECT_EQ(writer.next_seq(), 3u);
    EXPECT_EQ(writer.bytes_written(), durable);
    writer.append(std::span<const core::FleetObservation>(stream).subspan(4, 2));
  }
  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[2].seq, 3u);
  EXPECT_EQ(stats.records_replayed, 6u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST(Wal, AlienFileIsResetNotTrusted) {
  TempDir dir("alien");
  const std::string path = wal_path(dir.path(), 0);
  write_bytes(path, {'n', 'o', 't', ' ', 'a', ' ', 'w', 'a', 'l', '!', '!', '!',
                     '!', '!', '!', '!', '!', '!'});
  const auto stream = make_stream(1, 1);
  {
    WalWriter writer(path, 0, FsyncPolicy::kEverySegment);
    EXPECT_EQ(writer.next_seq(), 1u);
    writer.append(stream);
  }
  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_EQ(stats.records_replayed, 1u);
}

TEST(Wal, MissingFileReplaysAsEmpty) {
  TempDir dir("missing");
  WalReplayStats stats;
  const auto segments = collect(wal_path(dir.path(), 7), &stats);
  EXPECT_TRUE(segments.empty());
  EXPECT_FALSE(stats.header_valid);
  EXPECT_EQ(stats.durable_bytes, 0u);
}

TEST(Wal, OversizedLengthFieldStopsReplayInsteadOfReading) {
  TempDir dir("hugelen");
  const std::string path = wal_path(dir.path(), 0);
  const auto stream = make_stream(1, 2);
  {
    WalWriter writer(path, 0, FsyncPolicy::kNever);
    writer.append(std::span<const core::FleetObservation>(stream).subspan(0, 1));
  }
  std::vector<char> image = read_bytes(path);
  // Blast the len field (offset +20 in the segment header) to 0xFFFFFFFF.
  for (std::size_t i = 0; i < 4; ++i)
    image[kWalFileHeaderSize + 20 + i] = static_cast<char>(0xFF);
  write_bytes(path, image);
  WalReplayStats stats;
  const auto segments = collect(path, &stats);
  EXPECT_TRUE(segments.empty());
  EXPECT_GT(stats.truncated_bytes, 0u);
}

}  // namespace
}  // namespace ssdfail::daemon
