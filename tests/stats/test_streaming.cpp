#include "stats/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "stats/rng.hpp"

namespace ssdfail::stats {
namespace {

TEST(StreamingSummary, BasicMoments) {
  StreamingSummary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(StreamingSummary, EmptyIsSafe) {
  StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingSummary, MergeEqualsSequential) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(10.0, 3.0));

  StreamingSummary whole;
  for (double x : xs) whole.add(x);

  StreamingSummary a;
  StreamingSummary b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 700 ? a : b).add(xs[i]);
  a.merge(b);

  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingSummary, MergeWithEmpty) {
  StreamingSummary a;
  a.add(1.0);
  a.add(3.0);
  StreamingSummary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingSummary c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(ReservoirSample, KeepsEverythingBelowCapacity) {
  ReservoirSample r(10);
  for (int i = 0; i < 5; ++i) r.add(i);
  EXPECT_EQ(r.values().size(), 5u);
  EXPECT_EQ(r.population(), 5u);
}

TEST(ReservoirSample, CapsAtCapacity) {
  ReservoirSample r(10);
  for (int i = 0; i < 1000; ++i) r.add(i);
  EXPECT_EQ(r.values().size(), 10u);
  EXPECT_EQ(r.population(), 1000u);
}

TEST(ReservoirSample, ApproximatelyUniform) {
  // Feed 0..999 into many reservoirs; sampled mean should approach 499.5.
  double total = 0.0;
  std::size_t n = 0;
  for (int rep = 0; rep < 300; ++rep) {
    ReservoirSample r(20, static_cast<std::uint64_t>(rep));
    for (int i = 0; i < 1000; ++i) r.add(i);
    for (double v : r.values()) {
      total += v;
      ++n;
    }
  }
  EXPECT_NEAR(total / static_cast<double>(n), 499.5, 15.0);
}

TEST(ReservoirSample, MergeTracksPopulation) {
  ReservoirSample a(16, 1);
  ReservoirSample b(16, 2);
  for (int i = 0; i < 100; ++i) a.add(1.0);
  for (int i = 0; i < 300; ++i) b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.population(), 400u);
  // ~75% of merged values should come from b.
  int twos = 0;
  for (double v : a.values())
    if (v == 2.0) ++twos;
  EXPECT_GT(twos, 16 / 2);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(quantile_sorted({}, 0.5)));
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 1.0), 7.0);
}

TEST(Quantile, UnsortedConvenience) {
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

}  // namespace
}  // namespace ssdfail::stats
