#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssdfail::stats {
namespace {

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_index(0.0), 0u);
  EXPECT_EQ(h.bin_index(1.99), 0u);
  EXPECT_EQ(h.bin_index(2.0), 1u);
  EXPECT_EQ(h.bin_index(9.99), 4u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_index(-5.0), 0u);
  EXPECT_EQ(h.bin_index(100.0), 4u);
}

TEST(Histogram, AddAndTotal) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, Merge) {
  Histogram a(0.0, 4.0, 2);
  Histogram b(0.0, 4.0, 2);
  a.add(1.0);
  b.add(3.0);
  b.add(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.count(1), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 3), std::invalid_argument);
}

TEST(BinnedRate, RateIsEventsOverExposure) {
  BinnedRate r(0.0, 10.0, 2);
  r.add_exposure(1.0, 100.0);
  r.add_event(1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.rate(0), 0.05);
  EXPECT_DOUBLE_EQ(r.rate(1), 0.0);  // no exposure -> 0, not NaN
}

TEST(BinnedRate, NormalizesUnevenPopulations) {
  // Same underlying per-exposure rate in both bins, very different
  // populations: rates must come out equal.
  BinnedRate r(0.0, 2.0, 2);
  r.add_exposure(0.5, 10000.0);
  r.add_event(0.5, 100.0);
  r.add_exposure(1.5, 10.0);
  r.add_event(1.5, 0.1);
  EXPECT_DOUBLE_EQ(r.rate(0), r.rate(1));
}

TEST(BinnedRate, Merge) {
  BinnedRate a(0.0, 1.0, 1);
  BinnedRate b(0.0, 1.0, 1);
  a.add_exposure(0.5, 50.0);
  b.add_exposure(0.5, 50.0);
  a.add_event(0.5, 1.0);
  b.add_event(0.5, 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.rate(0), 0.04);
}

}  // namespace
}  // namespace ssdfail::stats
