#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssdfail::stats {
namespace {

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_index(0.0), 0u);
  EXPECT_EQ(h.bin_index(1.99), 0u);
  EXPECT_EQ(h.bin_index(2.0), 1u);
  EXPECT_EQ(h.bin_index(9.99), 4u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_index(-5.0), 0u);
  EXPECT_EQ(h.bin_index(100.0), 4u);
}

TEST(Histogram, AddAndTotal) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, Merge) {
  Histogram a(0.0, 4.0, 2);
  Histogram b(0.0, 4.0, 2);
  a.add(1.0);
  b.add(3.0);
  b.add(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.count(1), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileZeroSkipsLeadingEmptyBins) {
  // Regression: q = 0 must land on the first *occupied* bin's upper edge,
  // not on bin 0 (target mass 0 is trivially reached by an empty prefix).
  Histogram h(0.0, 10.0, 5);
  h.add(7.0);  // bin 3: [6, 8)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Histogram, QuantileCrossesCumulativeMass) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {1.0, 3.0, 5.0, 7.0, 9.0}) h.add(x);  // one per bin
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 2.0);   // target 1.0, reached at bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.0);   // target 2.5, crossed in bin 2
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // full mass -> last occupied bin
}

TEST(Histogram, QuantileClampsQOutsideUnitInterval) {
  Histogram h(0.0, 10.0, 5);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(-2.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(Histogram, QuantileOfOverflowedValuesStaysInRange) {
  // Regression: add() clamps out-of-range observations to the edge bins,
  // so no quantile may exceed hi (or undercut lo).
  Histogram h(0.0, 10.0, 5);
  h.add(1e12);
  h.add(-1e12);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);   // underflow clamped into bin 0
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // overflow clamped into top bin
  EXPECT_LE(h.quantile(0.999), 10.0);
}

TEST(Histogram, QuantileRespectsWeights) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0, 9.0);
  h.add(9.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);  // 90% of mass sits in bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 10.0);
}

TEST(BinnedRate, RateIsEventsOverExposure) {
  BinnedRate r(0.0, 10.0, 2);
  r.add_exposure(1.0, 100.0);
  r.add_event(1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.rate(0), 0.05);
  EXPECT_DOUBLE_EQ(r.rate(1), 0.0);  // no exposure -> 0, not NaN
}

TEST(BinnedRate, NormalizesUnevenPopulations) {
  // Same underlying per-exposure rate in both bins, very different
  // populations: rates must come out equal.
  BinnedRate r(0.0, 2.0, 2);
  r.add_exposure(0.5, 10000.0);
  r.add_event(0.5, 100.0);
  r.add_exposure(1.5, 10.0);
  r.add_event(1.5, 0.1);
  EXPECT_DOUBLE_EQ(r.rate(0), r.rate(1));
}

TEST(BinnedRate, Merge) {
  BinnedRate a(0.0, 1.0, 1);
  BinnedRate b(0.0, 1.0, 1);
  a.add_exposure(0.5, 50.0);
  b.add_exposure(0.5, 50.0);
  a.add_event(0.5, 1.0);
  b.add_event(0.5, 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.rate(0), 0.04);
}

}  // namespace
}  // namespace ssdfail::stats
