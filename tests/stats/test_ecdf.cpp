#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdfail::stats {
namespace {

TEST(Ecdf, BasicEvaluation) {
  Ecdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  Ecdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.0);
}

TEST(Ecdf, IncrementalAdd) {
  Ecdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.5), 1.0 / 3.0);
  cdf.add(0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.5), 0.5);
}

TEST(Ecdf, EmptyIsNaN) {
  Ecdf cdf;
  EXPECT_TRUE(std::isnan(cdf.at(1.0)));
  EXPECT_TRUE(std::isnan(cdf.quantile(0.5)));
}

TEST(Ecdf, QuantileInverse) {
  Ecdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
}

TEST(Ecdf, MergeCombinesSamples) {
  Ecdf a({1.0, 2.0});
  Ecdf b({3.0, 4.0});
  a.merge(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.at(2.5), 0.5);
}

TEST(CensoredEcdf, SplitsMassCorrectly) {
  CensoredEcdf cdf;
  cdf.add_observed(1.0);
  cdf.add_observed(2.0);
  cdf.add_censored();
  cdf.add_censored();
  EXPECT_DOUBLE_EQ(cdf.censored_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);    // both finite observations
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);   // one of four
  EXPECT_DOUBLE_EQ(cdf.at(1e9), 0.5);    // censored mass never enters
}

TEST(CensoredEcdf, AllCensored) {
  CensoredEcdf cdf;
  cdf.add_censored();
  EXPECT_DOUBLE_EQ(cdf.censored_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
}

TEST(CensoredEcdf, Merge) {
  CensoredEcdf a;
  a.add_observed(1.0);
  CensoredEcdf b;
  b.add_censored();
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.censored_fraction(), 0.5);
}

TEST(EvaluateCdf, GridEvaluation) {
  Ecdf cdf({1.0, 2.0, 3.0, 4.0});
  const auto pts = evaluate_cdf(cdf, {0.0, 2.0, 5.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].p, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].p, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].p, 1.0);
}

}  // namespace
}  // namespace ssdfail::stats
