#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdfail::stats {
namespace {

TEST(NormQuantile, KnownValues) {
  EXPECT_NEAR(norm_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(norm_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(norm_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(norm_quantile(0.8413447), 1.0, 1e-4);
}

TEST(NormQuantile, EdgeCases) {
  EXPECT_EQ(norm_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(norm_quantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(NormCdf, KnownValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(norm_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(norm_cdf(3.0), 0.9986501, 1e-6);
}

class NormRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(NormRoundTripTest, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(norm_cdf(norm_quantile(p)), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormRoundTripTest,
                         ::testing::Values(1e-6, 1e-3, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.9, 0.99, 0.999, 1.0 - 1e-6));

TEST(NormQuantile, MonotoneOverGrid) {
  double prev = -std::numeric_limits<double>::infinity();
  for (double p = 0.001; p < 1.0; p += 0.001) {
    const double q = norm_quantile(p);
    ASSERT_GT(q, prev);
    prev = q;
  }
}

TEST(NormQuantile, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(norm_quantile(p), -norm_quantile(1.0 - p), 1e-8);
  }
}

}  // namespace
}  // namespace ssdfail::stats
