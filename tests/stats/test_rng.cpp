#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ssdfail::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, KeyedConstructionMatchesHash) {
  Rng a({7, 8, 9});
  Rng b(hash_keys({7, 8, 9}));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, HashKeysIsOrderSensitive) {
  EXPECT_NE(hash_keys({1, 2}), hash_keys({2, 1}));
  EXPECT_NE(hash_keys({1}), hash_keys({1, 0}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(4);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.003);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_index(7))];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(std::log(5.0), 0.8));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 5.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LoguniformWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.loguniform(1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(15);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0], n / 4, 400);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2], 3 * n / 4, 400);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

class RngDistributionParamTest : public ::testing::TestWithParam<double> {};

TEST_P(RngDistributionParamTest, ExponentialMeanMatchesRate) {
  const double rate = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(rate * 1000));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.03 / rate);
}

INSTANTIATE_TEST_SUITE_P(Rates, RngDistributionParamTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace ssdfail::stats
