file(REMOVE_RECURSE
  "CMakeFiles/test_ecdf.dir/test_ecdf.cpp.o"
  "CMakeFiles/test_ecdf.dir/test_ecdf.cpp.o.d"
  "test_ecdf"
  "test_ecdf.pdb"
  "test_ecdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
