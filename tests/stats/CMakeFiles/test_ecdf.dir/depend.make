# Empty dependencies file for test_ecdf.
# This may be replaced when dependencies are built.
