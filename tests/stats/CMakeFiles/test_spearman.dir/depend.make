# Empty dependencies file for test_spearman.
# This may be replaced when dependencies are built.
