file(REMOVE_RECURSE
  "CMakeFiles/test_spearman.dir/test_spearman.cpp.o"
  "CMakeFiles/test_spearman.dir/test_spearman.cpp.o.d"
  "test_spearman"
  "test_spearman.pdb"
  "test_spearman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spearman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
