#include "stats/survival.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace ssdfail::stats {
namespace {

TEST(KaplanMeier, NoCensoringMatchesEmpiricalSurvival) {
  // Events at 1,2,3,4: S(t) steps down by 1/4 each time.
  std::vector<SurvivalObservation> obs = {
      {1.0, true}, {2.0, true}, {3.0, true}, {4.0, true}};
  const auto curve = kaplan_meier(obs);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].value, 0.75);
  EXPECT_DOUBLE_EQ(curve[1].value, 0.50);
  EXPECT_DOUBLE_EQ(curve[2].value, 0.25);
  EXPECT_DOUBLE_EQ(curve[3].value, 0.0);
}

TEST(KaplanMeier, TextbookCensoredExample) {
  // Classic worked example: events at 6 (3x), 7, 10, 13, 16, 22, 23;
  // censored at 6, 9, 10, 11, 17, 19, 20, 25, 32, 32, 34, 35 (leukemia 6-MP
  // arm, Freireich 1963).  S(6) = 21/21 * (1 - 3/21) = 0.857.
  std::vector<SurvivalObservation> obs;
  for (double t : {6.0, 6.0, 6.0, 7.0, 10.0, 13.0, 16.0, 22.0, 23.0})
    obs.push_back({t, true});
  for (double t : {6.0, 9.0, 10.0, 11.0, 17.0, 19.0, 20.0, 25.0, 32.0, 32.0, 34.0, 35.0})
    obs.push_back({t, false});
  const auto curve = kaplan_meier(obs);
  EXPECT_NEAR(step_at(curve, 6.0, 1.0), 0.857, 1e-3);
  EXPECT_NEAR(step_at(curve, 7.0, 1.0), 0.807, 1e-3);
  EXPECT_NEAR(step_at(curve, 10.0, 1.0), 0.753, 1e-3);
  EXPECT_NEAR(step_at(curve, 23.0, 1.0), 0.448, 1e-3);
}

TEST(KaplanMeier, CensoringRemovesFromRiskSet) {
  std::vector<SurvivalObservation> obs = {
      {1.0, true}, {2.0, false}, {3.0, true}, {4.0, false}};
  const auto curve = kaplan_meier(obs);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].value, 0.75);           // 1 - 1/4
  EXPECT_DOUBLE_EQ(curve[1].value, 0.75 * 0.5);     // 1 - 1/2 (2 at risk)
  EXPECT_EQ(curve[1].at_risk, 2u);
}

TEST(KaplanMeier, EmptyAndAllCensored) {
  EXPECT_TRUE(kaplan_meier({}).empty());
  const auto curve = kaplan_meier({{5.0, false}, {7.0, false}});
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(step_at(curve, 10.0, 1.0), 1.0);
}

TEST(KaplanMeier, TieOfEventAndCensorAtSameTime) {
  // Censored-at-t subject is still at risk for the event at t.
  std::vector<SurvivalObservation> obs = {{2.0, true}, {2.0, false}, {5.0, true}};
  const auto curve = kaplan_meier(obs);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].value, 1.0 - 1.0 / 3.0, 1e-12);
  EXPECT_EQ(curve[0].at_risk, 3u);
}

TEST(KaplanMeier, MatchesTrueExponentialSurvival) {
  // Exponential(0.01) events censored at 100: KM must track e^{-0.01 t}.
  Rng rng(8);
  std::vector<SurvivalObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const double t = rng.exponential(0.01);
    obs.push_back(t < 100.0 ? SurvivalObservation{t, true}
                            : SurvivalObservation{100.0, false});
  }
  const auto curve = kaplan_meier(obs);
  for (double t : {10.0, 30.0, 50.0, 80.0})
    EXPECT_NEAR(step_at(curve, t, 1.0), std::exp(-0.01 * t), 0.01) << t;
}

TEST(MedianSurvival, FoundAndNotFound) {
  std::vector<SurvivalObservation> obs = {
      {1.0, true}, {2.0, true}, {3.0, true}, {4.0, true}};
  EXPECT_DOUBLE_EQ(median_survival(kaplan_meier(obs)), 2.0);
  // Heavy censoring: survival never reaches 0.5.
  std::vector<SurvivalObservation> censored = {
      {1.0, true}, {9.0, false}, {9.0, false}, {9.0, false}};
  EXPECT_TRUE(std::isnan(median_survival(kaplan_meier(censored))));
}

TEST(NelsonAalen, MatchesTrueCumulativeHazard) {
  Rng rng(9);
  std::vector<SurvivalObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const double t = rng.exponential(0.02);
    obs.push_back(t < 60.0 ? SurvivalObservation{t, true}
                           : SurvivalObservation{60.0, false});
  }
  const auto curve = nelson_aalen(obs);
  for (double t : {10.0, 25.0, 50.0})
    EXPECT_NEAR(step_at(curve, t, 0.0), 0.02 * t, 0.03) << t;
}

TEST(NelsonAalen, ExpOfMinusHazardApproximatesKm) {
  Rng rng(10);
  std::vector<SurvivalObservation> obs;
  for (int i = 0; i < 5000; ++i) obs.push_back({rng.weibull(1.5, 50.0), true});
  const auto km = kaplan_meier(obs);
  const auto na = nelson_aalen(obs);
  for (double t : {20.0, 40.0, 60.0})
    EXPECT_NEAR(step_at(km, t, 1.0), std::exp(-step_at(na, t, 0.0)), 0.02);
}

}  // namespace
}  // namespace ssdfail::stats
