# CMake generated Testfile for 
# Source directory: /root/repo/tests/stats
# Build directory: /root/repo/tests/stats
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/stats/test_rng[1]_include.cmake")
include("/root/repo/tests/stats/test_streaming[1]_include.cmake")
include("/root/repo/tests/stats/test_ecdf[1]_include.cmake")
include("/root/repo/tests/stats/test_histogram[1]_include.cmake")
include("/root/repo/tests/stats/test_spearman[1]_include.cmake")
include("/root/repo/tests/stats/test_normal[1]_include.cmake")
include("/root/repo/tests/stats/test_survival[1]_include.cmake")
