#include "stats/spearman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace ssdfail::stats {
namespace {

TEST(Midranks, NoTies) {
  const std::vector<double> v = {30.0, 10.0, 20.0};
  const auto r = midranks(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Midranks, TieGroupsShareAverage) {
  const std::vector<double> v = {5.0, 1.0, 5.0, 1.0, 9.0};
  const auto r = midranks(v);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
  EXPECT_DOUBLE_EQ(r[3], 1.5);
  EXPECT_DOUBLE_EQ(r[0], 3.5);
  EXPECT_DOUBLE_EQ(r[2], 3.5);
  EXPECT_DOUBLE_EQ(r[4], 5.0);
}

TEST(Midranks, AllEqual) {
  const std::vector<double> v = {2.0, 2.0, 2.0};
  const auto r = midranks(v);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Pearson, PerfectLinear) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideIsNaN) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(pearson(x, y)));
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW((void)pearson(x, y), std::invalid_argument);
}

TEST(Spearman, DetectsMonotoneNonlinear) {
  // y = x^3 is monotone: Spearman must be exactly 1, Pearson less than 1.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(static_cast<double>(i) * i * i);
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, IndependentNearZero) {
  Rng rng(123);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(spearman(x, y), 0.0, 0.02);
}

TEST(Spearman, HeavyZeroInflationWithSignal) {
  // Mimics cumulative error counts: mostly zeros, with both incidence and
  // magnitude growing in x.  Tie-aware Spearman must be clearly positive.
  Rng rng(9);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    const double xi = rng.uniform();
    x.push_back(xi);
    y.push_back(rng.bernoulli(0.25 * xi) ? xi * 100.0 : 0.0);
  }
  const double rho = spearman(x, y);
  EXPECT_GT(rho, 0.1);
  EXPECT_LT(rho, 0.6);
}

TEST(SpearmanMatrix, SymmetricWithUnitDiagonal) {
  Rng rng(55);
  std::vector<std::vector<double>> cols(3);
  for (int i = 0; i < 500; ++i) {
    const double base = rng.uniform();
    cols[0].push_back(base);
    cols[1].push_back(base + 0.1 * rng.normal());
    cols[2].push_back(rng.uniform());
  }
  const auto m = spearman_matrix(cols);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
  }
  EXPECT_GT(m[0][1], 0.9);
  EXPECT_LT(std::abs(m[0][2]), 0.15);
}

}  // namespace
}  // namespace ssdfail::stats
