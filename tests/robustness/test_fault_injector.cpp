// Fault-injector tests: determinism across batch boundaries, label
// accounting, and the load-bearing guarantee that every record labeled
// kCorrupt is actually caught (repaired, duplicate-dropped, or quarantined)
// by the RecordSanitizer, while kClean/kTainted records pass untouched.

#include "robustness/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "robustness/record_sanitizer.hpp"

namespace ssdfail::robustness {
namespace {

/// A clean day-ordered replay: `drives` drives reporting every day, with
/// growing cumulative counters so every fault kind becomes injectable.
std::vector<core::FleetObservation> make_stream(std::uint32_t drives,
                                                std::int32_t days) {
  std::vector<core::FleetObservation> stream;
  stream.reserve(static_cast<std::size_t>(drives) * static_cast<std::size_t>(days));
  for (std::int32_t day = 0; day < days; ++day) {
    for (std::uint32_t d = 0; d < drives; ++d) {
      trace::DailyRecord rec;
      rec.day = day;
      rec.reads = 100 + d;
      rec.writes = 40 + static_cast<std::uint32_t>(day);
      rec.erases = 4;
      rec.pe_cycles = 10 + 2 * static_cast<std::uint32_t>(day);
      rec.bad_blocks = 1 + static_cast<std::uint32_t>(day) / 8;
      rec.factory_bad_blocks = 4;
      stream.push_back({trace::DriveModel::MlcA, d, 0, rec});
    }
  }
  return stream;
}

TEST(FaultInjector, ZeroRatesPassStreamThroughVerbatim) {
  FaultInjector injector(7, FaultRates{});
  const auto stream = make_stream(3, 10);
  const auto out = injector.corrupt(stream);
  ASSERT_EQ(out.observations.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(out.observations[i].record, stream[i].record);
    EXPECT_EQ(out.origin[i], i);
    EXPECT_EQ(out.label[i], StreamLabel::kClean);
  }
  EXPECT_EQ(out.total_injected(), 0u);
}

TEST(FaultInjector, DeterministicForAFixedSeed) {
  const auto stream = make_stream(5, 60);
  FaultInjector a(11, FaultRates::uniform(0.2));
  FaultInjector b(11, FaultRates::uniform(0.2));
  const auto out_a = a.corrupt(stream);
  const auto out_b = b.corrupt(stream);
  ASSERT_EQ(out_a.observations.size(), out_b.observations.size());
  for (std::size_t i = 0; i < out_a.observations.size(); ++i) {
    EXPECT_EQ(out_a.observations[i].record, out_b.observations[i].record);
    EXPECT_EQ(out_a.label[i], out_b.label[i]);
  }
  EXPECT_EQ(out_a.injected, out_b.injected);
}

TEST(FaultInjector, BatchBoundariesDoNotChangeTheFaultSequence) {
  const auto stream = make_stream(4, 50);
  FaultInjector whole(23, FaultRates::uniform(0.15));
  const auto expected = whole.corrupt(stream);

  FaultInjector chunked(23, FaultRates::uniform(0.15));
  std::vector<core::FleetObservation> observations;
  std::vector<StreamLabel> labels;
  std::array<std::uint64_t, kNumFaultKinds> injected{};
  const std::span<const core::FleetObservation> span(stream);
  for (std::size_t at = 0; at < stream.size(); at += 7) {
    const auto chunk = chunked.corrupt(span.subspan(at, std::min<std::size_t>(7, stream.size() - at)));
    observations.insert(observations.end(), chunk.observations.begin(),
                        chunk.observations.end());
    labels.insert(labels.end(), chunk.label.begin(), chunk.label.end());
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) injected[k] += chunk.injected[k];
  }
  ASSERT_EQ(observations.size(), expected.observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    EXPECT_EQ(observations[i].record, expected.observations[i].record);
    EXPECT_EQ(labels[i], expected.label[i]);
  }
  EXPECT_EQ(injected, expected.injected);
}

TEST(FaultInjector, ResetReproducesTheRun) {
  const auto stream = make_stream(3, 40);
  FaultInjector injector(5, FaultRates::uniform(0.25));
  const auto first = injector.corrupt(stream);
  injector.reset();
  const auto second = injector.corrupt(stream);
  ASSERT_EQ(first.observations.size(), second.observations.size());
  for (std::size_t i = 0; i < first.observations.size(); ++i)
    EXPECT_EQ(first.observations[i].record, second.observations[i].record);
}

TEST(FaultInjector, EveryStreamFaultKindFiresOnALongStream) {
  FaultInjector injector(3, FaultRates::uniform(0.3));
  const auto out = injector.corrupt(make_stream(12, 200));
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (kind == FaultKind::kSwapOutOfOrder || kind == FaultKind::kSwapBeforeActivity ||
        kind == FaultKind::kTornWrite || kind == FaultKind::kPartialSegment ||
        kind == FaultKind::kDuplicateDelivery ||
        kind == FaultKind::kClassCounterReset)
      continue;  // history-/WAL-only faults never fire on streams
    EXPECT_GT(out.injected[k], 0u) << fault_name(kind);
  }
  EXPECT_GT(out.count(StreamLabel::kCorrupt), 0u);
  EXPECT_GT(out.count(StreamLabel::kTainted), 0u);
  EXPECT_GT(out.count(StreamLabel::kClean), 0u);
}

// The contract the chaos tests lean on: a kCorrupt record never reaches the
// model (the sanitizer repairs, drops, or quarantines it), while kClean and
// kTainted records are accepted exactly as sent.
TEST(FaultInjector, CorruptLabelsMatchSanitizerVerdicts) {
  FaultInjector injector(17, FaultRates::uniform(0.2));
  const auto stream = make_stream(8, 120);
  const auto out = injector.corrupt(stream);
  RecordSanitizer sanitizer;
  std::uint64_t caught = 0;
  for (std::size_t i = 0; i < out.observations.size(); ++i) {
    const auto& obs = out.observations[i];
    const auto verdict = sanitizer.sanitize(obs.uid(), obs.deploy_day, obs.record);
    if (out.label[i] == StreamLabel::kCorrupt) {
      EXPECT_NE(verdict.action, SanitizeAction::kClean)
          << "undetected corrupt record at position " << i << " (day "
          << obs.record.day << ")";
      ++caught;
    } else {
      EXPECT_EQ(verdict.action, SanitizeAction::kClean)
          << "false positive on untouched record at position " << i;
    }
  }
  EXPECT_EQ(caught, out.count(StreamLabel::kCorrupt));
  // Cross-check the totals: every corrupt record shows up in exactly one of
  // the sanitizer's three outcome counters.
  const auto snap = sanitizer.snapshot();
  EXPECT_EQ(snap.records_repaired + snap.duplicates_dropped + snap.records_quarantined,
            caught);
}

TEST(FaultInjector, HistoryInjectionDuplicate) {
  trace::DriveHistory drive;
  drive.model = trace::DriveModel::MlcB;
  drive.deploy_day = 0;
  for (std::int32_t day = 0; day < 6; ++day) {
    trace::DailyRecord rec;
    rec.day = day;
    rec.writes = 10;
    rec.pe_cycles = 5 + static_cast<std::uint32_t>(day);
    rec.bad_blocks = 1 + static_cast<std::uint32_t>(day);
    drive.records.push_back(rec);
  }
  stats::Rng rng(99);
  const auto kind =
      FaultInjector::inject_into_history(drive, FaultKind::kDuplicate, rng);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, trace::ViolationKind::kNonMonotoneDays);
  EXPECT_EQ(drive.records.size(), 7u);
}

TEST(FaultInjector, HistoryInjectionRejectsTinyHistories) {
  trace::DriveHistory drive;
  drive.records.resize(2);
  stats::Rng rng(1);
  EXPECT_THROW(
      (void)FaultInjector::inject_into_history(drive, FaultKind::kDuplicate, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::robustness
