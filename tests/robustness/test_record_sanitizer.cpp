// Unit tests for the online record sanitizer: repair, duplicate-drop, and
// quarantine semantics, per-kind accounting, and the strictly-increasing-day
// guarantee for accepted records.

#include "robustness/record_sanitizer.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ssdfail::robustness {
namespace {

constexpr std::uint64_t kUid = 42;
constexpr std::uint32_t kSaturated = std::numeric_limits<std::uint32_t>::max();

trace::DailyRecord record_on(std::int32_t day) {
  trace::DailyRecord rec;
  rec.day = day;
  rec.reads = 100;
  rec.writes = 50;
  rec.erases = 5;
  rec.pe_cycles = 200 + static_cast<std::uint32_t>(day);
  rec.bad_blocks = 3;
  rec.factory_bad_blocks = 7;
  return rec;
}

TEST(RecordSanitizer, CleanRecordsPassThroughUntouched) {
  RecordSanitizer sanitizer;
  for (std::int32_t day = 0; day < 5; ++day) {
    const auto r = sanitizer.sanitize(kUid, 0, record_on(day));
    EXPECT_EQ(r.action, SanitizeAction::kClean);
    EXPECT_EQ(r.record, record_on(day));
  }
  const auto snap = sanitizer.snapshot();
  EXPECT_EQ(snap.records_repaired, 0u);
  EXPECT_EQ(snap.records_quarantined, 0u);
  EXPECT_EQ(snap.duplicates_dropped, 0u);
  EXPECT_TRUE(snap.dead_letters.empty());
}

TEST(RecordSanitizer, PeCycleRegressionClampsToLastGood) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord reset = record_on(2);
  reset.pe_cycles = 4;  // way below day 1's 201
  const auto r = sanitizer.sanitize(kUid, 0, reset);
  EXPECT_EQ(r.action, SanitizeAction::kRepaired);
  EXPECT_EQ(r.kind, trace::ViolationKind::kDecreasingPeCycles);
  EXPECT_EQ(r.record.pe_cycles, record_on(1).pe_cycles);
  // The clamped value becomes the new last-good: a follow-up record at the
  // pre-reset level is NOT flagged again.
  const auto next = sanitizer.sanitize(kUid, 0, record_on(3));
  EXPECT_EQ(next.action, SanitizeAction::kClean);
}

TEST(RecordSanitizer, BadBlockRegressionClampsToLastGood) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord reset = record_on(2);
  reset.bad_blocks = 0;
  const auto r = sanitizer.sanitize(kUid, 0, reset);
  EXPECT_EQ(r.action, SanitizeAction::kRepaired);
  EXPECT_EQ(r.kind, trace::ViolationKind::kDecreasingBadBlocks);
  EXPECT_EQ(r.record.bad_blocks, 3u);
}

TEST(RecordSanitizer, FactoryBadBlocksPinnedToFirstObservation) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord drifted = record_on(2);
  drifted.factory_bad_blocks = 9;
  const auto r = sanitizer.sanitize(kUid, 0, drifted);
  EXPECT_EQ(r.action, SanitizeAction::kRepaired);
  EXPECT_EQ(r.kind, trace::ViolationKind::kFactoryBadBlocksChanged);
  EXPECT_EQ(r.record.factory_bad_blocks, 7u);
}

TEST(RecordSanitizer, ErasesOnZeroWriteDayAreZeroed) {
  RecordSanitizer sanitizer;
  trace::DailyRecord idle = record_on(1);
  idle.writes = 0;
  idle.erases = 12;
  const auto r = sanitizer.sanitize(kUid, 0, idle);
  EXPECT_EQ(r.action, SanitizeAction::kRepaired);
  EXPECT_EQ(r.kind, trace::ViolationKind::kErasesWithoutWrites);
  EXPECT_EQ(r.record.erases, 0u);
  EXPECT_EQ(r.record.writes, 0u);
}

TEST(RecordSanitizer, MultipleRepairsCountEachKindButOneRecord) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord bad = record_on(2);
  bad.pe_cycles = 0;
  bad.bad_blocks = 0;
  bad.factory_bad_blocks = 1;
  const auto r = sanitizer.sanitize(kUid, 0, bad);
  EXPECT_EQ(r.action, SanitizeAction::kRepaired);
  const auto snap = sanitizer.snapshot();
  EXPECT_EQ(snap.records_repaired, 1u);
  EXPECT_EQ(snap.repaired[static_cast<std::size_t>(
                trace::ViolationKind::kDecreasingPeCycles)],
            1u);
  EXPECT_EQ(snap.repaired[static_cast<std::size_t>(
                trace::ViolationKind::kDecreasingBadBlocks)],
            1u);
  EXPECT_EQ(snap.repaired[static_cast<std::size_t>(
                trace::ViolationKind::kFactoryBadBlocksChanged)],
            1u);
}

TEST(RecordSanitizer, ExactDuplicateDroppedSilently) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  const auto r = sanitizer.sanitize(kUid, 0, record_on(1));
  EXPECT_EQ(r.action, SanitizeAction::kDuplicateDropped);
  const auto snap = sanitizer.snapshot();
  EXPECT_EQ(snap.duplicates_dropped, 1u);
  EXPECT_EQ(snap.records_quarantined, 0u);
  EXPECT_TRUE(snap.dead_letters.empty());
}

TEST(RecordSanitizer, SameDayConflictQuarantined) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord conflict = record_on(1);
  conflict.reads += 1;  // same day, different payload: no principled merge
  const auto r = sanitizer.sanitize(kUid, 0, conflict);
  EXPECT_EQ(r.action, SanitizeAction::kQuarantined);
  EXPECT_EQ(r.kind, trace::ViolationKind::kNonMonotoneDays);
}

TEST(RecordSanitizer, OutOfOrderQuarantinedAndStateUntouched) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(5));
  const auto stale = sanitizer.sanitize(kUid, 0, record_on(3));
  EXPECT_EQ(stale.action, SanitizeAction::kQuarantined);
  EXPECT_EQ(stale.kind, trace::ViolationKind::kNonMonotoneDays);
  // A quarantined record must not advance last-good state: day 6 is still
  // judged against day 5, and accepted.
  const auto next = sanitizer.sanitize(kUid, 0, record_on(6));
  EXPECT_EQ(next.action, SanitizeAction::kClean);
}

TEST(RecordSanitizer, BeforeDeployQuarantined) {
  RecordSanitizer sanitizer;
  const auto r = sanitizer.sanitize(kUid, 100, record_on(99));
  EXPECT_EQ(r.action, SanitizeAction::kQuarantined);
  EXPECT_EQ(r.kind, trace::ViolationKind::kRecordBeforeDeploy);
}

TEST(RecordSanitizer, SaturatedGarbageQuarantinedBeforeCounterRules) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(1));
  trace::DailyRecord garbage = record_on(2);
  garbage.pe_cycles = kSaturated;  // would read as a huge "jump", not a reset
  const auto r = sanitizer.sanitize(kUid, 0, garbage);
  EXPECT_EQ(r.action, SanitizeAction::kQuarantined);
  EXPECT_EQ(r.kind, trace::ViolationKind::kImplausibleValue);
  // And it never became last-good: day 3's normal P/E is clean.
  const auto next = sanitizer.sanitize(kUid, 0, record_on(3));
  EXPECT_EQ(next.action, SanitizeAction::kClean);
}

TEST(RecordSanitizer, DeadLetterQueueEvictsOldestAndCountsLoudly) {
  SanitizerConfig config;
  config.dead_letter_capacity = 2;
  RecordSanitizer sanitizer(config);
  (void)sanitizer.sanitize(kUid, 0, record_on(10));
  for (std::int32_t day = 1; day <= 5; ++day)
    (void)sanitizer.sanitize(kUid, 0, record_on(day));  // all stale vs day 10
  const auto snap = sanitizer.snapshot();
  EXPECT_EQ(snap.records_quarantined, 5u);
  ASSERT_EQ(snap.dead_letters.size(), 2u);
  EXPECT_EQ(snap.dead_letter_overflow, 3u);
  EXPECT_EQ(snap.dead_letter_evicted, 3u);
  // The queue is a window over the most RECENT quarantines (days 4, 5).
  EXPECT_EQ(snap.dead_letters[0].record.day, 4);
  EXPECT_EQ(snap.dead_letters[1].record.day, 5);
  EXPECT_EQ(snap.dead_letters[0].drive_uid, kUid);
}

TEST(RecordSanitizer, DeadLetterEvictionsAreVisibleInTheRegistry) {
  obs::MetricsRegistry registry;
  SanitizerConfig config;
  config.dead_letter_capacity = 1;
  config.registry = &registry;
  RecordSanitizer sanitizer(config);
  (void)sanitizer.sanitize(kUid, 0, record_on(10));
  (void)sanitizer.sanitize(kUid, 0, record_on(1));  // queued
  (void)sanitizer.sanitize(kUid, 0, record_on(2));  // evicts day 1
  const obs::RegistrySnapshot snap = registry.snapshot();
  const obs::Sample* evicted = snap.find("sanitizer_dead_letter_evicted_total");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->value, 1.0);
  const obs::Sample* overflow = snap.find("sanitizer_dead_letter_overflow_total");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->value, 1.0);
}

TEST(RecordSanitizer, ForgetResetsDriveState) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(kUid, 0, record_on(9));
  sanitizer.forget(kUid);
  // Fresh state: an "older" day is acceptable again (drive was swapped).
  const auto r = sanitizer.sanitize(kUid, 0, record_on(1));
  EXPECT_EQ(r.action, SanitizeAction::kClean);
}

TEST(RecordSanitizer, DrivesAreIndependent) {
  RecordSanitizer sanitizer;
  (void)sanitizer.sanitize(1, 0, record_on(9));
  const auto r = sanitizer.sanitize(2, 0, record_on(1));
  EXPECT_EQ(r.action, SanitizeAction::kClean);
}

TEST(SanitizerSnapshot, MergeSumsCountersAndConcatenatesDeadLetters) {
  RecordSanitizer a, b;
  (void)a.sanitize(1, 0, record_on(5));
  (void)a.sanitize(1, 0, record_on(3));  // quarantined
  (void)b.sanitize(2, 0, record_on(5));
  (void)b.sanitize(2, 0, record_on(5));  // duplicate-dropped
  SanitizerSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.records_quarantined, 1u);
  EXPECT_EQ(merged.duplicates_dropped, 1u);
  EXPECT_EQ(merged.dead_letters.size(), 1u);
}

}  // namespace
}  // namespace ssdfail::robustness
