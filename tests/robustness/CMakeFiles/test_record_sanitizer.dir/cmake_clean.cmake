file(REMOVE_RECURSE
  "CMakeFiles/test_record_sanitizer.dir/test_record_sanitizer.cpp.o"
  "CMakeFiles/test_record_sanitizer.dir/test_record_sanitizer.cpp.o.d"
  "test_record_sanitizer"
  "test_record_sanitizer.pdb"
  "test_record_sanitizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
