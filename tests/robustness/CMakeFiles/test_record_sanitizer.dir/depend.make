# Empty dependencies file for test_record_sanitizer.
# This may be replaced when dependencies are built.
