# CMake generated Testfile for 
# Source directory: /root/repo/tests/robustness
# Build directory: /root/repo/tests/robustness
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/robustness/test_record_sanitizer[1]_include.cmake")
include("/root/repo/tests/robustness/test_fault_injector[1]_include.cmake")
