# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/integration/test_golden_pipeline[1]_include.cmake")
