// Golden end-to-end regression suite.
//
// One pinned ~20-drive fleet flows through the whole pipeline — simulate,
// serialize (v1 row and v2 columnar), build datasets by both paths, train
// and cross-validate the paper's random forest — and every stage's output
// is asserted against committed golden values: dataset row count, label
// counts, per-column checksums, and per-fold AUCs.
//
// Purpose: any refactor that changes pipeline OUTPUT (not just speed)
// fails here with a precise diff of what moved.  The columnar dataset
// build is required to be BIT-identical to the row path, so both paths
// are checked against the same goldens and against each other.
//
// If an intentional behavior change moves the numbers, regenerate with
//   ./test_golden_pipeline --gtest_also_run_disabled_tests
//       --gtest_filter='*PrintGoldenValues*'   (one command line)
// and paste the emitted block over the constants below, explaining the
// change in the commit message.
//
// Tolerances: counts and checksums are exact (integer timeline logic and
// one fixed float->double accumulation order); AUCs allow 1e-9 for libm
// differences across toolchains.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/prediction.hpp"
#include "core/transfer.hpp"
#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"
#include "trace/binary_io.hpp"

namespace ssdfail {
namespace {

constexpr std::uint32_t kDrivesPerModel = 7;  // 21 drives across 3 models
constexpr std::uint64_t kFleetSeed = 424242;

trace::FleetTrace golden_fleet() {
  sim::FleetConfig cfg;
  cfg.drives_per_model = kDrivesPerModel;
  cfg.seed = kFleetSeed;
  cfg.keep_ground_truth = false;
  return sim::FleetSimulator(cfg).generate_all();
}

core::DatasetBuildOptions golden_options() {
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.05;
  opts.seed = 101;
  return opts;
}

/// Options for the cross-validated forest: a ~20-drive fleet has too few
/// FAILING drives for drive-partitioned 5-fold CV (folds would be
/// single-class), so the AUC goldens use the Table 8 error-occurrence
/// label, which puts positives on most drives.
core::DatasetBuildOptions auc_options() {
  core::DatasetBuildOptions opts = golden_options();
  opts.error_label = trace::ErrorType::kUncorrectable;
  return opts;
}

/// Per-feature column checksum: double accumulation in row order — fixed
/// order, so it is exact across platforms that promote float->double
/// identically (all of them).
std::vector<double> column_sums(const ml::Dataset& data) {
  std::vector<double> sums(data.x.cols(), 0.0);
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const auto row = data.x.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) sums[c] += row[c];
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Committed golden values (regenerate via DISABLED_PrintGoldenValues).
// ---------------------------------------------------------------------------
constexpr std::size_t kGoldenFleetRecords = 30951;
constexpr std::size_t kGoldenFleetSwaps = 1;
constexpr std::size_t kGoldenRows = 1586;
constexpr std::size_t kGoldenPositives = 8;
const std::vector<double> kGoldenColumnSums = {
    319994264566,
    171075219200,
    334833418,
    169472773,
    1,
    1898,
    0,
    0,
    0,
    0,
    0,
    19440,
    2,
    39,
    243691308379848,
    131273644911216,
    257823070876,
    121014671139,
    2565,
    3519031,
    0,
    0,
    192,
    0,
    0,
    8099461,
    3071,
    37717,
    396061,
    1350037,
    0,
    0.73876769817798049,
    0,  // reallocated_sectors — zero on an all-MLC fleet
    0,  // seek_errors
    0,  // cum_seek_errors
    0,  // media_wear
    0,  // throttle_events
    0,  // cum_throttle_events
};
const std::vector<double> kGoldenFoldAucs = {
    0.76437462951985768,
    0.708546112804878,
    0.83500418060200665,
    0.90887989203778674,
    0.35262096774193546,
};
// Heterogeneous-fleet goldens: the same pinned seed extended over every
// device class (kMixedDrivesPerModel drives each).  Per-class fold AUCs
// pin the class_filter build path end to end; the 3x3 transfer matrix
// pins core/transfer.hpp.  Degenerate CV folds (no positives on one side)
// are skipped, so the per-class vectors may hold fewer than 5 entries.
constexpr std::size_t kGoldenMixedFleetRecords = 207818;
constexpr std::size_t kGoldenMixedFleetSwaps = 14;
const std::vector<std::vector<double>> kGoldenPerClassFoldAucs = {
    // mlc-ssd: 8661 rows, 2300 positives
    {0.81929557410117471, 0.93594224634273437, 0.9106770799632472,
     0.83840503262610866, 0.91730381474164446},
    // hdd: 2333 rows, 64 positives
    {0.86208001138952162, 0.80560919943820219},
    // nvme-ssd: 1767 rows, 74 positives
    {0.68417440878378377, 0.59380804953560373, 0.50047138047138051,
     0.85456885456885456},
};
const std::vector<std::vector<double>> kGoldenTransferAucs = {
    {0.88268355329101233, 0.80823470158650212, 0.74944885361552027},
    {0.52754311341848925, 0.71834130781499206, 0.54163910934744264},
    {0.90341357398031308, 0.86884076219256279, 0.66253306878306883},
};
// ---------------------------------------------------------------------------

ml::Dataset row_dataset() { return core::build_dataset(golden_fleet(), golden_options()); }

ml::Dataset columnar_dataset(std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, golden_fleet(), chunk_drives);
  const std::string bytes = out.str();
  const auto view =
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
  return core::build_dataset(view, golden_options());
}

core::EvalProtocol golden_protocol() {
  core::EvalProtocol protocol;
  protocol.seed = 5;
  return protocol;
}

ml::Dataset auc_dataset() { return core::build_dataset(golden_fleet(), auc_options()); }

/// Drives per model for the heterogeneous goldens.  Larger than the MLC
/// golden fleet because the per-class AUC and transfer pins need every
/// class to carry error-label positives on BOTH drive-partitioned halves
/// (HDD uncorrectables are rare enough that a 7-drive cohort can draw
/// zero).
constexpr std::uint32_t kMixedDrivesPerModel = 32;

/// The golden seed extended over every device class (models = all five
/// presets; a drive's rng stream never depends on fleet composition, so
/// each model's cohort is a superset of what any smaller fleet draws).
trace::FleetTrace golden_mixed_fleet() {
  sim::FleetConfig cfg;
  cfg.drives_per_model = kMixedDrivesPerModel;
  cfg.seed = kFleetSeed;
  cfg.keep_ground_truth = false;
  return sim::FleetSimulator(cfg.mixed()).generate_all();
}

/// One class's slice of the mixed fleet under the AUC (error-label) build.
ml::Dataset class_dataset(const trace::FleetTrace& mixed, trace::DeviceClass c) {
  core::DatasetBuildOptions opts = auc_options();
  opts.class_filter = c;
  return core::build_dataset(mixed, opts);
}

core::TransferOptions golden_transfer_options() {
  core::TransferOptions opts;
  opts.build = auc_options();
  opts.protocol = golden_protocol();
  return opts;
}

std::vector<double> fold_aucs(const ml::Dataset& data) {
  ml::RandomForest::Params params;
  params.n_trees = 25;  // keeps the suite fast; still well past AUC noise floor
  params.seed = 1;
  const ml::RandomForest forest(params);
  return core::evaluate_auc(forest, data, golden_protocol()).fold_aucs;
}

TEST(GoldenPipeline, FleetShapeMatchesGolden) {
  const trace::FleetTrace fleet = golden_fleet();
  ASSERT_EQ(fleet.drives.size(), std::size_t{3} * kDrivesPerModel);
  EXPECT_EQ(fleet.total_records(), kGoldenFleetRecords);
  EXPECT_EQ(fleet.total_swaps(), kGoldenFleetSwaps);
}

TEST(GoldenPipeline, RowPathDatasetMatchesGolden) {
  const ml::Dataset data = row_dataset();
  EXPECT_EQ(data.size(), kGoldenRows);
  EXPECT_EQ(data.positives(), kGoldenPositives);
  const std::vector<double> sums = column_sums(data);
  ASSERT_EQ(sums.size(), kGoldenColumnSums.size());
  for (std::size_t c = 0; c < sums.size(); ++c)
    EXPECT_EQ(sums[c], kGoldenColumnSums[c]) << "feature " << data.feature_names[c];
}

TEST(GoldenPipeline, ColumnarPathIsBitIdenticalToRowPath) {
  const ml::Dataset row = row_dataset();
  for (const std::uint32_t chunk_drives : {1u, 4u, 256u}) {
    const ml::Dataset col = columnar_dataset(chunk_drives);
    ASSERT_EQ(col.size(), row.size()) << "chunk_drives " << chunk_drives;
    ASSERT_EQ(col.x.cols(), row.x.cols());
    EXPECT_EQ(col.y, row.y);
    EXPECT_EQ(col.groups, row.groups);
    EXPECT_EQ(col.feature_names, row.feature_names);
    for (std::size_t r = 0; r < row.x.rows(); ++r) {
      const auto a = row.x.row(r);
      const auto b = col.x.row(r);
      for (std::size_t c = 0; c < a.size(); ++c)
        ASSERT_EQ(a[c], b[c]) << "row " << r << " col " << c << " chunk_drives "
                              << chunk_drives;  // exact float equality
    }
  }
}

TEST(GoldenPipeline, V1RoundTripPreservesTheDataset) {
  const trace::FleetTrace fleet = golden_fleet();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_binary(buffer, fleet);
  const ml::Dataset via_v1 =
      core::build_dataset(trace::read_binary(buffer), golden_options());
  const ml::Dataset direct = row_dataset();
  ASSERT_EQ(via_v1.size(), direct.size());
  EXPECT_EQ(via_v1.y, direct.y);
  EXPECT_EQ(via_v1.groups, direct.groups);
}

TEST(GoldenPipeline, ForestFoldAucsMatchGolden) {
  const std::vector<double> aucs = fold_aucs(auc_dataset());
  ASSERT_EQ(aucs.size(), kGoldenFoldAucs.size());
  for (std::size_t f = 0; f < aucs.size(); ++f)
    EXPECT_NEAR(aucs[f], kGoldenFoldAucs[f], 1e-9) << "fold " << f;
}

TEST(GoldenPipeline, ForestFoldAucsIdenticalViaColumnarPath) {
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, golden_fleet(), 4);
  const std::string bytes = out.str();
  const auto view =
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
  const ml::Dataset via_columnar = core::build_dataset(view, auc_options());
  EXPECT_EQ(fold_aucs(auc_dataset()), fold_aucs(via_columnar));
}

TEST(GoldenPipeline, FlatEngineScoresBitIdenticalToWalker) {
  const ml::Dataset data = auc_dataset();
  ml::RandomForest::Params params;
  params.n_trees = 25;
  params.seed = 1;
  ml::RandomForest forest(params);
  forest.fit(data);
  const ml::FlatForest engine = ml::FlatForest::compile(forest);
  const std::vector<float> walker = forest.predict_proba(data.x);
  const std::vector<float> flat = engine.predict_proba(data.x);
  ASSERT_EQ(flat.size(), walker.size());
  for (std::size_t r = 0; r < walker.size(); ++r)
    ASSERT_EQ(flat[r], walker[r]) << "drive-day row " << r;  // exact, not NEAR
}

TEST(GoldenPipeline, FlatEngineFoldAucsMatchGolden) {
  // The full CV protocol (clone, per-fold fit, AUC) run through the
  // compiled engine must land on the SAME goldens as the walker: flat
  // inference is a representation change, not a model change.
  const ml::Dataset data = auc_dataset();
  ml::RandomForest::Params params;
  params.n_trees = 25;
  params.seed = 1;
  const ml::FlatForestClassifier flat_model(
      std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(params)));
  const std::vector<double> aucs =
      core::evaluate_auc(flat_model, data, golden_protocol()).fold_aucs;
  ASSERT_EQ(aucs.size(), kGoldenFoldAucs.size());
  for (std::size_t f = 0; f < aucs.size(); ++f)
    EXPECT_NEAR(aucs[f], kGoldenFoldAucs[f], 1e-9) << "fold " << f;
  EXPECT_EQ(aucs, fold_aucs(data));  // and bit-identical to the walker CV
}

TEST(GoldenPipeline, MixedFleetShapeMatchesGolden) {
  const trace::FleetTrace mixed = golden_mixed_fleet();
  ASSERT_EQ(mixed.drives.size(), std::size_t{trace::kNumModels} * kMixedDrivesPerModel);
  EXPECT_EQ(mixed.total_records(), kGoldenMixedFleetRecords);
  EXPECT_EQ(mixed.total_swaps(), kGoldenMixedFleetSwaps);
}

TEST(GoldenPipeline, MlcDrivesAreBitIdenticalInTheMixedFleet) {
  // Composition independence: adding HDD/NVMe cohorts (and growing the
  // fleet) must not perturb a single byte of the original MLC drives —
  // rng streams are keyed by (seed, model, drive_index), never by fleet
  // layout.  Layout is model-major, so MLC model m's drive i sits at
  // m * kDrivesPerModel + i in the small fleet and m * kMixedDrivesPerModel
  // + i in the mixed one.
  const trace::FleetTrace mlc = golden_fleet();
  const trace::FleetTrace mixed = golden_mixed_fleet();
  for (std::size_t m = 0; m < trace::kNumMlcModels; ++m) {
    for (std::size_t i = 0; i < kDrivesPerModel; ++i) {
      const auto& a = mlc.drives[m * kDrivesPerModel + i];
      const auto& b = mixed.drives[m * kMixedDrivesPerModel + i];
      ASSERT_EQ(a.model, b.model);
      ASSERT_EQ(a.drive_index, b.drive_index);
      ASSERT_EQ(a.records.size(), b.records.size()) << "model " << m << " drive " << i;
      for (std::size_t r = 0; r < a.records.size(); ++r)
        ASSERT_EQ(a.records[r], b.records[r])
            << "model " << m << " drive " << i << " record " << r;
      ASSERT_EQ(a.swaps.size(), b.swaps.size());
    }
  }
}

TEST(GoldenPipeline, PerClassFoldAucsMatchGolden) {
  const trace::FleetTrace mixed = golden_mixed_fleet();
  ASSERT_EQ(kGoldenPerClassFoldAucs.size(), trace::kNumDeviceClasses);
  for (trace::DeviceClass c : trace::kAllDeviceClasses) {
    const auto ci = static_cast<std::size_t>(c);
    const std::vector<double> aucs = fold_aucs(class_dataset(mixed, c));
    ASSERT_EQ(aucs.size(), kGoldenPerClassFoldAucs[ci].size())
        << trace::device_class_name(c);
    for (std::size_t f = 0; f < aucs.size(); ++f)
      EXPECT_NEAR(aucs[f], kGoldenPerClassFoldAucs[ci][f], 1e-9)
          << trace::device_class_name(c) << " fold " << f;
  }
}

TEST(GoldenPipeline, TransferMatrixMatchesGolden) {
  const core::TransferMatrix matrix =
      core::cross_class_transfer(golden_mixed_fleet(), golden_transfer_options());
  ASSERT_EQ(kGoldenTransferAucs.size(), trace::kNumDeviceClasses);
  for (std::size_t t = 0; t < trace::kNumDeviceClasses; ++t) {
    ASSERT_EQ(kGoldenTransferAucs[t].size(), trace::kNumDeviceClasses);
    for (std::size_t e = 0; e < trace::kNumDeviceClasses; ++e)
      EXPECT_NEAR(matrix.auc[t][e], kGoldenTransferAucs[t][e], 1e-9)
          << "train " << t << " test " << e;
  }
}

/// Regeneration helper, never run by default (see file header).
TEST(GoldenPipeline, DISABLED_PrintGoldenValues) {
  const trace::FleetTrace fleet = golden_fleet();
  const ml::Dataset data = row_dataset();
  const std::vector<double> sums = column_sums(data);
  const std::vector<double> aucs = fold_aucs(auc_dataset());
  std::printf("constexpr std::size_t kGoldenFleetRecords = %zu;\n", fleet.total_records());
  std::printf("constexpr std::size_t kGoldenFleetSwaps = %zu;\n", fleet.total_swaps());
  std::printf("constexpr std::size_t kGoldenRows = %zu;\n", data.size());
  std::printf("constexpr std::size_t kGoldenPositives = %zu;\n", data.positives());
  std::printf("const std::vector<double> kGoldenColumnSums = {\n");
  for (const double s : sums) std::printf("    %.17g,\n", s);
  std::printf("};\n");
  std::printf("const std::vector<double> kGoldenFoldAucs = {\n");
  for (const double a : aucs) std::printf("    %.17g,\n", a);
  std::printf("};\n");

  const trace::FleetTrace mixed = golden_mixed_fleet();
  std::printf("constexpr std::size_t kGoldenMixedFleetRecords = %zu;\n",
              mixed.total_records());
  std::printf("constexpr std::size_t kGoldenMixedFleetSwaps = %zu;\n",
              mixed.total_swaps());
  std::printf("const std::vector<std::vector<double>> kGoldenPerClassFoldAucs = {\n");
  for (trace::DeviceClass c : trace::kAllDeviceClasses) {
    const ml::Dataset class_data = class_dataset(mixed, c);
    std::printf("    // %s: %zu rows, %zu positives\n",
                std::string(trace::device_class_name(c)).c_str(), class_data.size(),
                class_data.positives());
    std::printf("    {");
    for (const double a : fold_aucs(class_data)) std::printf("%.17g, ", a);
    std::printf("},\n");
  }
  std::printf("};\n");
  const core::TransferMatrix matrix =
      core::cross_class_transfer(mixed, golden_transfer_options());
  std::printf("const std::vector<std::vector<double>> kGoldenTransferAucs = {\n");
  for (std::size_t t = 0; t < trace::kNumDeviceClasses; ++t) {
    std::printf("    {");
    for (std::size_t e = 0; e < trace::kNumDeviceClasses; ++e)
      std::printf("%.17g, ", matrix.auc[t][e]);
    std::printf("},\n");
  }
  std::printf("};\n");
}

}  // namespace
}  // namespace ssdfail
