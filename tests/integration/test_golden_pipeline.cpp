// Golden end-to-end regression suite.
//
// One pinned ~20-drive fleet flows through the whole pipeline — simulate,
// serialize (v1 row and v2 columnar), build datasets by both paths, train
// and cross-validate the paper's random forest — and every stage's output
// is asserted against committed golden values: dataset row count, label
// counts, per-column checksums, and per-fold AUCs.
//
// Purpose: any refactor that changes pipeline OUTPUT (not just speed)
// fails here with a precise diff of what moved.  The columnar dataset
// build is required to be BIT-identical to the row path, so both paths
// are checked against the same goldens and against each other.
//
// If an intentional behavior change moves the numbers, regenerate with
//   ./test_golden_pipeline --gtest_also_run_disabled_tests
//       --gtest_filter='*PrintGoldenValues*'   (one command line)
// and paste the emitted block over the constants below, explaining the
// change in the commit message.
//
// Tolerances: counts and checksums are exact (integer timeline logic and
// one fixed float->double accumulation order); AUCs allow 1e-9 for libm
// differences across toolchains.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/prediction.hpp"
#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "sim/fleet_simulator.hpp"
#include "store/columnar.hpp"
#include "trace/binary_io.hpp"

namespace ssdfail {
namespace {

constexpr std::uint32_t kDrivesPerModel = 7;  // 21 drives across 3 models
constexpr std::uint64_t kFleetSeed = 424242;

trace::FleetTrace golden_fleet() {
  sim::FleetConfig cfg;
  cfg.drives_per_model = kDrivesPerModel;
  cfg.seed = kFleetSeed;
  cfg.keep_ground_truth = false;
  return sim::FleetSimulator(cfg).generate_all();
}

core::DatasetBuildOptions golden_options() {
  core::DatasetBuildOptions opts;
  opts.lookahead_days = 7;
  opts.negative_keep_prob = 0.05;
  opts.seed = 101;
  return opts;
}

/// Options for the cross-validated forest: a ~20-drive fleet has too few
/// FAILING drives for drive-partitioned 5-fold CV (folds would be
/// single-class), so the AUC goldens use the Table 8 error-occurrence
/// label, which puts positives on most drives.
core::DatasetBuildOptions auc_options() {
  core::DatasetBuildOptions opts = golden_options();
  opts.error_label = trace::ErrorType::kUncorrectable;
  return opts;
}

/// Per-feature column checksum: double accumulation in row order — fixed
/// order, so it is exact across platforms that promote float->double
/// identically (all of them).
std::vector<double> column_sums(const ml::Dataset& data) {
  std::vector<double> sums(data.x.cols(), 0.0);
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const auto row = data.x.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) sums[c] += row[c];
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Committed golden values (regenerate via DISABLED_PrintGoldenValues).
// ---------------------------------------------------------------------------
constexpr std::size_t kGoldenFleetRecords = 30951;
constexpr std::size_t kGoldenFleetSwaps = 1;
constexpr std::size_t kGoldenRows = 1586;
constexpr std::size_t kGoldenPositives = 8;
const std::vector<double> kGoldenColumnSums = {
    319994264566,
    171075219200,
    334833418,
    169472773,
    1,
    1898,
    0,
    0,
    0,
    0,
    0,
    19440,
    2,
    39,
    243691308379848,
    131273644911216,
    257823070876,
    121014671139,
    2565,
    3519031,
    0,
    0,
    192,
    0,
    0,
    8099461,
    3071,
    37717,
    396061,
    1350037,
    0,
    0.73876769817798049,
};
const std::vector<double> kGoldenFoldAucs = {
    0.74614700652045052,
    0.71249047256097564,
    0.81886705685618733,
    0.88267206477732796,
    0.41915322580645159,
};
// ---------------------------------------------------------------------------

ml::Dataset row_dataset() { return core::build_dataset(golden_fleet(), golden_options()); }

ml::Dataset columnar_dataset(std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, golden_fleet(), chunk_drives);
  const std::string bytes = out.str();
  const auto view =
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
  return core::build_dataset(view, golden_options());
}

core::EvalProtocol golden_protocol() {
  core::EvalProtocol protocol;
  protocol.seed = 5;
  return protocol;
}

ml::Dataset auc_dataset() { return core::build_dataset(golden_fleet(), auc_options()); }

std::vector<double> fold_aucs(const ml::Dataset& data) {
  ml::RandomForest::Params params;
  params.n_trees = 25;  // keeps the suite fast; still well past AUC noise floor
  params.seed = 1;
  const ml::RandomForest forest(params);
  return core::evaluate_auc(forest, data, golden_protocol()).fold_aucs;
}

TEST(GoldenPipeline, FleetShapeMatchesGolden) {
  const trace::FleetTrace fleet = golden_fleet();
  ASSERT_EQ(fleet.drives.size(), std::size_t{3} * kDrivesPerModel);
  EXPECT_EQ(fleet.total_records(), kGoldenFleetRecords);
  EXPECT_EQ(fleet.total_swaps(), kGoldenFleetSwaps);
}

TEST(GoldenPipeline, RowPathDatasetMatchesGolden) {
  const ml::Dataset data = row_dataset();
  EXPECT_EQ(data.size(), kGoldenRows);
  EXPECT_EQ(data.positives(), kGoldenPositives);
  const std::vector<double> sums = column_sums(data);
  ASSERT_EQ(sums.size(), kGoldenColumnSums.size());
  for (std::size_t c = 0; c < sums.size(); ++c)
    EXPECT_EQ(sums[c], kGoldenColumnSums[c]) << "feature " << data.feature_names[c];
}

TEST(GoldenPipeline, ColumnarPathIsBitIdenticalToRowPath) {
  const ml::Dataset row = row_dataset();
  for (const std::uint32_t chunk_drives : {1u, 4u, 256u}) {
    const ml::Dataset col = columnar_dataset(chunk_drives);
    ASSERT_EQ(col.size(), row.size()) << "chunk_drives " << chunk_drives;
    ASSERT_EQ(col.x.cols(), row.x.cols());
    EXPECT_EQ(col.y, row.y);
    EXPECT_EQ(col.groups, row.groups);
    EXPECT_EQ(col.feature_names, row.feature_names);
    for (std::size_t r = 0; r < row.x.rows(); ++r) {
      const auto a = row.x.row(r);
      const auto b = col.x.row(r);
      for (std::size_t c = 0; c < a.size(); ++c)
        ASSERT_EQ(a[c], b[c]) << "row " << r << " col " << c << " chunk_drives "
                              << chunk_drives;  // exact float equality
    }
  }
}

TEST(GoldenPipeline, V1RoundTripPreservesTheDataset) {
  const trace::FleetTrace fleet = golden_fleet();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_binary(buffer, fleet);
  const ml::Dataset via_v1 =
      core::build_dataset(trace::read_binary(buffer), golden_options());
  const ml::Dataset direct = row_dataset();
  ASSERT_EQ(via_v1.size(), direct.size());
  EXPECT_EQ(via_v1.y, direct.y);
  EXPECT_EQ(via_v1.groups, direct.groups);
}

TEST(GoldenPipeline, ForestFoldAucsMatchGolden) {
  const std::vector<double> aucs = fold_aucs(auc_dataset());
  ASSERT_EQ(aucs.size(), kGoldenFoldAucs.size());
  for (std::size_t f = 0; f < aucs.size(); ++f)
    EXPECT_NEAR(aucs[f], kGoldenFoldAucs[f], 1e-9) << "fold " << f;
}

TEST(GoldenPipeline, ForestFoldAucsIdenticalViaColumnarPath) {
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, golden_fleet(), 4);
  const std::string bytes = out.str();
  const auto view =
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
  const ml::Dataset via_columnar = core::build_dataset(view, auc_options());
  EXPECT_EQ(fold_aucs(auc_dataset()), fold_aucs(via_columnar));
}

TEST(GoldenPipeline, FlatEngineScoresBitIdenticalToWalker) {
  const ml::Dataset data = auc_dataset();
  ml::RandomForest::Params params;
  params.n_trees = 25;
  params.seed = 1;
  ml::RandomForest forest(params);
  forest.fit(data);
  const ml::FlatForest engine = ml::FlatForest::compile(forest);
  const std::vector<float> walker = forest.predict_proba(data.x);
  const std::vector<float> flat = engine.predict_proba(data.x);
  ASSERT_EQ(flat.size(), walker.size());
  for (std::size_t r = 0; r < walker.size(); ++r)
    ASSERT_EQ(flat[r], walker[r]) << "drive-day row " << r;  // exact, not NEAR
}

TEST(GoldenPipeline, FlatEngineFoldAucsMatchGolden) {
  // The full CV protocol (clone, per-fold fit, AUC) run through the
  // compiled engine must land on the SAME goldens as the walker: flat
  // inference is a representation change, not a model change.
  const ml::Dataset data = auc_dataset();
  ml::RandomForest::Params params;
  params.n_trees = 25;
  params.seed = 1;
  const ml::FlatForestClassifier flat_model(
      std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(params)));
  const std::vector<double> aucs =
      core::evaluate_auc(flat_model, data, golden_protocol()).fold_aucs;
  ASSERT_EQ(aucs.size(), kGoldenFoldAucs.size());
  for (std::size_t f = 0; f < aucs.size(); ++f)
    EXPECT_NEAR(aucs[f], kGoldenFoldAucs[f], 1e-9) << "fold " << f;
  EXPECT_EQ(aucs, fold_aucs(data));  // and bit-identical to the walker CV
}

/// Regeneration helper, never run by default (see file header).
TEST(GoldenPipeline, DISABLED_PrintGoldenValues) {
  const trace::FleetTrace fleet = golden_fleet();
  const ml::Dataset data = row_dataset();
  const std::vector<double> sums = column_sums(data);
  const std::vector<double> aucs = fold_aucs(auc_dataset());
  std::printf("constexpr std::size_t kGoldenFleetRecords = %zu;\n", fleet.total_records());
  std::printf("constexpr std::size_t kGoldenFleetSwaps = %zu;\n", fleet.total_swaps());
  std::printf("constexpr std::size_t kGoldenRows = %zu;\n", data.size());
  std::printf("constexpr std::size_t kGoldenPositives = %zu;\n", data.positives());
  std::printf("const std::vector<double> kGoldenColumnSums = {\n");
  for (const double s : sums) std::printf("    %.17g,\n", s);
  std::printf("};\n");
  std::printf("const std::vector<double> kGoldenFoldAucs = {\n");
  for (const double a : aucs) std::printf("    %.17g,\n", a);
  std::printf("};\n");
}

}  // namespace
}  // namespace ssdfail
