file(REMOVE_RECURSE
  "CMakeFiles/test_golden_pipeline.dir/test_golden_pipeline.cpp.o"
  "CMakeFiles/test_golden_pipeline.dir/test_golden_pipeline.cpp.o.d"
  "test_golden_pipeline"
  "test_golden_pipeline.pdb"
  "test_golden_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
