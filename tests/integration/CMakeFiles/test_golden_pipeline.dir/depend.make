# Empty dependencies file for test_golden_pipeline.
# This may be replaced when dependencies are built.
