# CMake generated Testfile for 
# Source directory: /root/repo/tests/trace
# Build directory: /root/repo/tests/trace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/trace/test_schema[1]_include.cmake")
include("/root/repo/tests/trace/test_trace_io[1]_include.cmake")
include("/root/repo/tests/trace/test_binary_io[1]_include.cmake")
include("/root/repo/tests/trace/test_binary_io_fuzz[1]_include.cmake")
include("/root/repo/tests/trace/test_validation[1]_include.cmake")
