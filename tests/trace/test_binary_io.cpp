#include "trace/binary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/fleet_simulator.hpp"

namespace ssdfail::trace {
namespace {

TEST(BinaryIo, RoundTripSimulatedFleet) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 30;
  const FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();

  std::ostringstream out;
  write_binary(out, fleet);
  std::istringstream in(out.str());
  const FleetTrace back = read_binary(in);

  ASSERT_EQ(back.drives.size(), fleet.drives.size());
  for (std::size_t d = 0; d < fleet.drives.size(); ++d) {
    const DriveHistory& a = fleet.drives[d];
    const DriveHistory& b = back.drives[d];
    ASSERT_EQ(a.uid(), b.uid());
    ASSERT_EQ(a.deploy_day, b.deploy_day);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t r = 0; r < a.records.size(); ++r) {
      ASSERT_EQ(a.records[r].day, b.records[r].day);
      ASSERT_EQ(a.records[r].writes, b.records[r].writes);
      ASSERT_EQ(a.records[r].errors, b.records[r].errors);
      ASSERT_EQ(a.records[r].read_only, b.records[r].read_only);
      ASSERT_EQ(a.records[r].dead, b.records[r].dead);
      ASSERT_EQ(a.records[r].factory_bad_blocks, b.records[r].factory_bad_blocks);
    }
    ASSERT_EQ(a.swaps.size(), b.swaps.size());
    for (std::size_t s = 0; s < a.swaps.size(); ++s)
      ASSERT_EQ(a.swaps[s].day, b.swaps[s].day);
    EXPECT_FALSE(b.truth.has_value());  // ground truth never serialized
  }
}

TEST(BinaryIo, RejectsBadMagic) {
  std::istringstream in("NOPE....");
  EXPECT_THROW((void)read_binary(in), std::runtime_error);
}

TEST(BinaryIo, RejectsUnsupportedVersion) {
  std::ostringstream out;
  out.write("SSDF", 4);
  const std::uint32_t bad_version = 999;
  out.write(reinterpret_cast<const char*>(&bad_version), 4);
  const std::uint64_t zero = 0;
  out.write(reinterpret_cast<const char*>(&zero), 8);
  std::istringstream in(out.str());
  EXPECT_THROW((void)read_binary(in), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncatedStream) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 2;
  const FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  std::ostringstream out;
  write_binary(out, fleet);
  const std::string full = out.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)read_binary(in), std::runtime_error);
}

TEST(BinaryIo, EmptyFleetRoundTrips) {
  std::ostringstream out;
  write_binary(out, FleetTrace{});
  std::istringstream in(out.str());
  EXPECT_TRUE(read_binary(in).drives.empty());
}

TEST(BinaryIo, MoreCompactThanCsv) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 10;
  const FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  std::ostringstream bin;
  write_binary(bin, fleet);
  // kRecordWireBytes (83) per record plus headers; CSV is ~3x that.
  EXPECT_LT(bin.str().size(), fleet.total_records() * (kRecordWireBytes + 10) + 4096);
}

}  // namespace
}  // namespace ssdfail::trace
