#include "trace/schema.hpp"

#include <gtest/gtest.h>

#include "trace/drive_history.hpp"

namespace ssdfail::trace {
namespace {

TEST(Schema, ErrorTransparencyMatchesPaper) {
  // Section 2: transparent = correctable, read, write, erase;
  // non-transparent = final read/write, meta, response, timeout, uncorrectable.
  EXPECT_TRUE(is_transparent(ErrorType::kCorrectable));
  EXPECT_TRUE(is_transparent(ErrorType::kErase));
  EXPECT_TRUE(is_transparent(ErrorType::kRead));
  EXPECT_TRUE(is_transparent(ErrorType::kWrite));
  EXPECT_FALSE(is_transparent(ErrorType::kFinalRead));
  EXPECT_FALSE(is_transparent(ErrorType::kFinalWrite));
  EXPECT_FALSE(is_transparent(ErrorType::kMeta));
  EXPECT_FALSE(is_transparent(ErrorType::kResponse));
  EXPECT_FALSE(is_transparent(ErrorType::kTimeout));
  EXPECT_FALSE(is_transparent(ErrorType::kUncorrectable));
}

TEST(Schema, NamesAreUnique) {
  for (ErrorType a : kAllErrorTypes)
    for (ErrorType b : kAllErrorTypes)
      if (a != b) {
        EXPECT_NE(error_name(a), error_name(b));
      }
  for (DriveModel a : kAllModels)
    for (DriveModel b : kAllModels)
      if (a != b) {
        EXPECT_NE(model_name(a), model_name(b));
      }
}

TEST(DailyRecord, ErrorAccessor) {
  DailyRecord r;
  r.errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] = 7;
  EXPECT_EQ(r.error(ErrorType::kUncorrectable), 7u);
  EXPECT_EQ(r.error(ErrorType::kMeta), 0u);
}

TEST(DailyRecord, NontransparentDetection) {
  DailyRecord r;
  EXPECT_FALSE(r.any_nontransparent_error());
  r.errors[static_cast<std::size_t>(ErrorType::kCorrectable)] = 100;
  EXPECT_FALSE(r.any_nontransparent_error());  // transparent only
  r.errors[static_cast<std::size_t>(ErrorType::kTimeout)] = 1;
  EXPECT_TRUE(r.any_nontransparent_error());
}

TEST(DailyRecord, InactivityIgnoresErases) {
  DailyRecord r;
  r.erases = 5;
  EXPECT_TRUE(r.inactive());
  r.reads = 1;
  EXPECT_FALSE(r.inactive());
}

TEST(CumulativeState, Accumulates) {
  CumulativeState c;
  DailyRecord r1;
  r1.reads = 10;
  r1.writes = 20;
  r1.errors[static_cast<std::size_t>(ErrorType::kRead)] = 2;
  DailyRecord r2;
  r2.reads = 5;
  r2.errors[static_cast<std::size_t>(ErrorType::kRead)] = 3;
  c.apply(r1);
  c.apply(r2);
  EXPECT_EQ(c.reads, 15u);
  EXPECT_EQ(c.writes, 20u);
  EXPECT_EQ(c.error(ErrorType::kRead), 5u);
}

TEST(DriveHistory, UidEncodesModelAndIndex) {
  DriveHistory a;
  a.model = DriveModel::MlcA;
  a.drive_index = 5;
  DriveHistory b;
  b.model = DriveModel::MlcB;
  b.drive_index = 5;
  EXPECT_NE(a.uid(), b.uid());
}

TEST(DriveHistory, MaxObservedAge) {
  DriveHistory d;
  d.deploy_day = 100;
  EXPECT_EQ(d.max_observed_age(), 0);
  DailyRecord r;
  r.day = 100;
  d.records.push_back(r);
  EXPECT_EQ(d.max_observed_age(), 1);
  r.day = 150;
  d.records.push_back(r);
  EXPECT_EQ(d.max_observed_age(), 51);
}

TEST(FleetTrace, Totals) {
  FleetTrace fleet;
  DriveHistory d;
  d.records.resize(3);
  d.swaps.push_back({10});
  fleet.drives.push_back(d);
  fleet.drives.push_back(d);
  EXPECT_EQ(fleet.total_records(), 6u);
  EXPECT_EQ(fleet.total_swaps(), 2u);
}

}  // namespace
}  // namespace ssdfail::trace
