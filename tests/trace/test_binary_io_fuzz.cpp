// Property/fuzz suite for the binary trace formats (v1 row, v2 columnar,
// v3 compressed columnar).
//
// Three guarantees, exercised byte by byte (this binary also runs under
// the CI AddressSanitizer job, which is what turns "no crash" into a real
// memory-safety check):
//
//   1. Round-trip: random fleets of every shape serialize and parse back
//      field-for-field exact, in both formats.
//   2. Truncation: EVERY prefix of a valid file raises a clean
//      std::runtime_error — never a crash, hang, or silent short fleet.
//   3. Corruption: for v2 and v3, EVERY single-bit flip raises
//      std::runtime_error (CRC32 detects all single-bit errors; structural
//      fields are covered by the footer CRC, alignment, frame reserved-zero
//      words, and range checks).  v1 carries no
//      redundancy, so a flipped payload byte CAN parse as different data;
//      the guarantee there is weaker and explicit: parse or clean throw,
//      never undefined behavior.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "store/columnar.hpp"
#include "trace/binary_io.hpp"

namespace ssdfail::trace {
namespace {

FleetTrace random_fleet(stats::Rng& rng) {
  FleetTrace fleet;
  const std::size_t n_drives = rng.uniform_index(7);  // includes the empty fleet
  for (std::size_t d = 0; d < n_drives; ++d) {
    DriveHistory drive;
    drive.model = kAllModels[rng.uniform_index(kNumModels)];
    drive.drive_index = static_cast<std::uint32_t>(rng.next_u32());
    drive.deploy_day = static_cast<std::int32_t>(rng.uniform_index(1000)) - 100;
    const std::size_t n_records = rng.uniform_index(40);  // includes zero records
    std::int32_t day = drive.deploy_day;
    for (std::size_t r = 0; r < n_records; ++r) {
      DailyRecord rec;
      day += static_cast<std::int32_t>(1 + rng.uniform_index(3));  // gaps are legal
      rec.day = day;
      rec.reads = rng.next_u32();
      rec.writes = rng.next_u32();
      rec.erases = rng.next_u32();
      rec.pe_cycles = rng.next_u32();
      rec.bad_blocks = rng.next_u32();
      rec.factory_bad_blocks = static_cast<std::uint16_t>(rng.next_u32());
      rec.read_only = rng.uniform() < 0.1;
      rec.dead = rng.uniform() < 0.05;
      for (std::uint32_t& e : rec.errors) e = rng.next_u32();
      drive.records.push_back(rec);
    }
    const std::size_t n_swaps = rng.uniform_index(4);
    std::int32_t swap_day = drive.deploy_day;
    for (std::size_t s = 0; s < n_swaps; ++s) {
      swap_day += static_cast<std::int32_t>(1 + rng.uniform_index(50));
      drive.swaps.push_back({swap_day});
    }
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

void expect_exact(const FleetTrace& a, const FleetTrace& b) {
  ASSERT_EQ(a.drives.size(), b.drives.size());
  for (std::size_t d = 0; d < a.drives.size(); ++d) {
    ASSERT_EQ(a.drives[d].uid(), b.drives[d].uid());
    ASSERT_EQ(a.drives[d].deploy_day, b.drives[d].deploy_day);
    ASSERT_EQ(a.drives[d].records.size(), b.drives[d].records.size());
    for (std::size_t r = 0; r < a.drives[d].records.size(); ++r)
      ASSERT_EQ(a.drives[d].records[r], b.drives[d].records[r]);
    ASSERT_EQ(a.drives[d].swaps.size(), b.drives[d].swaps.size());
    for (std::size_t s = 0; s < a.drives[d].swaps.size(); ++s)
      ASSERT_EQ(a.drives[d].swaps[s].day, b.drives[d].swaps[s].day);
  }
}

enum class Version { kV1, kV2, kV3 };

const char* version_name(Version v) {
  switch (v) {
    case Version::kV1: return "v1";
    case Version::kV2: return "v2";
    default: return "v3";
  }
}

std::string encode(const FleetTrace& fleet, Version version) {
  std::ostringstream out(std::ios::binary);
  if (version == Version::kV1) {
    write_binary(out, fleet);
  } else if (version == Version::kV2) {
    write_binary_v2(out, fleet, 3);  // small chunks: exercise multi-chunk layout
  } else {
    write_binary_v3(out, fleet, 3);
  }
  return out.str();
}

FleetTrace decode(const std::string& bytes) {
  std::istringstream in(bytes);
  return read_binary(in);
}

/// A small but shape-rich fleet for the exhaustive byte-level sweeps.
FleetTrace sweep_fleet() {
  stats::Rng rng(2024);
  FleetTrace fleet = random_fleet(rng);
  while (fleet.total_records() < 30 || fleet.drives.size() < 3)
    fleet = random_fleet(rng);
  return fleet;
}

TEST(BinaryIoFuzz, RandomFleetsRoundTripAllVersions) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const FleetTrace fleet = random_fleet(rng);
    expect_exact(fleet, decode(encode(fleet, Version::kV1)));
    expect_exact(fleet, decode(encode(fleet, Version::kV2)));
    expect_exact(fleet, decode(encode(fleet, Version::kV3)));
  }
}

TEST(BinaryIoFuzz, ColumnarEncodingIsDeterministic) {
  stats::Rng rng(7);
  const FleetTrace fleet = random_fleet(rng);
  EXPECT_EQ(encode(fleet, Version::kV2), encode(fleet, Version::kV2));
  EXPECT_EQ(encode(fleet, Version::kV3), encode(fleet, Version::kV3));
}

TEST(BinaryIoFuzz, EveryTruncationThrowsCleanly) {
  for (const Version version : {Version::kV1, Version::kV2, Version::kV3}) {
    const std::string full = encode(sweep_fleet(), version);
    for (std::size_t len = 0; len < full.size(); ++len) {
      EXPECT_THROW((void)decode(full.substr(0, len)), std::runtime_error)
          << version_name(version) << " prefix of " << len
          << " bytes was accepted (file is " << full.size() << " bytes)";
    }
  }
}

TEST(BinaryIoFuzz, EveryColumnarBitFlipIsDetected) {
  const FleetTrace fleet = sweep_fleet();
  for (const Version version : {Version::kV2, Version::kV3}) {
    const std::string good = encode(fleet, version);
    std::string bad = good;
    for (std::size_t byte = 0; byte < good.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        bad[byte] = static_cast<char>(good[byte] ^ (1 << bit));
        EXPECT_THROW((void)decode(bad), std::runtime_error)
            << version_name(version) << " bit " << bit << " of byte " << byte
            << " flipped silently";
      }
      bad[byte] = good[byte];
    }
  }
}

TEST(BinaryIoFuzz, EmptyFleetIsAFooterValidStoreInBothColumnarVersions) {
  // The `convert` path of an empty input fleet must still emit a
  // footer-valid store: zero chunks, zero totals, CRC-checked footer,
  // trailer — 72 bytes exactly (DATA_FORMAT.md §SSDF2 envelope).
  const FleetTrace empty;
  for (const Version version : {Version::kV2, Version::kV3}) {
    const std::string v1_image = encode(empty, Version::kV1);
    std::istringstream in(v1_image);
    std::ostringstream out(std::ios::binary);
    convert_binary(in, out,
                   version == Version::kV2 ? kColumnarFormatVersion
                                           : kColumnarV3FormatVersion);
    const std::string image = out.str();
    EXPECT_EQ(image.size(), 72u) << version_name(version);
    {
      std::istringstream peek_in(image);
      EXPECT_EQ(peek_binary_version(peek_in),
                version == Version::kV2 ? 2u : 3u);
    }
    const FleetTrace back = decode(image);
    EXPECT_TRUE(back.drives.empty());
    auto view = store::ColumnarFleetView::from_buffer(
        std::vector<char>(image.begin(), image.end()));
    EXPECT_EQ(view.chunk_count(), 0u);
    EXPECT_EQ(view.drive_count(), 0u);
  }
}

TEST(BinaryIoFuzz, V1BitFlipsNeverCrash) {
  // v1 has no checksum, so a payload flip may legitimately parse as
  // different data; the contract is memory safety and clean errors, not
  // detection.  Under ASan this sweep is a real out-of-bounds hunt.
  const FleetTrace fleet = sweep_fleet();
  const std::string good = encode(fleet, Version::kV1);
  std::string bad = good;
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bad[byte] = static_cast<char>(good[byte] ^ (1 << bit));
      try {
        (void)decode(bad);
        ++parsed;
      } catch (const std::runtime_error&) {
        ++rejected;
      }
    }
    bad[byte] = good[byte];
  }
  // Structural flips (magic, version, counts) must be among the rejected.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(parsed + rejected, good.size() * 8);
}

TEST(BinaryIoFuzz, ImplausibleCountsThrowInsteadOfAllocating) {
  // Hand-build v1 headers claiming absurd counts: the reader must throw
  // (cap check or truncation) without first reserving gigabytes.
  const auto make_header = [](std::uint64_t n_drives) {
    std::string s("SSDF", 4);
    const std::uint32_t version = 1;
    s.append(reinterpret_cast<const char*>(&version), 4);
    s.append(reinterpret_cast<const char*>(&n_drives), 8);
    return s;
  };
  EXPECT_THROW((void)decode(make_header(~0ull)), std::runtime_error);

  std::string huge_records = make_header(1);
  const std::uint8_t model = 0;
  const std::uint32_t index = 7;
  const std::int32_t deploy = 0;
  const std::uint64_t n_records = (1ull << 32) - 1;  // passes the cap, then EOF
  huge_records.append(reinterpret_cast<const char*>(&model), 1);
  huge_records.append(reinterpret_cast<const char*>(&index), 4);
  huge_records.append(reinterpret_cast<const char*>(&deploy), 4);
  huge_records.append(reinterpret_cast<const char*>(&n_records), 8);
  EXPECT_THROW((void)decode(huge_records), std::runtime_error);
}

}  // namespace
}  // namespace ssdfail::trace
