#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdfail::trace {
namespace {

FleetTrace make_small_fleet() {
  FleetTrace fleet;
  DriveHistory d1;
  d1.model = DriveModel::MlcB;
  d1.drive_index = 3;
  d1.deploy_day = 10;
  DailyRecord r;
  r.day = 10;
  r.reads = 1000;
  r.writes = 2000;
  r.erases = 30;
  r.pe_cycles = 1;
  r.bad_blocks = 2;
  r.factory_bad_blocks = 5;
  r.read_only = false;
  r.dead = false;
  r.errors[static_cast<std::size_t>(ErrorType::kCorrectable)] = 999;
  r.errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] = 3;
  d1.records.push_back(r);
  r.day = 11;
  r.read_only = true;
  d1.records.push_back(r);
  d1.swaps.push_back({15});

  DriveHistory d2;
  d2.model = DriveModel::MlcA;
  d2.drive_index = 7;
  d2.deploy_day = 0;
  DailyRecord r2;
  r2.day = 0;
  r2.dead = true;
  d2.records.push_back(r2);

  fleet.drives.push_back(std::move(d1));
  fleet.drives.push_back(std::move(d2));
  return fleet;
}

TEST(TraceIo, RoundTripPreservesEverythingObservable) {
  const FleetTrace fleet = make_small_fleet();
  std::ostringstream daily;
  std::ostringstream swaps;
  write_daily_log(daily, fleet);
  write_swap_log(swaps, fleet);

  std::istringstream daily_in(daily.str());
  std::istringstream swaps_in(swaps.str());
  const FleetTrace back = read_fleet(daily_in, swaps_in);

  ASSERT_EQ(back.drives.size(), 2u);
  const DriveHistory& d1 = back.drives[0];
  EXPECT_EQ(d1.model, DriveModel::MlcB);
  EXPECT_EQ(d1.drive_index, 3u);
  EXPECT_EQ(d1.deploy_day, 10);
  ASSERT_EQ(d1.records.size(), 2u);
  EXPECT_EQ(d1.records[0].reads, 1000u);
  EXPECT_EQ(d1.records[0].error(ErrorType::kUncorrectable), 3u);
  EXPECT_EQ(d1.records[0].factory_bad_blocks, 5u);
  EXPECT_FALSE(d1.records[0].read_only);
  EXPECT_TRUE(d1.records[1].read_only);
  ASSERT_EQ(d1.swaps.size(), 1u);
  EXPECT_EQ(d1.swaps[0].day, 15);

  const DriveHistory& d2 = back.drives[1];
  EXPECT_TRUE(d2.records[0].dead);
  EXPECT_TRUE(d2.swaps.empty());
}

TEST(TraceIo, GroundTruthIsNotSerialized) {
  FleetTrace fleet = make_small_fleet();
  fleet.drives[0].truth = GroundTruth{{12}, {false}, 2.0, 3.0};
  std::ostringstream daily;
  std::ostringstream swaps;
  write_daily_log(daily, fleet);
  write_swap_log(swaps, fleet);
  EXPECT_EQ(daily.str().find("frailty"), std::string::npos);

  std::istringstream daily_in(daily.str());
  std::istringstream swaps_in(swaps.str());
  const FleetTrace back = read_fleet(daily_in, swaps_in);
  EXPECT_FALSE(back.drives[0].truth.has_value());
}

TEST(TraceIo, HeaderColumnCountMatchesRows) {
  const FleetTrace fleet = make_small_fleet();
  std::ostringstream daily;
  write_daily_log(daily, fleet);
  std::istringstream in(daily.str());
  std::string header_line;
  std::getline(in, header_line);
  std::string first_row;
  std::getline(in, first_row);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header_line), count(first_row));
}

TEST(TraceIo, RejectsMalformedInput) {
  std::istringstream daily("drive_uid,bogus\n1,MLC-A\n");
  std::istringstream swaps("drive_uid,model,drive_index,day\n");
  EXPECT_THROW((void)read_fleet(daily, swaps), std::runtime_error);
}

TEST(TraceIo, RejectsSwapForUnknownDrive) {
  const FleetTrace fleet = make_small_fleet();
  std::ostringstream daily;
  write_daily_log(daily, fleet);
  std::istringstream daily_in(daily.str());
  std::istringstream swaps_in("drive_uid,model,drive_index,day\n999999,MLC-A,9,5\n");
  EXPECT_THROW((void)read_fleet(daily_in, swaps_in), std::runtime_error);
}

TEST(TraceIo, EmptyDailyLogThrows) {
  std::istringstream daily("");
  std::istringstream swaps("");
  EXPECT_THROW((void)read_fleet(daily, swaps), std::runtime_error);
}

}  // namespace
}  // namespace ssdfail::trace
