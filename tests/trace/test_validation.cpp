#include "trace/validation.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "robustness/fault_injector.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/rng.hpp"

namespace ssdfail::trace {
namespace {

DriveHistory clean_drive() {
  DriveHistory d;
  d.model = DriveModel::MlcA;
  d.drive_index = 1;
  d.deploy_day = 10;
  for (std::int32_t day = 10; day < 20; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 100;
    r.writes = 100;
    r.erases = 1;
    r.pe_cycles = static_cast<std::uint32_t>(day - 10);
    r.bad_blocks = static_cast<std::uint32_t>((day - 10) / 3);
    r.factory_bad_blocks = 4;
    d.records.push_back(r);
  }
  d.swaps.push_back({25});
  return d;
}

TEST(Validation, CleanDriveHasNoViolations) {
  std::vector<Violation> out;
  validate_history(clean_drive(), out);
  EXPECT_TRUE(out.empty());
}

TEST(Validation, DetectsNonMonotoneDays) {
  DriveHistory d = clean_drive();
  d.records[5].day = d.records[4].day;
  std::vector<Violation> out;
  validate_history(d, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].kind, ViolationKind::kNonMonotoneDays);
}

TEST(Validation, DetectsRecordBeforeDeploy) {
  DriveHistory d = clean_drive();
  d.deploy_day = 15;
  std::vector<Violation> out;
  validate_history(d, out);
  bool found = false;
  for (const auto& v : out)
    if (v.kind == ViolationKind::kRecordBeforeDeploy) found = true;
  EXPECT_TRUE(found);
}

TEST(Validation, DetectsDecreasingCounters) {
  DriveHistory d = clean_drive();
  d.records[6].pe_cycles = 0;
  d.records[7].bad_blocks = 0;
  d.records[8].factory_bad_blocks = 9;
  std::vector<Violation> out;
  validate_history(d, out);
  int pe = 0;
  int bb = 0;
  int factory = 0;
  for (const auto& v : out) {
    if (v.kind == ViolationKind::kDecreasingPeCycles) ++pe;
    if (v.kind == ViolationKind::kDecreasingBadBlocks) ++bb;
    if (v.kind == ViolationKind::kFactoryBadBlocksChanged) ++factory;
  }
  EXPECT_GE(pe, 1);
  EXPECT_GE(bb, 1);
  // The factory count changes twice: 4 -> 9 and 9 -> 4.
  EXPECT_EQ(factory, 2);
}

TEST(Validation, DetectsSwapProblems) {
  DriveHistory d = clean_drive();
  d.swaps = {{25}, {25}, {5}};
  std::vector<Violation> out;
  validate_history(d, out);
  int order = 0;
  int before = 0;
  for (const auto& v : out) {
    if (v.kind == ViolationKind::kSwapsOutOfOrder) ++order;
    if (v.kind == ViolationKind::kSwapBeforeActivity) ++before;
  }
  EXPECT_EQ(order, 2);  // the duplicate and the backwards swap
  EXPECT_EQ(before, 1);
}

TEST(Validation, DetectsErasesWithoutWrites) {
  DriveHistory d = clean_drive();
  d.records[3].writes = 0;  // erases still 1
  std::vector<Violation> out;
  validate_history(d, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, ViolationKind::kErasesWithoutWrites);
  EXPECT_EQ(out[0].day, d.records[3].day);
}

TEST(Validation, SimulatedFleetIsClean) {
  // The generator must never emit structurally invalid logs.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 150;
  const FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  const auto violations = validate_fleet(fleet);
  for (const auto& v : violations)
    ADD_FAILURE() << violation_name(v.kind) << " drive " << v.drive_uid << " day "
                  << v.day << " " << v.detail;
  EXPECT_TRUE(violations.empty());
}

TEST(Validation, NamesAreDistinct) {
  for (const auto a : kAllViolationKinds)
    for (const auto b : kAllViolationKinds)
      if (a != b) {
        EXPECT_NE(violation_name(a), violation_name(b));
      }
}

TEST(Validation, DetectsSaturatedGarbage) {
  DriveHistory d = clean_drive();
  d.records[4].reads = std::numeric_limits<std::uint32_t>::max();
  std::vector<Violation> out;
  validate_history(d, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, ViolationKind::kImplausibleValue);
  EXPECT_EQ(out[0].day, d.records[4].day);
}

/// Fabricate each fault kind via the chaos injector and assert validate_*
/// flags exactly the matching ViolationKind (and nothing else) — the
/// offline taxonomy and the injector agree on what each fault looks like.
TEST(Validation, TableDrivenFaultInjectionFlagsExactlyTheExpectedKind) {
  const auto rich_drive = [] {
    DriveHistory d;
    d.model = DriveModel::MlcB;
    d.drive_index = 3;
    d.deploy_day = 10;
    for (std::int32_t day = 10; day < 22; ++day) {
      DailyRecord r;
      r.day = day;
      r.reads = 500;
      r.writes = 200;
      r.erases = 2;
      r.pe_cycles = 10 + 2 * static_cast<std::uint32_t>(day - 10);
      r.bad_blocks = 1 + static_cast<std::uint32_t>(day - 10);
      r.factory_bad_blocks = 4;
      // Growing class-specific counters so kClassCounterReset is
      // injectable (the validator checks every cumulative counter
      // regardless of the drive's class).
      r.reallocated_sectors = 3 * static_cast<std::uint32_t>(day - 10);
      r.media_wear = static_cast<std::uint32_t>(day - 10);
      d.records.push_back(r);
    }
    d.swaps.push_back({40});
    return d;
  };

  using robustness::FaultInjector;
  using robustness::FaultKind;
  for (std::size_t k = 0; k < robustness::kNumFaultKinds; ++k) {
    const auto fault = static_cast<FaultKind>(k);
    if (fault == FaultKind::kTornWrite || fault == FaultKind::kPartialSegment ||
        fault == FaultKind::kDuplicateDelivery)
      continue;  // WAL-image faults never touch a DriveHistory; the recovery
                 // contract is pinned by tests/daemon/test_wal_fuzz.cpp.
    SCOPED_TRACE(std::string(robustness::fault_name(fault)));
    stats::Rng rng({2024, k});
    DriveHistory d = rich_drive();
    const auto expected = FaultInjector::inject_into_history(d, fault, rng);

    std::vector<Violation> out;
    validate_history(d, out);
    if (!expected.has_value()) {
      // Dropped/truncated data is structurally indistinguishable from a
      // drive that simply did not report.
      EXPECT_TRUE(out.empty());
      continue;
    }
    ASSERT_FALSE(out.empty());
    for (const auto& v : out) EXPECT_EQ(v.kind, *expected) << violation_name(v.kind);
  }
}

}  // namespace
}  // namespace ssdfail::trace
