#include "trace/validation.hpp"

#include <gtest/gtest.h>

#include "sim/fleet_simulator.hpp"

namespace ssdfail::trace {
namespace {

DriveHistory clean_drive() {
  DriveHistory d;
  d.model = DriveModel::MlcA;
  d.drive_index = 1;
  d.deploy_day = 10;
  for (std::int32_t day = 10; day < 20; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 100;
    r.writes = 100;
    r.erases = 1;
    r.pe_cycles = static_cast<std::uint32_t>(day - 10);
    r.bad_blocks = static_cast<std::uint32_t>((day - 10) / 3);
    r.factory_bad_blocks = 4;
    d.records.push_back(r);
  }
  d.swaps.push_back({25});
  return d;
}

TEST(Validation, CleanDriveHasNoViolations) {
  std::vector<Violation> out;
  validate_history(clean_drive(), out);
  EXPECT_TRUE(out.empty());
}

TEST(Validation, DetectsNonMonotoneDays) {
  DriveHistory d = clean_drive();
  d.records[5].day = d.records[4].day;
  std::vector<Violation> out;
  validate_history(d, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].kind, ViolationKind::kNonMonotoneDays);
}

TEST(Validation, DetectsRecordBeforeDeploy) {
  DriveHistory d = clean_drive();
  d.deploy_day = 15;
  std::vector<Violation> out;
  validate_history(d, out);
  bool found = false;
  for (const auto& v : out)
    if (v.kind == ViolationKind::kRecordBeforeDeploy) found = true;
  EXPECT_TRUE(found);
}

TEST(Validation, DetectsDecreasingCounters) {
  DriveHistory d = clean_drive();
  d.records[6].pe_cycles = 0;
  d.records[7].bad_blocks = 0;
  d.records[8].factory_bad_blocks = 9;
  std::vector<Violation> out;
  validate_history(d, out);
  int pe = 0;
  int bb = 0;
  int factory = 0;
  for (const auto& v : out) {
    if (v.kind == ViolationKind::kDecreasingPeCycles) ++pe;
    if (v.kind == ViolationKind::kDecreasingBadBlocks) ++bb;
    if (v.kind == ViolationKind::kFactoryBadBlocksChanged) ++factory;
  }
  EXPECT_GE(pe, 1);
  EXPECT_GE(bb, 1);
  // The factory count changes twice: 4 -> 9 and 9 -> 4.
  EXPECT_EQ(factory, 2);
}

TEST(Validation, DetectsSwapProblems) {
  DriveHistory d = clean_drive();
  d.swaps = {{25}, {25}, {5}};
  std::vector<Violation> out;
  validate_history(d, out);
  int order = 0;
  int before = 0;
  for (const auto& v : out) {
    if (v.kind == ViolationKind::kSwapsOutOfOrder) ++order;
    if (v.kind == ViolationKind::kSwapBeforeActivity) ++before;
  }
  EXPECT_EQ(order, 2);  // the duplicate and the backwards swap
  EXPECT_EQ(before, 1);
}

TEST(Validation, DetectsErasesWithoutWrites) {
  DriveHistory d = clean_drive();
  d.records[3].writes = 0;  // erases still 1
  std::vector<Violation> out;
  validate_history(d, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, ViolationKind::kErasesWithoutWrites);
  EXPECT_EQ(out[0].day, d.records[3].day);
}

TEST(Validation, SimulatedFleetIsClean) {
  // The generator must never emit structurally invalid logs.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 150;
  const FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  const auto violations = validate_fleet(fleet);
  for (const auto& v : violations)
    ADD_FAILURE() << violation_name(v.kind) << " drive " << v.drive_uid << " day "
                  << v.day << " " << v.detail;
  EXPECT_TRUE(violations.empty());
}

TEST(Validation, NamesAreDistinct) {
  const ViolationKind kinds[] = {
      ViolationKind::kNonMonotoneDays,    ViolationKind::kRecordBeforeDeploy,
      ViolationKind::kDecreasingPeCycles, ViolationKind::kDecreasingBadBlocks,
      ViolationKind::kFactoryBadBlocksChanged, ViolationKind::kSwapsOutOfOrder,
      ViolationKind::kSwapBeforeActivity, ViolationKind::kErasesWithoutWrites};
  for (const auto a : kinds)
    for (const auto b : kinds)
      if (a != b) {
        EXPECT_NE(violation_name(a), violation_name(b));
      }
}

}  // namespace
}  // namespace ssdfail::trace
