# Empty dependencies file for test_binary_io_fuzz.
# This may be replaced when dependencies are built.
