file(REMOVE_RECURSE
  "CMakeFiles/test_binary_io_fuzz.dir/test_binary_io_fuzz.cpp.o"
  "CMakeFiles/test_binary_io_fuzz.dir/test_binary_io_fuzz.cpp.o.d"
  "test_binary_io_fuzz"
  "test_binary_io_fuzz.pdb"
  "test_binary_io_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_io_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
