# CMake generated Testfile for 
# Source directory: /root/repo/tests/io
# Build directory: /root/repo/tests/io
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/io/test_csv[1]_include.cmake")
include("/root/repo/tests/io/test_table[1]_include.cmake")
