#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdfail::io {
namespace {

TEST(CsvWriter, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSeparatorsAndQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvWriter, NumericRoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row_numeric({1.5, -2.25, 3.0});
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "1.5");
  EXPECT_EQ(rows[0][1], "-2.25");
}

TEST(ParseCsvLine, SimpleSplit) {
  const auto f = parse_csv_line("1,2,3");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "1");
  EXPECT_EQ(f[2], "3");
}

TEST(ParseCsvLine, QuotedFieldWithSeparator) {
  const auto f = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(ParseCsvLine, EscapedQuote) {
  const auto f = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(ParseCsvLine, EmptyFields) {
  const auto f = parse_csv_line("a,,b,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  const auto f = parse_csv_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(ReadCsv, SkipsEmptyLines) {
  std::istringstream in("a,b\n\nc,d\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvRoundTrip, WriterThenReader) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> original = {"x,y", "\"q\"", "", "plain"};
  w.write_row(original);
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

}  // namespace
}  // namespace ssdfail::io
