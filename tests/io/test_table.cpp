#include "io/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace ssdfail::io {
namespace {

TEST(TextTable, FormatNum) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.23456, 4), "1.2346");
  EXPECT_EQ(TextTable::num(std::nan(""), 3), "--");
}

TEST(TextTable, FormatPct) {
  EXPECT_EQ(TextTable::pct(0.123, 1), "12.3");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100");
  EXPECT_EQ(TextTable::pct(std::nan("")), "--");
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Columns align: "value" and "22" start at the same offset in their lines.
  EXPECT_NE(s.find("name   value"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TextTable, RaggedRowsAreSafe) {
  TextTable t("ragged");
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find('1'), std::string::npos);
}

}  // namespace
}  // namespace ssdfail::io
