#include "core/prediction.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/dataset_builder.hpp"
#include "ml/model_zoo.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

/// Shared small fleet dataset (built once; tests read it).
const ml::Dataset& fleet_dataset() {
  static const ml::Dataset data = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 700;
    sim::FleetSimulator fsim(cfg);
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.02;
    return build_dataset(fsim, opts);
  }();
  return data;
}

TEST(Prediction, ForestBeatsChanceByALot) {
  auto model = ml::make_model(ml::ModelKind::kRandomForest);
  const auto result = evaluate_auc(*model, fleet_dataset());
  ASSERT_GE(result.fold_aucs.size(), 4u);
  EXPECT_GT(result.auc().mean, 0.80);
  EXPECT_LT(result.auc().sd, 0.08);
}

TEST(Prediction, ForestBeatsThresholdBaseline) {
  // Observation: "there is no single metric that triggers a drive failure
  // after it reaches a certain threshold" — the single-feature baseline
  // must trail the forest clearly.
  auto forest = ml::make_model(ml::ModelKind::kRandomForest);
  auto baseline = ml::make_model(ml::ModelKind::kThresholdBaseline);
  const double forest_auc = evaluate_auc(*forest, fleet_dataset()).auc().mean;
  const double baseline_auc = evaluate_auc(*baseline, fleet_dataset()).auc().mean;
  EXPECT_GT(forest_auc, baseline_auc + 0.05);
}

TEST(Prediction, LongerLookaheadIsHarder) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 700;
  sim::FleetSimulator fsim(cfg);
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.02;
  opts.lookahead_days = 1;
  const ml::Dataset d1 = build_dataset(fsim, opts);
  opts.lookahead_days = 14;
  const ml::Dataset d14 = build_dataset(fsim, opts);
  auto model = ml::make_model(ml::ModelKind::kDecisionTree);
  const double auc1 = evaluate_auc(*model, d1).auc().mean;
  const double auc14 = evaluate_auc(*model, d14).auc().mean;
  EXPECT_GT(auc1, auc14 + 0.03);
}

TEST(Prediction, PooledScoresCoverEveryRowOnce) {
  auto model = ml::make_model(ml::ModelKind::kDecisionTree);
  const PooledScores pooled = pooled_cv_scores(*model, fleet_dataset());
  EXPECT_EQ(pooled.scores.size(), fleet_dataset().size());
  std::set<std::size_t> seen(pooled.row_indices.begin(), pooled.row_indices.end());
  EXPECT_EQ(seen.size(), fleet_dataset().size());
}

TEST(Prediction, PooledAucConsistentWithFoldAuc) {
  auto model = ml::make_model(ml::ModelKind::kDecisionTree);
  const PooledScores pooled = pooled_cv_scores(*model, fleet_dataset());
  const double pooled_auc = ml::roc_auc(pooled.scores, pooled.labels);
  const double fold_auc = evaluate_auc(*model, fleet_dataset()).auc().mean;
  EXPECT_NEAR(pooled_auc, fold_auc, 0.06);
}

TEST(Prediction, TransferAucWithinModelFamilies) {
  // Table 7's structure: training on one MLC model transfers to another
  // with only modest degradation.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 700;
  sim::FleetSimulator fsim(cfg);
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.02;
  opts.model_filter = trace::DriveModel::MlcB;
  const ml::Dataset train = build_dataset(fsim, opts);
  opts.model_filter = trace::DriveModel::MlcD;
  const ml::Dataset test = build_dataset(fsim, opts);
  auto model = ml::make_model(ml::ModelKind::kRandomForest);
  const double auc = transfer_auc(*model, train, test);
  EXPECT_GT(auc, 0.75);
}

TEST(Prediction, FeatureImportanceRankedAndNormalized) {
  const auto ranked = forest_feature_importance(fleet_dataset());
  ASSERT_EQ(ranked.size(), FeatureExtractor::count());
  double total = 0.0;
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].importance, ranked[i].importance);
  for (const auto& f : ranked) total += f.importance;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Names must come from the extractor.
  EXPECT_NO_THROW((void)FeatureExtractor::index_of(ranked[0].name));
}

}  // namespace
}  // namespace ssdfail::core
