# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/core/test_failure_timeline[1]_include.cmake")
include("/root/repo/tests/core/test_features[1]_include.cmake")
include("/root/repo/tests/core/test_dataset_builder[1]_include.cmake")
include("/root/repo/tests/core/test_characterization[1]_include.cmake")
include("/root/repo/tests/core/test_prediction[1]_include.cmake")
include("/root/repo/tests/core/test_policy[1]_include.cmake")
include("/root/repo/tests/core/test_eval_subsampling[1]_include.cmake")
include("/root/repo/tests/core/test_paper_shapes[1]_include.cmake")
include("/root/repo/tests/core/test_online_monitor[1]_include.cmake")
include("/root/repo/tests/core/test_chaos_monitor[1]_include.cmake")
include("/root/repo/tests/core/test_monitor_metrics_facade[1]_include.cmake")
include("/root/repo/tests/core/test_permutation_importance[1]_include.cmake")
include("/root/repo/tests/core/test_rolling_features[1]_include.cmake")
