file(REMOVE_RECURSE
  "CMakeFiles/test_chaos_monitor.dir/test_chaos_monitor.cpp.o"
  "CMakeFiles/test_chaos_monitor.dir/test_chaos_monitor.cpp.o.d"
  "test_chaos_monitor"
  "test_chaos_monitor.pdb"
  "test_chaos_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chaos_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
