# Empty dependencies file for test_chaos_monitor.
# This may be replaced when dependencies are built.
