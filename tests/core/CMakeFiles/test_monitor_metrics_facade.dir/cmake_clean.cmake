file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_metrics_facade.dir/test_monitor_metrics_facade.cpp.o"
  "CMakeFiles/test_monitor_metrics_facade.dir/test_monitor_metrics_facade.cpp.o.d"
  "test_monitor_metrics_facade"
  "test_monitor_metrics_facade.pdb"
  "test_monitor_metrics_facade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_metrics_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
