# Empty dependencies file for test_monitor_metrics_facade.
# This may be replaced when dependencies are built.
