# Empty dependencies file for test_dataset_builder.
# This may be replaced when dependencies are built.
