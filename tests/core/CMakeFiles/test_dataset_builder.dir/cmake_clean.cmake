file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_builder.dir/test_dataset_builder.cpp.o"
  "CMakeFiles/test_dataset_builder.dir/test_dataset_builder.cpp.o.d"
  "test_dataset_builder"
  "test_dataset_builder.pdb"
  "test_dataset_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
