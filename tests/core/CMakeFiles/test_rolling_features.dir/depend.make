# Empty dependencies file for test_rolling_features.
# This may be replaced when dependencies are built.
