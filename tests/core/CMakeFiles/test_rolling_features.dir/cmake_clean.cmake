file(REMOVE_RECURSE
  "CMakeFiles/test_rolling_features.dir/test_rolling_features.cpp.o"
  "CMakeFiles/test_rolling_features.dir/test_rolling_features.cpp.o.d"
  "test_rolling_features"
  "test_rolling_features.pdb"
  "test_rolling_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rolling_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
