file(REMOVE_RECURSE
  "CMakeFiles/test_permutation_importance.dir/test_permutation_importance.cpp.o"
  "CMakeFiles/test_permutation_importance.dir/test_permutation_importance.cpp.o.d"
  "test_permutation_importance"
  "test_permutation_importance.pdb"
  "test_permutation_importance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permutation_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
