# Empty dependencies file for test_permutation_importance.
# This may be replaced when dependencies are built.
