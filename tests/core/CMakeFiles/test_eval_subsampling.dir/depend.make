# Empty dependencies file for test_eval_subsampling.
# This may be replaced when dependencies are built.
