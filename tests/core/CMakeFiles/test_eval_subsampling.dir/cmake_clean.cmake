file(REMOVE_RECURSE
  "CMakeFiles/test_eval_subsampling.dir/test_eval_subsampling.cpp.o"
  "CMakeFiles/test_eval_subsampling.dir/test_eval_subsampling.cpp.o.d"
  "test_eval_subsampling"
  "test_eval_subsampling.pdb"
  "test_eval_subsampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_subsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
