# Empty dependencies file for test_failure_timeline.
# This may be replaced when dependencies are built.
