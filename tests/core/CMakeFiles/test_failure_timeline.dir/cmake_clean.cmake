file(REMOVE_RECURSE
  "CMakeFiles/test_failure_timeline.dir/test_failure_timeline.cpp.o"
  "CMakeFiles/test_failure_timeline.dir/test_failure_timeline.cpp.o.d"
  "test_failure_timeline"
  "test_failure_timeline.pdb"
  "test_failure_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
