#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "core/features.hpp"

namespace ssdfail::core {
namespace {

using trace::DailyRecord;

DailyRecord day_with(std::int32_t day, std::uint32_t ue, std::uint32_t writes) {
  DailyRecord r;
  r.day = day;
  r.writes = writes;
  r.reads = writes;
  r.errors[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)] = ue;
  return r;
}

std::vector<float> window_row(RollingWindow& w) {
  std::vector<float> row(RollingWindow::count());
  w.extract(row);
  return row;
}

std::size_t idx(const std::string& name) {
  const auto& names = RollingWindow::names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  throw std::out_of_range(name);
}

TEST(RollingWindow, SumsWithinWindow) {
  RollingWindow w;
  w.advance(day_with(0, 5, 100), 2);
  w.advance(day_with(1, 3, 100), 0);
  const auto row = window_row(w);
  EXPECT_FLOAT_EQ(row[idx("ue_7d")], 8.0f);
  EXPECT_FLOAT_EQ(row[idx("new_bad_blocks_7d")], 2.0f);
  EXPECT_FLOAT_EQ(row[idx("error_days_7d")], 2.0f);
}

TEST(RollingWindow, EvictsBeyondSevenDays) {
  RollingWindow w;
  w.advance(day_with(0, 10, 100), 0);
  w.advance(day_with(7, 1, 100), 0);  // day 0 is exactly out of the window
  const auto row = window_row(w);
  EXPECT_FLOAT_EQ(row[idx("ue_7d")], 1.0f);
}

TEST(RollingWindow, HandlesDayGaps) {
  // Missing log days: window membership is by DAY, not record count.
  RollingWindow w;
  w.advance(day_with(0, 4, 100), 0);
  w.advance(day_with(5, 2, 100), 0);  // days 1-4 unreported
  auto row = window_row(w);
  EXPECT_FLOAT_EQ(row[idx("ue_7d")], 6.0f);
  w.advance(day_with(8, 0, 100), 0);  // day 0 now evicted
  row = window_row(w);
  EXPECT_FLOAT_EQ(row[idx("ue_7d")], 2.0f);
}

TEST(RollingWindow, RelativeWritesDetectsDrop) {
  RollingWindow w;
  for (std::int32_t d = 0; d < 6; ++d) w.advance(day_with(d, 0, 1000), 0);
  w.advance(day_with(6, 0, 100), 0);  // today's activity collapses
  const auto row = window_row(w);
  EXPECT_LT(row[idx("writes_rel_7d")], 0.2f);
  // A normal day sits near 1.
  RollingWindow steady;
  for (std::int32_t d = 0; d < 7; ++d) steady.advance(day_with(d, 0, 1000), 0);
  EXPECT_NEAR(window_row(steady)[idx("writes_rel_7d")], 1.0f, 1e-5);
}

TEST(RollingWindow, WrongSpanSizeThrows) {
  RollingWindow w;
  w.advance(day_with(0, 0, 1), 0);
  std::vector<float> too_small(1);
  EXPECT_THROW(w.extract(too_small), std::invalid_argument);
}

TEST(DatasetBuilderRolling, AppendsExtraColumns) {
  trace::FleetTrace fleet;
  trace::DriveHistory d;
  d.model = trace::DriveModel::MlcA;
  d.drive_index = 1;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day < 30; ++day) d.records.push_back(day_with(day, 0, 50));
  fleet.drives.push_back(d);

  DatasetBuildOptions opts;
  opts.negative_keep_prob = 1.0;
  opts.rolling_features = true;
  const ml::Dataset data = build_dataset(fleet, opts);
  EXPECT_EQ(data.features(), FeatureExtractor::count() + RollingWindow::count());
  EXPECT_EQ(data.feature_names.back(), "writes_rel_7d");

  DatasetBuildOptions plain = opts;
  plain.rolling_features = false;
  const ml::Dataset base = build_dataset(fleet, plain);
  EXPECT_EQ(base.features(), FeatureExtractor::count());
  EXPECT_EQ(base.size(), data.size());
}

}  // namespace
}  // namespace ssdfail::core
