#include "core/features.hpp"

#include <gtest/gtest.h>

namespace ssdfail::core {
namespace {

using trace::DailyRecord;
using trace::DriveHistory;
using trace::ErrorType;

TEST(FeatureExtractor, NamesAreUniqueAndStable) {
  const auto& names = FeatureExtractor::names();
  EXPECT_EQ(names.size(), FeatureExtractor::count());
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  // The Fig 16 headline features must exist.
  EXPECT_NO_THROW((void)FeatureExtractor::index_of("drive_age_days"));
  EXPECT_NO_THROW((void)FeatureExtractor::index_of("cum_bad_block_count"));
  EXPECT_NO_THROW((void)FeatureExtractor::index_of("corr_err_rate"));
  EXPECT_NO_THROW((void)FeatureExtractor::index_of("status_read_only"));
  EXPECT_THROW((void)FeatureExtractor::index_of("bogus"), std::out_of_range);
}

TEST(FeatureExtractor, DailyAndCumulativeColumns) {
  DriveHistory d;
  d.deploy_day = 10;

  DailyRecord r1;
  r1.day = 10;
  r1.reads = 100;
  r1.writes = 50;
  r1.errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] = 3;
  DailyRecord r2;
  r2.day = 11;
  r2.reads = 200;
  r2.writes = 70;

  FeatureExtractor::State st;
  std::vector<float> row(FeatureExtractor::count());
  FeatureExtractor::advance(st, r1);
  FeatureExtractor::extract(d, r1, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("read_count")], 100.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("cum_read_count")], 100.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("uncorrectable_error")], 3.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("drive_age_days")], 0.0f);

  FeatureExtractor::advance(st, r2);
  FeatureExtractor::extract(d, r2, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("read_count")], 200.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("cum_read_count")], 300.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("uncorrectable_error")], 0.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("cum_uncorrectable_error")], 3.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("drive_age_days")], 1.0f);
}

TEST(FeatureExtractor, BadBlockDeltaAndCumulative) {
  DriveHistory d;
  DailyRecord r1;
  r1.day = 0;
  r1.bad_blocks = 5;
  r1.factory_bad_blocks = 2;
  DailyRecord r2;
  r2.day = 1;
  r2.bad_blocks = 9;
  r2.factory_bad_blocks = 2;

  FeatureExtractor::State st;
  std::vector<float> row(FeatureExtractor::count());
  FeatureExtractor::advance(st, r1);
  FeatureExtractor::extract(d, r1, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("new_bad_blocks")], 5.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("cum_bad_block_count")], 7.0f);

  FeatureExtractor::advance(st, r2);
  FeatureExtractor::extract(d, r2, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("new_bad_blocks")], 4.0f);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("cum_bad_block_count")], 11.0f);
}

TEST(FeatureExtractor, CorrErrRate) {
  DriveHistory d;
  DailyRecord r;
  r.day = 0;
  r.reads = 1000;
  r.errors[static_cast<std::size_t>(ErrorType::kCorrectable)] = 250;

  FeatureExtractor::State st;
  std::vector<float> row(FeatureExtractor::count());
  FeatureExtractor::advance(st, r);
  FeatureExtractor::extract(d, r, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("corr_err_rate")], 0.25f);
}

TEST(FeatureExtractor, ReadOnlyFlag) {
  DriveHistory d;
  DailyRecord r;
  r.day = 0;
  r.read_only = true;
  FeatureExtractor::State st;
  std::vector<float> row(FeatureExtractor::count());
  FeatureExtractor::advance(st, r);
  FeatureExtractor::extract(d, r, st, row);
  EXPECT_FLOAT_EQ(row[FeatureExtractor::index_of("status_read_only")], 1.0f);
}

TEST(FeatureExtractor, WrongSpanSizeThrows) {
  DriveHistory d;
  DailyRecord r;
  FeatureExtractor::State st;
  std::vector<float> too_small(3);
  EXPECT_THROW(FeatureExtractor::extract(d, r, st, too_small), std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::core
