#include <gtest/gtest.h>

#include "core/prediction.hpp"
#include "ml/decision_tree.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

/// Task where feature 0 is decisive, feature 1 mildly useful, feature 2 noise.
ml::Dataset make_task(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  ml::Dataset d;
  d.x = ml::Matrix(n, 3);
  d.y.resize(n);
  d.groups.resize(n);
  d.feature_names = {"decisive", "mild", "noise"};
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    d.x(r, 0) = static_cast<float>(x0);
    d.x(r, 1) = static_cast<float>(x1);
    d.x(r, 2) = static_cast<float>(rng.normal());
    d.y[r] = (2.0 * x0 + 0.4 * x1 + 0.3 * rng.normal()) > 0.0 ? 1.0f : 0.0f;
    d.groups[r] = r;
  }
  return d;
}

TEST(PermutationImportance, RanksFeaturesByTrueRelevance) {
  const ml::Dataset train = make_task(3000, 1);
  const ml::Dataset test = make_task(1500, 2);
  ml::DecisionTree tree;
  tree.fit(train);
  const auto ranked = permutation_importance(tree, test, 17, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].name, "decisive");
  EXPECT_GT(ranked[0].importance, 0.1);
  // The noise feature contributes (almost) nothing.
  const auto noise = std::find_if(ranked.begin(), ranked.end(),
                                  [](const auto& f) { return f.name == "noise"; });
  ASSERT_NE(noise, ranked.end());
  EXPECT_LT(noise->importance, 0.02);
  EXPECT_GT(ranked[0].importance, 5.0 * std::max(noise->importance, 1e-6));
}

TEST(PermutationImportance, DeterministicForFixedSeed) {
  const ml::Dataset train = make_task(1000, 3);
  const ml::Dataset test = make_task(500, 4);
  ml::DecisionTree tree;
  tree.fit(train);
  const auto a = permutation_importance(tree, test, 5, 2);
  const auto b = permutation_importance(tree, test, 5, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].importance, b[i].importance);
  }
}

TEST(PermutationImportance, AgreesWithImpurityOnTheWinner) {
  const ml::Dataset train = make_task(3000, 6);
  const ml::Dataset test = make_task(1500, 7);
  ml::DecisionTree tree;
  tree.fit(train);
  const auto perm = permutation_importance(tree, test, 8, 2);
  const auto& impurity = tree.impurity_importance();
  const std::size_t impurity_best = static_cast<std::size_t>(
      std::max_element(impurity.begin(), impurity.end()) - impurity.begin());
  EXPECT_EQ(test.feature_names[impurity_best], perm[0].name);
}

}  // namespace
}  // namespace ssdfail::core
