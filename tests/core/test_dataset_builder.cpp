#include "core/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "core/failure_timeline.hpp"
#include "store/columnar.hpp"
#include "trace/binary_io.hpp"

namespace ssdfail::core {
namespace {

using trace::DailyRecord;
using trace::DriveHistory;
using trace::FleetTrace;

DriveHistory make_failing_drive(std::uint32_t index, std::int32_t fail_day,
                                std::int32_t swap_day, std::int32_t horizon) {
  DriveHistory d;
  d.model = trace::DriveModel::MlcB;
  d.drive_index = index;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= fail_day; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 100;
    r.writes = 100;
    d.records.push_back(r);
  }
  d.swaps.push_back({swap_day});
  for (std::int32_t day = swap_day + 60; day < horizon; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 100;
    r.writes = 100;
    d.records.push_back(r);
  }
  return d;
}

DriveHistory make_healthy_drive(std::uint32_t index, std::int32_t days) {
  DriveHistory d;
  d.model = trace::DriveModel::MlcA;
  d.drive_index = index;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day < days; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 100;
    r.writes = 100;
    d.records.push_back(r);
  }
  return d;
}

TEST(DatasetBuilder, PositiveLabelsMatchLookahead) {
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 50, 55, 0));
  DatasetBuildOptions opts;
  opts.lookahead_days = 3;
  opts.negative_keep_prob = 1.0;  // keep everything
  const ml::Dataset data = build_dataset(fleet, opts);
  // Days 0..50 are operational; positives are days 47..50 (dtf <= 3).
  EXPECT_EQ(data.size(), 51u);
  EXPECT_EQ(data.positives(), 4u);
  const std::size_t age_col = FeatureExtractor::age_index();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool should_be_positive = data.x(i, age_col) >= 47.0f;
    EXPECT_EQ(data.y[i] > 0.5f, should_be_positive) << "row " << i;
  }
}

TEST(DatasetBuilder, LookaheadBoundaryIsInclusive) {
  // Boundary regression for the unified lookahead convention: positive iff
  // the event occurs on or before day d+N.  Failure labels: dtf in [0, N]
  // (the failure day itself counts).  Error labels: dtf in [1, N] (today's
  // error is a feature, not a label).  Both share the inclusive d+N edge.
  constexpr int kLookahead = 5;
  constexpr std::int32_t kFailDay = 50;

  FleetTrace fail_fleet;
  fail_fleet.drives.push_back(make_failing_drive(1, kFailDay, 55, 0));
  DatasetBuildOptions opts;
  opts.lookahead_days = kLookahead;
  opts.negative_keep_prob = 1.0;
  const ml::Dataset fail_data = build_dataset(fail_fleet, opts);
  const std::size_t age_col = FeatureExtractor::age_index();
  for (std::size_t i = 0; i < fail_data.size(); ++i) {
    const auto day = static_cast<std::int32_t>(fail_data.x(i, age_col));
    const bool expect_positive = day >= kFailDay - kLookahead;  // 45..50
    EXPECT_EQ(fail_data.y[i] > 0.5f, expect_positive)
        << "failure label at day " << day << " (dtf " << kFailDay - day << ")";
  }

  constexpr std::int32_t kErrorDay = 30;
  DriveHistory erroring = make_healthy_drive(2, 60);
  erroring.records[kErrorDay].errors[static_cast<std::size_t>(
      trace::ErrorType::kUncorrectable)] = 1;
  FleetTrace error_fleet;
  error_fleet.drives.push_back(erroring);
  opts.error_label = trace::ErrorType::kUncorrectable;
  const ml::Dataset error_data = build_dataset(error_fleet, opts);
  for (std::size_t i = 0; i < error_data.size(); ++i) {
    const auto day = static_cast<std::int32_t>(error_data.x(i, age_col));
    const bool expect_positive =
        day >= kErrorDay - kLookahead && day < kErrorDay;  // 25..29, not 30
    EXPECT_EQ(error_data.y[i] > 0.5f, expect_positive)
        << "error label at day " << day << " (dte " << kErrorDay - day << ")";
  }
}

TEST(DatasetBuilder, PostFailureLimboExcluded) {
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 50, 55, 200));  // re-enters at 115
  DatasetBuildOptions opts;
  opts.lookahead_days = 1;
  opts.negative_keep_prob = 1.0;
  const ml::Dataset data = build_dataset(fleet, opts);
  // 51 pre-failure days + (200-115) post-re-entry days; nothing in between.
  EXPECT_EQ(data.size(), 51u + 85u);
}

TEST(DatasetBuilder, NegativeSubsamplingKeepsAllPositives) {
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 20; ++i)
    fleet.drives.push_back(make_failing_drive(i, 100, 104, 0));
  DatasetBuildOptions opts;
  opts.lookahead_days = 2;
  opts.negative_keep_prob = 0.05;
  const ml::Dataset data = build_dataset(fleet, opts);
  EXPECT_EQ(data.positives(), 60u);  // 3 per drive (days 98..100, dtf <= 2)
  EXPECT_LT(data.size(), 20u * 101u / 4);
  EXPECT_GT(data.size(), 60u);
}

TEST(DatasetBuilder, DeterministicAcrossRuns) {
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 10; ++i)
    fleet.drives.push_back(make_healthy_drive(i, 300));
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.1;
  const ml::Dataset a = build_dataset(fleet, opts);
  const ml::Dataset b = build_dataset(fleet, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.groups[i], b.groups[i]);
}

TEST(DatasetBuilder, SeedChangesNegativeSample) {
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 10; ++i)
    fleet.drives.push_back(make_healthy_drive(i, 300));
  DatasetBuildOptions a_opts;
  a_opts.negative_keep_prob = 0.1;
  a_opts.seed = 1;
  DatasetBuildOptions b_opts = a_opts;
  b_opts.seed = 2;
  const ml::Dataset a = build_dataset(fleet, a_opts);
  const ml::Dataset b = build_dataset(fleet, b_opts);
  EXPECT_NE(a.size(), b.size());  // different sample (overwhelmingly likely)
}

TEST(DatasetBuilder, ModelFilter) {
  FleetTrace fleet;
  fleet.drives.push_back(make_healthy_drive(1, 100));            // MLC-A
  fleet.drives.push_back(make_failing_drive(2, 50, 52, 0));      // MLC-B
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 1.0;
  opts.model_filter = trace::DriveModel::MlcB;
  const ml::Dataset data = build_dataset(fleet, opts);
  EXPECT_EQ(data.size(), 51u);
  for (std::uint64_t g : data.groups)
    EXPECT_EQ(g >> 32, static_cast<std::uint64_t>(trace::DriveModel::MlcB));
}

TEST(DatasetBuilder, AgeFilterSplitsAt90Days) {
  FleetTrace fleet;
  fleet.drives.push_back(make_healthy_drive(1, 200));
  DatasetBuildOptions young;
  young.negative_keep_prob = 1.0;
  young.age_filter = DatasetBuildOptions::AgeFilter::kYoungOnly;
  DatasetBuildOptions old = young;
  old.age_filter = DatasetBuildOptions::AgeFilter::kOldOnly;
  const ml::Dataset dy = build_dataset(fleet, young);
  const ml::Dataset dold = build_dataset(fleet, old);
  EXPECT_EQ(dy.size(), 91u);   // ages 0..90 inclusive
  EXPECT_EQ(dold.size(), 109u);
  EXPECT_EQ(dy.size() + dold.size(), 200u);
}

TEST(DatasetBuilder, ErrorLabelIsStrictlyFuture) {
  DriveHistory d = make_healthy_drive(1, 10);
  d.records[5].errors[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)] = 7;
  FleetTrace fleet;
  fleet.drives.push_back(d);
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 1.0;
  opts.lookahead_days = 2;
  opts.error_label = trace::ErrorType::kUncorrectable;
  const ml::Dataset data = build_dataset(fleet, opts);
  ASSERT_EQ(data.size(), 10u);
  // Days 3 and 4 see the UE within the next 2 days; day 5 itself does not
  // (its own error is a feature, not a label).
  const std::size_t age_col = FeatureExtractor::age_index();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float age = data.x(i, age_col);
    const bool expect_positive = age == 3.0f || age == 4.0f;
    EXPECT_EQ(data.y[i] > 0.5f, expect_positive) << "age " << age;
  }
}

TEST(DatasetBuilder, BadLookaheadThrows) {
  FleetTrace fleet;
  fleet.drives.push_back(make_healthy_drive(1, 10));
  DatasetBuildOptions opts;
  opts.lookahead_days = 0;
  EXPECT_THROW((void)build_dataset(fleet, opts), std::invalid_argument);
}

TEST(DatasetBuilder, StreamingMatchesInMemory) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 50;
  sim::FleetSimulator fsim(cfg);
  const trace::FleetTrace fleet = fsim.generate_all();
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.2;
  const ml::Dataset streamed = build_dataset(fsim, opts);
  const ml::Dataset in_memory = build_dataset(fleet, opts);
  ASSERT_EQ(streamed.size(), in_memory.size());
  EXPECT_EQ(streamed.positives(), in_memory.positives());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed.groups[i], in_memory.groups[i]);
    ASSERT_EQ(streamed.y[i], in_memory.y[i]);
  }
}

TEST(DatasetBuilder, AppendDriveIncrementalMatchesBatch) {
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 60, 65, 200));
  fleet.drives.push_back(make_healthy_drive(2, 150));
  fleet.drives.push_back(make_failing_drive(3, 20, 22, 0));
  DatasetBuildOptions opts;
  opts.lookahead_days = 4;
  opts.negative_keep_prob = 0.3;
  ml::Dataset incremental;
  for (const DriveHistory& drive : fleet.drives)
    append_drive(incremental, drive, opts);
  const ml::Dataset batch = build_dataset(fleet, opts);
  ASSERT_EQ(incremental.size(), batch.size());
  EXPECT_EQ(incremental.y, batch.y);
  EXPECT_EQ(incremental.groups, batch.groups);
  EXPECT_EQ(incremental.feature_names, batch.feature_names);
  for (std::size_t r = 0; r < batch.x.rows(); ++r)
    for (std::size_t c = 0; c < batch.x.cols(); ++c)
      ASSERT_EQ(incremental.x(r, c), batch.x(r, c)) << "row " << r << " col " << c;
}

TEST(DatasetBuilder, ModelAgeAndErrorFiltersCompose) {
  // One drive per model, each with a UE on day 100; restrict to MLC-B,
  // old-only, error label.  Every row must satisfy all three at once.
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 3; ++i) {
    DriveHistory d = make_healthy_drive(i, 200);
    d.model = trace::kAllModels[i];
    d.records[100].errors[static_cast<std::size_t>(
        trace::ErrorType::kUncorrectable)] = 1;
    fleet.drives.push_back(std::move(d));
  }
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 1.0;
  opts.lookahead_days = 3;
  opts.model_filter = trace::DriveModel::MlcB;
  opts.age_filter = DatasetBuildOptions::AgeFilter::kOldOnly;
  opts.error_label = trace::ErrorType::kUncorrectable;
  const ml::Dataset data = build_dataset(fleet, opts);
  EXPECT_EQ(data.size(), 109u);  // ages 91..199 of the one MLC-B drive
  const std::size_t age_col = FeatureExtractor::age_index();
  std::size_t positives = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.groups[i] >> 32,
              static_cast<std::uint64_t>(trace::DriveModel::MlcB));
    EXPECT_GT(data.x(i, age_col), 90.0f);
    if (data.y[i] > 0.5f) ++positives;
  }
  EXPECT_EQ(positives, 3u);  // days 97..99 (dte in [1,3]); day 100 is a feature
}

TEST(DatasetBuilder, PositiveSubsamplingIsDeterministicPerDriveDay) {
  // positive_keep_prob < 1 (the Table 8 protocol): the keep decision is
  // a pure function of (seed, drive, day), so repeated builds agree and
  // reordering the fleet's drives selects the SAME drive-days.
  const auto erroring_drive = [](std::uint32_t index) {
    DriveHistory d = make_healthy_drive(index, 120);
    for (std::int32_t day = 10; day < 120; day += 7)
      d.records[static_cast<std::size_t>(day)].errors[static_cast<std::size_t>(
          trace::ErrorType::kUncorrectable)] = 1;
    return d;
  };
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 6; ++i) fleet.drives.push_back(erroring_drive(i));
  FleetTrace reversed;
  for (auto it = fleet.drives.rbegin(); it != fleet.drives.rend(); ++it)
    reversed.drives.push_back(*it);

  DatasetBuildOptions opts;
  opts.lookahead_days = 3;
  opts.error_label = trace::ErrorType::kUncorrectable;
  opts.negative_keep_prob = 0.2;
  opts.positive_keep_prob = 0.5;

  const ml::Dataset a = build_dataset(fleet, opts);
  const ml::Dataset b = build_dataset(fleet, opts);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_LT(a.positives(), 6u * 47u);  // subsampling actually dropped positives
  EXPECT_GT(a.positives(), 0u);

  const auto row_keys = [](const ml::Dataset& d) {
    const std::size_t age_col = FeatureExtractor::age_index();
    std::set<std::tuple<std::uint64_t, float, float>> keys;
    for (std::size_t i = 0; i < d.size(); ++i)
      keys.insert({d.groups[i], d.x(i, age_col), d.y[i]});
    return keys;
  };
  EXPECT_EQ(row_keys(a), row_keys(build_dataset(reversed, opts)));

  DatasetBuildOptions reseeded = opts;
  reseeded.seed = opts.seed + 1;
  EXPECT_NE(row_keys(a), row_keys(build_dataset(fleet, reseeded)));
}

TEST(DatasetBuilder, EmptyAndRecordlessFleetsBuildValidEmptyDatasets) {
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 1.0;

  const ml::Dataset from_empty = build_dataset(FleetTrace{}, opts);
  EXPECT_EQ(from_empty.size(), 0u);
  EXPECT_FALSE(from_empty.feature_names.empty());  // schema survives no data

  std::ostringstream encoded(std::ios::binary);
  trace::write_binary_v2(encoded, FleetTrace{});
  const std::string bytes = encoded.str();
  const ml::Dataset from_empty_columnar = build_dataset(
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()}), opts);
  EXPECT_EQ(from_empty_columnar.size(), 0u);
  EXPECT_EQ(from_empty_columnar.feature_names, from_empty.feature_names);

  FleetTrace recordless;
  DriveHistory bare;
  bare.model = trace::DriveModel::MlcA;
  bare.drive_index = 9;
  recordless.drives.push_back(bare);
  const ml::Dataset from_recordless = build_dataset(recordless, opts);
  EXPECT_EQ(from_recordless.size(), 0u);
  EXPECT_EQ(from_recordless.feature_names, from_empty.feature_names);

  // Filters that exclude every drive reduce to the same empty-but-valid shape.
  FleetTrace populated;
  populated.drives.push_back(make_healthy_drive(1, 50));  // MLC-A
  DatasetBuildOptions filtered = opts;
  filtered.model_filter = trace::DriveModel::MlcD;
  EXPECT_EQ(build_dataset(populated, filtered).size(), 0u);
}

TEST(DatasetBuilder, AllLimboDrivesContributeOnlyPreFailureRows) {
  // A drive that fails immediately and never re-enters: everything after
  // the swap is limbo, so only the single pre-failure day survives.
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 0, 2, 0));
  DatasetBuildOptions opts;
  opts.lookahead_days = 1;
  opts.negative_keep_prob = 1.0;
  const ml::Dataset data = build_dataset(fleet, opts);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data.positives(), 1u);  // day 0 is within 1 day of the failure
}

// The sweep cache's whole contract is bit-identity with independent
// builds (docs in dataset_builder.hpp): same rows, same order, same
// floats, for EVERY lookahead in range.
void expect_bit_identical(const ml::Dataset& cached, const ml::Dataset& direct,
                          int lookahead) {
  ASSERT_EQ(cached.size(), direct.size()) << "N=" << lookahead;
  EXPECT_EQ(cached.y, direct.y) << "N=" << lookahead;
  EXPECT_EQ(cached.groups, direct.groups) << "N=" << lookahead;
  EXPECT_EQ(cached.feature_names, direct.feature_names);
  ASSERT_EQ(cached.x.cols(), direct.x.cols());
  for (std::size_t r = 0; r < cached.x.rows(); ++r)
    for (std::size_t c = 0; c < cached.x.cols(); ++c)
      ASSERT_EQ(cached.x(r, c), direct.x(r, c))
          << "N=" << lookahead << " row " << r << " col " << c;
}

TEST(SweepDatasetCache, MatchesIndependentBuilds) {
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 50, 55, 200));
  fleet.drives.push_back(make_failing_drive(2, 120, 130, 200));
  fleet.drives.push_back(make_healthy_drive(3, 200));
  fleet.drives.push_back(make_healthy_drive(4, 200));
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.3;
  opts.seed = 9;

  constexpr int kMax = 10;
  const SweepDatasetCache cache(fleet, opts, kMax);
  EXPECT_EQ(cache.max_lookahead(), kMax);
  for (int n = 1; n <= kMax; ++n) {
    opts.lookahead_days = n;
    const ml::Dataset direct = build_dataset(fleet, opts);
    const ml::Dataset cached = cache.materialize(n);
    expect_bit_identical(cached, direct, n);
    EXPECT_GE(cache.cached_rows(), cached.size());
  }
}

TEST(SweepDatasetCache, MatchesIndependentBuildsWithRollingFeatures) {
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 80, 85, 150));
  fleet.drives.push_back(make_healthy_drive(2, 150));
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.5;
  opts.rolling_features = true;
  const SweepDatasetCache cache(fleet, opts, 5);
  for (int n = 1; n <= 5; ++n) {
    opts.lookahead_days = n;
    expect_bit_identical(cache.materialize(n), build_dataset(fleet, opts), n);
  }
}

TEST(SweepDatasetCache, StreamingCtorMatchesInMemoryCtor) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 40;
  sim::FleetSimulator fsim(cfg);
  const trace::FleetTrace fleet = fsim.generate_all();
  DatasetBuildOptions opts;
  opts.negative_keep_prob = 0.1;
  const SweepDatasetCache streamed(fsim, opts, 7);   // parallel fleet visit
  const SweepDatasetCache in_memory(fleet, opts, 7); // serial walk
  ASSERT_EQ(streamed.cached_rows(), in_memory.cached_rows());
  for (int n : {1, 4, 7})
    expect_bit_identical(streamed.materialize(n), in_memory.materialize(n), n);
}

TEST(DatasetBuilder, ColumnarBuildMatchesRowBuild) {
  // The columnar overload promises BIT-identity with the row path (see
  // dataset_builder.hpp): same rows, same order, same floats, at every
  // chunk geometry from one-drive-per-chunk to everything-in-one-chunk.
  FleetTrace fleet;
  fleet.drives.push_back(make_failing_drive(1, 60, 65, 200));
  fleet.drives.push_back(make_healthy_drive(2, 150));
  fleet.drives.push_back(make_failing_drive(3, 20, 22, 0));
  fleet.drives.push_back(make_healthy_drive(4, 90));
  fleet.drives.push_back(make_healthy_drive(5, 10));
  DatasetBuildOptions opts;
  opts.lookahead_days = 4;
  opts.negative_keep_prob = 0.25;
  const ml::Dataset row = build_dataset(fleet, opts);
  for (const std::uint32_t chunk_drives : {1u, 2u, 5u, 64u}) {
    std::ostringstream out(std::ios::binary);
    trace::write_binary_v2(out, fleet, chunk_drives);
    const std::string bytes = out.str();
    const auto view =
        store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
    expect_bit_identical(build_dataset(view, opts), row,
                         static_cast<int>(chunk_drives));
  }
}

TEST(DatasetBuilder, ColumnarBuildHonorsEveryOption) {
  // Same bit-identity contract, but with the full option surface engaged:
  // filters, error label, subsampled positives, rolling features.
  FleetTrace fleet;
  for (std::uint32_t i = 0; i < 4; ++i) {
    DriveHistory d = make_healthy_drive(i, 160);
    d.model = trace::kAllModels[i % trace::kNumModels];
    d.records[80].errors[static_cast<std::size_t>(
        trace::ErrorType::kUncorrectable)] = 2;
    fleet.drives.push_back(std::move(d));
  }
  DatasetBuildOptions opts;
  opts.lookahead_days = 5;
  opts.negative_keep_prob = 0.4;
  opts.positive_keep_prob = 0.6;
  opts.error_label = trace::ErrorType::kUncorrectable;
  opts.model_filter = trace::DriveModel::MlcA;
  opts.age_filter = DatasetBuildOptions::AgeFilter::kOldOnly;
  opts.rolling_features = true;
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, fleet, 2);
  const std::string bytes = out.str();
  const auto view =
      store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
  expect_bit_identical(build_dataset(view, opts), build_dataset(fleet, opts), 2);
}

TEST(SweepDatasetCache, RejectsOutOfRangeLookahead) {
  FleetTrace fleet;
  fleet.drives.push_back(make_healthy_drive(1, 30));
  DatasetBuildOptions opts;
  EXPECT_THROW((void)SweepDatasetCache(fleet, opts, 0), std::invalid_argument);
  const SweepDatasetCache cache(fleet, opts, 5);
  EXPECT_THROW((void)cache.materialize(0), std::invalid_argument);
  EXPECT_THROW((void)cache.materialize(6), std::invalid_argument);
}

}  // namespace
}  // namespace ssdfail::core
