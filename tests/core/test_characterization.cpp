#include "core/characterization.hpp"

#include <gtest/gtest.h>

#include "core/fleet_analysis.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

using trace::DailyRecord;
using trace::DriveHistory;
using trace::ErrorType;

DriveHistory simple_drive(std::uint32_t index, std::int32_t days, bool fail_at_end) {
  DriveHistory d;
  d.model = trace::DriveModel::MlcA;
  d.drive_index = index;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day < days; ++day) {
    DailyRecord r;
    r.day = day;
    r.reads = 1000;
    r.writes = 500;
    if (day % 3 == 0)
      r.errors[static_cast<std::size_t>(ErrorType::kCorrectable)] = 10;
    d.records.push_back(r);
  }
  if (fail_at_end) d.swaps.push_back({days + 2});
  return d;
}

TEST(Characterization, Table1CountsErrorDays) {
  CharacterizationSuite suite;
  suite.add(simple_drive(1, 9, false));
  const auto& inc = suite.incidence(trace::DriveModel::MlcA);
  EXPECT_EQ(inc.drive_days, 9u);
  EXPECT_EQ(inc.error_days[static_cast<std::size_t>(ErrorType::kCorrectable)], 3u);
  EXPECT_EQ(inc.error_days[static_cast<std::size_t>(ErrorType::kUncorrectable)], 0u);
}

TEST(Characterization, Table3FailureIncidence) {
  CharacterizationSuite suite;
  suite.add(simple_drive(1, 30, true));
  suite.add(simple_drive(2, 30, false));
  const auto& fi = suite.failure_incidence(trace::DriveModel::MlcA);
  EXPECT_EQ(fi.drives, 2u);
  EXPECT_EQ(fi.drives_failed, 1u);
  EXPECT_EQ(fi.failures, 1u);
  EXPECT_EQ(suite.failure_count_histogram()[0], 1u);
  EXPECT_EQ(suite.failure_count_histogram()[1], 1u);
}

TEST(Characterization, Fig3CensoredMass) {
  CharacterizationSuite suite;
  suite.add(simple_drive(1, 30, true));
  suite.add(simple_drive(2, 30, false));
  suite.add(simple_drive(3, 30, false));
  EXPECT_NEAR(suite.op_period_years().censored_fraction(), 2.0 / 3.0, 1e-9);
}

TEST(Characterization, Fig4NonopDays) {
  CharacterizationSuite suite;
  suite.add(simple_drive(1, 30, true));  // fail day 29, swap day 32 -> 3 days
  ASSERT_EQ(suite.nonop_days().size(), 1u);
  EXPECT_DOUBLE_EQ(suite.nonop_days().sorted_samples()[0], 3.0);
}

TEST(Characterization, MergeMatchesSequential) {
  CharacterizationSuite together;
  CharacterizationSuite a;
  CharacterizationSuite b;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const DriveHistory d = simple_drive(i, 20 + i, i % 2 == 0);
    together.add(d);
    (i < 5 ? a : b).add(d);
  }
  a.merge(b);
  EXPECT_EQ(a.incidence(trace::DriveModel::MlcA).drive_days,
            together.incidence(trace::DriveModel::MlcA).drive_days);
  EXPECT_EQ(a.failure_incidence(trace::DriveModel::MlcA).failures,
            together.failure_incidence(trace::DriveModel::MlcA).failures);
  EXPECT_EQ(a.total_drives(), together.total_drives());
  EXPECT_EQ(a.max_age_years().size(), together.max_age_years().size());
}

TEST(Characterization, Fig11PrefailureUeProbability) {
  // A drive with a UE exactly 2 days before failure: "UE within n days"
  // must be 0 for n<2 and 1 for n>=2.
  DriveHistory d = simple_drive(1, 30, true);
  d.records[27].errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] = 5;
  CharacterizationSuite suite;
  suite.add(d);
  // The failure is at age 29, i.e. a YOUNG failure.
  EXPECT_DOUBLE_EQ(suite.ue_within_days(true, 0), 0.0);
  EXPECT_DOUBLE_EQ(suite.ue_within_days(true, 1), 0.0);
  EXPECT_DOUBLE_EQ(suite.ue_within_days(true, 2), 1.0);
  EXPECT_DOUBLE_EQ(suite.ue_within_days(true, 7), 1.0);
  // The count lands in the offset-2 reservoir.
  EXPECT_EQ(suite.prefailure_ue_counts(true, 2).values().size(), 1u);
  EXPECT_DOUBLE_EQ(suite.prefailure_ue_counts(true, 2).values()[0], 5.0);
}

TEST(Characterization, Fig11BaselineUsesAllWindows) {
  DriveHistory d = simple_drive(1, 20, false);
  d.records[4].errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] = 1;
  CharacterizationSuite suite;
  suite.add(d);
  // n=1: 20 windows, exactly one with a UE.
  EXPECT_NEAR(suite.baseline_ue_within_days(1), 1.0 / 20.0, 1e-9);
  // n=2: 10 windows, one containing the UE day.
  EXPECT_NEAR(suite.baseline_ue_within_days(2), 1.0 / 10.0, 1e-9);
}

TEST(Characterization, Fig10ClassAssignment) {
  CharacterizationSuite suite;
  // Failure at day 29 (age 29 <= 90) -> young failed class.
  suite.add(simple_drive(1, 30, true));
  suite.add(simple_drive(2, 30, false));
  EXPECT_EQ(suite.cum_ue_cdf(CharacterizationSuite::DriveClass::kYoungFailed).size(), 1u);
  EXPECT_EQ(suite.cum_ue_cdf(CharacterizationSuite::DriveClass::kOldFailed).size(), 0u);
  EXPECT_EQ(suite.cum_ue_cdf(CharacterizationSuite::DriveClass::kNotFailed).size(), 1u);
}

TEST(Characterization, CorrelationMatrixShape) {
  CharacterizationSuite suite;
  for (std::uint32_t i = 0; i < 30; ++i) suite.add(simple_drive(i, 20 + i, false));
  const auto matrix = suite.correlation_matrix();
  ASSERT_EQ(matrix.size(), kCorrVars);
  for (const auto& row : matrix) ASSERT_EQ(row.size(), kCorrVars);
  for (std::size_t i = 0; i < kCorrVars; ++i) EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
}

TEST(Characterization, ParallelCharacterizeMatchesSequential) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 60;
  sim::FleetSimulator fsim(cfg);
  const CharacterizationSuite parallel_suite = characterize(fsim);
  const CharacterizationSuite sequential_suite = characterize(fsim.generate_all());
  for (trace::DriveModel m : trace::kAllModels) {
    EXPECT_EQ(parallel_suite.incidence(m).drive_days,
              sequential_suite.incidence(m).drive_days);
    EXPECT_EQ(parallel_suite.failure_incidence(m).failures,
              sequential_suite.failure_incidence(m).failures);
  }
  EXPECT_EQ(parallel_suite.nonop_days().size(), sequential_suite.nonop_days().size());
}

TEST(Characterization, WriteIntensityByMonth) {
  CharacterizationSuite suite;
  suite.add(simple_drive(1, 65, false));  // ~2 months of days
  EXPECT_GT(suite.writes_at_month(0).population(), 0u);
  EXPECT_GT(suite.writes_at_month(1).population(), 0u);
  EXPECT_EQ(suite.writes_at_month(10).population(), 0u);
}

}  // namespace
}  // namespace ssdfail::core
