// The MonitorMetrics façade contract: since the counters moved into
// obs::MetricsRegistry (labeled {monitor=<id>, shard=<k>}), the plain
// MonitorMetricsSnapshot a caller reads back must stay numerically
// equivalent to the registry families — same counts, same latency
// histogram mass — and the registry must expose the same story to the
// Prometheus/JSON side.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/monitor_metrics.hpp"
#include "core/online_monitor.hpp"
#include "ml/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

/// Sum one counter family across all label sets (shards) in `snap`.
double family_total(const obs::RegistrySnapshot& snap, const std::string& name) {
  double total = 0.0;
  for (const obs::Sample& s : snap.samples)
    if (s.name == name) total += s.value;
  return total;
}

std::shared_ptr<const ml::Classifier> threshold_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 40;
    sim::FleetSimulator fleet(cfg);
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.1;
    const ml::Dataset data = build_dataset(fleet, opts);
    auto baseline = ml::make_model(ml::ModelKind::kThresholdBaseline);
    baseline->fit(data);
    return std::shared_ptr<const ml::Classifier>(std::move(baseline));
  }();
  return model;
}

/// Feed a few drives' histories through a monitor wired to a private
/// registry; return the monitor after scoring.
struct Scenario {
  obs::MetricsRegistry registry;
  std::unique_ptr<FleetMonitor> monitor;
  std::uint64_t records_fed = 0;

  Scenario() {
    monitor = std::make_unique<FleetMonitor>(threshold_model(), 0.5, 3,
                                             robustness::SanitizerConfig{}, &registry);
    sim::FleetConfig cfg;
    cfg.drives_per_model = 40;
    sim::FleetSimulator fleet(cfg);
    for (std::uint32_t i = 0; i < 4; ++i) {
      const trace::DriveHistory drive = fleet.simulate(i);
      for (const auto& rec : drive.records) {
        (void)monitor->observe(drive.model, drive.drive_index, drive.deploy_day, rec);
        ++records_fed;
      }
    }
  }
};

TEST(MonitorMetricsFacade, SnapshotMatchesRegistryFamilies) {
  Scenario sc;
  const MonitorMetricsSnapshot snap = sc.monitor->metrics();
  const obs::RegistrySnapshot reg = sc.registry.snapshot();

  EXPECT_GT(sc.records_fed, 0u);
  EXPECT_EQ(static_cast<double>(snap.records_scored),
            family_total(reg, "monitor_records_scored_total"));
  EXPECT_EQ(static_cast<double>(snap.alerts_raised),
            family_total(reg, "monitor_alerts_total"));
  EXPECT_EQ(static_cast<double>(snap.drives_created),
            family_total(reg, "monitor_drives_created_total"));
  EXPECT_EQ(static_cast<double>(snap.drives_retired),
            family_total(reg, "monitor_drives_retired_total"));
  EXPECT_EQ(static_cast<double>(snap.out_of_order_dropped),
            family_total(reg, "monitor_out_of_order_dropped_total"));
  EXPECT_EQ(static_cast<double>(snap.non_finite_scores),
            family_total(reg, "monitor_non_finite_scores_total"));
  EXPECT_EQ(static_cast<double>(snap.drives_tracked),
            family_total(reg, "monitor_drives_tracked"));
  EXPECT_EQ(snap.drives_created, 4u);
  EXPECT_EQ(snap.drives_tracked, 4u);
  EXPECT_LE(snap.records_scored, sc.records_fed);  // sanitizer may drop
}

TEST(MonitorMetricsFacade, LatencyHistogramMassSurvivesReconstruction) {
  Scenario sc;
  const MonitorMetricsSnapshot snap = sc.monitor->metrics();
  // Per-shard registry histograms carry one weighted observation per
  // record; the façade rebuilds a stats::Histogram with identical mass.
  double registry_count = 0.0;
  for (const obs::Sample& s : sc.registry.snapshot().samples)
    if (s.name == "monitor_score_latency_us")
      registry_count += static_cast<double>(s.count);
  EXPECT_DOUBLE_EQ(snap.score_latency_us.total(), registry_count);
  EXPECT_DOUBLE_EQ(registry_count, static_cast<double>(snap.records_scored));
}

TEST(MonitorMetricsFacade, LatencyQuantilesComeFromTheHistogram) {
  Scenario sc;
  const MonitorMetricsSnapshot snap = sc.monitor->metrics();
  const double p50 = snap.latency_quantile_us(0.5);
  const double p99 = snap.latency_quantile_us(0.99);
  EXPECT_DOUBLE_EQ(p50, snap.score_latency_us.quantile(0.5));
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, kScoreLatencyMaxUs);
}

TEST(MonitorMetricsFacade, DegradedFlagMirrorsIntoRegistryGauge) {
  Scenario sc;
  auto degraded_value = [&sc] {
    double total = 0.0;
    for (const obs::Sample& s : sc.registry.snapshot().samples)
      if (s.name == "monitor_degraded") total += s.value;
    return total;
  };
  EXPECT_DOUBLE_EQ(degraded_value(), 0.0);
  sc.monitor->set_degraded(true);
  EXPECT_TRUE(sc.monitor->metrics().degraded);
  EXPECT_DOUBLE_EQ(degraded_value(), 1.0);
  sc.monitor->set_degraded(false);
  EXPECT_DOUBLE_EQ(degraded_value(), 0.0);
}

TEST(MonitorMetricsFacade, RetireAdjustsCountersAndGauge) {
  Scenario sc;
  const MonitorMetricsSnapshot before = sc.monitor->metrics();
  sc.monitor->retire(trace::DriveModel::MlcA, 0);
  sc.monitor->retire(trace::DriveModel::MlcA, 1);
  const MonitorMetricsSnapshot after = sc.monitor->metrics();
  EXPECT_EQ(after.drives_retired, before.drives_retired + 2);
  EXPECT_EQ(after.drives_tracked, before.drives_tracked - 2);
  EXPECT_EQ(static_cast<double>(after.drives_tracked),
            family_total(sc.registry.snapshot(), "monitor_drives_tracked"));
}

TEST(MonitorMetricsFacade, TwoMonitorsNeverShareRegistryChildren) {
  obs::MetricsRegistry registry;
  FleetMonitor a(threshold_model(), 0.5, 2, robustness::SanitizerConfig{}, &registry);
  FleetMonitor b(threshold_model(), 0.5, 2, robustness::SanitizerConfig{}, &registry);
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 10;
  rec.writes = 10;
  (void)a.observe(trace::DriveModel::MlcA, 1, 0, rec);
  EXPECT_EQ(a.metrics().records_scored, 1u);
  EXPECT_EQ(b.metrics().records_scored, 0u);
  // The registry-wide family still totals across both instances.
  EXPECT_DOUBLE_EQ(family_total(registry.snapshot(), "monitor_records_scored_total"),
                   1.0);
}

}  // namespace
}  // namespace ssdfail::core
