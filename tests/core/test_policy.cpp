#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace ssdfail::core {
namespace {

TEST(Policy, PerfectScoresGivePerfectPolicy) {
  const std::vector<float> scores = {0.9f, 0.95f, 0.1f, 0.2f};
  const std::vector<float> labels = {1.0f, 1.0f, 0.0f, 0.0f};
  const PolicyOutcome out = evaluate_policy(scores, labels, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(out.recall, 1.0);
  EXPECT_DOUBLE_EQ(out.false_alarm_rate, 0.0);
  EXPECT_EQ(out.caught, 2u);
  EXPECT_EQ(out.missed, 0u);
  EXPECT_DOUBLE_EQ(out.false_alarms_per_drive_year, 0.0);
}

TEST(Policy, FalseAlarmsScaleWith365) {
  // 1 of 2 healthy days flagged -> FPR 0.5 -> 182.5 false alarms per
  // drive-year regardless of the subsample rate (it cancels).
  const std::vector<float> scores = {0.9f, 0.6f, 0.1f};
  const std::vector<float> labels = {1.0f, 0.0f, 0.0f};
  const PolicyOutcome out = evaluate_policy(scores, labels, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(out.false_alarm_rate, 0.5);
  EXPECT_DOUBLE_EQ(out.false_alarms_per_drive_year, 0.5 * 365.0);
}

TEST(Policy, BadKeepProbThrows) {
  const std::vector<float> s = {0.5f};
  const std::vector<float> l = {1.0f};
  EXPECT_THROW((void)evaluate_policy(s, l, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)evaluate_policy(s, l, 0.5, 1.5), std::invalid_argument);
}

TEST(Policy, ThresholdForFprRespectsBudget) {
  // Scores: positives high, negatives spread.
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(0.8f + 0.002f * static_cast<float>(i));
    labels.push_back(1.0f);
    scores.push_back(0.005f * static_cast<float>(i));
    labels.push_back(0.0f);
  }
  const double threshold = threshold_for_fpr(scores, labels, 0.05);
  const PolicyOutcome out = evaluate_policy(scores, labels, threshold, 1.0);
  EXPECT_LE(out.false_alarm_rate, 0.05 + 1e-9);
  EXPECT_GT(out.recall, 0.9);  // separable data: budget met without losing recall
}

TEST(Policy, ThresholdForZeroFprIsMaximal) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.7f};
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f};
  const double threshold = threshold_for_fpr(scores, labels, 0.0);
  const PolicyOutcome out = evaluate_policy(scores, labels, threshold, 1.0);
  EXPECT_DOUBLE_EQ(out.false_alarm_rate, 0.0);
}

}  // namespace
}  // namespace ssdfail::core
