// Chaos tests for the hardened ingestion path: a corrupted replay stream
// must complete without throwing, every corrupted record must be repaired
// or end up in the dead-letter metrics, and clean records' scores must stay
// bit-identical to an uncorrupted run.  Also covers hot model swaps and the
// non-finite score clamp that backs degraded-mode serving.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/online_monitor.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"
#include "robustness/fault_injector.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

std::shared_ptr<const ml::Classifier> fitted_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 200;
    sim::FleetSimulator fleet(cfg);
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.05;
    const ml::Dataset data = build_dataset(fleet, opts);
    auto forest = ml::make_model(ml::ModelKind::kRandomForest);
    forest->fit(ml::downsample_negatives(data, 1.0, 3));
    return std::shared_ptr<const ml::Classifier>(std::move(forest));
  }();
  return model;
}

/// A clean day-ordered replay stream over a small simulated fleet.
std::vector<FleetObservation> replay_stream(std::uint32_t drives_per_model) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = drives_per_model;
  cfg.seed = 77;
  const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  // Order by day, then by drive — the shape `serve` feeds the monitor.
  std::map<std::int32_t, std::vector<FleetObservation>> by_day;
  for (const auto& drive : fleet.drives)
    for (const auto& rec : drive.records)
      by_day[rec.day].push_back({drive.model, drive.drive_index, drive.deploy_day, rec});
  std::vector<FleetObservation> stream;
  for (auto& [day, obs] : by_day)
    stream.insert(stream.end(), obs.begin(), obs.end());
  return stream;
}

/// The acceptance invariant: replay a ~10%-corrupted stream, require zero
/// exceptions, exact dead-letter accounting, and bit-identical scores for
/// records the injector certifies as untainted.
TEST(ChaosMonitor, CorruptedReplayRepairsOrQuarantinesEverything) {
  const auto stream = replay_stream(12);
  ASSERT_GT(stream.size(), 1000u);

  // Baseline: the same stream, uncorrupted, batch path.
  FleetMonitor clean_monitor(fitted_model(), 0.9, 4);
  const auto baseline = clean_monitor.observe_batch(stream);

  robustness::FaultInjector injector(41, robustness::FaultRates::uniform(0.10));
  const auto corrupted = injector.corrupt(stream);
  ASSERT_GT(corrupted.total_injected(), 0u);

  robustness::SanitizerConfig dl;
  dl.dead_letter_capacity = 1u << 20;  // unbounded for exact accounting
  FleetMonitor monitor(fitted_model(), 0.9, 4, dl);
  std::vector<RiskAssessment> assessments;
  // Feed in fixed-size chunks, as a service would; must never throw.
  const std::span<const FleetObservation> span(corrupted.observations);
  for (std::size_t at = 0; at < span.size(); at += 512) {
    const auto chunk =
        monitor.observe_batch(span.subspan(at, std::min<std::size_t>(512, span.size() - at)));
    assessments.insert(assessments.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(assessments.size(), corrupted.observations.size());

  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < assessments.size(); ++i) {
    const auto label = corrupted.label[i];
    if (label == robustness::StreamLabel::kClean) {
      // Untouched record, untouched drive state: bit-identical score.
      EXPECT_FALSE(assessments[i].dropped);
      EXPECT_EQ(assessments[i].risk, baseline[corrupted.origin[i]].risk)
          << "clean record at position " << i << " diverged from the clean run";
    } else if (label == robustness::StreamLabel::kTainted) {
      // Perturbed drive state upstream: still scored, value may differ.
      EXPECT_FALSE(assessments[i].dropped);
    } else {
      // Corrupt: either repaired (scored) or dropped/quarantined.
      EXPECT_TRUE(assessments[i].dropped || assessments[i].repaired)
          << "corrupt record at position " << i << " scored unsanitized";
    }
    if (assessments[i].dropped) ++dropped;
  }

  const auto m = monitor.metrics();
  // Every corrupted record is accounted for in exactly one outcome bucket.
  EXPECT_EQ(m.sanitizer.records_repaired + m.sanitizer.duplicates_dropped +
                m.sanitizer.records_quarantined,
            corrupted.count(robustness::StreamLabel::kCorrupt));
  EXPECT_EQ(m.sanitizer.records_quarantined + m.sanitizer.duplicates_dropped, dropped);
  EXPECT_EQ(m.records_scored, corrupted.observations.size() - dropped);
  EXPECT_EQ(m.sanitizer.dead_letters.size(), m.sanitizer.records_quarantined);
  EXPECT_EQ(m.sanitizer.dead_letter_overflow, 0u);
  EXPECT_EQ(m.non_finite_scores, 0u);
  EXPECT_FALSE(m.degraded);
}

TEST(ChaosMonitor, SequentialAndBatchPathsAgreeOnCorruptStreams) {
  const auto stream = replay_stream(6);
  robustness::FaultInjector injector(43, robustness::FaultRates::uniform(0.10));
  const auto corrupted = injector.corrupt(stream);

  FleetMonitor batch_monitor(fitted_model(), 0.9, 4);
  const auto batch = batch_monitor.observe_batch(corrupted.observations);

  FleetMonitor seq_monitor(fitted_model(), 0.9, 4);
  ASSERT_EQ(batch.size(), corrupted.observations.size());
  for (std::size_t i = 0; i < corrupted.observations.size(); ++i) {
    const auto& obs = corrupted.observations[i];
    const RiskAssessment a =
        seq_monitor.observe(obs.drive_model, obs.drive_index, obs.deploy_day, obs.record);
    EXPECT_EQ(a.dropped, batch[i].dropped) << "position " << i;
    EXPECT_EQ(a.quarantined, batch[i].quarantined) << "position " << i;
    EXPECT_EQ(a.repaired, batch[i].repaired) << "position " << i;
    EXPECT_EQ(a.risk, batch[i].risk) << "position " << i;
  }
  const auto ms = seq_monitor.metrics();
  const auto mb = batch_monitor.metrics();
  EXPECT_EQ(ms.records_scored, mb.records_scored);
  EXPECT_EQ(ms.sanitizer.records_quarantined, mb.sanitizer.records_quarantined);
  EXPECT_EQ(ms.sanitizer.records_repaired, mb.sanitizer.records_repaired);
  EXPECT_EQ(ms.sanitizer.duplicates_dropped, mb.sanitizer.duplicates_dropped);
}

/// A stub model for failure handling: scores everything as NaN.
class NanModel final : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  [[nodiscard]] std::vector<float> predict_proba(const ml::Matrix& x) const override {
    return std::vector<float>(x.rows(), std::numeric_limits<float>::quiet_NaN());
  }
  [[nodiscard]] std::string name() const override { return "nan_model"; }
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override {
    return std::make_unique<NanModel>();
  }
};

TEST(ChaosMonitor, NonFiniteScoresClampToConservativeAlert) {
  FleetMonitor monitor(std::make_shared<NanModel>(), 0.9, 2);
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 10;
  rec.writes = 10;
  const auto a = monitor.observe(trace::DriveModel::MlcA, 1, 0, rec);
  EXPECT_FALSE(a.dropped);
  EXPECT_FLOAT_EQ(a.risk, 1.0f);  // clamped, not NaN
  EXPECT_TRUE(a.alert);           // conservative: a broken model alerts

  std::vector<FleetObservation> batch(1);
  batch[0] = {trace::DriveModel::MlcA, 2, 0, rec};
  const auto b = monitor.observe_batch(batch);
  EXPECT_FLOAT_EQ(b[0].risk, 1.0f);
  EXPECT_TRUE(b[0].alert);
  EXPECT_EQ(monitor.metrics().non_finite_scores, 2u);
}

TEST(ChaosMonitor, HotModelSwapKeepsFeatureStateAndScores) {
  // Replay days 0..N/2 on the NaN model, swap to the real model mid-stream,
  // and require post-swap scores to match a monitor that ran the real model
  // the whole time (feature state carries over; only scoring changes).
  const auto stream = replay_stream(4);
  const std::size_t half = stream.size() / 2;

  FleetMonitor reference(fitted_model(), 0.9, 3);
  const auto expected = reference.observe_batch(stream);

  FleetMonitor swapped(std::make_shared<NanModel>(), 0.9, 3);
  const std::span<const FleetObservation> span(stream);
  (void)swapped.observe_batch(span.subspan(0, half));
  swapped.set_degraded(true);
  EXPECT_TRUE(swapped.metrics().degraded);

  swapped.set_model(fitted_model());
  swapped.set_degraded(false);
  const auto after = swapped.observe_batch(span.subspan(half));
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i].risk, expected[half + i].risk) << "position " << (half + i);
  EXPECT_FALSE(swapped.metrics().degraded);
  EXPECT_EQ(swapped.metrics().non_finite_scores, half);
}

}  // namespace
}  // namespace ssdfail::core
