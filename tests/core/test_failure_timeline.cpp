#include "core/failure_timeline.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

using trace::DailyRecord;
using trace::DriveHistory;
using trace::SwapEvent;

DailyRecord active_day(std::int32_t day) {
  DailyRecord r;
  r.day = day;
  r.reads = 100;
  r.writes = 200;
  return r;
}

DailyRecord inactive_day(std::int32_t day) {
  DailyRecord r;
  r.day = day;
  return r;
}

TEST(DeriveTimeline, FailureIsLastActiveDayBeforeSwap) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 10; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({15});

  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.failures.size(), 1u);
  EXPECT_EQ(t.failures[0].fail_day, 10);
  EXPECT_EQ(t.failures[0].swap_day, 15);
  EXPECT_EQ(t.failures[0].nonop_days(), 5);
  EXPECT_EQ(t.failures[0].age_at_failure, 10);
}

TEST(DeriveTimeline, TrailingInactiveDaysBelongToLimbo) {
  // Paper: the failure happens BEFORE the inactivity period, if one exists.
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  for (std::int32_t day = 6; day <= 9; ++day) d.records.push_back(inactive_day(day));
  d.swaps.push_back({12});

  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.failures.size(), 1u);
  EXPECT_EQ(t.failures[0].fail_day, 5);
  EXPECT_EQ(t.failures[0].nonop_days(), 7);
}

TEST(DeriveTimeline, CensoredPeriodWhenNoSwap) {
  DriveHistory d;
  d.deploy_day = 3;
  for (std::int32_t day = 3; day <= 30; ++day) d.records.push_back(active_day(day));

  const DriveTimeline t = derive_timeline(d);
  EXPECT_TRUE(t.failures.empty());
  ASSERT_EQ(t.periods.size(), 1u);
  EXPECT_FALSE(t.periods[0].ended_in_failure);
  EXPECT_EQ(t.periods[0].length(), 28);
}

TEST(DeriveTimeline, ReentryStartsNewPeriod) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({8});
  for (std::int32_t day = 20; day <= 40; ++day) d.records.push_back(active_day(day));

  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.failures.size(), 1u);
  ASSERT_EQ(t.periods.size(), 2u);
  EXPECT_TRUE(t.periods[0].ended_in_failure);
  EXPECT_FALSE(t.periods[1].ended_in_failure);
  EXPECT_EQ(t.periods[1].start_day, 20);
  ASSERT_EQ(t.repairs.size(), 1u);
  ASSERT_TRUE(t.repairs[0].reentry_day.has_value());
  EXPECT_EQ(*t.repairs[0].reentry_day, 20);
  EXPECT_EQ(*t.repairs[0].repair_days(), 12);
}

TEST(DeriveTimeline, NeverReturnedRepairIsCensored) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({8});

  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.repairs.size(), 1u);
  EXPECT_FALSE(t.repairs[0].reentry_day.has_value());
  EXPECT_FALSE(t.repairs[0].repair_days().has_value());
}

TEST(DeriveTimeline, MultipleFailures) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({7});
  for (std::int32_t day = 30; day <= 50; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({53});

  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.failures.size(), 2u);
  EXPECT_EQ(t.failures[0].fail_day, 5);
  EXPECT_EQ(t.failures[1].fail_day, 50);
  EXPECT_EQ(t.periods.size(), 2u);
  EXPECT_TRUE(t.periods[1].ended_in_failure);
}

TEST(DeriveTimeline, EmptyDriveYieldsEmptyTimeline) {
  DriveHistory d;
  const DriveTimeline t = derive_timeline(d);
  EXPECT_TRUE(t.failures.empty());
  EXPECT_TRUE(t.periods.empty());
}

TEST(DeriveTimeline, CumulativeUeCapturedAtFailure) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 4; ++day) {
    DailyRecord r = active_day(day);
    r.errors[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)] = 10;
    d.records.push_back(r);
  }
  d.swaps.push_back({6});
  const DriveTimeline t = derive_timeline(d);
  ASSERT_EQ(t.failures.size(), 1u);
  EXPECT_EQ(t.failures[0].cum_ue, 50u);
}

TEST(DaysToNextFailure, BeforeAtAndAfter) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({7});
  const DriveTimeline t = derive_timeline(d);
  EXPECT_EQ(days_to_next_failure(t, 3), 2);
  EXPECT_EQ(days_to_next_failure(t, 5), 0);
  EXPECT_EQ(days_to_next_failure(t, 6), std::numeric_limits<std::int32_t>::max());
}

TEST(InFailedState, CoversLimboAndRepair) {
  DriveHistory d;
  d.deploy_day = 0;
  for (std::int32_t day = 0; day <= 5; ++day) d.records.push_back(active_day(day));
  d.swaps.push_back({8});
  for (std::int32_t day = 20; day <= 25; ++day) d.records.push_back(active_day(day));
  const DriveTimeline t = derive_timeline(d);
  EXPECT_FALSE(in_failed_state(t, 5));   // the failure day itself is operational
  EXPECT_TRUE(in_failed_state(t, 6));    // limbo
  EXPECT_TRUE(in_failed_state(t, 10));   // in repair
  EXPECT_TRUE(in_failed_state(t, 19));
  EXPECT_FALSE(in_failed_state(t, 20));  // re-entered
}

TEST(DeriveTimeline, MatchesSimulatorGroundTruth) {
  // The acid test: the observable-only derivation must recover the
  // simulator's hidden failure days (and swap pairing) for a real fleet.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 400;
  sim::FleetSimulator fsim(cfg);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < fsim.drive_count(); ++i) {
    const auto drive = fsim.simulate(i);
    const DriveTimeline t = derive_timeline(drive);
    ASSERT_EQ(t.failures.size(), drive.swaps.size());
    // Every derived failure must match a ground-truth failure day exactly,
    // unless log loss swallowed the true failure-day record (then the
    // derived day falls at most a few days earlier).
    const auto& truth_days = drive.truth->failure_days;
    for (const auto& f : t.failures) {
      bool exact = false;
      bool close = false;
      for (std::int32_t td : truth_days) {
        if (f.fail_day == td) exact = true;
        if (td - f.fail_day >= 0 && td - f.fail_day <= 5) close = true;
      }
      EXPECT_TRUE(exact || close) << "drive " << i << " day " << f.fail_day;
      if (exact) ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace ssdfail::core
