#include "core/online_monitor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "core/dataset_builder.hpp"
#include "core/failure_timeline.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

/// Fitted forest shared by monitor tests.
std::shared_ptr<const ml::Classifier> fitted_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 300;
    sim::FleetSimulator fleet(cfg);
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.05;
    const ml::Dataset data = build_dataset(fleet, opts);
    auto forest = ml::make_model(ml::ModelKind::kRandomForest);
    forest->fit(ml::downsample_negatives(data, 1.0, 3));
    return std::shared_ptr<const ml::Classifier>(std::move(forest));
  }();
  return model;
}

TEST(OnlineDriveMonitor, ScoresMatchBatchPipeline) {
  // Streaming scores must equal what the batch feature extractor + model
  // produce for the same records.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 300;
  sim::FleetSimulator fleet(cfg);
  const trace::DriveHistory drive = fleet.simulate(5);

  OnlineDriveMonitor monitor(*fitted_model(), 0.9, drive.model, drive.deploy_day);
  FeatureExtractor::State state;
  ml::Matrix row(1, FeatureExtractor::count());
  for (const auto& rec : drive.records) {
    const RiskAssessment streaming = monitor.observe(rec);
    FeatureExtractor::advance(state, rec);
    FeatureExtractor::extract(drive, rec, state, row.row(0));
    const float batch = fitted_model()->predict_proba(row)[0];
    ASSERT_FLOAT_EQ(streaming.risk, batch) << "day " << rec.day;
  }
  EXPECT_EQ(monitor.days_observed(), drive.records.size());
}

TEST(OnlineDriveMonitor, AlertRespectsThreshold) {
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 100;
  rec.writes = 100;
  OnlineDriveMonitor lenient(*fitted_model(), 0.0, trace::DriveModel::MlcA, 0);
  EXPECT_TRUE(lenient.observe(rec).alert);  // threshold 0: everything alerts
  OnlineDriveMonitor strict(*fitted_model(), 1.01, trace::DriveModel::MlcA, 0);
  EXPECT_FALSE(strict.observe(rec).alert);  // threshold > 1: nothing alerts
}

TEST(OnlineDriveMonitor, RejectsOutOfOrderRecords) {
  OnlineDriveMonitor monitor(*fitted_model(), 0.5, trace::DriveModel::MlcB, 10);
  trace::DailyRecord rec;
  rec.day = 12;
  (void)monitor.observe(rec);
  rec.day = 12;
  EXPECT_THROW((void)monitor.observe(rec), std::invalid_argument);
  rec.day = 11;
  EXPECT_THROW((void)monitor.observe(rec), std::invalid_argument);
  rec.day = 13;
  EXPECT_NO_THROW((void)monitor.observe(rec));
}

TEST(FleetMonitor, TracksDrivesIndependently) {
  FleetMonitor fleet_monitor(fitted_model(), 0.99);
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 10;
  rec.writes = 10;
  (void)fleet_monitor.observe(trace::DriveModel::MlcA, 1, 0, rec);
  (void)fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 2u);
  // Same drive again on the next day reuses its monitor.
  rec.day = 1;
  (void)fleet_monitor.observe(trace::DriveModel::MlcA, 1, 0, rec);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 2u);
  fleet_monitor.retire(trace::DriveModel::MlcA, 1);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 1u);
}

TEST(FleetMonitor, RetireThenReobserveRecreatesState) {
  FleetMonitor fleet_monitor(fitted_model(), 0.99, 4);
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 50;
  rec.writes = 50;
  const float fresh_risk =
      fleet_monitor.observe(trace::DriveModel::MlcA, 3, 0, rec).risk;
  rec.day = 1;
  rec.errors[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)] = 9;
  (void)fleet_monitor.observe(trace::DriveModel::MlcA, 3, 0, rec);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 1u);

  fleet_monitor.retire(trace::DriveModel::MlcA, 3);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 0u);

  // Re-observing after retirement must build FRESH state: day 0 is legal
  // again (a retired drive's day cursor is gone) and the score matches the
  // first-ever observation, error history forgotten.
  rec.day = 0;
  rec.errors[static_cast<std::size_t>(trace::ErrorType::kUncorrectable)] = 0;
  const RiskAssessment again =
      fleet_monitor.observe(trace::DriveModel::MlcA, 3, 0, rec);
  EXPECT_FLOAT_EQ(again.risk, fresh_risk);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 1u);
  EXPECT_EQ(fleet_monitor.metrics().drives_retired, 1u);
  EXPECT_EQ(fleet_monitor.metrics().drives_created, 2u);
}

TEST(FleetMonitor, OutOfOrderQuarantine) {
  FleetMonitor fleet_monitor(fitted_model(), 0.5, 2);
  trace::DailyRecord rec;
  rec.day = 10;
  (void)fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  // Sequential path: no throw — the stale record is quarantined, counted
  // both as an out-of-order drop and in the sanitizer's dead letters.
  rec.day = 9;
  const auto stale = fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_TRUE(stale.dropped);
  EXPECT_TRUE(stale.quarantined);
  EXPECT_FLOAT_EQ(stale.risk, 0.0f);
  {
    const auto m = fleet_monitor.metrics();
    EXPECT_EQ(m.out_of_order_dropped, 1u);
    EXPECT_EQ(m.sanitizer.records_quarantined, 1u);
    ASSERT_EQ(m.sanitizer.dead_letters.size(), 1u);
    EXPECT_EQ(m.sanitizer.dead_letters[0].kind,
              trace::ViolationKind::kNonMonotoneDays);
    EXPECT_EQ(m.sanitizer.dead_letters[0].record.day, 9);
  }

  // Batch path: identical semantics; in-order records in the same batch
  // still score.
  std::vector<FleetObservation> batch(2);
  batch[0] = {trace::DriveModel::MlcB, 1, 0, rec};  // day 9: stale
  batch[1] = {trace::DriveModel::MlcB, 1, 0, rec};
  batch[1].record.day = 11;
  const auto assessments = fleet_monitor.observe_batch(batch);
  ASSERT_EQ(assessments.size(), 2u);
  EXPECT_TRUE(assessments[0].dropped);
  EXPECT_TRUE(assessments[0].quarantined);
  EXPECT_FALSE(assessments[1].dropped);
  EXPECT_EQ(fleet_monitor.metrics().out_of_order_dropped, 2u);
  EXPECT_EQ(fleet_monitor.metrics().sanitizer.records_quarantined, 2u);
  EXPECT_EQ(fleet_monitor.metrics().records_scored, 2u);  // day 10 + day 11
}

TEST(FleetMonitor, ExactDuplicateIsDroppedNotQuarantined) {
  FleetMonitor fleet_monitor(fitted_model(), 0.5, 2);
  trace::DailyRecord rec;
  rec.day = 10;
  rec.reads = 100;
  const auto first = fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_FALSE(first.dropped);
  const auto dup = fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_TRUE(dup.dropped);
  EXPECT_FALSE(dup.quarantined);
  const auto m = fleet_monitor.metrics();
  EXPECT_EQ(m.sanitizer.duplicates_dropped, 1u);
  EXPECT_EQ(m.sanitizer.records_quarantined, 0u);
  EXPECT_EQ(m.records_scored, 1u);
}

TEST(FleetMonitor, CounterRegressionIsRepairedAndScored) {
  FleetMonitor fleet_monitor(fitted_model(), 0.5, 2);
  trace::DailyRecord rec;
  rec.day = 10;
  rec.pe_cycles = 500;
  (void)fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  rec.day = 11;
  rec.pe_cycles = 3;  // controller reset: cumulative P/E regressed
  const auto repaired = fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_FALSE(repaired.dropped);
  EXPECT_TRUE(repaired.repaired);
  const auto m = fleet_monitor.metrics();
  EXPECT_EQ(m.sanitizer.records_repaired, 1u);
  EXPECT_EQ(m.records_scored, 2u);
  EXPECT_EQ(m.sanitizer.repaired[static_cast<std::size_t>(
                trace::ViolationKind::kDecreasingPeCycles)],
            1u);
}

TEST(FleetMonitor, AlertCounterIsMonotone) {
  FleetMonitor fleet_monitor(fitted_model(), 0.0, 3);  // threshold 0: all alert
  trace::DailyRecord rec;
  rec.reads = 10;
  std::uint64_t previous = 0;
  for (std::int32_t day = 0; day < 20; ++day) {
    rec.day = day;
    const auto a = fleet_monitor.observe(trace::DriveModel::MlcD, 2, 0, rec);
    EXPECT_TRUE(a.alert);
    const std::uint64_t now = fleet_monitor.alerts_raised();
    EXPECT_EQ(now, previous + 1);  // monotone, one per record at threshold 0
    previous = now;
  }
  EXPECT_EQ(fleet_monitor.metrics().records_scored, 20u);
  EXPECT_EQ(fleet_monitor.metrics().alerts_raised, 20u);
}

/// Day-ordered replay stream for a small simulated fleet.
std::vector<std::vector<FleetObservation>> day_batches(const trace::FleetTrace& fleet) {
  std::map<std::int32_t, std::vector<FleetObservation>> by_day;
  for (const auto& drive : fleet.drives)
    for (const auto& rec : drive.records)
      by_day[rec.day].push_back({drive.model, drive.drive_index, drive.deploy_day, rec});
  std::vector<std::vector<FleetObservation>> batches;
  batches.reserve(by_day.size());
  for (auto& [day, batch] : by_day) batches.push_back(std::move(batch));
  return batches;
}

TEST(FleetMonitor, BatchMatchesSequentialAcrossShardCounts) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 12;
  cfg.window_days = 150;
  const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  const auto batches = day_batches(fleet);

  FleetMonitor sequential(fitted_model(), 0.9, 1);
  FleetMonitor batched_1(fitted_model(), 0.9, 1);
  FleetMonitor batched_8(fitted_model(), 0.9, 8);
  parallel::ThreadPool pool(4);

  std::uint64_t compared = 0;
  for (const auto& batch : batches) {
    const auto from_1 = batched_1.observe_batch(batch);
    const auto from_8 = batched_8.observe_batch(batch, pool);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& obs = batch[i];
      const RiskAssessment one = sequential.observe(obs.drive_model, obs.drive_index,
                                                    obs.deploy_day, obs.record);
      ASSERT_FALSE(from_1[i].dropped);
      ASSERT_FALSE(from_8[i].dropped);
      // Identical scores: sequential vs batched, 1 shard vs 8 shards.
      ASSERT_EQ(one.risk, from_1[i].risk) << "day batch mismatch at obs " << i;
      ASSERT_EQ(one.risk, from_8[i].risk) << "shard-count mismatch at obs " << i;
      ASSERT_EQ(one.alert, from_8[i].alert);
      ++compared;
    }
  }
  ASSERT_GT(compared, 1000u);
  EXPECT_EQ(sequential.alerts_raised(), batched_8.alerts_raised());
  EXPECT_EQ(batched_1.metrics().records_scored, compared);
  EXPECT_EQ(batched_8.metrics().records_scored, compared);
}

TEST(FleetMonitor, ConcurrentObserveMatchesSequential) {
  // N threads each stream a disjoint subset of drives into one sharded
  // monitor; every drive's scores must equal a single-threaded replay.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 8;
  cfg.window_days = 120;
  const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();

  FleetMonitor shared(fitted_model(), 0.9, 8);
  constexpr unsigned kThreads = 4;
  std::vector<std::vector<std::vector<float>>> risks(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t d = t; d < fleet.drives.size(); d += kThreads) {
        const auto& drive = fleet.drives[d];
        std::vector<float> drive_risks;
        drive_risks.reserve(drive.records.size());
        for (const auto& rec : drive.records)
          drive_risks.push_back(
              shared.observe(drive.model, drive.drive_index, drive.deploy_day, rec).risk);
        risks[t].push_back(std::move(drive_risks));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t total = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    std::size_t slot = 0;
    for (std::size_t d = t; d < fleet.drives.size(); d += kThreads, ++slot) {
      const auto& drive = fleet.drives[d];
      OnlineDriveMonitor solo(*fitted_model(), 0.9, drive.model, drive.deploy_day);
      ASSERT_EQ(risks[t][slot].size(), drive.records.size());
      for (std::size_t r = 0; r < drive.records.size(); ++r) {
        ASSERT_EQ(solo.observe(drive.records[r]).risk, risks[t][slot][r])
            << "drive " << drive.uid() << " record " << r;
        ++total;
      }
    }
  }
  EXPECT_EQ(shared.metrics().records_scored, total);
  EXPECT_EQ(shared.drives_tracked(), fleet.drives.size());
}

TEST(FleetMonitor, MetricsSnapshotAddsUp) {
  sim::FleetConfig cfg;
  cfg.drives_per_model = 6;
  cfg.window_days = 100;
  const trace::FleetTrace fleet = sim::FleetSimulator(cfg).generate_all();
  const auto batches = day_batches(fleet);

  FleetMonitor monitor(fitted_model(), 0.9, 4);
  std::uint64_t records = 0;
  for (const auto& batch : batches) {
    (void)monitor.observe_batch(batch);
    records += batch.size();
  }
  const MonitorMetricsSnapshot snap = monitor.metrics();
  EXPECT_EQ(snap.shards, 4u);
  EXPECT_EQ(snap.records_scored, records);
  EXPECT_EQ(snap.drives_created, fleet.drives.size());
  EXPECT_EQ(snap.drives_tracked, fleet.drives.size());
  EXPECT_EQ(snap.drives_retired, 0u);
  EXPECT_EQ(snap.out_of_order_dropped, 0u);
  // One on_batch per (day, non-empty shard) pair: between #days and
  // #days * #shards.
  EXPECT_GE(snap.batches_scored, batches.size());
  EXPECT_LE(snap.batches_scored, batches.size() * 4);
  // Every scored record contributed one (weighted) latency observation.
  EXPECT_DOUBLE_EQ(snap.score_latency_us.total(), static_cast<double>(records));
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("records scored"), std::string::npos);
  EXPECT_NE(text.find("score latency"), std::string::npos);
}

TEST(FleetMonitor, RisingRiskBeforeFailure) {
  // Across many failed drives, the monitor's score on the failure day
  // should on average exceed its score 30 days earlier.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 300;
  sim::FleetSimulator fleet(cfg);

  double risk_at_failure = 0.0;
  double risk_before = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < fleet.drive_count() && counted < 40; ++i) {
    const trace::DriveHistory drive = fleet.simulate(i);
    const DriveTimeline timeline = derive_timeline(drive);
    if (timeline.failures.empty()) continue;
    const std::int32_t fail_day = timeline.failures[0].fail_day;

    OnlineDriveMonitor monitor(*fitted_model(), 0.5, drive.model, drive.deploy_day);
    float at_fail = -1.0f;
    float before = -1.0f;
    for (const auto& rec : drive.records) {
      if (rec.day > fail_day) break;
      const auto assessment = monitor.observe(rec);
      if (rec.day == fail_day) at_fail = assessment.risk;
      if (rec.day <= fail_day - 30) before = assessment.risk;
    }
    if (at_fail < 0.0f || before < 0.0f) continue;
    risk_at_failure += at_fail;
    risk_before += before;
    ++counted;
  }
  ASSERT_GE(counted, 20);
  EXPECT_GT(risk_at_failure / counted, risk_before / counted + 0.1);
}

}  // namespace
}  // namespace ssdfail::core
