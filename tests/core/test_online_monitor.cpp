#include "core/online_monitor.hpp"

#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "core/failure_timeline.hpp"
#include "ml/downsample.hpp"
#include "ml/model_zoo.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::core {
namespace {

/// Fitted forest shared by monitor tests.
std::shared_ptr<const ml::Classifier> fitted_model() {
  static const std::shared_ptr<const ml::Classifier> model = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 300;
    sim::FleetSimulator fleet(cfg);
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = 0.05;
    const ml::Dataset data = build_dataset(fleet, opts);
    auto forest = ml::make_model(ml::ModelKind::kRandomForest);
    forest->fit(ml::downsample_negatives(data, 1.0, 3));
    return std::shared_ptr<const ml::Classifier>(std::move(forest));
  }();
  return model;
}

TEST(OnlineDriveMonitor, ScoresMatchBatchPipeline) {
  // Streaming scores must equal what the batch feature extractor + model
  // produce for the same records.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 300;
  sim::FleetSimulator fleet(cfg);
  const trace::DriveHistory drive = fleet.simulate(5);

  OnlineDriveMonitor monitor(*fitted_model(), 0.9, drive.model, drive.deploy_day);
  FeatureExtractor::State state;
  ml::Matrix row(1, FeatureExtractor::count());
  for (const auto& rec : drive.records) {
    const RiskAssessment streaming = monitor.observe(rec);
    FeatureExtractor::advance(state, rec);
    FeatureExtractor::extract(drive, rec, state, row.row(0));
    const float batch = fitted_model()->predict_proba(row)[0];
    ASSERT_FLOAT_EQ(streaming.risk, batch) << "day " << rec.day;
  }
  EXPECT_EQ(monitor.days_observed(), drive.records.size());
}

TEST(OnlineDriveMonitor, AlertRespectsThreshold) {
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 100;
  rec.writes = 100;
  OnlineDriveMonitor lenient(*fitted_model(), 0.0, trace::DriveModel::MlcA, 0);
  EXPECT_TRUE(lenient.observe(rec).alert);  // threshold 0: everything alerts
  OnlineDriveMonitor strict(*fitted_model(), 1.01, trace::DriveModel::MlcA, 0);
  EXPECT_FALSE(strict.observe(rec).alert);  // threshold > 1: nothing alerts
}

TEST(OnlineDriveMonitor, RejectsOutOfOrderRecords) {
  OnlineDriveMonitor monitor(*fitted_model(), 0.5, trace::DriveModel::MlcB, 10);
  trace::DailyRecord rec;
  rec.day = 12;
  (void)monitor.observe(rec);
  rec.day = 12;
  EXPECT_THROW((void)monitor.observe(rec), std::invalid_argument);
  rec.day = 11;
  EXPECT_THROW((void)monitor.observe(rec), std::invalid_argument);
  rec.day = 13;
  EXPECT_NO_THROW((void)monitor.observe(rec));
}

TEST(FleetMonitor, TracksDrivesIndependently) {
  FleetMonitor fleet_monitor(fitted_model(), 0.99);
  trace::DailyRecord rec;
  rec.day = 0;
  rec.reads = 10;
  rec.writes = 10;
  (void)fleet_monitor.observe(trace::DriveModel::MlcA, 1, 0, rec);
  (void)fleet_monitor.observe(trace::DriveModel::MlcB, 1, 0, rec);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 2u);
  // Same drive again on the next day reuses its monitor.
  rec.day = 1;
  (void)fleet_monitor.observe(trace::DriveModel::MlcA, 1, 0, rec);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 2u);
  fleet_monitor.retire(trace::DriveModel::MlcA, 1);
  EXPECT_EQ(fleet_monitor.drives_tracked(), 1u);
}

TEST(FleetMonitor, RisingRiskBeforeFailure) {
  // Across many failed drives, the monitor's score on the failure day
  // should on average exceed its score 30 days earlier.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 300;
  sim::FleetSimulator fleet(cfg);

  double risk_at_failure = 0.0;
  double risk_before = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < fleet.drive_count() && counted < 40; ++i) {
    const trace::DriveHistory drive = fleet.simulate(i);
    const DriveTimeline timeline = derive_timeline(drive);
    if (timeline.failures.empty()) continue;
    const std::int32_t fail_day = timeline.failures[0].fail_day;

    OnlineDriveMonitor monitor(*fitted_model(), 0.5, drive.model, drive.deploy_day);
    float at_fail = -1.0f;
    float before = -1.0f;
    for (const auto& rec : drive.records) {
      if (rec.day > fail_day) break;
      const auto assessment = monitor.observe(rec);
      if (rec.day == fail_day) at_fail = assessment.risk;
      if (rec.day <= fail_day - 30) before = assessment.risk;
    }
    if (at_fail < 0.0f || before < 0.0f) continue;
    risk_at_failure += at_fail;
    risk_before += before;
    ++counted;
  }
  ASSERT_GE(counted, 20);
  EXPECT_GT(risk_at_failure / counted, risk_before / counted + 0.1);
}

}  // namespace
}  // namespace ssdfail::core
