// Validates the DESIGN.md substitution claim: uniformly subsampling
// NEGATIVE test rows leaves the ROC curve (and AUC) unbiased, because TPR
// and FPR are each computed within one class.  This is what licenses
// evaluating on a negative-subsampled test fold instead of the full 40M-day
// imbalanced set.

#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "core/prediction.hpp"
#include "ml/model_zoo.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/rng.hpp"

namespace ssdfail::core {
namespace {

TEST(EvalSubsampling, AucInvariantUnderNegativeSubsampling) {
  // Synthetic scores with a known distribution: AUC on the full set vs on
  // negative-subsampled sets.
  stats::Rng rng(12);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 2000; ++i) {
    scores.push_back(static_cast<float>(0.55 + 0.25 * rng.normal()));
    labels.push_back(1.0f);
  }
  for (int i = 0; i < 200000; ++i) {
    scores.push_back(static_cast<float>(0.45 + 0.25 * rng.normal()));
    labels.push_back(0.0f);
  }
  const double full_auc = ml::roc_auc(scores, labels);

  for (double keep : {0.1, 0.02}) {
    std::vector<float> sub_scores;
    std::vector<float> sub_labels;
    stats::Rng keep_rng(static_cast<std::uint64_t>(keep * 1e6));
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (labels[i] > 0.5f || keep_rng.bernoulli(keep)) {
        sub_scores.push_back(scores[i]);
        sub_labels.push_back(labels[i]);
      }
    }
    const double sub_auc = ml::roc_auc(sub_scores, sub_labels);
    EXPECT_NEAR(sub_auc, full_auc, 0.01) << "keep=" << keep;
  }
}

TEST(EvalSubsampling, DatasetLevelAucStableAcrossKeepProbs) {
  // End-to-end: the same fleet evaluated at two different negative keep
  // probabilities must produce nearly identical CV AUC.
  sim::FleetConfig cfg;
  cfg.drives_per_model = 500;
  sim::FleetSimulator fsim(cfg);

  auto auc_at = [&](double keep_prob) {
    DatasetBuildOptions opts;
    opts.lookahead_days = 1;
    opts.negative_keep_prob = keep_prob;
    const ml::Dataset data = build_dataset(fsim, opts);
    auto model = ml::make_model(ml::ModelKind::kDecisionTree);
    return evaluate_auc(*model, data).auc().mean;
  };

  const double auc_dense = auc_at(0.05);
  const double auc_sparse = auc_at(0.01);
  EXPECT_NEAR(auc_dense, auc_sparse, 0.04);
}

TEST(EvalSubsampling, TprUnaffectedFprEstimateUnbiased) {
  stats::Rng rng(77);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 1000; ++i) {
    scores.push_back(static_cast<float>(rng.uniform()));
    labels.push_back(1.0f);
  }
  for (int i = 0; i < 100000; ++i) {
    scores.push_back(static_cast<float>(rng.uniform() * 0.8));
    labels.push_back(0.0f);
  }
  const auto full = ml::confusion_at(scores, labels, 0.5);

  std::vector<float> sub_scores;
  std::vector<float> sub_labels;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] > 0.5f || rng.bernoulli(0.05)) {
      sub_scores.push_back(scores[i]);
      sub_labels.push_back(labels[i]);
    }
  }
  const auto sub = ml::confusion_at(sub_scores, sub_labels, 0.5);
  EXPECT_DOUBLE_EQ(sub.tpr(), full.tpr());        // positives untouched
  EXPECT_NEAR(sub.fpr(), full.fpr(), 0.01);       // unbiased estimate
}

}  // namespace
}  // namespace ssdfail::core
