// Integration tests: the full observable-only pipeline (simulate ->
// derive timelines -> characterize) must reproduce the paper's headline
// SHAPES.  These complement tests/sim/test_fleet_calibration.cpp, which
// validates the generator against ground truth; here everything flows
// through the analysis layer exactly as the benches do.

#include <gtest/gtest.h>

#include "core/fleet_analysis.hpp"
#include "sim/fleet_simulator.hpp"
#include "stats/streaming.hpp"

namespace ssdfail::core {
namespace {

const CharacterizationSuite& suite() {
  static const CharacterizationSuite s = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 1500;
    return characterize(sim::FleetSimulator(cfg));
  }();
  return s;
}

TEST(PaperShapes, Observation3_SwapsWithinAWeekButLongTail) {
  const auto& nonop = suite().nonop_days();
  ASSERT_GT(nonop.size(), 100u);
  EXPECT_GT(nonop.at(7.0), 0.6);            // most swapped within a week
  EXPECT_LT(nonop.at(100.0), 0.99);         // but a real >100-day tail exists
}

TEST(PaperShapes, Observation4_OnlyAboutHalfReenter) {
  stats::CensoredEcdf pooled;
  for (trace::DriveModel m : trace::kAllModels) pooled.merge(suite().repair_time_days(m));
  ASSERT_GT(pooled.total(), 100u);
  EXPECT_GT(pooled.censored_fraction(), 0.40);
  EXPECT_LT(pooled.censored_fraction(), 0.85);
}

TEST(PaperShapes, Observation5_FewRepairsFinishWithin10Days) {
  stats::CensoredEcdf pooled;
  for (trace::DriveModel m : trace::kAllModels) pooled.merge(suite().repair_time_days(m));
  EXPECT_LT(pooled.at(10.0), 0.15);  // paper: 3.4-6.8%
}

TEST(PaperShapes, Observation6_InfantMortality) {
  // >= 2x elevated monthly failure rate during the first three months.
  const auto& rate = suite().failure_rate_by_month();
  const double infant = (rate.rate(0) + rate.rate(1) + rate.rate(2)) / 3.0;
  stats::StreamingSummary mature;
  for (std::size_t m = 6; m < 48; ++m) mature.add(rate.rate(m));
  EXPECT_GT(infant, 2.0 * mature.mean());
}

TEST(PaperShapes, Observation7_NoOldAgeWearout) {
  // Months 36-60 fail no more often than months 6-24.
  const auto& rate = suite().failure_rate_by_month();
  stats::StreamingSummary mid;
  stats::StreamingSummary old;
  for (std::size_t m = 6; m < 24; ++m) mid.add(rate.rate(m));
  for (std::size_t m = 36; m < 60; ++m) old.add(rate.rate(m));
  EXPECT_LT(old.mean(), 2.0 * mid.mean());
}

TEST(PaperShapes, Observation8_FailuresWellBelowPeLimit) {
  const auto& pe = suite().pe_at_failure();
  ASSERT_GT(pe.size(), 100u);
  EXPECT_GT(pe.at(1500.0), 0.90);  // paper: ~98% below half the limit
  EXPECT_GT(pe.at(3000.0), 0.97);
}

TEST(PaperShapes, Fig9_YoungFailuresInATinyPeRange) {
  const auto& young = suite().pe_at_failure_young();
  const auto& old = suite().pe_at_failure_old();
  ASSERT_GT(young.size(), 30u);
  ASSERT_GT(old.size(), 100u);
  EXPECT_LT(young.quantile(0.95), 0.35 * old.quantile(0.95));
}

TEST(PaperShapes, Fig7_NoBurnInForYoungDrives) {
  const double median_m1 =
      stats::quantile_sorted(suite().writes_at_month(1).sorted(), 0.5);
  const double median_m24 =
      stats::quantile_sorted(suite().writes_at_month(24).sorted(), 0.5);
  EXPECT_LT(median_m1, median_m24);  // young drives see FEWER writes
}

TEST(PaperShapes, Fig10_FailedDrivesSeeMoreErrors) {
  using DC = CharacterizationSuite::DriveClass;
  const double zero_ok = suite().cum_ue_cdf(DC::kNotFailed).at(0.0);
  const double zero_old = suite().cum_ue_cdf(DC::kOldFailed).at(0.0);
  EXPECT_GT(zero_ok, 0.70);
  EXPECT_LT(zero_old, zero_ok - 0.10);
}

TEST(PaperShapes, Fig11_ErrorIncidenceSpikesBeforeFailure) {
  const double near = suite().ue_within_days(false, 1);
  const double baseline = suite().baseline_ue_within_days(2);
  ASSERT_FALSE(std::isnan(near));
  EXPECT_GT(near, 5.0 * baseline);
}

TEST(PaperShapes, Fig11_MostFailuresStillShowNoRecentUe) {
  // Paper: ~75% of failed drives see no UE in their last 7 days.
  const double young = suite().ue_within_days(true, 7);
  const double old = suite().ue_within_days(false, 7);
  EXPECT_LT(young, 0.45);
  EXPECT_LT(old, 0.45);
}

TEST(PaperShapes, Table4_RepeatFailuresAreRareButReal) {
  const auto& hist = suite().failure_count_histogram();
  EXPECT_GT(hist[1], 10u);
  EXPECT_GT(hist[2], 0u);
  EXPECT_GT(hist[1], 5 * hist[2]);  // ~90% of failed drives fail exactly once
}

TEST(PaperShapes, Table2_HeadlineCorrelations) {
  const auto m = suite().correlation_matrix();
  auto rho = [&](CorrVar a, CorrVar b) {
    return m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  };
  EXPECT_GT(rho(CorrVar::kUncorrectable, CorrVar::kFinalRead), 0.85);
  EXPECT_GT(rho(CorrVar::kPeCycle, CorrVar::kDriveAge), 0.45);
  EXPECT_GT(rho(CorrVar::kBadBlock, CorrVar::kUncorrectable), 0.15);
  EXPECT_GT(rho(CorrVar::kResponse, CorrVar::kTimeout), 0.10);
  // The paper's surprise: P/E wear barely correlates with UEs.
  EXPECT_LT(rho(CorrVar::kPeCycle, CorrVar::kUncorrectable), 0.35);
}

}  // namespace
}  // namespace ssdfail::core
