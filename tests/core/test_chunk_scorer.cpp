// Columnar chunk scoring: the column-direct feature path and the compiled
// engine must reproduce the record-at-a-time gather path bit for bit, at
// any chunk size and any pool width — and the monitor must score
// identically on either inference engine.

#include "core/chunk_scorer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/dataset_builder.hpp"
#include "core/features.hpp"
#include "core/online_monitor.hpp"
#include "ml/random_forest.hpp"
#include "sim/fleet_simulator.hpp"
#include "trace/binary_io.hpp"

namespace ssdfail::core {
namespace {

const trace::FleetTrace& test_fleet() {
  static const trace::FleetTrace fleet = [] {
    sim::FleetConfig cfg;
    cfg.drives_per_model = 5;
    cfg.seed = 7;
    cfg.keep_ground_truth = false;
    return sim::FleetSimulator(cfg).generate_all();
  }();
  return fleet;
}

const ml::RandomForest& test_forest() {
  static const ml::RandomForest forest = [] {
    DatasetBuildOptions opts;
    opts.lookahead_days = 7;
    opts.negative_keep_prob = 0.1;
    opts.seed = 3;
    const ml::Dataset data = build_dataset(test_fleet(), opts);
    ml::RandomForest::Params params;
    params.n_trees = 10;
    ml::RandomForest f(params);
    f.fit(data);
    return f;
  }();
  return forest;
}

store::ColumnarFleetView columnar_view(std::uint32_t chunk_drives) {
  std::ostringstream out(std::ios::binary);
  trace::write_binary_v2(out, test_fleet(), chunk_drives);
  const std::string bytes = out.str();
  return store::ColumnarFleetView::from_buffer({bytes.begin(), bytes.end()});
}

TEST(ChunkScorer, MatchesRecordGatherPathAtAnyChunkSize) {
  const ml::FlatForest engine = ml::FlatForest::compile(test_forest());
  for (const std::uint32_t chunk_drives : {1u, 4u, 256u}) {
    const auto view = columnar_view(chunk_drives);
    const FleetScores scores = predict_chunk(engine, view);
    ASSERT_EQ(scores.size(), view.total_records()) << "chunk_drives " << chunk_drives;

    // Reference: gather every record back into a DailyRecord, run the
    // record-overload feature path, score one row at a time.
    std::vector<float> row(FeatureExtractor::count());
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < view.chunk_count(); ++c) {
      const store::ChunkView& chunk = view.chunk(c);
      for (const store::DriveRef& ref : chunk.drives) {
        trace::DriveHistory header;
        header.model = ref.model;
        header.deploy_day = ref.deploy_day;
        FeatureExtractor::State state;
        for (std::size_t i = 0; i < ref.row_count; ++i) {
          const trace::DailyRecord rec = chunk.record(ref.row_begin + i);
          FeatureExtractor::advance(state, rec);
          FeatureExtractor::extract(header, rec, state, row);
          ASSERT_EQ(scores.uid[cursor], ref.uid());
          ASSERT_EQ(scores.day[cursor], rec.day);
          ASSERT_EQ(scores.score[cursor], engine.predict_row(row))
              << "record " << cursor << " chunk_drives " << chunk_drives;
          ++cursor;
        }
      }
    }
    EXPECT_EQ(cursor, scores.size());
  }
}

TEST(ChunkScorer, ColumnDirectFeaturesMatchRecordFeatures) {
  const auto view = columnar_view(4);
  std::vector<float> via_record(FeatureExtractor::count());
  std::vector<float> via_column(FeatureExtractor::count());
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const store::ChunkView& chunk = view.chunk(c);
    for (const store::DriveRef& ref : chunk.drives) {
      trace::DriveHistory header;
      header.model = ref.model;
      header.deploy_day = ref.deploy_day;
      FeatureExtractor::State record_state;
      FeatureExtractor::State column_state;
      for (std::size_t i = 0; i < ref.row_count; ++i) {
        const std::size_t row = ref.row_begin + i;
        const trace::DailyRecord rec = chunk.record(row);
        FeatureExtractor::advance(record_state, rec);
        FeatureExtractor::extract(header, rec, record_state, via_record);
        FeatureExtractor::advance(column_state, chunk, row);
        FeatureExtractor::extract(ref.deploy_day, chunk, row, column_state, via_column);
        for (std::size_t f = 0; f < via_record.size(); ++f)
          ASSERT_EQ(via_record[f], via_column[f])
              << "feature " << FeatureExtractor::names()[f];
      }
    }
  }
}

TEST(ChunkScorer, PoolWidthDoesNotMoveScores) {
  const ml::FlatForest engine = ml::FlatForest::compile(test_forest());
  const auto view = columnar_view(1);  // many chunks: real parallel split
  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool4(4);
  const FleetScores a = predict_chunk(engine, view, pool1);
  const FleetScores b = predict_chunk(engine, view, pool4);
  EXPECT_EQ(a.uid, b.uid);
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.score, b.score);
}

/// Restores the process-wide engine selection on scope exit.
struct EngineGuard {
  ml::InferenceEngine saved = ml::inference_engine();
  ~EngineGuard() { ml::set_inference_engine(saved); }
};

TEST(ChunkScorer, MonitorScoresIdenticallyOnBothEngines) {
  const EngineGuard guard;
  auto model = std::make_shared<ml::RandomForest>(test_forest());

  const auto replay = [&](ml::InferenceEngine engine) {
    ml::set_inference_engine(engine);
    FleetMonitor monitor(model, 0.5, 4);
    std::vector<float> risks;
    for (const auto& drive : test_fleet().drives) {
      std::size_t fed = 0;
      for (const auto& rec : drive.records) {
        if (fed++ == 30) break;  // enough days to exercise cumulative state
        risks.push_back(monitor
                            .observe(drive.model, drive.drive_index,
                                     drive.deploy_day, rec)
                            .risk);
      }
    }
    return risks;
  };

  const std::vector<float> flat = replay(ml::InferenceEngine::kFlat);
  const std::vector<float> walker = replay(ml::InferenceEngine::kWalker);
  EXPECT_EQ(flat, walker);
}

}  // namespace
}  // namespace ssdfail::core
