# CMake generated Testfile for 
# Source directory: /root/repo/tests/parallel
# Build directory: /root/repo/tests/parallel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/parallel/test_thread_pool[1]_include.cmake")
