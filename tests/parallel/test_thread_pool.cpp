#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "stats/streaming.hpp"

namespace ssdfail::parallel {
namespace {

TEST(ThreadPool, RunsOnAllWorkers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](unsigned w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_on_all([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&](std::size_t i) { visits[i].fetch_add(1); }, pool);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroAndOneElement) {
  ThreadPool pool(4);
  int count = 0;
  parallel_for(0, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, pool);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelReduce, SumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  auto result = parallel_reduce(
      n, [] { return std::uint64_t{0}; },
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& dst, const std::uint64_t& src) { dst += src; }, pool);
  EXPECT_EQ(result, n * (n - 1) / 2);
}

TEST(ParallelReduce, MergeableStatAccumulator) {
  ThreadPool pool(4);
  const std::size_t n = 50000;
  auto summary = parallel_reduce(
      n, [] { return stats::StreamingSummary{}; },
      [](stats::StreamingSummary& acc, std::size_t i) {
        acc.add(static_cast<double>(i % 100));
      },
      [](stats::StreamingSummary& dst, const stats::StreamingSummary& src) {
        dst.merge(src);
      },
      pool);
  EXPECT_EQ(summary.count(), n);
  EXPECT_NEAR(summary.mean(), 49.5, 1e-9);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce(
        10000, [] { return 0.0; },
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + static_cast<double>(i)); },
        [](double& dst, const double& src) { dst += src; }, pool);
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);  // bit-identical: fixed partitioning + ordered merge
}

TEST(ParallelReduce, ResultIndependentOfThreadCountForOrderInsensitiveAccumulators) {
  ThreadPool p1(1);
  ThreadPool p4(4);
  auto run = [&](ThreadPool& pool) {
    return parallel_reduce(
        5000, [] { return std::uint64_t{0}; },
        [](std::uint64_t& acc, std::size_t i) { acc += i * i; },
        [](std::uint64_t& dst, const std::uint64_t& src) { dst += src; }, pool);
  };
  EXPECT_EQ(run(p1), run(p4));
}

TEST(DefaultThreadCount, Positive) { EXPECT_GE(default_thread_count(), 1u); }

}  // namespace
}  // namespace ssdfail::parallel
