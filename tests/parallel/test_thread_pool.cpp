#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stats/streaming.hpp"

namespace ssdfail::parallel {
namespace {

TEST(ThreadPool, RunsOnAllWorkers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](unsigned w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_on_all([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&](std::size_t i) { visits[i].fetch_add(1); }, pool);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroAndOneElement) {
  ThreadPool pool(4);
  int count = 0;
  parallel_for(0, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, pool);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelReduce, SumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  auto result = parallel_reduce(
      n, [] { return std::uint64_t{0}; },
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& dst, const std::uint64_t& src) { dst += src; }, pool);
  EXPECT_EQ(result, n * (n - 1) / 2);
}

TEST(ParallelReduce, MergeableStatAccumulator) {
  ThreadPool pool(4);
  const std::size_t n = 50000;
  auto summary = parallel_reduce(
      n, [] { return stats::StreamingSummary{}; },
      [](stats::StreamingSummary& acc, std::size_t i) {
        acc.add(static_cast<double>(i % 100));
      },
      [](stats::StreamingSummary& dst, const stats::StreamingSummary& src) {
        dst.merge(src);
      },
      pool);
  EXPECT_EQ(summary.count(), n);
  EXPECT_NEAR(summary.mean(), 49.5, 1e-9);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce(
        10000, [] { return 0.0; },
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + static_cast<double>(i)); },
        [](double& dst, const double& src) { dst += src; }, pool);
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);  // bit-identical: fixed partitioning + ordered merge
}

TEST(ParallelReduce, ResultIndependentOfThreadCountForOrderInsensitiveAccumulators) {
  ThreadPool p1(1);
  ThreadPool p4(4);
  auto run = [&](ThreadPool& pool) {
    return parallel_reduce(
        5000, [] { return std::uint64_t{0}; },
        [](std::uint64_t& acc, std::size_t i) { acc += i * i; },
        [](std::uint64_t& dst, const std::uint64_t& src) { dst += src; }, pool);
  };
  EXPECT_EQ(run(p1), run(p4));
}

TEST(ThreadPool, RunOnAllPropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_on_all([](unsigned w) {
    if (w == 2) throw std::runtime_error("chunk 2 failed");
  }),
               std::runtime_error);
  // The pool survives the failed job and stays fully usable.
  std::atomic<int> hits{0};
  pool.run_on_all([&](unsigned) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          1000, [](std::size_t i) { if (i == 500) throw std::invalid_argument("bad"); },
          pool),
      std::invalid_argument);
}

TEST(TaskGroup, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i)
    group.submit([&ran, i] {
      if (i == 5) throw std::invalid_argument("task 5");
      ran.fetch_add(1);
    });
  EXPECT_THROW(group.wait(), std::invalid_argument);
  // The failure is isolated: every other task still ran, and the group is
  // reusable after wait() returns.
  EXPECT_EQ(ran.load(), 15);
  group.submit([&ran] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskGroup, DestructorDiscardsUnretrievedException) {
  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.submit([] { throw std::runtime_error("never waited on"); });
  }  // must drain and NOT terminate
  SUCCEED();
}

TEST(TaskGroup, NestedSubmissionFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i)
    outer.submit([&] {
      // Worker submits to its own (possibly saturated) pool; inner.wait()
      // must help drain instead of blocking a worker slot forever.
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.submit([&] { leaf.fetch_add(1); });
      inner.wait();
    });
  outer.wait();
  EXPECT_EQ(leaf.load(), 32);
}

TEST(TaskGroup, TasksRunInsideThePoolContext) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<bool> inherited{false};
  group.submit([&] {
    inherited.store(&ThreadPool::current() == &pool && pool.on_worker_thread());
  });
  group.wait();
  EXPECT_TRUE(inherited.load());
  EXPECT_FALSE(pool.on_worker_thread());  // the test thread is not a worker
}

TEST(ThreadPool, ConcurrentExternalSubmittersDoNotInterfere) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kJobs = 25;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&] {
      for (int r = 0; r < kJobs; ++r)
        pool.run_on_all([&](unsigned) { total.fetch_add(1); });
    });
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kJobs * 4);
}

TEST(DefaultThreadCount, Positive) { EXPECT_GE(default_thread_count(), 1u); }

TEST(DefaultThreadCount, ProgrammaticOverrideWinsAndClears) {
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3u);
  set_default_thread_count(0);
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace ssdfail::parallel
