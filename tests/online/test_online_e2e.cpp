// End-to-end online-learning tests: the full drift-gate loop against a
// live TelemetryDaemon (drifting fleet -> drift alert -> retrain ->
// shadow gate -> promotion with the strike reset and the atomic model
// swap), the drift-free control (no promotion, scoring bit-identical to a
// learner-free daemon), and real-SIGKILL promotion persistence (the
// champion file is always the old or the new model, never torn).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fleet_observation.hpp"
#include "daemon/daemon.hpp"
#include "daemon/daemon_test_util.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/serialize.hpp"
#include "obs/metrics.hpp"
#include "online/learner.hpp"
#include "sim/drifting_fleet.hpp"
#include "sim/fleet_simulator.hpp"

namespace ssdfail::online {
namespace {

using daemon::testing::StubModel;
using daemon::testing::TempDir;

/// Day-ordered observation stream for a materialized fleet.
std::vector<core::FleetObservation> make_stream(const trace::FleetTrace& fleet) {
  std::vector<core::FleetObservation> stream;
  stream.reserve(fleet.total_records());
  for (const auto& d : fleet.drives)
    for (const auto& r : d.records)
      stream.push_back({d.model, d.drive_index, d.deploy_day, r});
  std::stable_sort(stream.begin(), stream.end(),
                   [](const core::FleetObservation& a, const core::FleetObservation& b) {
                     return a.record.day < b.record.day;
                   });
  return stream;
}

daemon::DaemonConfig loop_daemon_config(const std::string& wal_dir,
                                        obs::MetricsRegistry* registry) {
  daemon::DaemonConfig cfg;
  cfg.shards = 2;
  cfg.wal_dir = wal_dir;
  cfg.fsync = daemon::FsyncPolicy::kNever;
  cfg.wal_rotate_bytes = 64 * 1024;  // sealed segments feed the compactor
  cfg.registry = registry;
  return cfg;
}

OnlineConfig loop_online_config(const std::string& wal_dir,
                                obs::MetricsRegistry* registry) {
  OnlineConfig ocfg;
  ocfg.wal_dir = wal_dir;
  ocfg.store_dir = wal_dir + "/store";
  ocfg.model_path = wal_dir + "/champion.bin";
  ocfg.registry = registry;
  ocfg.drift.min_window_rows = 256;
  ocfg.arena.lookahead_days = 7;
  ocfg.arena.min_samples = 200;
  ocfg.arena.min_positives = 3;
  ocfg.arena.promote_margin = 0.005;
  ocfg.retrainer.lookahead_days = 7;
  ocfg.retrainer.negative_keep_prob = 0.1;
  ocfg.retrainer.min_rows = 64;
  ocfg.retrainer.min_positives = 3;
  ocfg.retrainer.model.n_rounds = 20;
  ocfg.retrainer.model.max_depth = 3;
  return ocfg;
}

/// The CLI's day-paced online ingest loop, in miniature: push a stream
/// day, drain it, route deaths to retire() after the drive's last record
/// (the compactor turns retires into the SwapEvents that give retraining
/// its positive labels), and run the learner every `step_days` stream
/// days.  `route_retires` false skips the retire calls: live retires race
/// the in-ring records of the same day (by design — both orders converge
/// on kSwapped), so digest-comparison tests leave them out.
void run_online_loop(daemon::TelemetryDaemon& daemon, OnlineLearner& learner,
                     const std::vector<core::FleetObservation>& stream,
                     std::int32_t step_days, bool route_retires = true) {
  std::unordered_map<std::uint64_t, std::size_t> last_index_of_dead;
  if (route_retires)
    for (std::size_t i = 0; i < stream.size(); ++i)
      if (stream[i].record.dead) last_index_of_dead[stream[i].uid()] = i;
  const auto drained = [&] {
    const daemon::DaemonStats s = daemon.stats();
    return s.scored + s.quarantined + s.duplicates_dropped + s.shed >= s.ingested;
  };
  std::int64_t last_step_day = std::numeric_limits<std::int64_t>::min() / 2;
  std::size_t i = 0;
  while (i < stream.size()) {
    const std::int32_t day = stream[i].record.day;
    for (; i < stream.size() && stream[i].record.day == day; ++i) {
      (void)daemon.push(stream[i]);
      const auto it = last_index_of_dead.find(stream[i].uid());
      if (it != last_index_of_dead.end() && it->second == i)
        daemon.retire(stream[i].drive_model, stream[i].drive_index);
    }
    while (!drained()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (day - last_step_day >= step_days) {
      (void)learner.step();
      last_step_day = day;
    }
  }
}

TEST(OnlineE2E, DriftingFleetFiresTheDetectorAndPromotesARetrainedChallenger) {
  TempDir dir("e2e_drift");
  obs::MetricsRegistry registry;

  // Post-drift cohort with harsher workload, symptoms, and hazard: the
  // champion (an uninformative stub standing in for a stale model) must
  // lose the shadow gate to a challenger retrained on the drifted store.
  sim::DriftingFleetConfig fleet_cfg;
  fleet_cfg.base.drives_per_model = 24;
  fleet_cfg.base.window_days = 730;
  fleet_cfg.base.seed = 424242;
  fleet_cfg.drift.drift_day = 300;
  fleet_cfg.drift.drifted_fraction = 0.6;
  fleet_cfg.drift.hazard_mult = 8.0;
  fleet_cfg.drift.error_rate_mult = 4.0;
  fleet_cfg.drift.bad_block_mult = 4.0;
  const auto stream = make_stream(sim::DriftingFleetSimulator(fleet_cfg).generate_all());
  ASSERT_GT(stream.size(), 10'000u);

  OnlineLearner learner(nullptr, loop_online_config(dir.path(), &registry));
  daemon::DaemonConfig dcfg = loop_daemon_config(dir.path(), &registry);
  dcfg.batch_observer = &learner;
  daemon::TelemetryDaemon daemon(std::make_shared<StubModel>(), dcfg);
  learner.attach(&daemon);
  daemon.start();
  run_online_loop(daemon, learner, stream, 30);
  (void)learner.step();  // final gate pass over the fully drained stream
  daemon.stop();

  EXPECT_GT(learner.steps_run(), 10u);
  EXPECT_GE(registry.counter("online_drift_alerts_total", {}, "").value(), 1u)
      << "the drifting stream must fire the drift detector";
  EXPECT_GE(registry.counter("online_retrains_total", {}, "").value(), 1u);

  ASSERT_GE(learner.promotions().size(), 1u)
      << "a retrained challenger must win the shadow gate";
  for (const PromotionEvent& p : learner.promotions()) {
    EXPECT_GT(p.challenger_auc, p.champion_auc)
        << "promotion requires strictly better recent-window AUC";
    EXPECT_GE(p.matured_rows, 200u);
  }

  // The promotion was persisted atomically and survives a reload.
  const std::string champion = dir.path() + "/champion.bin";
  ASSERT_TRUE(std::filesystem::exists(champion));
  EXPECT_NE(ml::load_serving_classifier_file(champion), nullptr);

  // The hot swap reset the health streaks (strikes earned under the stub's
  // score scale must not page under the new champion).
  EXPECT_GE(registry.counter("daemon_strike_resets_total", {}, "").value(), 1u);
}

TEST(OnlineE2E, DriftFreeRunNeverPromotesAndLeavesScoringUntouched) {
  TempDir dir("e2e_stable");
  TempDir control_dir("e2e_stable_control");
  obs::MetricsRegistry registry;
  obs::MetricsRegistry control_registry;

  sim::FleetConfig fleet_cfg;
  fleet_cfg.drives_per_model = 10;
  fleet_cfg.window_days = 500;
  fleet_cfg.seed = 31337;
  const auto stream = make_stream(sim::FleetSimulator(fleet_cfg).generate_all());

  OnlineConfig ocfg = loop_online_config(dir.path(), &registry);
  // No drift: thresholds the stream cannot cross, so the alert-gated loop
  // must never retrain, never install a challenger, never promote.
  ocfg.drift.psi_alert = 1e9;
  ocfg.drift.ks_alert = 1e9;
  ASSERT_TRUE(ocfg.retrain_on_alert_only);
  OnlineLearner learner(nullptr, ocfg);
  daemon::DaemonConfig dcfg = loop_daemon_config(dir.path(), &registry);
  dcfg.batch_observer = &learner;
  daemon::TelemetryDaemon daemon(std::make_shared<StubModel>(), dcfg);
  learner.attach(&daemon);
  daemon.start();
  run_online_loop(daemon, learner, stream, 30, /*route_retires=*/false);
  daemon.stop();

  EXPECT_GT(learner.steps_run(), 5u);
  EXPECT_TRUE(learner.promotions().empty());
  EXPECT_EQ(learner.arena().challenger_count(), 0u);
  EXPECT_EQ(registry.counter("online_retrains_total", {}, "").value(), 0u);
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/champion.bin"));
  // The loop still did its background work: sealed WALs became v3 shards.
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/store/manifest.ssdm"));

  // Golden control: the same stream through a learner-free daemon must
  // leave bit-identical per-drive state — the observer tap and the
  // (non-promoting) control loop may not perturb scoring.
  daemon::TelemetryDaemon control(
      std::make_shared<StubModel>(),
      loop_daemon_config(control_dir.path(), &control_registry));
  control.start();
  for (const core::FleetObservation& obs : stream)
    ASSERT_EQ(control.push(obs), daemon::PushResult::kAccepted);
  control.stop();
  EXPECT_EQ(daemon.state_digest(), control.state_digest());
}

// ---------------------------------------------------------------------------
// Promotion crash-safety: SIGKILL mid-save leaves old or new, never torn
// ---------------------------------------------------------------------------

ml::Dataset tiny_task(std::uint64_t seed) {
  ml::Dataset d;
  d.x = ml::Matrix(256, 4);
  d.y.resize(256);
  d.groups.resize(256);
  std::uint64_t state = seed;
  for (std::size_t r = 0; r < 256; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      d.x(r, c) = static_cast<float>((state >> 40) & 0xff) / 255.0f;
    }
    d.y[r] = d.x(r, 0) + d.x(r, 1) > 1.0f ? 1.0f : 0.0f;
    d.groups[r] = r / 4;
  }
  return d;
}

TEST(OnlineE2E, SigkillDuringPromotionLeavesOldOrNewModelNeverTorn) {
  TempDir dir("e2e_sigkill");
  const std::string champion = dir.path() + "/champion.bin";
  const ml::Dataset task = tiny_task(7);

  ml::GradientBoosting::Params pa;
  pa.n_rounds = 5;
  pa.max_depth = 2;
  ml::GradientBoosting old_model(pa);
  old_model.fit(task);
  ml::save_model_file(champion, old_model);

  ml::GradientBoosting::Params pb = pa;
  pb.n_rounds = 9;
  pb.seed = 99;
  ml::GradientBoosting new_model(pb);
  new_model.fit(task);

  const std::vector<float> old_scores = old_model.predict_proba(task.x);
  const std::vector<float> new_scores = new_model.predict_proba(task.x);
  ASSERT_NE(old_scores, new_scores) << "fixture models must be distinguishable";

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: re-persist the new champion in a tight loop until killed —
    // the parent's SIGKILL lands inside some save_model_file call.
    for (;;) ml::save_model_file(champion, new_model);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The champion file must load through the full verify path (byte
  // round-trip + engine recompile) and score as exactly one of the two
  // fixture models.
  const auto reloaded = ml::load_serving_classifier_file(champion);
  ASSERT_NE(reloaded, nullptr) << "promotion left a torn champion file";
  const std::vector<float> reloaded_scores = reloaded->predict_proba(task.x);
  EXPECT_TRUE(reloaded_scores == old_scores || reloaded_scores == new_scores)
      << "champion file is neither the old nor the new model";
}

}  // namespace
}  // namespace ssdfail::online
