// ModelArena tests: delayed-label maturation against the observation-day
// watermark, positive labeling from dead records and explicit retires, the
// promotion gate (margin + minimums + cooldown), hysteresis on promote,
// and the fairness reset when a challenger is installed mid-stream.

#include "online/arena.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "obs/metrics.hpp"

namespace ssdfail::online {
namespace {

/// Challenger that scores each row as its first feature — tests plant the
/// intended shadow score directly into the feature matrix.
class FirstFeatureModel final : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  [[nodiscard]] std::vector<float> predict_proba(const ml::Matrix& x) const override {
    std::vector<float> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = x(r, 0);
    return out;
  }
  [[nodiscard]] std::string name() const override { return "first_feature"; }
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override {
    return std::make_unique<FirstFeatureModel>();
  }
};

struct Row {
  std::uint64_t uid = 0;
  std::int32_t day = 0;
  float champion = 0.5f;
  float challenger = 0.5f;  ///< planted as feature 0
  bool scored = true;
  bool dead = false;
};

void push_batch(ModelArena& arena, const std::vector<Row>& rows) {
  ml::Matrix features(rows.size(), 1);
  std::vector<trace::DailyRecord> records(rows.size());
  std::vector<daemon::DriveAssessment> assessments(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    features(i, 0) = rows[i].challenger;
    records[i].day = rows[i].day;
    assessments[i].uid = rows[i].uid;
    assessments[i].day = rows[i].day;
    assessments[i].score = rows[i].champion;
    assessments[i].scored = rows[i].scored;
    assessments[i].dead = rows[i].dead;
  }
  arena.observe_batch(features, records, assessments);
}

ArenaConfig tiny_config() {
  ArenaConfig cfg;
  cfg.lookahead_days = 3;
  cfg.min_samples = 1;
  cfg.min_positives = 0;
  return cfg;
}

TEST(ModelArena, RowsMatureOnlyWhenTheWatermarkPassesTheLookahead) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 0}});
  EXPECT_EQ(arena.pending_rows(), 1u);
  EXPECT_EQ(arena.matured_rows(), 0u);

  push_batch(arena, {{1, 2}});  // watermark 2 < 0 + 3: still pending
  EXPECT_EQ(arena.pending_rows(), 2u);
  EXPECT_EQ(arena.matured_rows(), 0u);

  push_batch(arena, {{1, 3}});  // watermark 3: the day-0 row matures
  EXPECT_EQ(arena.matured_rows(), 1u);
  EXPECT_EQ(arena.pending_rows(), 2u);
  EXPECT_EQ(arena.watermark_day(), 3);
  EXPECT_EQ(arena.evaluate().matured_positives, 0u) << "no failure: negative label";
}

TEST(ModelArena, DeadRecordWithinLookaheadLabelsPositive) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 0}});
  push_batch(arena, {{1, 2, 0.5f, 0.5f, false, true}});  // dies day 2, unscored row
  const ArenaVerdict v = arena.evaluate();
  EXPECT_EQ(v.matured_rows, 1u);
  EXPECT_EQ(v.matured_positives, 1u);
  // The failed drive's bookkeeping is dropped once nothing is pending.
  EXPECT_EQ(arena.pending_rows(), 0u);
}

TEST(ModelArena, FailureBeyondLookaheadLabelsNegative) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 0}});
  push_batch(arena, {{1, 10, 0.5f, 0.5f, false, true}});  // dies 10 days later
  const ArenaVerdict v = arena.evaluate();
  EXPECT_EQ(v.matured_rows, 1u);
  EXPECT_EQ(v.matured_positives, 0u);
}

TEST(ModelArena, RetireCountsAsFailureAtTheWatermark) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 5}, {2, 5}});
  const std::uint64_t retired[] = {1};
  arena.observe_retires(retired);
  const ArenaVerdict v = arena.evaluate();
  // Drive 1's day-5 row matures positive (failure at watermark 5); drive
  // 2's row still waits for day 8.
  EXPECT_EQ(v.matured_rows, 1u);
  EXPECT_EQ(v.matured_positives, 1u);
  EXPECT_EQ(arena.pending_rows(), 1u);
}

TEST(ModelArena, UnscoredRowsNeverEnterTheWindow) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 0, 0.5f, 0.5f, false}});
  EXPECT_EQ(arena.pending_rows(), 0u);
}

TEST(ModelArena, GateBlocksBelowMinimumsAndWithoutChallenger) {
  ArenaConfig cfg = tiny_config();
  cfg.min_samples = 100;
  cfg.min_positives = 2;
  ModelArena arena(cfg, nullptr);
  EXPECT_EQ(arena.evaluate().reason, "no challenger installed");

  arena.set_challenger("c1", std::make_shared<FirstFeatureModel>());
  push_batch(arena, {{1, 0, 0.5f, 0.9f}});
  push_batch(arena, {{1, 3}});
  const ArenaVerdict v = arena.evaluate();
  EXPECT_FALSE(v.promote);
  EXPECT_FALSE(v.enough_data);
  EXPECT_EQ(v.reason, "matured window below minimums");
}

/// Ten drives score one row each on day 0; the marked ones die on day 1.
/// The champion is uninformative (constant 0.5 -> AUC 0.5); the planted
/// challenger scores separate the classes perfectly (AUC 1.0).
void play_separable_round(ModelArena& arena, std::int32_t base_day) {
  std::vector<Row> batch;
  for (std::uint64_t d = 0; d < 10; ++d) {
    const bool doomed = d < 2;
    batch.push_back({100 + d, base_day, 0.5f, doomed ? 1.0f : 0.0f});
  }
  push_batch(arena, batch);
  push_batch(arena, {{100, base_day + 1, 0.5f, 0.5f, false, true},
                     {101, base_day + 1, 0.5f, 0.5f, false, true}});
  // Advance the watermark so the survivors mature negative.
  push_batch(arena, {{200, base_day + 3, 0.5f, 0.0f}});
}

TEST(ModelArena, SeparableChallengerPromotesAndPromotionResetsTheWindow) {
  ArenaConfig cfg = tiny_config();
  cfg.min_samples = 10;
  cfg.min_positives = 2;
  cfg.promote_margin = 0.1;
  obs::MetricsRegistry registry;
  ModelArena arena(cfg, &registry);
  arena.set_challenger("fresh", std::make_shared<FirstFeatureModel>());
  EXPECT_EQ(arena.challenger_count(), 1u);

  play_separable_round(arena, 0);
  const ArenaVerdict v = arena.evaluate();
  ASSERT_TRUE(v.enough_data);
  EXPECT_NEAR(v.champion_auc, 0.5, 1e-9);
  EXPECT_NEAR(v.challenger_auc, 1.0, 1e-9);
  EXPECT_EQ(v.challenger, "fresh");
  EXPECT_TRUE(v.promote);
  EXPECT_EQ(v.reason, "challenger beats champion by margin");

  arena.promote(v);
  EXPECT_EQ(arena.challenger_count(), 0u);
  EXPECT_EQ(arena.matured_rows(), 0u) << "hysteresis: clean slate after promote";
  EXPECT_EQ(arena.pending_rows(), 0u);
  ASSERT_EQ(arena.promotions().size(), 1u);
  EXPECT_EQ(arena.promotions()[0].challenger, "fresh");
  EXPECT_NEAR(arena.promotions()[0].challenger_auc, 1.0, 1e-9);
  EXPECT_EQ(registry.counter("online_promotions_total", {}, "").value(), 1u);
}

TEST(ModelArena, ChallengerWithinMarginDoesNotPromote) {
  ArenaConfig cfg = tiny_config();
  cfg.min_samples = 1;
  cfg.min_positives = 1;
  ModelArena arena(cfg, nullptr);
  arena.set_challenger("same", std::make_shared<FirstFeatureModel>());
  // Challenger mirrors the champion exactly: equal AUC, margin not met.
  push_batch(arena, {{1, 0, 0.9f, 0.9f}, {2, 0, 0.1f, 0.1f}});
  push_batch(arena, {{1, 1, 0.5f, 0.5f, false, true}});
  push_batch(arena, {{3, 5, 0.1f, 0.1f}});
  const ArenaVerdict v = arena.evaluate();
  ASSERT_TRUE(v.enough_data);
  EXPECT_FALSE(v.promote);
  EXPECT_EQ(v.reason, "challenger within margin of champion");
}

TEST(ModelArena, InstallingAChallengerRestartsTheComparison) {
  ModelArena arena(tiny_config(), nullptr);
  push_batch(arena, {{1, 0}, {2, 0}});
  push_batch(arena, {{3, 5}});  // matures the day-0 rows, leaves one pending
  EXPECT_EQ(arena.matured_rows(), 2u);
  EXPECT_EQ(arena.pending_rows(), 1u);

  // A late-arriving challenger never scored those rows: the window and the
  // pending backlog are dropped so the gate only compares like for like.
  arena.set_challenger("late", std::make_shared<FirstFeatureModel>());
  EXPECT_EQ(arena.matured_rows(), 0u);
  EXPECT_EQ(arena.pending_rows(), 0u);
}

TEST(ModelArena, CooldownDelaysTheNextVerdict) {
  ArenaConfig cfg = tiny_config();
  cfg.cooldown_matured = 3;
  ModelArena arena(cfg, nullptr);
  arena.set_challenger("c1", std::make_shared<FirstFeatureModel>());
  ArenaVerdict fake;
  fake.challenger = "c1";
  arena.promote(fake);

  arena.set_challenger("c2", std::make_shared<FirstFeatureModel>());
  push_batch(arena, {{1, 0, 0.5f, 0.9f}, {2, 0, 0.5f, 0.9f}});
  push_batch(arena, {{3, 5}});  // matures 2 rows; cooldown 3 -> 1 left
  ArenaVerdict v = arena.evaluate();
  EXPECT_FALSE(v.enough_data);
  EXPECT_EQ(v.reason, "promotion cooldown active");

  push_batch(arena, {{4, 10}});  // matures the day-5 row: cooldown exhausted
  v = arena.evaluate();
  EXPECT_TRUE(v.enough_data);
}

TEST(ModelArena, MaturedWindowIsBoundedByCapacity) {
  ArenaConfig cfg = tiny_config();
  cfg.window_capacity = 16;
  ModelArena arena(cfg, nullptr);
  for (std::int32_t day = 0; day < 50; ++day)
    push_batch(arena, {{1, day}});
  push_batch(arena, {{2, 100}});
  EXPECT_EQ(arena.matured_rows(), 16u);
}

TEST(ModelArena, WindowAucReportsPerRole) {
  ArenaConfig cfg = tiny_config();
  ModelArena arena(cfg, nullptr);
  arena.set_challenger("c", std::make_shared<FirstFeatureModel>());
  // Champion inverted (scores negatives high), challenger perfect.
  push_batch(arena, {{1, 0, 0.9f, 0.1f}, {2, 0, 0.1f, 0.9f}});
  push_batch(arena, {{2, 1, 0.5f, 0.5f, false, true}});
  push_batch(arena, {{3, 5}});
  const ModelArena::WindowAuc auc = arena.window_auc();
  EXPECT_NEAR(auc.champion, 0.0, 1e-9);
  ASSERT_EQ(auc.challengers.size(), 1u);
  EXPECT_NEAR(auc.challengers[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace ssdfail::online
