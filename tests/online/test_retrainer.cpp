// Retrainer tests against a real on-disk v3 sharded store: the two-pass
// (negatives, then pushdown-harvested positives) build must exactly
// partition the single-pass row set, retraining must be bit-identical at
// every thread count, and the row/positive minimums must guard the gate.

#include "online/retrainer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "core/dataset_builder.hpp"
#include "daemon/daemon_test_util.hpp"
#include "ml/gradient_boosting.hpp"
#include "parallel/thread_pool.hpp"
#include "store/sharded.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::online {
namespace {

using daemon::testing::TempDir;

/// Deterministic hand-built fleet: 24 drives over 300 days; every third
/// drive fails (swap on its last day), with error/bad-block symptoms so a
/// fitted model has something to learn.
trace::FleetTrace make_fleet() {
  trace::FleetTrace fleet;
  for (std::uint32_t i = 0; i < 24; ++i) {
    trace::DriveHistory drive;
    drive.model = trace::DriveModel::MlcA;
    drive.drive_index = i;
    drive.deploy_day = 0;
    const bool fails = i % 3 == 0;
    const std::int32_t last_day = fails ? 150 + static_cast<std::int32_t>(i) : 299;
    for (std::int32_t day = 0; day <= last_day; ++day) {
      trace::DailyRecord rec;
      rec.day = day;
      rec.reads = 100 + (i * 7 + static_cast<std::uint32_t>(day)) % 50;
      rec.writes = 40 + static_cast<std::uint32_t>(day % 30) + i;
      rec.erases = 3;
      rec.pe_cycles = static_cast<std::uint32_t>(day);
      rec.bad_blocks = static_cast<std::uint32_t>(day) / (fails ? 20u : 50u);
      rec.factory_bad_blocks = 4;
      rec.errors[0] = (i + static_cast<std::uint32_t>(day)) % 4 == 0 ? 1 : 0;
      rec.errors[2] = fails && day > 100 ? 2 : 0;
      drive.records.push_back(rec);
    }
    if (fails) drive.swaps.push_back({last_day});
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

/// Write the fixture fleet as a multi-shard store and open it.
store::ShardedFleetView open_fixture(const TempDir& dir) {
  store::ShardedWriteOptions options;
  options.drives_per_shard = 7;  // 24 drives -> 4 shards
  store::write_sharded(dir.path(), make_fleet(), options);
  return store::ShardedFleetView::open(dir.path());
}

RetrainerConfig fixture_config(const std::string& store_dir) {
  RetrainerConfig cfg;
  cfg.store_dir = store_dir;
  cfg.lookahead_days = 7;
  cfg.negative_keep_prob = 0.3;
  cfg.seed = 99;
  cfg.min_rows = 64;
  cfg.min_positives = 4;
  cfg.model.n_rounds = 10;
  cfg.model.max_depth = 3;
  return cfg;
}

/// Rows as a sortable multiset: (group, label, features).  The two-pass
/// build emits negatives before positives, so equality with the
/// interleaved single-pass build must be order-free.
using CanonicalRow = std::tuple<std::uint64_t, float, std::vector<float>>;
std::vector<CanonicalRow> canonical_rows(const ml::Dataset& d) {
  std::vector<CanonicalRow> rows;
  rows.reserve(d.size());
  for (std::size_t r = 0; r < d.size(); ++r) {
    const auto row = d.x.row(r);
    rows.emplace_back(d.groups[r], d.y[r],
                      std::vector<float>(row.begin(), row.end()));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(Retrainer, TwoPassBuildExactlyPartitionsTheSinglePassRowSet) {
  TempDir dir("retrainer_partition");
  const store::ShardedFleetView view = open_fixture(dir);
  const std::int32_t now_day = 290;

  Retrainer retrainer(fixture_config(dir.path()));
  const ml::Dataset two_pass = retrainer.build_training_set(view, now_day);

  core::DatasetBuildOptions single;
  single.lookahead_days = 7;
  single.negative_keep_prob = 0.3;
  single.positive_keep_prob = 1.0;
  single.seed = 99;
  single.max_day = now_day - 7;
  const ml::Dataset one_pass = core::build_dataset(view, single);

  ASSERT_GT(two_pass.size(), 0u);
  ASSERT_GT(two_pass.positives(), 0u);
  EXPECT_EQ(two_pass.size(), one_pass.size());
  EXPECT_EQ(two_pass.positives(), one_pass.positives());
  EXPECT_EQ(canonical_rows(two_pass), canonical_rows(one_pass));
}

TEST(Retrainer, TrailingWindowBoundsBothPasses) {
  TempDir dir("retrainer_window");
  const store::ShardedFleetView view = open_fixture(dir);
  // Window chosen to straddle the fixture's swap days (150..171) so the
  // positives pass has real work inside the window.
  const std::int32_t now_day = 165;

  RetrainerConfig cfg = fixture_config(dir.path());
  cfg.window_days = 60;
  Retrainer retrainer(cfg);
  const ml::Dataset two_pass = retrainer.build_training_set(view, now_day);

  core::DatasetBuildOptions single;
  single.lookahead_days = 7;
  single.negative_keep_prob = 0.3;
  single.positive_keep_prob = 1.0;
  single.seed = 99;
  single.max_day = now_day - 7;           // 158
  single.min_day = *single.max_day - 59;  // 99: a 60-day mature window
  const ml::Dataset one_pass = core::build_dataset(view, single);

  ASSERT_GT(two_pass.size(), 0u);
  ASSERT_GT(two_pass.positives(), 0u);
  EXPECT_EQ(canonical_rows(two_pass), canonical_rows(one_pass));
}

TEST(Retrainer, NoRowLeaksPastTheLabelHorizon) {
  TempDir dir("retrainer_horizon");
  const store::ShardedFleetView view = open_fixture(dir);
  Retrainer retrainer(fixture_config(dir.path()));
  // now = 160: only drive histories up to day 153 are label-complete.
  const ml::Dataset train = retrainer.build_training_set(view, 160);
  // The day feature is emitted as a raw column; instead of fishing for it,
  // rebuild with max_day one smaller and check monotonicity of row counts.
  const std::size_t full = retrainer.build_training_set(view, 400).size();
  EXPECT_LT(train.size(), full);
}

TEST(Retrainer, RetrainIsBitIdenticalAcrossThreadCounts) {
  TempDir dir("retrainer_threads");
  const store::ShardedFleetView view = open_fixture(dir);
  const Retrainer retrainer(fixture_config(dir.path()));
  const std::int32_t now_day = 290;
  const ml::Dataset probe = retrainer.build_training_set(view, now_day);

  // Parallel path: whatever the shared pool is sized to on this host.
  const auto parallel_result = retrainer.retrain(now_day);
  ASSERT_TRUE(parallel_result.has_value());
  const std::vector<float> parallel_scores =
      parallel_result->model->predict_proba(probe.x);

  // Serial path: the whole retrain runs as a task of a 1-worker pool, so
  // every nested parallel loop degrades to sequential execution.
  parallel::ThreadPool serial(1);
  std::optional<RetrainResult> serial_result;
  parallel::TaskGroup group(serial);
  group.submit([&] { serial_result = retrainer.retrain(now_day); });
  group.wait();
  ASSERT_TRUE(serial_result.has_value());

  EXPECT_EQ(serial_result->rows, parallel_result->rows);
  EXPECT_EQ(serial_result->positives, parallel_result->positives);
  EXPECT_EQ(serial_result->model->predict_proba(probe.x), parallel_scores)
      << "retrained model must be bit-identical at every thread count";
}

TEST(Retrainer, MissingStoreReturnsNullopt) {
  Retrainer retrainer(fixture_config("/nonexistent/ssdfail-store"));
  EXPECT_FALSE(retrainer.retrain(290).has_value());
}

TEST(Retrainer, BelowMinimumsReturnsNullopt) {
  TempDir dir("retrainer_minimums");
  (void)open_fixture(dir);

  RetrainerConfig cfg = fixture_config(dir.path());
  cfg.min_rows = 1u << 20;
  EXPECT_FALSE(Retrainer(cfg).retrain(290).has_value());

  cfg = fixture_config(dir.path());
  cfg.min_positives = 1u << 20;
  EXPECT_FALSE(Retrainer(cfg).retrain(290).has_value());
}

TEST(Retrainer, RetrainReportsWindowAndShards) {
  TempDir dir("retrainer_result");
  const store::ShardedFleetView view = open_fixture(dir);
  RetrainerConfig cfg = fixture_config(dir.path());
  cfg.window_days = 100;
  // now = 170: the mature window [64, 163] contains most fixture swaps, so
  // the positives minimum is met.
  const auto result = Retrainer(cfg).retrain(170);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->model, nullptr);
  EXPECT_GE(result->positives, cfg.min_positives);
  EXPECT_EQ(result->window_end, 163);
  EXPECT_EQ(result->window_begin, 64);
  EXPECT_EQ(result->shards, view.shard_count());
  // The fitted challenger is a usable classifier over the training schema.
  const ml::Dataset probe = Retrainer(cfg).build_training_set(view, 170);
  EXPECT_EQ(result->model->predict_proba(probe.x).size(), probe.size());
}

}  // namespace
}  // namespace ssdfail::online
