// Drift-detection tests: log2 marginal sketches, the PSI/KS two-sample
// statistics, the clock-column exclusion from alert aggregates, the
// streaming detector's edge-triggered alerting, and the drifting-regime
// fleet generator (which must reduce exactly to FleetSimulator when the
// drifted fraction is zero).

#include "online/drift.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/drifting_fleet.hpp"
#include "sim/fleet_simulator.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::online {
namespace {

trace::DailyRecord record_with(std::int32_t day, std::uint32_t writes) {
  trace::DailyRecord rec;
  rec.day = day;
  rec.reads = 50;
  rec.writes = writes;
  rec.erases = 3;
  rec.pe_cycles = 10;
  rec.bad_blocks = 1;
  rec.factory_bad_blocks = 4;
  return rec;
}

constexpr std::size_t kDayCol = static_cast<std::size_t>(store::ZoneColumn::kDay);
constexpr std::size_t kSwapCol = static_cast<std::size_t>(store::ZoneColumn::kSwapDay);
constexpr std::size_t kWritesCol = static_cast<std::size_t>(store::ZoneColumn::kWrites);

// ---------------------------------------------------------------------------
// MarginalSketch / compare_sketches
// ---------------------------------------------------------------------------

TEST(MarginalSketch, Log2BinEdges) {
  EXPECT_EQ(MarginalSketch::bin_of(-7), 0u);
  EXPECT_EQ(MarginalSketch::bin_of(0), 0u);
  EXPECT_EQ(MarginalSketch::bin_of(1), 1u);
  EXPECT_EQ(MarginalSketch::bin_of(2), 2u);
  EXPECT_EQ(MarginalSketch::bin_of(3), 2u);
  EXPECT_EQ(MarginalSketch::bin_of(4), 3u);
  EXPECT_EQ(MarginalSketch::bin_of(7), 3u);
  EXPECT_EQ(MarginalSketch::bin_of(8), 4u);
  // Far beyond 2^30: clamped into the tail bucket.
  EXPECT_EQ(MarginalSketch::bin_of(std::int64_t{1} << 62), kDriftBins - 1);
}

TEST(MarginalSketch, MergeAddsBinsAndCounts) {
  MarginalSketch a, b;
  a.add(1);
  a.add(100);
  b.add(1);
  a.merge(b);
  EXPECT_EQ(a.n, 3u);
  EXPECT_EQ(a.bins[MarginalSketch::bin_of(1)], 2u);
  EXPECT_EQ(a.bins[MarginalSketch::bin_of(100)], 1u);
}

TEST(CompareSketches, IdenticalDistributionsScoreZero) {
  MarginalSketch ref, cur;
  for (int i = 0; i < 1000; ++i) {
    ref.add(i % 37);
    cur.add(i % 37);
  }
  const DriftStat stat = compare_sketches(ref, cur);
  EXPECT_NEAR(stat.psi, 0.0, 1e-9);
  EXPECT_NEAR(stat.ks, 0.0, 1e-9);
}

TEST(CompareSketches, DisjointDistributionsScoreLarge) {
  MarginalSketch ref, cur;
  for (int i = 0; i < 1000; ++i) {
    ref.add(2);            // bin 2
    cur.add(1 << 12);      // bin 13
  }
  const DriftStat stat = compare_sketches(ref, cur);
  EXPECT_GT(stat.psi, 1.0);
  EXPECT_NEAR(stat.ks, 1.0, 1e-9);
}

TEST(CompareSketches, EmptySketchesCompareAsZeroDrift) {
  MarginalSketch ref, empty;
  ref.add(5);
  EXPECT_EQ(compare_sketches(ref, empty).psi, 0.0);
  EXPECT_EQ(compare_sketches(empty, ref).ks, 0.0);
  EXPECT_EQ(compare_sketches(empty, empty).psi, 0.0);
}

TEST(FeatureSketches, AddRecordFillsEveryColumnExceptSwapDay) {
  FeatureSketches s;
  s.add_record(record_with(10, 500));
  EXPECT_EQ(s.rows, 1u);
  for (std::size_t c = 0; c < store::kNumZoneColumns; ++c) {
    if (c == kSwapCol) {
      EXPECT_EQ(s.columns[c].n, 0u);
    } else {
      EXPECT_EQ(s.columns[c].n, 1u) << "column " << c;
    }
  }
  s.add_swap_day(42);
  EXPECT_EQ(s.columns[kSwapCol].n, 1u);
  EXPECT_EQ(s.rows, 1u) << "swap days are not rows";
}

// ---------------------------------------------------------------------------
// compare_fleets: the clock columns never drive the aggregates
// ---------------------------------------------------------------------------

TEST(CompareFleets, ClockColumnsAreReportedButExcludedFromAggregates) {
  // Two windows whose FEATURE distributions are identical and whose day /
  // swap-day ranges are disjoint — exactly what any live stream produces.
  FeatureSketches ref, cur;
  for (std::int32_t d = 0; d < 600; ++d) {
    ref.add_record(record_with(d, 500));
    cur.add_record(record_with(d + 4096, 500));
  }
  ref.add_swap_day(100);
  cur.add_swap_day(8000);

  DriftConfig cfg;
  cfg.min_window_rows = 1;
  const DriftReport report = compare_fleets(ref, cur, cfg);

  // The clock columns do drift (disjoint bins -> KS at 1)...
  EXPECT_GT(report.columns[kDayCol].ks, 0.5);
  EXPECT_NEAR(report.columns[kSwapCol].ks, 1.0, 1e-9);
  // ...but the aggregates and the alert ignore them.
  EXPECT_NEAR(report.max_psi, 0.0, 1e-9);
  EXPECT_NEAR(report.max_ks, 0.0, 1e-9);
  EXPECT_FALSE(report.alert);
}

TEST(CompareFleets, FeatureShiftDrivesTheAggregatesAndAlert) {
  FeatureSketches ref, cur;
  for (std::int32_t d = 0; d < 600; ++d) {
    ref.add_record(record_with(d, 8));
    cur.add_record(record_with(d, 4000));  // writes shifted by ~9 bins
  }
  DriftConfig cfg;
  cfg.min_window_rows = 1;
  const DriftReport report = compare_fleets(ref, cur, cfg);
  EXPECT_GE(report.max_psi, cfg.psi_alert);
  EXPECT_EQ(report.worst_column, kWritesCol);
  EXPECT_TRUE(report.alert);

  // The same shift below the minimum window size never alerts.
  cfg.min_window_rows = 10'000;
  EXPECT_FALSE(compare_fleets(ref, cur, cfg).alert);
}

// ---------------------------------------------------------------------------
// DriftDetector: streaming window, edge-triggered alert counter
// ---------------------------------------------------------------------------

TEST(DriftDetector, AlertsEdgeTriggeredAndWindowResets) {
  obs::MetricsRegistry registry;
  DriftConfig cfg;
  cfg.min_window_rows = 64;
  DriftDetector detector(cfg, &registry);

  // No reference installed: evaluate reports only the window size.
  detector.observe(record_with(0, 8));
  EXPECT_FALSE(detector.has_reference());
  EXPECT_EQ(detector.evaluate().window_rows, 1u);
  detector.reset_window();

  FeatureSketches reference;
  for (std::int32_t d = 0; d < 500; ++d) reference.add_record(record_with(d, 8));
  detector.set_reference(reference);
  ASSERT_TRUE(detector.has_reference());

  obs::Counter& alerts =
      registry.counter("online_drift_alerts_total", {}, "Drift alerts fired (edge-triggered)");

  // Shifted window: alert fires once, stays level-high, counts one edge.
  for (std::int32_t d = 0; d < 200; ++d) detector.observe(record_with(d, 4000));
  EXPECT_EQ(detector.window_rows(), 200u);
  EXPECT_TRUE(detector.evaluate().alert);
  EXPECT_TRUE(detector.evaluate().alert);
  EXPECT_EQ(alerts.value(), 1u);

  // Window reset rearms the edge and clears the rows.
  detector.reset_window();
  EXPECT_EQ(detector.window_rows(), 0u);
  for (std::int32_t d = 0; d < 200; ++d) detector.observe(record_with(d, 4000));
  EXPECT_TRUE(detector.evaluate().alert);
  EXPECT_EQ(alerts.value(), 2u);

  // Adopting the window as reference ends the drift: fresh windows drawn
  // from the same (shifted) distribution now compare clean.
  detector.adopt_window_as_reference();
  for (std::int32_t d = 0; d < 200; ++d) detector.observe(record_with(d, 4000));
  const DriftReport adopted = detector.evaluate();
  EXPECT_FALSE(adopted.alert);
  EXPECT_NEAR(adopted.max_psi, 0.0, 1e-9);
  EXPECT_EQ(alerts.value(), 2u);
}

// ---------------------------------------------------------------------------
// DriftingFleetSimulator
// ---------------------------------------------------------------------------

sim::DriftingFleetConfig small_drift_config(double fraction, std::int32_t drift_day) {
  sim::DriftingFleetConfig cfg;
  cfg.base.drives_per_model = 8;
  cfg.base.window_days = 400;
  cfg.base.seed = 77;
  cfg.drift.drifted_fraction = fraction;
  cfg.drift.drift_day = drift_day;
  return cfg;
}

void expect_same_history(const trace::DriveHistory& a, const trace::DriveHistory& b) {
  ASSERT_EQ(a.uid(), b.uid());
  EXPECT_EQ(a.deploy_day, b.deploy_day);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const trace::DailyRecord& ra = a.records[i];
    const trace::DailyRecord& rb = b.records[i];
    ASSERT_EQ(ra.day, rb.day);
    EXPECT_EQ(ra.reads, rb.reads);
    EXPECT_EQ(ra.writes, rb.writes);
    EXPECT_EQ(ra.erases, rb.erases);
    EXPECT_EQ(ra.pe_cycles, rb.pe_cycles);
    EXPECT_EQ(ra.bad_blocks, rb.bad_blocks);
    EXPECT_EQ(ra.errors, rb.errors);
    EXPECT_EQ(ra.dead, rb.dead);
  }
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  for (std::size_t i = 0; i < a.swaps.size(); ++i)
    EXPECT_EQ(a.swaps[i].day, b.swaps[i].day);
}

TEST(DriftingFleet, ZeroFractionReducesToFleetSimulator) {
  const auto cfg = small_drift_config(0.0, 200);
  sim::DriftingFleetSimulator drifting(cfg);
  sim::FleetSimulator plain(cfg.base);
  ASSERT_EQ(drifting.drive_count(), plain.drive_count());
  for (std::size_t i = 0; i < drifting.drive_count(); ++i) {
    EXPECT_FALSE(drifting.is_drifted(i));
    expect_same_history(drifting.simulate(i), plain.simulate(i));
  }
}

TEST(DriftingFleet, BaselineCohortIsBitIdenticalAndDriftedCohortStartsLate) {
  const auto cfg = small_drift_config(0.5, 200);
  sim::DriftingFleetSimulator drifting(cfg);
  sim::FleetSimulator plain(cfg.base);
  std::size_t drifted = 0;
  for (std::size_t i = 0; i < drifting.drive_count(); ++i) {
    if (!drifting.is_drifted(i)) {
      expect_same_history(drifting.simulate(i), plain.simulate(i));
      continue;
    }
    ++drifted;
    // The drifted batch deploys at/after drift_day: before it the stream
    // is indistinguishable from the baseline fleet.
    const trace::DriveHistory d = drifting.simulate(i);
    EXPECT_GE(d.deploy_day, cfg.drift.drift_day);
    for (const auto& rec : d.records) EXPECT_GE(rec.day, cfg.drift.drift_day);
  }
  // ceil(0.5 * 8) = 4 per configured model (the default MLC-only fleet).
  EXPECT_EQ(drifted, 4u * cfg.base.models.size());
}

TEST(DriftingFleet, PostDriftWindowShiftsFeatureMarginals) {
  const auto split_sketch = [](const trace::FleetTrace& fleet, std::int32_t day) {
    std::pair<FeatureSketches, FeatureSketches> out;
    for (const auto& drive : fleet.drives)
      for (const auto& rec : drive.records)
        (rec.day < day ? out.first : out.second).add_record(rec);
    return out;
  };
  const std::int32_t drift_day = 200;
  DriftConfig cfg;
  cfg.min_window_rows = 1;

  const auto drifted = small_drift_config(0.6, drift_day);
  const auto [dref, dcur] = split_sketch(sim::DriftingFleetSimulator(drifted).generate_all(), drift_day);
  const auto [bref, bcur] =
      split_sketch(sim::FleetSimulator(drifted.base).generate_all(), drift_day);

  // The drifted cohort's post-drift records shift the marginals well beyond
  // whatever pre/post difference fleet aging alone produces.
  const double drifted_psi = compare_fleets(dref, dcur, cfg).max_psi;
  const double baseline_psi = compare_fleets(bref, bcur, cfg).max_psi;
  EXPECT_GT(drifted_psi, 2.0 * baseline_psi);
}

}  // namespace
}  // namespace ssdfail::online
