#include "ml/serialize.hpp"

#include "ml/flat_forest.hpp"
#include "ml/model_zoo.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ssdfail::ml {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'D', 'M'};

// Defensive caps: a 64-bit count from a corrupt stream must not OOM us.
constexpr std::uint64_t kMaxTrees = 1ull << 20;
constexpr std::uint64_t kMaxNodes = 1ull << 28;
constexpr std::uint64_t kMaxFeatures = 1ull << 20;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("ml::serialize: truncated stream");
  return value;
}

template <typename T>
void put_vector(std::ostream& out, const std::vector<T>& v) {
  put<std::uint64_t>(out, v.size());
  for (const T& x : v) put<T>(out, x);
}

template <typename T>
std::vector<T> get_vector(std::istream& in, std::uint64_t max_size) {
  const auto n = get<std::uint64_t>(in);
  if (n > max_size) throw std::runtime_error("ml::serialize: implausible vector size");
  std::vector<T> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(get<T>(in));
  return v;
}

void write_header(std::ostream& out, SavedModelKind kind) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kModelFormatVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(kind));
}

struct Header {
  SavedModelKind kind;
  std::uint32_t version;
};

Header read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("ml::serialize: bad magic (not an ssdfail model file)");
  const auto version = get<std::uint32_t>(in);
  if (version < 1 || version > kModelFormatVersion)
    throw std::runtime_error("ml::serialize: unsupported format version " +
                             std::to_string(version));
  const auto kind = get<std::uint8_t>(in);
  const auto max_kind = version >= 2
                            ? static_cast<std::uint8_t>(SavedModelKind::kGradientBoosting)
                            : static_cast<std::uint8_t>(SavedModelKind::kStandardizer);
  if (kind < static_cast<std::uint8_t>(SavedModelKind::kRandomForest) || kind > max_kind)
    throw std::runtime_error("ml::serialize: unknown model kind " + std::to_string(kind));
  return {static_cast<SavedModelKind>(kind), version};
}

// Engine manifest (v2, ensembles only): the compiled flat engine's shape
// and structural hash, written after the walker body.  A loader recompiles
// and verifies — tree-body corruption that still parses fails loudly here
// instead of serving wrong scores.
constexpr std::uint8_t kEngineManifestTag = 1;

void write_engine_manifest(std::ostream& out, const FlatForest& engine) {
  put<std::uint8_t>(out, kEngineManifestTag);
  put<std::uint64_t>(out, engine.node_count());
  put<std::uint64_t>(out, engine.tree_count());
  put<std::uint32_t>(out, engine.max_depth());
  put<std::uint64_t>(out, engine.structural_hash());
}

void read_and_verify_engine_manifest(std::istream& in, const FlatForest& engine) {
  if (get<std::uint8_t>(in) != kEngineManifestTag)
    throw std::runtime_error("ml::serialize: bad engine manifest tag");
  const auto nodes = get<std::uint64_t>(in);
  const auto trees = get<std::uint64_t>(in);
  const auto depth = get<std::uint32_t>(in);
  const auto hash = get<std::uint64_t>(in);
  if (nodes != engine.node_count() || trees != engine.tree_count() ||
      depth != engine.max_depth() || hash != engine.structural_hash())
    throw std::runtime_error(
        "ml::serialize: engine manifest mismatch (corrupt tree body)");
}

void expect_kind(SavedModelKind actual, SavedModelKind wanted) {
  if (actual != wanted)
    throw std::runtime_error("ml::serialize: model kind mismatch (stream holds kind " +
                             std::to_string(static_cast<int>(actual)) + ", caller wants " +
                             std::to_string(static_cast<int>(wanted)) + ")");
}

}  // namespace

/// Friend of every serializable model: reads/writes the private state the
/// public APIs deliberately do not expose.
struct ModelSerializer {
  static void write_standardizer_body(std::ostream& out, const Standardizer& s) {
    if (!s.fitted()) throw std::logic_error("ml::serialize: Standardizer not fitted");
    put_vector(out, s.mean_);
    put_vector(out, s.sd_);
  }

  static Standardizer read_standardizer_body(std::istream& in) {
    Standardizer s;
    s.mean_ = get_vector<float>(in, kMaxFeatures);
    s.sd_ = get_vector<float>(in, kMaxFeatures);
    if (s.mean_.size() != s.sd_.size())
      throw std::runtime_error("ml::serialize: standardizer mean/sd size mismatch");
    return s;
  }

  static void write_tree_body(std::ostream& out, const DecisionTree& t) {
    put<std::uint64_t>(out, t.params_.max_depth);
    put<std::uint64_t>(out, t.params_.min_samples_split);
    put<std::uint64_t>(out, t.params_.min_samples_leaf);
    put<std::uint64_t>(out, t.params_.max_features);
    put<std::uint64_t>(out, t.params_.seed);
    put<std::uint64_t>(out, t.n_features_);
    put<std::uint64_t>(out, t.nodes_.size());
    for (const DecisionTree::Node& n : t.nodes_) {
      put<std::int32_t>(out, n.feature);
      put<float>(out, n.threshold);
      put<std::int32_t>(out, n.left);
      put<std::int32_t>(out, n.right);
      put<float>(out, n.score);
    }
    put_vector(out, t.importance_);
  }

  static DecisionTree read_tree_body(std::istream& in) {
    DecisionTree::Params p;
    p.max_depth = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.min_samples_split = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.min_samples_leaf = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.max_features = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.seed = get<std::uint64_t>(in);
    DecisionTree t(p);
    t.n_features_ = static_cast<std::size_t>(get<std::uint64_t>(in));
    if (t.n_features_ > kMaxFeatures)
      throw std::runtime_error("ml::serialize: implausible feature count");
    const auto n_nodes = get<std::uint64_t>(in);
    if (n_nodes > kMaxNodes) throw std::runtime_error("ml::serialize: implausible node count");
    t.nodes_.reserve(static_cast<std::size_t>(n_nodes));
    for (std::uint64_t i = 0; i < n_nodes; ++i) {
      DecisionTree::Node n;
      n.feature = get<std::int32_t>(in);
      n.threshold = get<float>(in);
      n.left = get<std::int32_t>(in);
      n.right = get<std::int32_t>(in);
      n.score = get<float>(in);
      t.nodes_.push_back(n);
    }
    t.importance_ = get_vector<double>(in, kMaxFeatures);
    return t;
  }

  static void write_forest_body(std::ostream& out, const RandomForest& f) {
    if (f.trees_.empty()) throw std::logic_error("ml::serialize: RandomForest not fitted");
    put<std::uint64_t>(out, f.params_.n_trees);
    put<std::uint64_t>(out, f.params_.max_depth);
    put<std::uint64_t>(out, f.params_.min_samples_leaf);
    put<std::uint64_t>(out, f.params_.min_samples_split);
    put<std::uint64_t>(out, f.params_.max_features);
    put<std::uint64_t>(out, f.params_.seed);
    put<std::uint64_t>(out, f.n_features_);
    put<std::uint64_t>(out, f.trees_.size());
    for (const DecisionTree& t : f.trees_) write_tree_body(out, t);
  }

  static RandomForest read_forest_body(std::istream& in) {
    RandomForest::Params p;
    p.n_trees = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.max_depth = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.min_samples_leaf = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.min_samples_split = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.max_features = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.seed = get<std::uint64_t>(in);
    RandomForest f(p);
    f.n_features_ = static_cast<std::size_t>(get<std::uint64_t>(in));
    if (f.n_features_ > kMaxFeatures)
      throw std::runtime_error("ml::serialize: implausible feature count");
    const auto n_trees = get<std::uint64_t>(in);
    if (n_trees > kMaxTrees) throw std::runtime_error("ml::serialize: implausible tree count");
    f.trees_.reserve(static_cast<std::size_t>(n_trees));
    for (std::uint64_t t = 0; t < n_trees; ++t) f.trees_.push_back(read_tree_body(in));
    return f;
  }

  static void write_gb_body(std::ostream& out, const GradientBoosting& m) {
    if (m.trees_.empty())
      throw std::logic_error("ml::serialize: GradientBoosting not fitted");
    put<std::uint64_t>(out, m.params_.n_rounds);
    put<std::uint64_t>(out, m.params_.max_depth);
    put<std::uint64_t>(out, m.params_.min_samples_leaf);
    put<double>(out, m.params_.learning_rate);
    put<double>(out, m.params_.subsample);
    put<std::uint64_t>(out, m.params_.seed);
    put<double>(out, m.prior_);
    put<std::uint64_t>(out, m.n_features_);
    put_vector(out, m.importance_);
    put<std::uint64_t>(out, m.trees_.size());
    for (const GradientBoosting::Tree& t : m.trees_) {
      put<std::uint64_t>(out, t.nodes.size());
      for (const GradientBoosting::Node& n : t.nodes) {
        put<std::int32_t>(out, n.feature);
        put<float>(out, n.threshold);
        put<std::int32_t>(out, n.left);
        put<std::int32_t>(out, n.right);
        put<double>(out, n.value);
      }
    }
  }

  static GradientBoosting read_gb_body(std::istream& in) {
    GradientBoosting::Params p;
    p.n_rounds = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.max_depth = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.min_samples_leaf = static_cast<std::size_t>(get<std::uint64_t>(in));
    p.learning_rate = get<double>(in);
    p.subsample = get<double>(in);
    p.seed = get<std::uint64_t>(in);
    GradientBoosting m(p);
    m.prior_ = get<double>(in);
    m.n_features_ = static_cast<std::size_t>(get<std::uint64_t>(in));
    if (m.n_features_ > kMaxFeatures)
      throw std::runtime_error("ml::serialize: implausible feature count");
    m.importance_ = get_vector<double>(in, kMaxFeatures);
    const auto n_trees = get<std::uint64_t>(in);
    if (n_trees > kMaxTrees) throw std::runtime_error("ml::serialize: implausible tree count");
    m.trees_.reserve(static_cast<std::size_t>(n_trees));
    for (std::uint64_t t = 0; t < n_trees; ++t) {
      const auto n_nodes = get<std::uint64_t>(in);
      if (n_nodes > kMaxNodes)
        throw std::runtime_error("ml::serialize: implausible node count");
      GradientBoosting::Tree tree;
      tree.nodes.reserve(static_cast<std::size_t>(n_nodes));
      for (std::uint64_t i = 0; i < n_nodes; ++i) {
        GradientBoosting::Node n;
        n.feature = get<std::int32_t>(in);
        n.threshold = get<float>(in);
        n.left = get<std::int32_t>(in);
        n.right = get<std::int32_t>(in);
        n.value = get<double>(in);
        tree.nodes.push_back(n);
      }
      m.trees_.push_back(std::move(tree));
    }
    return m;
  }

  static void write_logistic_body(std::ostream& out, const LogisticRegression& m) {
    if (!m.scaler_.fitted())
      throw std::logic_error("ml::serialize: LogisticRegression not fitted");
    put<double>(out, m.params_.l2);
    put<double>(out, m.params_.learning_rate);
    put<std::int32_t>(out, m.params_.epochs);
    write_standardizer_body(out, m.scaler_);
    put_vector(out, m.weights_);
    put<double>(out, m.bias_);
  }

  static LogisticRegression read_logistic_body(std::istream& in) {
    LogisticRegression::Params p;
    p.l2 = get<double>(in);
    p.learning_rate = get<double>(in);
    p.epochs = get<std::int32_t>(in);
    LogisticRegression m(p);
    m.scaler_ = read_standardizer_body(in);
    m.weights_ = get_vector<double>(in, kMaxFeatures);
    m.bias_ = get<double>(in);
    if (m.weights_.size() != m.scaler_.mean().size())
      throw std::runtime_error("ml::serialize: logistic weight/scaler size mismatch");
    return m;
  }
};

void save_model(std::ostream& out, const RandomForest& model) {
  write_header(out, SavedModelKind::kRandomForest);
  ModelSerializer::write_forest_body(out, model);
  write_engine_manifest(out, FlatForest::compile(model));
}

void save_model(std::ostream& out, const GradientBoosting& model) {
  write_header(out, SavedModelKind::kGradientBoosting);
  ModelSerializer::write_gb_body(out, model);
  write_engine_manifest(out, FlatForest::compile(model));
}

void save_model(std::ostream& out, const LogisticRegression& model) {
  write_header(out, SavedModelKind::kLogisticRegression);
  ModelSerializer::write_logistic_body(out, model);
}

void save_model(std::ostream& out, const Standardizer& scaler) {
  write_header(out, SavedModelKind::kStandardizer);
  ModelSerializer::write_standardizer_body(out, scaler);
}

RandomForest load_random_forest(std::istream& in) {
  const Header header = read_header(in);
  expect_kind(header.kind, SavedModelKind::kRandomForest);
  RandomForest forest = ModelSerializer::read_forest_body(in);
  if (header.version >= 2)
    read_and_verify_engine_manifest(in, FlatForest::compile(forest));
  return forest;
}

GradientBoosting load_gradient_boosting(std::istream& in) {
  const Header header = read_header(in);
  expect_kind(header.kind, SavedModelKind::kGradientBoosting);
  GradientBoosting model = ModelSerializer::read_gb_body(in);
  read_and_verify_engine_manifest(in, FlatForest::compile(model));
  return model;
}

LogisticRegression load_logistic_regression(std::istream& in) {
  expect_kind(read_header(in).kind, SavedModelKind::kLogisticRegression);
  return ModelSerializer::read_logistic_body(in);
}

Standardizer load_standardizer(std::istream& in) {
  expect_kind(read_header(in).kind, SavedModelKind::kStandardizer);
  return ModelSerializer::read_standardizer_body(in);
}

namespace {

// Shared body of load_classifier / load_serving_classifier_file.  When
// `engine_out` is non-null and the stream carried a v2 engine manifest,
// the FlatForest compiled for verification is moved into *engine_out so
// the serving loader does not compile the same ensemble twice.
std::unique_ptr<Classifier> load_classifier_impl(std::istream& in,
                                                 FlatForest* engine_out) {
  const Header header = read_header(in);
  switch (header.kind) {
    case SavedModelKind::kRandomForest: {
      auto forest = std::make_unique<RandomForest>(ModelSerializer::read_forest_body(in));
      if (header.version >= 2) {
        FlatForest engine = FlatForest::compile(*forest);
        read_and_verify_engine_manifest(in, engine);
        if (engine_out) *engine_out = std::move(engine);
      }
      return forest;
    }
    case SavedModelKind::kGradientBoosting: {
      auto model = std::make_unique<GradientBoosting>(ModelSerializer::read_gb_body(in));
      FlatForest engine = FlatForest::compile(*model);
      read_and_verify_engine_manifest(in, engine);
      if (engine_out) *engine_out = std::move(engine);
      return model;
    }
    case SavedModelKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>(ModelSerializer::read_logistic_body(in));
    case SavedModelKind::kStandardizer:
      break;
  }
  throw std::runtime_error("ml::serialize: stream does not hold a classifier");
}

}  // namespace

std::unique_ptr<Classifier> load_classifier(std::istream& in) {
  return load_classifier_impl(in, nullptr);
}

namespace {

template <typename Model>
void save_model_file_impl(const std::string& path, const Model& model) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("ml::serialize: cannot open " + tmp);
      save_model(out, model);
      out.flush();
      if (!out) throw std::runtime_error("ml::serialize: short write to " + tmp);
    }
    // The rename is the commit point: readers see the old file (or none)
    // until the new bytes are complete on disk.
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw std::runtime_error("ml::serialize: cannot rename " + tmp + " -> " + path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace

void save_model_file(const std::string& path, const RandomForest& model) {
  save_model_file_impl(path, model);
}

void save_model_file(const std::string& path, const GradientBoosting& model) {
  save_model_file_impl(path, model);
}

void save_model_file(const std::string& path, const LogisticRegression& model) {
  save_model_file_impl(path, model);
}

std::unique_ptr<Classifier> load_classifier_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ml::serialize: cannot open " + path);
  return load_classifier(in);
}

std::shared_ptr<const Classifier> load_serving_classifier_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ml::serialize: cannot open " + path);
  FlatForest engine;
  std::shared_ptr<const Classifier> fitted(load_classifier_impl(in, &engine));
  // A v2 ensemble already compiled its engine for manifest verification;
  // hand it to the serving wrapper instead of recompiling.  v1 files and
  // non-ensembles fall through to make_serving_model.
  if (!engine.empty() && inference_engine() == InferenceEngine::kFlat)
    return std::make_shared<const FlatForestClassifier>(std::move(fitted),
                                                        std::move(engine));
  return make_serving_model(std::move(fitted));
}

}  // namespace ssdfail::ml
