file(REMOVE_RECURSE
  "libssdfail_ml.a"
)
