# Empty dependencies file for ssdfail_ml.
# This may be replaced when dependencies are built.
