
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/downsample.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/downsample.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/downsample.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/gradient_boosting.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/grid_search.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/grid_search.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_zoo.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/model_zoo.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/model_zoo.cpp.o.d"
  "/root/repo/src/ml/neural_net.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/neural_net.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/neural_net.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/standardizer.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/standardizer.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/standardizer.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/svm.cpp.o.d"
  "/root/repo/src/ml/threshold_baseline.cpp" "src/ml/CMakeFiles/ssdfail_ml.dir/threshold_baseline.cpp.o" "gcc" "src/ml/CMakeFiles/ssdfail_ml.dir/threshold_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/stats/CMakeFiles/ssdfail_stats.dir/DependInfo.cmake"
  "/root/repo/src/parallel/CMakeFiles/ssdfail_parallel.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ssdfail_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
