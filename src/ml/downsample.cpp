#include "ml/downsample.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.hpp"

namespace ssdfail::ml {

Dataset downsample_negatives(const Dataset& data, double ratio, std::uint64_t seed) {
  data.validate();
  if (ratio <= 0.0) throw std::invalid_argument("downsample_negatives: ratio must be > 0");

  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i = 0; i < data.size(); ++i)
    (data.y[i] > 0.5f ? positives : negatives).push_back(i);

  const auto target =
      static_cast<std::size_t>(ratio * static_cast<double>(positives.size()));
  std::vector<std::size_t> keep = positives;
  if (negatives.size() <= target) {
    keep.insert(keep.end(), negatives.begin(), negatives.end());
  } else {
    // Partial Fisher-Yates: the first `target` entries are a uniform sample.
    stats::Rng rng(seed);
    for (std::size_t i = 0; i < target; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.uniform_index(negatives.size() - i));
      std::swap(negatives[i], negatives[j]);
    }
    keep.insert(keep.end(), negatives.begin(),
                negatives.begin() + static_cast<std::ptrdiff_t>(target));
  }
  std::sort(keep.begin(), keep.end());
  return data.subset(keep);
}

}  // namespace ssdfail::ml
