#pragma once

// Labeled dataset with group ids — the row format of every prediction
// experiment (Section 5.1; Tables 6-8).
//
// Groups carry the drive uid of each row: the paper's cross-validation
// partitions folds BY DRIVE, never splitting one drive's days across train
// and test (drive days are highly correlated; splitting them leaks).

#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace ssdfail::ml {

struct Dataset {
  Matrix x;
  std::vector<float> y;                ///< binary labels (0/1)
  std::vector<std::uint64_t> groups;   ///< group id per row (drive uid)
  std::vector<std::string> feature_names;

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
  [[nodiscard]] std::size_t features() const noexcept { return x.cols(); }

  /// Number of positive labels.
  [[nodiscard]] std::size_t positives() const noexcept;

  /// Rows selected by index, preserving order.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Throws std::invalid_argument if row counts disagree.
  void validate() const;
};

}  // namespace ssdfail::ml
