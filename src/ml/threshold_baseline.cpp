#include "ml/threshold_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/metrics.hpp"

namespace ssdfail::ml {

void ThresholdBaseline::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("ThresholdBaseline: empty train set");

  double best_auc = 0.5;
  feature_ = 0;
  inverted_ = false;

  std::vector<float> column(train.size());
  for (std::size_t f = 0; f < train.x.cols(); ++f) {
    for (std::size_t r = 0; r < train.size(); ++r) column[r] = train.x(r, f);
    const double auc = roc_auc(column, train.y);
    if (std::isnan(auc)) continue;
    if (auc > best_auc) {
      best_auc = auc;
      feature_ = f;
      inverted_ = false;
    }
    if (1.0 - auc > best_auc) {
      best_auc = 1.0 - auc;
      feature_ = f;
      inverted_ = true;
    }
  }

  // Learn a squashing range so scores land in [0, 1].
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (std::size_t r = 0; r < train.size(); ++r) {
    const float v = train.x(r, feature_);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  lo_ = lo;
  hi_ = hi > lo ? hi : lo + 1.0f;
  fitted_ = true;
}

std::vector<float> ThresholdBaseline::predict_proba(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("ThresholdBaseline: predict before fit");
  std::vector<float> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float v = (x(r, feature_) - lo_) / (hi_ - lo_);
    v = std::clamp(v, 0.0f, 1.0f);
    out[r] = inverted_ ? 1.0f - v : v;
  }
  return out;
}

}  // namespace ssdfail::ml
