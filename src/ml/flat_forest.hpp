#pragma once

// Compiled flat-forest inference engine (the serving hot loop).
//
// A fitted tree ensemble — RandomForest or GradientBoosting — walks
// pointer-linked nodes one row at a time, one tree at a time.  That is the
// single biggest raw-speed lever on the serve path (ROADMAP), so this
// module COMPILES a fitted ensemble into a contiguous, cache-line-aligned
// node array with level-order layout and traverses it branchless:
//
//   - All trees share one flat node array (slot 0 is a parked sentinel, so
//     every real node id is >= 1); each tree's nodes are laid out level by
//     level (BFS), with sibling children ADJACENT — the right child always
//     sits one node after the left, so a node stores only its left link
//     (pre-scaled to a byte offset) and the step is pure arithmetic:
//     next = left + (!(v <= threshold) << 4).
//   - Leaves are SELF-PARKING: threshold = NaN (every comparison fails, so
//     the step lands one node after left == the leaf itself) and feature = 0.
//     Every tree can be walked for exactly its max depth with no per-step
//     leaf test — the index simply stops moving — which turns the inner
//     loop into a fixed-trip-count chain of compare-and-add steps.
//   - Scoring walks BLOCKS of rows per tree (instead of all trees per
//     row): the tree's hot top levels stay in L1 across the block and the
//     per-row index chains are independent, so the CPU overlaps them.
//
// Bit-identity contract: for every input, FlatForest reproduces the
// pointer-walk path EXACTLY — same comparison (v <= threshold, so NaN
// routes right; see kNanRoutesRight), same per-row accumulation order
// (double accumulator over trees in tree order), same finalization
// (RF: mean over trees; GB: sigmoid of prior + damped leaf sums).  The
// golden pipeline suite pins this.
//
// Engine selection: make_serving_model() wraps fitted ensembles for the
// monitor / CLI serve path.  The default engine is `flat`; build with
// -DSSDFAIL_DEFAULT_ENGINE=walker (or set SSDFAIL_ENGINE=walker in the
// environment) to keep the pointer walk as an escape hatch.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ml/classifier.hpp"
#include "parallel/thread_pool.hpp"

namespace ssdfail::ml {

class RandomForest;
class GradientBoosting;
struct FlatForestCompiler;

/// Which scoring implementation serving paths use.
enum class InferenceEngine : std::uint8_t {
  kWalker = 0,  ///< original pointer-linked per-row tree walk
  kFlat = 1,    ///< compiled flat-forest engine (this module)
};

/// Process-wide engine selection.  Initialized on first use from the
/// SSDFAIL_ENGINE environment variable ("walker" or "flat") when set,
/// otherwise from the build-time default (flat unless the build sets
/// -DSSDFAIL_DEFAULT_ENGINE=walker).
[[nodiscard]] InferenceEngine inference_engine() noexcept;
void set_inference_engine(InferenceEngine engine) noexcept;
[[nodiscard]] std::string_view inference_engine_name(InferenceEngine engine) noexcept;
[[nodiscard]] std::optional<InferenceEngine> parse_inference_engine(
    std::string_view name) noexcept;

/// One flattened tree node: 16 bytes, four per cache line.  `left` holds
/// the left child's BYTE offset into the node array (id * 16): scaled
/// addressing tops out at *8 on x86, so storing ids would put a shift on
/// the dependent-load chain of every step.  The right child is implicitly
/// the next node (BFS lays siblings adjacent), so the walk step is
/// `next = left + (!(v <= threshold) << 4)` — NaN inputs fail `<=` and
/// take the right branch, matching the walker (kNanRoutesRight).  A leaf
/// stores threshold = NaN and left = the byte offset of self - 1: the
/// comparison always fails, the step lands back on the leaf, and `left`
/// itself is never dereferenced.  (An 8-byte packed variant — feature
/// folded into the top bits of the child word — measured ~20% SLOWER: the
/// inner loop is uop-throughput-bound, and the unpack shifts cost more
/// than the halved footprint saves.)
struct FlatNode {
  float threshold = 0.0f;
  std::int32_t feature = 0;
  std::int32_t left = 0;
  std::int32_t pad = 0;  ///< keeps nodes 4-per-cache-line; always 0
};
static_assert(sizeof(FlatNode) == 16, "FlatNode must stay 4-per-cache-line");

/// Allocator placing the node array on a cache-line boundary.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }
  bool operator==(const CacheAlignedAllocator&) const noexcept { return true; }
};

/// A compiled, immutable tree ensemble.  Build one with compile(); score
/// with predict_proba / predict_into / predict_row.
class FlatForest {
 public:
  /// How per-tree leaf values combine into the final probability.
  enum class Kind : std::uint8_t {
    kAverage = 0,   ///< RandomForest: mean of leaf scores over trees
    kLogitSum = 1,  ///< GradientBoosting: sigmoid(bias + sum of leaf values)
  };

  FlatForest() = default;

  /// Compile a fitted ensemble.  Throws std::logic_error if unfitted.
  [[nodiscard]] static FlatForest compile(const RandomForest& forest);
  [[nodiscard]] static FlatForest compile(const GradientBoosting& model);

  /// Score every row of `x`.  Bit-identical to the walker path.  Batches
  /// below kSerialPredictRows (or a 1-wide pool) score serially — the
  /// single-drive observe path must not pay pool overhead.
  [[nodiscard]] std::vector<float> predict_proba(
      const Matrix& x,
      parallel::ThreadPool& pool = parallel::ThreadPool::current()) const;

  /// Score rows [begin, begin + count) of `x` into `out` (size count),
  /// serially.  The chunk scorer and the parallel path both drive this.
  void predict_into(const Matrix& x, std::size_t begin, std::size_t count,
                    float* out) const;

  /// Score one row (the degraded / spot-check path).
  [[nodiscard]] float predict_row(std::span<const float> row) const;

  [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }
  [[nodiscard]] std::uint32_t max_depth() const noexcept { return max_depth_; }

  /// FNV-1a over the compiled layout (nodes, values, roots, depths, bias).
  /// Serialized next to the walker body so a loader can verify the
  /// recompiled engine matches what was saved (any tree-body corruption
  /// that survives parsing changes this hash).
  [[nodiscard]] std::uint64_t structural_hash() const noexcept;

  /// Below this many rows predict_proba stays on the calling thread.
  static constexpr std::size_t kSerialPredictRows = 64;

  /// Rows walked per tree in one block (the register-resident index set).
  static constexpr std::size_t kBlockRows = 128;

 private:
  friend struct FlatForestCompiler;

  void finalize_block(const double* acc, std::size_t n, float* out) const;

  std::vector<FlatNode, CacheAlignedAllocator<FlatNode>> nodes_;
  std::vector<double> values_;        ///< leaf payload, indexed by node id
  std::vector<std::int32_t> roots_;   ///< root node id per tree
  std::vector<std::uint32_t> depths_; ///< max leaf depth per tree
  Kind kind_ = Kind::kAverage;
  double bias_ = 0.0;                 ///< GB prior log-odds (0 for RF)
  std::size_t n_features_ = 0;
  std::uint32_t max_depth_ = 0;
};

/// Classifier adapter so the monitor / serve path can hold a FlatForest
/// behind the ml::Classifier interface.
///
/// Two modes:
///  - serving: wraps an already-fitted walker model (shared ownership);
///    fit() throws — serving wrappers are immutable.
///  - trainable: owns a walker model; fit() trains it and recompiles.
///    Used where Classifier::clone()+fit() protocols run (cross-validation).
class FlatForestClassifier final : public Classifier {
 public:
  /// Serving wrapper around a fitted RandomForest or GradientBoosting.
  /// Throws std::invalid_argument for other classifier types or null.
  explicit FlatForestClassifier(std::shared_ptr<const Classifier> fitted);

  /// Serving wrapper reusing an already-compiled engine (avoids a second
  /// compile when the loader has one in hand for hash verification).
  FlatForestClassifier(std::shared_ptr<const Classifier> fitted, FlatForest engine);

  /// Trainable wrapper: fit() trains the walker, then recompiles.
  explicit FlatForestClassifier(std::unique_ptr<Classifier> trainable);

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  /// The wrapped walker's name — name-dispatching callers see no change.
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;

  [[nodiscard]] const FlatForest& engine() const noexcept { return engine_; }
  [[nodiscard]] const Classifier& walker() const;

 private:
  std::shared_ptr<const Classifier> fitted_;  ///< serving mode
  std::unique_ptr<Classifier> trainable_;     ///< trainable mode
  FlatForest engine_;
};

}  // namespace ssdfail::ml
