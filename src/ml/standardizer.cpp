#include "ml/standardizer.hpp"

#include <cmath>
#include <stdexcept>

namespace ssdfail::ml {

void Standardizer::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("Standardizer::fit: empty matrix");
  const std::size_t cols = x.cols();
  std::vector<double> sum(cols, 0.0);
  std::vector<double> sum2(cols, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      sum[c] += row[c];
      sum2[c] += static_cast<double>(row[c]) * row[c];
    }
  }
  mean_.resize(cols);
  sd_.resize(cols);
  const double n = static_cast<double>(x.rows());
  for (std::size_t c = 0; c < cols; ++c) {
    const double m = sum[c] / n;
    const double var = std::max(sum2[c] / n - m * m, 0.0);
    mean_[c] = static_cast<float>(m);
    const double sd = std::sqrt(var);
    sd_[c] = sd > 1e-12 ? static_cast<float>(sd) : 1.0f;
  }
}

void Standardizer::transform(Matrix& x) const {
  for (std::size_t r = 0; r < x.rows(); ++r) transform_row(x.row(r));
}

void Standardizer::transform_row(std::span<float> row) const {
  for (std::size_t c = 0; c < row.size(); ++c) row[c] = (row[c] - mean_[c]) / sd_[c];
}

}  // namespace ssdfail::ml
