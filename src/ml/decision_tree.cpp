#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace ssdfail::ml {
namespace {

/// Gini impurity of a node with `pos` positives out of `n`.
double gini(double pos, double n) noexcept {
  if (n <= 0.0) return 0.0;
  const double p = pos / n;
  return 2.0 * p * (1.0 - p);
}

/// Minimum rows*candidates at a node before the candidate-split scan fans
/// out across the pool.  Below this the sort is cheaper than the dispatch.
constexpr std::size_t kMinParallelSplitWork = 1u << 15;

}  // namespace

void DecisionTree::fit(const Dataset& train) {
  std::vector<std::size_t> idx(train.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  fit_on(train, std::move(idx));
}

void DecisionTree::fit_on(const Dataset& train, std::vector<std::size_t> row_indices) {
  train.validate();
  if (row_indices.empty()) throw std::invalid_argument("DecisionTree: empty train set");
  nodes_.clear();
  n_features_ = train.x.cols();
  importance_.assign(n_features_, 0.0);
  stats::Rng rng(params_.seed);
  build(train, row_indices, 0, row_indices.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& train, std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end, std::size_t depth,
                                 stats::Rng& rng) {
  const std::size_t n = end - begin;
  double pos = 0.0;
  for (std::size_t i = begin; i < end; ++i)
    if (train.y[idx[i]] > 0.5f) pos += 1.0;

  const double node_gini = gini(pos, static_cast<double>(n));
  const auto make_leaf = [&] {
    Node leaf;
    leaf.score = static_cast<float>(pos / static_cast<double>(n));
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params_.max_depth || n < params_.min_samples_split ||
      node_gini == 0.0)
    return make_leaf();

  // Candidate feature set: all, or a fresh random subset (forest mode).
  std::vector<std::size_t> features(n_features_);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t n_candidates = n_features_;
  if (params_.max_features > 0 && params_.max_features < n_features_) {
    // Partial Fisher-Yates: first max_features entries become the sample.
    for (std::size_t i = 0; i < params_.max_features; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.uniform_index(n_features_ - i));
      std::swap(features[i], features[j]);
    }
    n_candidates = params_.max_features;
  }

  // Best split search: sort rows by feature value, sweep boundaries.
  // Candidate features are scanned in parallel at big nodes; each scan is
  // a pure function of (train, idx range, feature), partials merge in
  // candidate order with a strictly-greater comparison, so the winner is
  // the same feature the serial first-wins loop picks — bit-identical at
  // any thread count.
  struct Best {
    double gain = 0.0;
    std::size_t feature = 0;
    float threshold = 0.0f;
  };

  const auto scan_feature = [&](Best& best, std::vector<std::pair<float, float>>& vals,
                                std::size_t feat) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i)
      vals.emplace_back(train.x(idx[i], feat), train.y[idx[i]]);
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) return;  // constant

    double left_pos = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (vals[i].second > 0.5f) left_pos += 1.0;
      if (vals[i].first == vals[i + 1].first) continue;  // not a boundary
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n) - nl;
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) continue;
      const double child_gini = (nl * gini(left_pos, nl) +
                                 nr * gini(pos - left_pos, nr)) /
                                static_cast<double>(n);
      const double gain = node_gini - child_gini;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = feat;
        best.threshold = 0.5f * (vals[i].first + vals[i + 1].first);
      }
    }
  };

  Best best;
  parallel::ThreadPool& pool = parallel::ThreadPool::current();
  if (n * n_candidates >= kMinParallelSplitWork && pool.size() > 1 &&
      !pool.on_worker_thread()) {
    struct Scan {
      Best best;
      std::vector<std::pair<float, float>> vals;  // (value, label), reused
    };
    best = parallel::parallel_reduce(
               n_candidates, [] { return Scan{}; },
               [&](Scan& acc, std::size_t j) { scan_feature(acc.best, acc.vals, features[j]); },
               [](Scan& dst, const Scan& src) {
                 if (src.best.gain > dst.best.gain) dst.best = src.best;
               },
               pool)
               .best;
  } else {
    std::vector<std::pair<float, float>> vals;
    vals.reserve(n);
    for (std::size_t f = 0; f < n_candidates; ++f) scan_feature(best, vals, features[f]);
  }

  if (best.gain <= 1e-12) return make_leaf();

  // Partition in place: rows with value <= threshold go left.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return train.x(row, best.feature) <= best.threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return make_leaf();  // numeric edge case

  importance_[best.feature] += best.gain * static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].feature = static_cast<std::int32_t>(best.feature);
  nodes_[node_id].threshold = best.threshold;
  const std::int32_t left = build(train, idx, begin, mid, depth + 1, rng);
  const std::int32_t right = build(train, idx, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

float DecisionTree::predict_row(std::span<const float> row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: predict before fit");
  std::int32_t cur = 0;
  while (nodes_[cur].left != -1) {
    const Node& node = nodes_[cur];
    // NaN fails `<=` and routes right — the frozen contract
    // (kNanRoutesRight); the flat engine replicates this exactly.
    cur = row[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                        : node.right;
  }
  return nodes_[cur].score;
}

std::vector<float> DecisionTree::predict_proba(const Matrix& x) const {
  std::vector<float> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

}  // namespace ssdfail::ml
