#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace ssdfail::ml {

void KNearestNeighbors::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("KNearestNeighbors: empty train set");
  train_x_ = train.x;
  scaler_.fit(train_x_);
  scaler_.transform(train_x_);
  train_y_ = train.y;
}

std::vector<float> KNearestNeighbors::predict_proba(const Matrix& x) const {
  if (!scaler_.fitted()) throw std::logic_error("KNearestNeighbors: predict before fit");
  const std::size_t k = std::min(params_.k, train_y_.size());
  std::vector<float> out(x.rows());

  parallel::parallel_for(x.rows(), [&](std::size_t r) {
    std::vector<float> q(x.row(r).begin(), x.row(r).end());
    scaler_.transform_row(q);

    std::vector<std::pair<float, std::size_t>> dist(train_x_.rows());
    for (std::size_t t = 0; t < train_x_.rows(); ++t) {
      const auto row = train_x_.row(t);
      float d2 = 0.0f;
      for (std::size_t c = 0; c < q.size(); ++c) {
        const float diff = q[c] - row[c];
        d2 += diff * diff;
      }
      dist[t] = {d2, t};
    }
    std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());

    double weight_sum = 0.0;
    double pos_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w = params_.distance_weighted
                           ? 1.0 / (1.0 + std::sqrt(static_cast<double>(dist[i].first)))
                           : 1.0;
      weight_sum += w;
      if (train_y_[dist[i].second] > 0.5f) pos_sum += w;
    }
    out[r] = weight_sum > 0.0 ? static_cast<float>(pos_sum / weight_sum) : 0.0f;
  });
  return out;
}

}  // namespace ssdfail::ml
