#pragma once

// CART decision tree (gini impurity, binary splits on numeric features) —
// the "CART" row of Table 6, and the base learner behind the paper's
// headline random forest.  Supports per-node random feature subsetting so
// RandomForest can reuse the same builder.  Leaf scores are positive-class
// fractions.
//
// Candidate-split evaluation parallelizes across features at large nodes
// (chunk-ordered strictly-greater merge == the serial first-wins loop, so
// the fitted tree is bit-identical at any thread count; pinned by
// tests/ml/test_parallel_training.cpp).

#include <cstdint>

#include "ml/classifier.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {

/// NaN feature routing is part of the model's frozen semantics: every
/// split evaluates `value <= threshold ? left : right`, and every ordered
/// comparison against NaN is false, so a NaN feature ALWAYS routes to the
/// RIGHT child — during training partition and during prediction, in both
/// the pointer-walk and compiled flat engines.  Pinned by
/// tests/ml/test_flat_forest.cpp (NaN rows score identically to +Inf rows,
/// which take the same all-right path).
inline constexpr bool kNanRoutesRight = true;

class DecisionTree final : public Classifier {
 public:
  struct Params {
    std::size_t max_depth = 12;
    std::size_t min_samples_split = 8;
    std::size_t min_samples_leaf = 4;
    /// 0 = use all features; otherwise sample this many per node.
    std::size_t max_features = 0;
    std::uint64_t seed = 1;
  };

  DecisionTree() = default;
  explicit DecisionTree(Params params) : params_(params) {}

  void fit(const Dataset& train) override;

  /// Fit on an explicit row multiset (bootstrap support for forests).
  void fit_on(const Dataset& train, std::vector<std::size_t> row_indices);

  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] float predict_row(std::span<const float> row) const;

  [[nodiscard]] std::string name() const override { return "decision_tree"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<DecisionTree>(params_);
  }

  /// Total gini-impurity decrease attributed to each feature (unnormalized).
  [[nodiscard]] const std::vector<double>& impurity_importance() const noexcept {
    return importance_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    // Internal node: feature/threshold valid, children set.
    // Leaf: left == -1, score valid.
    std::int32_t feature = -1;
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    float score = 0.0f;
  };

  friend struct ModelSerializer;     // binary save/load (ml/serialize.hpp)
  friend struct FlatForestCompiler;  // compiled engine (ml/flat_forest.hpp)

  std::int32_t build(const Dataset& train, std::vector<std::size_t>& idx,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     stats::Rng& rng);

  Params params_{};
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

}  // namespace ssdfail::ml
