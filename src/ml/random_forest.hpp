#pragma once

// Random forest: bagged CART trees with per-node feature subsampling.
// Trees train in parallel (deterministically — each tree's bootstrap and
// feature sampling derive from hash(seed, tree_index)).
//
// The paper's headline predictor — the "RF" row of Table 6 and the model
// behind Figs 12-16.  Feature importance is mean impurity decrease across
// trees, normalized to sum to 1 (Fig 16).

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"
#include "parallel/thread_pool.hpp"

namespace ssdfail::ml {

class RandomForest final : public Classifier {
 public:
  struct Params {
    std::size_t n_trees = 100;
    std::size_t max_depth = 14;
    std::size_t min_samples_leaf = 2;
    std::size_t min_samples_split = 4;
    /// 0 = sqrt(n_features) per node (the standard forest default).
    std::size_t max_features = 0;
    std::uint64_t seed = 1;
  };

  RandomForest() = default;
  explicit RandomForest(Params params) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  /// Same scores, explicit pool.  Batches below kSerialPredictRows (or a
  /// 1-wide pool) stay on the calling thread — the single-drive observe
  /// path must not pay pool dispatch for one row.  Bit-identical to the
  /// parallel path at any cutoff (rows score independently).
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x,
                                                 parallel::ThreadPool& pool) const;
  [[nodiscard]] std::string name() const override { return "random_forest"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<RandomForest>(params_);
  }

  /// Normalized mean impurity-decrease importance (sums to 1).
  [[nodiscard]] std::vector<double> feature_importance() const;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Below this many rows predict_proba skips the thread pool.
  static constexpr std::size_t kSerialPredictRows = 64;

 private:
  friend struct ModelSerializer;     // binary save/load (ml/serialize.hpp)
  friend struct FlatForestCompiler;  // compiled engine (ml/flat_forest.hpp)

  Params params_{};
  std::vector<DecisionTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace ssdfail::ml
