#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "stats/rng.hpp"

namespace ssdfail::ml {

double roc_auc(std::span<const float> scores, std::span<const float> labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("roc_auc: size mismatch");
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Sum of positive ranks with mid-rank tie handling.
  double rank_sum_pos = 0.0;
  std::uint64_t n_pos = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0.5f) {
        rank_sum_pos += avg_rank;
        ++n_pos;
      }
    }
    i = j + 1;
  }
  const std::uint64_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return std::numeric_limits<double>::quiet_NaN();
  const double u = rank_sum_pos - 0.5 * static_cast<double>(n_pos) *
                                       static_cast<double>(n_pos + 1);
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<RocPoint> roc_curve(std::span<const float> scores,
                                std::span<const float> labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("roc_curve: size mismatch");
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Descending score: lowering the threshold admits more positives.
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::uint64_t n_pos = 0;
  for (float l : labels)
    if (l > 0.5f) ++n_pos;
  const std::uint64_t n_neg = n - n_pos;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  if (n_pos == 0 || n_neg == 0) return curve;

  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::size_t i = 0;
  while (i < n) {
    const float s = scores[order[i]];
    while (i < n && scores[order[i]] == s) {
      if (labels[order[i]] > 0.5f)
        ++tp;
      else
        ++fp;
      ++i;
    }
    curve.push_back({static_cast<double>(fp) / static_cast<double>(n_neg),
                     static_cast<double>(tp) / static_cast<double>(n_pos),
                     static_cast<double>(s)});
  }
  return curve;
}

double Confusion::tpr() const {
  const auto p = tp + fn;
  return p == 0 ? std::numeric_limits<double>::quiet_NaN()
                : static_cast<double>(tp) / static_cast<double>(p);
}

double Confusion::fpr() const {
  const auto neg = fp + tn;
  return neg == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : static_cast<double>(fp) / static_cast<double>(neg);
}

double Confusion::precision() const {
  const auto pp = tp + fp;
  return pp == 0 ? std::numeric_limits<double>::quiet_NaN()
                 : static_cast<double>(tp) / static_cast<double>(pp);
}

double Confusion::accuracy() const {
  const auto total = tp + fp + tn + fn;
  return total == 0 ? std::numeric_limits<double>::quiet_NaN()
                    : static_cast<double>(tp + tn) / static_cast<double>(total);
}

Confusion confusion_at(std::span<const float> scores, std::span<const float> labels,
                       double threshold) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("confusion_at: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] > 0.5f;
    if (predicted && actual)
      ++c.tp;
    else if (predicted && !actual)
      ++c.fp;
    else if (!predicted && actual)
      ++c.fn;
    else
      ++c.tn;
  }
  return c;
}

AucCi bootstrap_auc_ci(std::span<const float> scores, std::span<const float> labels,
                       double confidence, int resamples, std::uint64_t seed) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("bootstrap_auc_ci: size mismatch");
  AucCi ci;
  ci.auc = roc_auc(scores, labels);
  const std::size_t n = scores.size();
  stats::Rng rng(seed);
  std::vector<double> aucs;
  aucs.reserve(static_cast<std::size_t>(resamples));
  std::vector<float> rs(n);
  std::vector<float> rl(n);
  for (int b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_index(n));
      rs[i] = scores[j];
      rl[i] = labels[j];
    }
    const double auc = roc_auc(rs, rl);
    if (!std::isnan(auc)) aucs.push_back(auc);
  }
  std::sort(aucs.begin(), aucs.end());
  if (aucs.empty()) {
    ci.lo = ci.hi = ci.auc;
    return ci;
  }
  const double alpha = (1.0 - confidence) / 2.0;
  const auto pick = [&](double q) {
    const auto i = static_cast<std::size_t>(q * static_cast<double>(aucs.size() - 1));
    return aucs[i];
  };
  ci.lo = pick(alpha);
  ci.hi = pick(1.0 - alpha);
  return ci;
}

double brier_score(std::span<const float> scores, std::span<const float> labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("brier_score: size mismatch");
  if (scores.empty()) return std::numeric_limits<double>::quiet_NaN();
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double diff = static_cast<double>(scores[i]) - static_cast<double>(labels[i]);
    total += diff * diff;
  }
  return total / static_cast<double>(scores.size());
}

std::vector<CalibrationBin> calibration_curve(std::span<const float> scores,
                                              std::span<const float> labels,
                                              std::size_t bins) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("calibration_curve: size mismatch");
  if (bins == 0) throw std::invalid_argument("calibration_curve: bins must be > 0");
  std::vector<double> score_sum(bins, 0.0);
  std::vector<double> event_sum(bins, 0.0);
  std::vector<std::uint64_t> counts(bins, 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    auto b = static_cast<std::size_t>(static_cast<double>(scores[i]) *
                                      static_cast<double>(bins));
    b = std::min(b, bins - 1);
    score_sum[b] += scores[i];
    event_sum[b] += labels[i];
    ++counts[b];
  }
  std::vector<CalibrationBin> curve;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    curve.push_back({score_sum[b] / static_cast<double>(counts[b]),
                     event_sum[b] / static_cast<double>(counts[b]), counts[b]});
  }
  return curve;
}

MeanSd mean_sd(std::span<const double> values) {
  MeanSd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - out.mean) * (v - out.mean);
    out.sd = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace ssdfail::ml
