#pragma once

// Majority-class downsampling (Section 5.1): the paper randomly
// downsamples negatives to a 1:1 ratio in the TRAINING set only, and
// verified that the induced AUC variability is ~±0.001.

#include <cstdint>

#include "ml/dataset.hpp"

namespace ssdfail::ml {

/// Keep all positives plus `ratio` randomly chosen negatives per positive
/// (without replacement; keeps everything if there are too few negatives).
/// Row order is preserved.
[[nodiscard]] Dataset downsample_negatives(const Dataset& data, double ratio,
                                           std::uint64_t seed);

}  // namespace ssdfail::ml
