#pragma once

// Feature standardization (z-scoring) fitted on training data only — the
// Section 5.2 preprocessing step for the distance- and gradient-based
// Table 6 models (kNN, SVM, logistic, MLP); tree models don't use it.

#include <vector>

#include "ml/matrix.hpp"

namespace ssdfail::ml {

class Standardizer {
 public:
  /// Learn per-column mean and standard deviation.  Constant columns get
  /// sd = 1 so they transform to exactly zero.
  void fit(const Matrix& x);

  /// Z-score a matrix in place.
  void transform(Matrix& x) const;

  /// Z-score a single row in place.
  void transform_row(std::span<float> row) const;

  [[nodiscard]] Matrix fit_transform(Matrix x) {
    fit(x);
    transform(x);
    return x;
  }

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] const std::vector<float>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<float>& stddev() const noexcept { return sd_; }

 private:
  friend struct ModelSerializer;  // binary save/load (ml/serialize.hpp)

  std::vector<float> mean_;
  std::vector<float> sd_;
};

}  // namespace ssdfail::ml
