#include "ml/flat_forest.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "ml/gradient_boosting.hpp"
#include "ml/random_forest.hpp"

namespace ssdfail::ml {
namespace {

/// Matches the walker paths exactly: gradient_boosting.cpp's sigmoid.
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }

/// Child links and roots are stored PRE-SCALED as byte offsets into the
/// node array (id << kNodeShift).  x86 scaled addressing tops out at *8,
/// so indexing 16-byte nodes by id would put a shift on the dependent-load
/// chain of every step; byte offsets make the address base + cur directly.
constexpr std::int32_t kNodeShift = 4;
static_assert(sizeof(FlatNode) == (std::size_t{1} << kNodeShift),
              "kNodeShift must match sizeof(FlatNode)");

std::atomic<int> g_engine{-1};  // -1: not yet resolved

InferenceEngine default_engine() noexcept {
  if (const char* env = std::getenv("SSDFAIL_ENGINE")) {
    if (const auto parsed = parse_inference_engine(env)) return *parsed;
  }
#ifdef SSDFAIL_ENGINE_WALKER
  return InferenceEngine::kWalker;
#else
  return InferenceEngine::kFlat;
#endif
}

}  // namespace

InferenceEngine inference_engine() noexcept {
  int v = g_engine.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(default_engine());
    g_engine.store(v, std::memory_order_relaxed);
  }
  return static_cast<InferenceEngine>(v);
}

void set_inference_engine(InferenceEngine engine) noexcept {
  g_engine.store(static_cast<int>(engine), std::memory_order_relaxed);
}

std::string_view inference_engine_name(InferenceEngine engine) noexcept {
  return engine == InferenceEngine::kWalker ? "walker" : "flat";
}

std::optional<InferenceEngine> parse_inference_engine(std::string_view name) noexcept {
  if (name == "walker") return InferenceEngine::kWalker;
  if (name == "flat") return InferenceEngine::kFlat;
  return std::nullopt;
}

/// Friend of the walker models: reads the private node arrays the public
/// APIs deliberately do not expose.
struct FlatForestCompiler {
  /// Append one walker tree in level order.  `is_leaf` / `leaf_value`
  /// adapt the two walker node layouts; `scale` folds the boosting
  /// learning rate into the stored leaf payload (exact: double * double,
  /// the same product the walker computes per row).
  template <typename Nodes, typename IsLeaf, typename LeafValue>
  static void append_tree(FlatForest& ff, const Nodes& src, IsLeaf is_leaf,
                          LeafValue leaf_value, double scale) {
    if (src.empty())
      throw std::runtime_error("FlatForest: malformed tree (no nodes)");
    // Byte offsets (id << kNodeShift) must stay in int32: cap node ids.
    if (ff.nodes_.size() + src.size() > (std::size_t{1} << (31 - kNodeShift)))
      throw std::runtime_error("FlatForest: ensemble too large to compile");
    const auto base = static_cast<std::int32_t>(ff.nodes_.size());
    // BFS order over walker ids; children get adjacent flat slots.
    std::vector<std::int32_t> order;
    std::vector<std::int32_t> flat_of(src.size(), -1);
    std::vector<std::uint32_t> depth_of(src.size(), 0);
    order.reserve(src.size());
    order.push_back(0);
    flat_of[0] = base;
    std::int32_t next = base + 1;
    std::uint32_t max_depth = 0;
    for (std::size_t head = 0; head < order.size(); ++head) {
      const auto w = static_cast<std::size_t>(order[head]);
      if (is_leaf(src[w])) continue;
      // Trees may come from a deserialized stream: reject out-of-range
      // children, shared children, and back-edges before dereferencing.
      const std::int32_t li = src[w].left;
      const std::int32_t ri = src[w].right;
      if (li < 0 || ri < 0 || static_cast<std::size_t>(li) >= src.size() ||
          static_cast<std::size_t>(ri) >= src.size() || li == ri ||
          flat_of[static_cast<std::size_t>(li)] != -1 ||
          flat_of[static_cast<std::size_t>(ri)] != -1 || src[w].feature < 0 ||
          static_cast<std::size_t>(src[w].feature) >= ff.n_features_)
        throw std::runtime_error("FlatForest: malformed tree structure");
      const auto left = static_cast<std::size_t>(src[w].left);
      const auto right = static_cast<std::size_t>(src[w].right);
      flat_of[left] = next++;
      flat_of[right] = next++;
      depth_of[left] = depth_of[right] = depth_of[w] + 1;
      max_depth = std::max(max_depth, depth_of[w] + 1);
      order.push_back(src[w].left);
      order.push_back(src[w].right);
    }

    ff.nodes_.resize(ff.nodes_.size() + src.size());
    ff.values_.resize(ff.nodes_.size(), 0.0);
    for (const std::int32_t w_id : order) {
      const auto w = static_cast<std::size_t>(w_id);
      const std::int32_t f = flat_of[w];
      FlatNode& node = ff.nodes_[static_cast<std::size_t>(f)];
      if (is_leaf(src[w])) {
        // Self-parking: the NaN threshold fails every comparison, so the
        // step always lands on left + one node == the leaf itself.  f >= 1
        // always (the sentinel owns slot 0), so f - 1 stays in-array.
        node.threshold = std::numeric_limits<float>::quiet_NaN();
        node.feature = 0;
        node.left = (f - 1) << kNodeShift;
        ff.values_[static_cast<std::size_t>(f)] = leaf_value(src[w]) * scale;
      } else {
        node.threshold = src[w].threshold;
        node.feature = src[w].feature;
        const std::int32_t left_id = flat_of[static_cast<std::size_t>(src[w].left)];
        node.left = left_id << kNodeShift;
        // BFS assigned the right child the very next slot; assert the
        // invariant the implicit-right step relies on.
        if (flat_of[static_cast<std::size_t>(src[w].right)] != left_id + 1)
          throw std::logic_error("FlatForest: BFS sibling adjacency broken");
      }
    }
    ff.roots_.push_back(base << kNodeShift);
    ff.depths_.push_back(max_depth);
    ff.max_depth_ = std::max(ff.max_depth_, max_depth);
  }

  /// Slot 0 is a parked sentinel so every real node id is >= 1 — a leaf at
  /// id f then always has a valid in-array `left = f - 1`.  The sentinel
  /// is never a root or a child, so it is never visited; its self-parking
  /// link (-1 node) is for uniformity only.
  static void push_sentinel(FlatForest& ff) {
    FlatNode sentinel;
    sentinel.threshold = std::numeric_limits<float>::quiet_NaN();
    sentinel.left = std::int32_t{-1} << kNodeShift;
    ff.nodes_.push_back(sentinel);
    ff.values_.push_back(0.0);
  }

  static FlatForest compile(const RandomForest& forest) {
    if (forest.trees_.empty())
      throw std::logic_error("FlatForest: compile before fit (RandomForest)");
    FlatForest ff;
    ff.kind_ = FlatForest::Kind::kAverage;
    ff.bias_ = 0.0;
    ff.n_features_ = forest.n_features_;
    push_sentinel(ff);
    std::size_t total = 0;
    for (const DecisionTree& t : forest.trees_) total += t.nodes_.size();
    ff.nodes_.reserve(total);
    ff.values_.reserve(total);
    ff.roots_.reserve(forest.trees_.size());
    ff.depths_.reserve(forest.trees_.size());
    for (const DecisionTree& t : forest.trees_)
      append_tree(
          ff, t.nodes_, [](const DecisionTree::Node& n) { return n.left == -1; },
          [](const DecisionTree::Node& n) { return static_cast<double>(n.score); },
          1.0);
    return ff;
  }

  static FlatForest compile(const GradientBoosting& model) {
    if (model.trees_.empty())
      throw std::logic_error("FlatForest: compile before fit (GradientBoosting)");
    FlatForest ff;
    ff.kind_ = FlatForest::Kind::kLogitSum;
    ff.bias_ = model.prior_;
    ff.n_features_ = model.n_features_;
    push_sentinel(ff);
    std::size_t total = 0;
    for (const GradientBoosting::Tree& t : model.trees_) total += t.nodes.size();
    ff.nodes_.reserve(total);
    ff.values_.reserve(total);
    ff.roots_.reserve(model.trees_.size());
    ff.depths_.reserve(model.trees_.size());
    for (const GradientBoosting::Tree& t : model.trees_)
      append_tree(
          ff, t.nodes, [](const GradientBoosting::Node& n) { return n.feature == -1; },
          [](const GradientBoosting::Node& n) { return n.value; },
          model.params_.learning_rate);
    return ff;
  }
};

FlatForest FlatForest::compile(const RandomForest& forest) {
  return FlatForestCompiler::compile(forest);
}

FlatForest FlatForest::compile(const GradientBoosting& model) {
  return FlatForestCompiler::compile(model);
}

void FlatForest::finalize_block(const double* acc, std::size_t n, float* out) const {
  if (kind_ == Kind::kAverage) {
    const auto trees = static_cast<double>(roots_.size());
    for (std::size_t r = 0; r < n; ++r) out[r] = static_cast<float>(acc[r] / trees);
  } else {
    for (std::size_t r = 0; r < n; ++r) out[r] = static_cast<float>(sigmoid(acc[r]));
  }
}

namespace {

/// One traversal step.  `cur` is a BYTE offset into the node array (the
/// compiler stored child links pre-scaled by sizeof(FlatNode)), so the
/// dependent-load address is base + cur with no shift on the chain; the
/// branch flag is shifted instead, off the critical path.  The step takes
/// the right sibling (left + 16 bytes) on both `v > t` and NaN, exactly
/// like the walker (kNanRoutesRight), and parks on leaves (NaN threshold).
inline std::uint32_t walk_step(const char* nodes, const float* row,
                               std::uint32_t cur) noexcept {
  const FlatNode node = *reinterpret_cast<const FlatNode*>(nodes + cur);
  const float v = row[static_cast<std::size_t>(node.feature)];
  // Branchless on purpose (a ternary compiles to a ~50%-mispredicted
  // branch here): !(v <= t) is true on NaN too, so NaN takes the right
  // sibling (left + one node), matching the walker (kNanRoutesRight).
  return static_cast<std::uint32_t>(node.left) +
         (static_cast<std::uint32_t>(!(v <= node.threshold)) << kNodeShift);
}

/// Walk one tree for `NB` rows at fixed depth, accumulating leaf values.
/// NB is a compile-time constant so the inner step fully unrolls and the
/// NB offset chains stay in registers — they are independent, so the CPU
/// overlaps their (dependent) node loads across rows.
template <std::size_t NB>
inline void walk_tree(const char* nodes, const float* const* row_of,
                      std::uint32_t root, std::uint32_t depth, const double* values,
                      double* acc) {
  // Groups of 16: the offsets and row pointers stay (mostly) register-
  // resident across the whole depth loop instead of round-tripping
  // through stack arrays each level, and 16 independent step chains hide
  // the dependent-load latency.  Measured ~25% faster than groups of 8;
  // 32 spills and loses it all.
  constexpr std::size_t kGroup = 16;
  static_assert(NB % kGroup == 0);
  for (std::size_t g = 0; g < NB; g += kGroup) {
    std::uint32_t cur[kGroup];
    const float* rp[kGroup];
    for (std::size_t r = 0; r < kGroup; ++r) {
      cur[r] = root;
      rp[r] = row_of[g + r];
    }
    for (std::uint32_t d = 0; d < depth; ++d)
      for (std::size_t r = 0; r < kGroup; ++r)
        cur[r] = walk_step(nodes, rp[r], cur[r]);
    for (std::size_t r = 0; r < kGroup; ++r)
      acc[g + r] += values[static_cast<std::size_t>(cur[r]) >> kNodeShift];
  }
}

/// Runtime-width tail (fewer than kBlock rows left).
inline void walk_tree_tail(const char* nodes, const float* const* row_of,
                           std::size_t nb, std::uint32_t root, std::uint32_t depth,
                           const double* values, double* acc) {
  std::uint32_t cur[FlatForest::kBlockRows];
  for (std::size_t r = 0; r < nb; ++r) cur[r] = root;
  for (std::uint32_t d = 0; d < depth; ++d)
    for (std::size_t r = 0; r < nb; ++r) cur[r] = walk_step(nodes, row_of[r], cur[r]);
  for (std::size_t r = 0; r < nb; ++r)
    acc[r] += values[static_cast<std::size_t>(cur[r]) >> kNodeShift];
}

}  // namespace

void FlatForest::predict_into(const Matrix& x, std::size_t begin, std::size_t count,
                              float* out) const {
  if (empty()) throw std::logic_error("FlatForest: predict before compile");
  // Row blocks: each tree's hot top levels stay cached across the block,
  // and the per-row index chains are independent.
  const std::size_t cols = x.cols();
  const float* data = x.data().data();
  const char* nodes = reinterpret_cast<const char*>(nodes_.data());
  const double* values = values_.data();
  double acc[kBlockRows];
  const float* row_of[kBlockRows];
  for (std::size_t b = 0; b < count; b += kBlockRows) {
    const std::size_t nb = std::min(kBlockRows, count - b);
    // Per-row base pointers hoist the row * cols multiply out of the walk.
    for (std::size_t r = 0; r < nb; ++r) {
      row_of[r] = data + (begin + b + r) * cols;
      acc[r] = bias_;
    }
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      if (nb == kBlockRows)
        walk_tree<kBlockRows>(nodes, row_of, static_cast<std::uint32_t>(roots_[t]),
                              depths_[t], values, acc);
      else
        walk_tree_tail(nodes, row_of, nb, static_cast<std::uint32_t>(roots_[t]),
                       depths_[t], values, acc);
    }
    finalize_block(acc, nb, out + b);
  }
}

float FlatForest::predict_row(std::span<const float> row) const {
  if (empty()) throw std::logic_error("FlatForest: predict before compile");
  double acc = bias_;
  const char* nodes = reinterpret_cast<const char*>(nodes_.data());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    auto cur = static_cast<std::uint32_t>(roots_[t]);
    for (std::uint32_t d = 0; d < depths_[t]; ++d)
      cur = walk_step(nodes, row.data(), cur);
    acc += values_[static_cast<std::size_t>(cur) >> kNodeShift];
  }
  float out;
  finalize_block(&acc, 1, &out);
  return out;
}

std::vector<float> FlatForest::predict_proba(const Matrix& x,
                                             parallel::ThreadPool& pool) const {
  if (empty()) throw std::logic_error("FlatForest: predict before compile");
  std::vector<float> out(x.rows());
  const std::size_t rows = x.rows();
  if (rows == 0) return out;
  // Small batches (the single-drive observe path) stay on the calling
  // thread: pool dispatch costs more than the scoring itself.
  if (rows < kSerialPredictRows || pool.size() <= 1 || pool.on_worker_thread()) {
    predict_into(x, 0, rows, out.data());
    return out;
  }
  constexpr std::size_t kParChunk = 256;
  const std::size_t n_chunks = (rows + kParChunk - 1) / kParChunk;
  parallel::parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * kParChunk;
        predict_into(x, begin, std::min(kParChunk, rows - begin), out.data() + begin);
      },
      pool);
  return out;
}

std::uint64_t FlatForest::structural_hash() const noexcept {
  // FNV-1a 64 over the compiled layout, field by field (no padding bytes).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(kind_));
  mix(static_cast<std::uint64_t>(n_features_));
  mix(std::bit_cast<std::uint64_t>(bias_));
  mix(roots_.size());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    mix(static_cast<std::uint64_t>(roots_[t]));
    mix(depths_[t]);
  }
  mix(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FlatNode& n = nodes_[i];
    mix(std::bit_cast<std::uint32_t>(n.threshold));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.feature)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.left)));
    mix(std::bit_cast<std::uint64_t>(values_[i]));
  }
  return h;
}

namespace {

FlatForest compile_any(const Classifier& fitted) {
  if (const auto* rf = dynamic_cast<const RandomForest*>(&fitted))
    return FlatForest::compile(*rf);
  if (const auto* gb = dynamic_cast<const GradientBoosting*>(&fitted))
    return FlatForest::compile(*gb);
  throw std::invalid_argument("FlatForestClassifier: '" + fitted.name() +
                              "' is not a compilable tree ensemble");
}

}  // namespace

FlatForestClassifier::FlatForestClassifier(std::shared_ptr<const Classifier> fitted) {
  if (!fitted) throw std::invalid_argument("FlatForestClassifier: null model");
  engine_ = compile_any(*fitted);
  fitted_ = std::move(fitted);
}

FlatForestClassifier::FlatForestClassifier(std::shared_ptr<const Classifier> fitted,
                                           FlatForest engine)
    : fitted_(std::move(fitted)), engine_(std::move(engine)) {
  if (!fitted_) throw std::invalid_argument("FlatForestClassifier: null model");
  if (engine_.empty())
    throw std::invalid_argument("FlatForestClassifier: empty engine");
}

FlatForestClassifier::FlatForestClassifier(std::unique_ptr<Classifier> trainable)
    : trainable_(std::move(trainable)) {
  if (!trainable_) throw std::invalid_argument("FlatForestClassifier: null model");
  if (dynamic_cast<const RandomForest*>(trainable_.get()) == nullptr &&
      dynamic_cast<const GradientBoosting*>(trainable_.get()) == nullptr)
    throw std::invalid_argument("FlatForestClassifier: '" + trainable_->name() +
                                "' is not a compilable tree ensemble");
}

void FlatForestClassifier::fit(const Dataset& train) {
  if (!trainable_)
    throw std::logic_error("FlatForestClassifier: serving wrapper is immutable");
  trainable_->fit(train);
  engine_ = compile_any(*trainable_);
}

std::vector<float> FlatForestClassifier::predict_proba(const Matrix& x) const {
  return engine_.predict_proba(x);
}

const Classifier& FlatForestClassifier::walker() const {
  return fitted_ ? *fitted_ : *trainable_;
}

std::string FlatForestClassifier::name() const { return walker().name(); }

std::unique_ptr<Classifier> FlatForestClassifier::clone() const {
  if (trainable_) return std::make_unique<FlatForestClassifier>(trainable_->clone());
  return std::unique_ptr<Classifier>(new FlatForestClassifier(fitted_, engine_));
}

}  // namespace ssdfail::ml
