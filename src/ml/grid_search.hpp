#pragma once

// Tiny hyperparameter search: evaluate a list of candidate model
// configurations with a caller-supplied scorer and keep the best.
// (Section 5.2: the paper grid-searches regularization strengths, tree
// depths, and hidden-layer sizes behind the Table 6 results; model_zoo()
// provides those grids.)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace ssdfail::ml {

/// One candidate configuration.
struct Candidate {
  std::string label;
  std::function<std::unique_ptr<Classifier>()> make;
};

struct GridSearchResult {
  std::size_t best_index = 0;
  double best_score = 0.0;
  std::vector<double> scores;  ///< per candidate, in input order
};

/// Evaluate every candidate with `score` (higher is better) and return the
/// winner.  Throws if candidates is empty.
[[nodiscard]] GridSearchResult grid_search(
    const std::vector<Candidate>& candidates,
    const std::function<double(const Classifier&)>& score);

}  // namespace ssdfail::ml
