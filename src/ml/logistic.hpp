#pragma once

// L2-regularized logistic regression — the "LR" row of Table 6 — trained
// with full-batch gradient descent + Nesterov momentum on standardized
// features.

#include "ml/classifier.hpp"
#include "ml/standardizer.hpp"

namespace ssdfail::ml {

class LogisticRegression final : public Classifier {
 public:
  struct Params {
    double l2 = 1e-3;          ///< ridge coefficient (the paper's tuned knob)
    double learning_rate = 0.5;
    int epochs = 300;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(Params params) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "logistic_regression"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<LogisticRegression>(params_);
  }

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }
  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  friend struct ModelSerializer;  // binary save/load (ml/serialize.hpp)

  Params params_{};
  Standardizer scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace ssdfail::ml
