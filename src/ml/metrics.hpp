#pragma once

// Classifier evaluation: ROC curves, AUC, confusion statistics.
//
// The paper evaluates with ROC AUC because it is insensitive to class
// imbalance (Section 5.1): TPR and FPR are each computed within one class.
// AUC here is the exact Mann–Whitney U statistic with tie correction —
// equivalent to the trapezoidal area under the full ROC curve.

#include <cstdint>
#include <span>
#include <vector>

namespace ssdfail::ml {

/// One operating point of a binary classifier.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// ROC AUC via rank statistics; NaN if either class is empty.
/// Ties receive the standard 1/2 credit.
[[nodiscard]] double roc_auc(std::span<const float> scores, std::span<const float> labels);

/// Full ROC curve (one point per distinct score, endpoints included),
/// sorted by ascending FPR.
[[nodiscard]] std::vector<RocPoint> roc_curve(std::span<const float> scores,
                                              std::span<const float> labels);

/// Confusion counts at a fixed discrimination threshold (score >= threshold
/// predicts positive).
struct Confusion {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  [[nodiscard]] double tpr() const;        ///< recall
  [[nodiscard]] double fpr() const;
  [[nodiscard]] double fnr() const { return 1.0 - tpr(); }
  [[nodiscard]] double precision() const;
  [[nodiscard]] double accuracy() const;
};

[[nodiscard]] Confusion confusion_at(std::span<const float> scores,
                                     std::span<const float> labels, double threshold);

/// Mean and standard deviation of a small sample (population sd if n < 2
/// would divide by zero; we use the n-1 form like the paper's fold spread).
struct MeanSd {
  double mean = 0.0;
  double sd = 0.0;
};
[[nodiscard]] MeanSd mean_sd(std::span<const double> values);

/// Bootstrap confidence interval for the ROC AUC (percentile method over
/// row resamples).  Deterministic for a fixed seed.
struct AucCi {
  double auc = 0.0;  ///< point estimate on the full sample
  double lo = 0.0;   ///< lower percentile bound
  double hi = 0.0;   ///< upper percentile bound
};
[[nodiscard]] AucCi bootstrap_auc_ci(std::span<const float> scores,
                                     std::span<const float> labels,
                                     double confidence = 0.95, int resamples = 200,
                                     std::uint64_t seed = 1);

/// Brier score: mean squared error of probabilistic predictions (lower is
/// better; 0.25 = uninformative constant 0.5).
[[nodiscard]] double brier_score(std::span<const float> scores,
                                 std::span<const float> labels);

/// Reliability-diagram bins: predicted-probability deciles vs observed
/// event rates.  Empty bins are omitted.
struct CalibrationBin {
  double mean_score = 0.0;
  double event_rate = 0.0;
  std::uint64_t count = 0;
};
[[nodiscard]] std::vector<CalibrationBin> calibration_curve(
    std::span<const float> scores, std::span<const float> labels,
    std::size_t bins = 10);

}  // namespace ssdfail::ml
