#include "ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {

std::size_t group_fold(std::uint64_t group_id, std::size_t k, std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("group_fold: k must be > 0");
  return static_cast<std::size_t>(stats::hash_keys({seed, group_id}) % k);
}

std::vector<FoldSplit> group_k_fold(const Dataset& data, std::size_t k,
                                    std::uint64_t seed) {
  data.validate();
  std::vector<FoldSplit> splits(k);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t fold = group_fold(data.groups[i], k, seed);
    for (std::size_t f = 0; f < k; ++f)
      (f == fold ? splits[f].test : splits[f].train).push_back(i);
  }
  return splits;
}

CvResult cross_validate(const Classifier& model, const Dataset& data,
                        const CvOptions& options) {
  static const obs::SiteId kCvSite = obs::intern_site("cv.cross_validate");
  obs::Span cv_span(kCvSite);
  const auto splits = group_k_fold(data, options.folds, options.seed);
  CvResult result;
  result.folds_requested = splits.size();

  // One fully independent task per fold: clone, transform, fit, score.
  // Everything a fold does is a pure function of (data, options, f), so
  // the outcome is identical whether folds run serially or concurrently.
  std::vector<double> fold_auc(splits.size());
  std::vector<char> fold_ok(splits.size(), 0);
  const auto eval_fold = [&](std::size_t f) {
    // One span per fold; the task carries the submitter's context, so
    // these nest under cv.cross_validate whichever thread runs them.
    static const obs::SiteId kFoldSite = obs::intern_site("cv.fold");
    obs::Span fold_span(kFoldSite);
    if (splits[f].train.empty() || splits[f].test.empty()) return;
    Dataset train = data.subset(splits[f].train);
    Dataset test = data.subset(splits[f].test);
    if (options.train_transform) train = options.train_transform(train, f);
    if (options.test_transform) test = options.test_transform(test, f);
    if (train.positives() == 0 || train.positives() == train.size()) return;
    if (test.positives() == 0 || test.positives() == test.size()) return;

    auto fold_model = model.clone();
    fold_model->fit(train);
    const auto scores = fold_model->predict_proba(test.x);
    const double auc = roc_auc(scores, test.y);
    if (std::isnan(auc)) return;
    fold_auc[f] = auc;
    fold_ok[f] = 1;
  };

  // Submit through a TaskGroup even for a 1-thread pool so the fold
  // bodies run *inside* the pool context: any nested parallel_for in a
  // model's fit/predict then stays within this pool's thread budget
  // instead of fanning out on the global pool.
  parallel::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : parallel::ThreadPool::current();
  parallel::TaskGroup group(pool);
  for (std::size_t f = 0; f < splits.size(); ++f) {
    group.submit([&eval_fold, f] { eval_fold(f); });
  }
  group.wait();

  // Collect in fold order so the result is independent of completion order.
  for (std::size_t f = 0; f < splits.size(); ++f) {
    if (fold_ok[f])
      result.fold_aucs.push_back(fold_auc[f]);
    else
      ++result.folds_skipped;
  }
  static obs::Counter& folds_counter = obs::MetricsRegistry::global().counter(
      "cv_folds_evaluated_total", {}, "non-degenerate folds scored by cross_validate");
  static obs::Counter& skipped_counter = obs::MetricsRegistry::global().counter(
      "cv_folds_skipped_total", {}, "degenerate folds skipped by cross_validate");
  folds_counter.inc(result.fold_aucs.size());
  skipped_counter.inc(result.folds_skipped);
  if (result.fold_aucs.empty())
    throw std::runtime_error(
        "cross_validate: all " + std::to_string(result.folds_requested) +
        " folds were degenerate (empty split or single-class train/test); "
        "the data cannot be cross-validated");
  return result;
}

}  // namespace ssdfail::ml
