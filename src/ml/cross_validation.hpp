#pragma once

// Group-aware k-fold cross-validation.
//
// Folds are assigned per GROUP (drive), not per row: the paper partitions
// drive IDs so no drive's days appear in both train and test (Section 5.1
// — drive days are highly autocorrelated, so row-level splits leak).

#include <cstdint>
#include <functional>

#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace ssdfail::ml {

/// Deterministic fold id for a group: hash-based, uniform across folds and
/// stable no matter which subset of groups is present.
[[nodiscard]] std::size_t group_fold(std::uint64_t group_id, std::size_t k,
                                     std::uint64_t seed);

/// Train/test row indices for one fold.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Build all k splits of `data` by group.
[[nodiscard]] std::vector<FoldSplit> group_k_fold(const Dataset& data, std::size_t k,
                                                  std::uint64_t seed);

/// Result of a cross-validated evaluation.
struct CvResult {
  std::vector<double> fold_aucs;
  [[nodiscard]] MeanSd auc() const { return mean_sd(fold_aucs); }
};

/// Optional per-fold set transforms (the paper's protocol downsamples the
/// training fold and may subsample the test fold).  Identity when empty.
struct CvOptions {
  std::size_t folds = 5;
  std::uint64_t seed = 5;
  std::function<Dataset(const Dataset&, std::size_t fold)> train_transform;
  std::function<Dataset(const Dataset&, std::size_t fold)> test_transform;
};

/// k-fold cross-validated ROC AUC of `model` on `data`.  The model is
/// cloned per fold (fresh state), trained on the transformed train fold,
/// and scored on the transformed test fold.  Folds whose test set lacks a
/// class are skipped.
[[nodiscard]] CvResult cross_validate(const Classifier& model, const Dataset& data,
                                      const CvOptions& options = {});

}  // namespace ssdfail::ml
