#pragma once

// Group-aware k-fold cross-validation — the paper's Table 6 evaluation
// protocol (Section 5.1).
//
// Folds are assigned per GROUP (drive), not per row: the paper partitions
// drive IDs so no drive's days appear in both train and test (Section 5.1
// — drive days are highly autocorrelated, so row-level splits leak).
//
// Folds evaluate in parallel: each fold is one thread-pool task (clone,
// transform, fit, score).  All per-fold randomness is derived from
// (seed, fold), so the result is bit-identical to the serial path at any
// thread count (pinned by tests/ml/test_parallel_training.cpp).

#include <cstdint>
#include <functional>

#include "ml/classifier.hpp"
#include "ml/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace ssdfail::ml {

/// Deterministic fold id for a group: hash-based, uniform across folds and
/// stable no matter which subset of groups is present.
[[nodiscard]] std::size_t group_fold(std::uint64_t group_id, std::size_t k,
                                     std::uint64_t seed);

/// Train/test row indices for one fold.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Build all k splits of `data` by group.
[[nodiscard]] std::vector<FoldSplit> group_k_fold(const Dataset& data, std::size_t k,
                                                  std::uint64_t seed);

/// Result of a cross-validated evaluation.
///
/// `fold_aucs` holds one entry per fold that actually evaluated;
/// `folds_skipped` counts degenerate folds (empty split, single-class
/// train/test after transforms, or NaN AUC) so callers can tell a true
/// k-fold result from a partial one.  Invariant:
/// fold_aucs.size() + folds_skipped == folds_requested.
struct CvResult {
  std::vector<double> fold_aucs;
  std::size_t folds_requested = 0;
  std::size_t folds_skipped = 0;
  [[nodiscard]] MeanSd auc() const { return mean_sd(fold_aucs); }
};

/// Optional per-fold set transforms (the paper's protocol downsamples the
/// training fold and may subsample the test fold).  Identity when empty.
struct CvOptions {
  std::size_t folds = 5;
  std::uint64_t seed = 5;
  std::function<Dataset(const Dataset&, std::size_t fold)> train_transform;
  std::function<Dataset(const Dataset&, std::size_t fold)> test_transform;
  /// Pool for fold-level parallelism; nullptr = the calling thread's
  /// current pool (ThreadPool::current()).  Transforms must be safe to
  /// call concurrently for distinct folds (pure functions of their
  /// arguments and the fold index, like the paper's seeded downsampler).
  parallel::ThreadPool* pool = nullptr;
};

/// k-fold cross-validated ROC AUC of `model` on `data`.  The model is
/// cloned per fold (fresh state), trained on the transformed train fold,
/// and scored on the transformed test fold.  Degenerate folds are skipped
/// and counted in CvResult::folds_skipped; if EVERY fold is degenerate the
/// data cannot be cross-validated at all and std::runtime_error is thrown
/// (never an empty result masquerading as a k-fold evaluation).
[[nodiscard]] CvResult cross_validate(const Classifier& model, const Dataset& data,
                                      const CvOptions& options = {});

}  // namespace ssdfail::ml
