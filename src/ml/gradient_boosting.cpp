#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }

/// Newton leaf value with L2 damping: sum(grad) / (sum(hess) + lambda).
double leaf_value(double grad_sum, double hess_sum) noexcept {
  constexpr double kLambda = 1.0;
  return grad_sum / (hess_sum + kLambda);
}

/// Minimum rows*features at a node before the candidate-split scan fans
/// out across the pool (same rationale as decision_tree.cpp).
constexpr std::size_t kMinParallelSplitWork = 1u << 15;

}  // namespace

double GradientBoosting::Tree::predict(std::span<const float> row) const {
  std::int32_t cur = 0;
  while (nodes[cur].feature != -1) {
    const Node& node = nodes[cur];
    cur = row[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                        : node.right;
  }
  return nodes[cur].value;
}

std::int32_t GradientBoosting::build_node(const Dataset& train,
                                          const std::vector<double>& grad,
                                          const std::vector<double>& hess,
                                          std::vector<std::size_t>& idx,
                                          std::size_t begin, std::size_t end,
                                          std::size_t depth, Tree& tree) {
  const std::size_t n = end - begin;
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    grad_sum += grad[idx[i]];
    hess_sum += hess[idx[i]];
  }

  const auto make_leaf = [&] {
    Node leaf;
    leaf.value = leaf_value(grad_sum, hess_sum);
    tree.nodes.push_back(leaf);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  };
  if (depth >= params_.max_depth || n < 2 * params_.min_samples_leaf) return make_leaf();

  // Best split by gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l).
  constexpr double kLambda = 1.0;
  const double parent_score = grad_sum * grad_sum / (hess_sum + kLambda);
  struct Best {
    double gain = 1e-10;
    std::size_t feature = 0;
    float threshold = 0.0f;
  } best;

  // Candidate features scan in parallel at big nodes; partials merge in
  // feature order with a strictly-greater comparison, reproducing the
  // serial first-wins loop bit-for-bit (same pattern as decision_tree).
  const auto scan_feature = [&](Best& acc, std::vector<std::pair<float, std::size_t>>& vals,
                                std::size_t f) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i)
      vals.emplace_back(train.x(idx[i], f), idx[i]);
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) return;

    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      gl += grad[vals[i].second];
      hl += hess[vals[i].second];
      if (vals[i].first == vals[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) continue;
      const double gr = grad_sum - gl;
      const double hr = hess_sum - hl;
      const double gain = gl * gl / (hl + kLambda) + gr * gr / (hr + kLambda) -
                          parent_score;
      if (gain > acc.gain) {
        acc.gain = gain;
        acc.feature = f;
        acc.threshold = 0.5f * (vals[i].first + vals[i + 1].first);
      }
    }
  };

  parallel::ThreadPool& pool = parallel::ThreadPool::current();
  if (n * n_features_ >= kMinParallelSplitWork && pool.size() > 1 &&
      !pool.on_worker_thread()) {
    struct Scan {
      Best best;
      std::vector<std::pair<float, std::size_t>> vals;
    };
    best = parallel::parallel_reduce(
               n_features_, [] { return Scan{}; },
               [&](Scan& acc, std::size_t f) { scan_feature(acc.best, acc.vals, f); },
               [](Scan& dst, const Scan& src) {
                 if (src.best.gain > dst.best.gain) dst.best = src.best;
               },
               pool)
               .best;
  } else {
    std::vector<std::pair<float, std::size_t>> vals;
    vals.reserve(n);
    for (std::size_t f = 0; f < n_features_; ++f) scan_feature(best, vals, f);
  }
  if (best.gain <= 1e-9) return make_leaf();

  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return train.x(row, best.feature) <= best.threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return make_leaf();

  importance_[best.feature] += best.gain;

  const auto node_id = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[node_id].feature = static_cast<std::int32_t>(best.feature);
  tree.nodes[node_id].threshold = best.threshold;
  const std::int32_t left = build_node(train, grad, hess, idx, begin, mid, depth + 1, tree);
  const std::int32_t right = build_node(train, grad, hess, idx, mid, end, depth + 1, tree);
  tree.nodes[node_id].left = left;
  tree.nodes[node_id].right = right;
  return node_id;
}

void GradientBoosting::fit(const Dataset& train) {
  static const obs::SiteId kFitSite = obs::intern_site("boosting.fit");
  obs::Span fit_span(kFitSite);
  train.validate();
  const std::size_t n = train.size();
  if (n == 0) throw std::invalid_argument("GradientBoosting: empty train set");
  n_features_ = train.x.cols();
  importance_.assign(n_features_, 0.0);
  trees_.clear();

  const double pos = static_cast<double>(train.positives());
  const double base = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  prior_ = std::log(base / (1.0 - base));

  std::vector<double> score(n, prior_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  stats::Rng rng(params_.seed);

  static obs::Counter& rounds_counter = obs::MetricsRegistry::global().counter(
      "boosting_rounds_total", {}, "boosting rounds (trees) fitted");
  for (std::size_t round = 0; round < params_.n_rounds; ++round) {
    static const obs::SiteId kRoundSite = obs::intern_site("boosting.round");
    obs::Span round_span(kRoundSite);
    rounds_counter.inc();
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(score[i]);
      grad[i] = static_cast<double>(train.y[i]) - p;  // negative gradient
      hess[i] = std::max(p * (1.0 - p), 1e-12);
    }

    // Stochastic row subsample for this round.
    std::vector<std::size_t> idx;
    idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      if (params_.subsample >= 1.0 || rng.bernoulli(params_.subsample))
        idx.push_back(i);
    if (idx.size() < 2 * params_.min_samples_leaf) {
      idx.resize(n);
      std::iota(idx.begin(), idx.end(), std::size_t{0});
    }

    Tree tree;
    build_node(train, grad, hess, idx, 0, idx.size(), 0, tree);
    // Update scores with the damped tree output (ALL rows, not just the
    // subsample — the tree generalizes its Newton steps).  Per-row and
    // order-independent, so the parallel update is bit-identical.
    parallel::parallel_for(n, [&](std::size_t i) {
      score[i] += params_.learning_rate * tree.predict(train.x.row(i));
    });
    trees_.push_back(std::move(tree));
  }
}

std::vector<float> GradientBoosting::predict_proba(const Matrix& x) const {
  if (trees_.empty()) throw std::logic_error("GradientBoosting: predict before fit");
  std::vector<float> out(x.rows());
  parallel::parallel_for(x.rows(), [&](std::size_t r) {
    double score = prior_;
    const auto row = x.row(r);
    for (const Tree& tree : trees_) score += params_.learning_rate * tree.predict(row);
    out[r] = static_cast<float>(sigmoid(score));
  });
  return out;
}

std::vector<double> GradientBoosting::feature_importance() const {
  if (trees_.empty()) throw std::logic_error("GradientBoosting: importance before fit");
  std::vector<double> normalized = importance_;
  const double total = std::accumulate(normalized.begin(), normalized.end(), 0.0);
  if (total > 0.0)
    for (double& v : normalized) v /= total;
  return normalized;
}

}  // namespace ssdfail::ml
