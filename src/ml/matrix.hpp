#pragma once

// Dense row-major float matrix — the feature-matrix currency of ssdfail::ml
// (every Section 5 experiment moves features through it).  float storage
// halves memory for the multi-million-row evaluation sets; all reductions
// accumulate in double.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace ssdfail::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Append a row (must match cols; sets cols on the first append).
  void push_row(std::span<const float> values);

  /// Append all rows of another matrix (widths must match, or this empty).
  void append_rows(const Matrix& other);

  /// New matrix containing the given rows, in the given order.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> indices) const;

  [[nodiscard]] const std::vector<float>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ssdfail::ml
