#include "ml/model_zoo.hpp"

#include <stdexcept>

#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/neural_net.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "ml/threshold_baseline.hpp"

namespace ssdfail::ml {

const std::vector<ModelKind>& paper_models() {
  static const std::vector<ModelKind> kModels = {
      ModelKind::kLogisticRegression, ModelKind::kKnn,
      ModelKind::kSvm,                ModelKind::kNeuralNetwork,
      ModelKind::kDecisionTree,       ModelKind::kRandomForest};
  return kModels;
}

std::string model_display_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression: return "Logistic Reg.";
    case ModelKind::kKnn: return "k-NN";
    case ModelKind::kSvm: return "SVM";
    case ModelKind::kNeuralNetwork: return "Neural Network";
    case ModelKind::kDecisionTree: return "Decision Tree";
    case ModelKind::kRandomForest: return "Random Forest";
    case ModelKind::kThresholdBaseline: return "Threshold Baseline";
  }
  return "?";
}

std::unique_ptr<Classifier> make_model(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>(LogisticRegression::Params{1e-3, 0.5, 300});
    case ModelKind::kKnn:
      return std::make_unique<KNearestNeighbors>(KNearestNeighbors::Params{15, true});
    case ModelKind::kSvm:
      return std::make_unique<LinearSvm>(LinearSvm::Params{1e-4, 30, seed});
    case ModelKind::kNeuralNetwork:
      return std::make_unique<NeuralNetwork>(
          NeuralNetwork::Params{{32, 16}, 1e-3, 1e-5, 40, 64, seed});
    case ModelKind::kDecisionTree: {
      DecisionTree::Params p;
      p.max_depth = 10;
      p.min_samples_leaf = 8;
      p.min_samples_split = 16;
      p.seed = seed;
      return std::make_unique<DecisionTree>(p);
    }
    case ModelKind::kRandomForest: {
      RandomForest::Params p;
      p.n_trees = 100;
      p.max_depth = 14;
      p.seed = seed;
      return std::make_unique<RandomForest>(p);
    }
    case ModelKind::kThresholdBaseline:
      return std::make_unique<ThresholdBaseline>();
  }
  throw std::invalid_argument("make_model: unknown kind");
}

std::vector<Candidate> model_grid(ModelKind kind, std::uint64_t seed) {
  std::vector<Candidate> grid;
  switch (kind) {
    case ModelKind::kLogisticRegression:
      for (double l2 : {1e-4, 1e-3, 1e-2})
        grid.push_back({"lr_l2=" + std::to_string(l2), [=] {
                          return std::make_unique<LogisticRegression>(
                              LogisticRegression::Params{l2, 0.5, 300});
                        }});
      break;
    case ModelKind::kKnn:
      for (std::size_t k : {5, 15, 31})
        grid.push_back({"knn_k=" + std::to_string(k), [=] {
                          return std::make_unique<KNearestNeighbors>(
                              KNearestNeighbors::Params{k, true});
                        }});
      break;
    case ModelKind::kSvm:
      for (double lambda : {1e-5, 1e-4, 1e-3})
        grid.push_back({"svm_lambda=" + std::to_string(lambda), [=] {
                          return std::make_unique<LinearSvm>(
                              LinearSvm::Params{lambda, 30, seed});
                        }});
      break;
    case ModelKind::kNeuralNetwork:
      for (std::size_t width : {16, 32, 64})
        grid.push_back({"nn_width=" + std::to_string(width), [=] {
                          return std::make_unique<NeuralNetwork>(NeuralNetwork::Params{
                              {width, width / 2}, 1e-3, 1e-5, 40, 64, seed});
                        }});
      break;
    case ModelKind::kDecisionTree:
      for (std::size_t depth : {6, 10, 14}) {
        DecisionTree::Params p;
        p.max_depth = depth;
        p.min_samples_leaf = 8;
        p.min_samples_split = 16;
        p.seed = seed;
        grid.push_back({"tree_depth=" + std::to_string(depth),
                        [=] { return std::make_unique<DecisionTree>(p); }});
      }
      break;
    case ModelKind::kRandomForest:
      for (std::size_t depth : {10, 14, 18}) {
        RandomForest::Params p;
        p.n_trees = 100;
        p.max_depth = depth;
        p.seed = seed;
        grid.push_back({"rf_depth=" + std::to_string(depth),
                        [=] { return std::make_unique<RandomForest>(p); }});
      }
      break;
    case ModelKind::kThresholdBaseline:
      grid.push_back({"threshold", [] { return std::make_unique<ThresholdBaseline>(); }});
      break;
  }
  return grid;
}

std::shared_ptr<const Classifier> make_serving_model(
    std::shared_ptr<const Classifier> model) {
  if (!model) return model;
  if (inference_engine() != InferenceEngine::kFlat) return model;
  if (dynamic_cast<const FlatForestClassifier*>(model.get()) != nullptr) return model;
  if (const auto* rf = dynamic_cast<const RandomForest*>(model.get())) {
    if (rf->tree_count() == 0) return model;  // unfitted: nothing to compile
    return std::make_shared<const FlatForestClassifier>(std::move(model));
  }
  if (const auto* gb = dynamic_cast<const GradientBoosting*>(model.get())) {
    if (gb->rounds_fitted() == 0) return model;
    return std::make_shared<const FlatForestClassifier>(std::move(model));
  }
  return model;
}

}  // namespace ssdfail::ml
