#pragma once

// The paper's six predictors (Table 6) behind one factory, plus the small
// hyperparameter grids Section 5.2 describes searching over.

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/grid_search.hpp"

namespace ssdfail::ml {

enum class ModelKind {
  kLogisticRegression,
  kKnn,
  kSvm,
  kNeuralNetwork,
  kDecisionTree,
  kRandomForest,
  kThresholdBaseline,  // extra: the statistical baseline
};

/// The six models of Table 6, in the paper's row order.
[[nodiscard]] const std::vector<ModelKind>& paper_models();

/// Display name matching the paper's Table 6 rows.
[[nodiscard]] std::string model_display_name(ModelKind kind);

/// A model with reasonable defaults (the configurations the grids settle
/// on for this data).
[[nodiscard]] std::unique_ptr<Classifier> make_model(ModelKind kind,
                                                     std::uint64_t seed = 1);

/// The hyperparameter grid for one model kind (for grid_search()).
[[nodiscard]] std::vector<Candidate> model_grid(ModelKind kind, std::uint64_t seed = 1);

/// Wrap a fitted model for serving: when the selected inference engine is
/// `flat` and `model` is a fitted tree ensemble (RandomForest or
/// GradientBoosting), returns a FlatForestClassifier compiled from it;
/// anything else (walker engine, non-ensemble classifiers, unfitted
/// models, already-wrapped models, null) passes through unchanged.
/// Scores are bit-identical either way — this only changes speed.
[[nodiscard]] std::shared_ptr<const Classifier> make_serving_model(
    std::shared_ptr<const Classifier> model);

}  // namespace ssdfail::ml
