#include "ml/logistic.hpp"

#include <cmath>
#include <stdexcept>

namespace ssdfail::ml {
namespace {

double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void LogisticRegression::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("LogisticRegression: empty train set");
  Matrix x = train.x;  // standardized working copy
  scaler_.fit(x);
  scaler_.transform(x);

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> vel_w(d, 0.0);
  double vel_b = 0.0;
  const double momentum = 0.9;
  const double inv_n = 1.0 / static_cast<double>(n);

  std::vector<double> grad(d);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = x.row(r);
      double z = bias_;
      for (std::size_t c = 0; c < d; ++c) z += weights_[c] * row[c];
      const double err = sigmoid(z) - static_cast<double>(train.y[r]);
      for (std::size_t c = 0; c < d; ++c) grad[c] += err * row[c];
      grad_b += err;
    }
    for (std::size_t c = 0; c < d; ++c) {
      const double g = grad[c] * inv_n + params_.l2 * weights_[c];
      vel_w[c] = momentum * vel_w[c] - params_.learning_rate * g;
      weights_[c] += vel_w[c];
    }
    vel_b = momentum * vel_b - params_.learning_rate * grad_b * inv_n;
    bias_ += vel_b;
  }
}

std::vector<float> LogisticRegression::predict_proba(const Matrix& x) const {
  if (!scaler_.fitted()) throw std::logic_error("LogisticRegression: predict before fit");
  std::vector<float> out(x.rows());
  std::vector<float> row_buf(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    std::copy(row.begin(), row.end(), row_buf.begin());
    scaler_.transform_row(row_buf);
    double z = bias_;
    for (std::size_t c = 0; c < row_buf.size(); ++c) z += weights_[c] * row_buf[c];
    out[r] = static_cast<float>(sigmoid(z));
  }
  return out;
}

}  // namespace ssdfail::ml
