#pragma once

// k-nearest-neighbors — the "KNN" row of Table 6 — on standardized
// features; the predicted probability is the distance-weighted positive
// fraction among the k neighbors.  Prediction parallelizes across query
// rows.

#include "ml/classifier.hpp"
#include "ml/standardizer.hpp"

namespace ssdfail::ml {

class KNearestNeighbors final : public Classifier {
 public:
  struct Params {
    std::size_t k = 15;
    bool distance_weighted = true;
  };

  KNearestNeighbors() = default;
  explicit KNearestNeighbors(Params params) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<KNearestNeighbors>(params_);
  }

 private:
  Params params_{};
  Standardizer scaler_;
  Matrix train_x_;          ///< standardized training features
  std::vector<float> train_y_;
};

}  // namespace ssdfail::ml
