#pragma once

// Gradient-boosted decision trees on the logistic loss — an EXTENSION
// beyond the paper's six models (Section 6 surveys ML failure predictors;
// boosting is the modern default for tabular telemetry).  Compared in
// bench_ext_boosting against the paper's random forest.
//
// Standard formulation: F_0 = prior log-odds; each round fits a small
// regression tree to the negative gradient (residual y - p) and updates
// leaf values with a single Newton step, damped by the learning rate.

#include <cstdint>

#include "ml/classifier.hpp"

namespace ssdfail::ml {

/// Regression tree used as the boosting base learner (variance-reduction
/// splits, Newton leaf values supplied by the booster).
class BoostedTreeStump;

class GradientBoosting final : public Classifier {
 public:
  struct Params {
    std::size_t n_rounds = 150;
    std::size_t max_depth = 4;
    std::size_t min_samples_leaf = 8;
    double learning_rate = 0.15;
    /// Row subsampling per round (stochastic gradient boosting).
    double subsample = 0.7;
    std::uint64_t seed = 1;
  };

  GradientBoosting() = default;
  explicit GradientBoosting(Params params) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "gradient_boosting"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<GradientBoosting>(params_);
  }

  [[nodiscard]] std::size_t rounds_fitted() const noexcept { return trees_.size(); }

  /// Total squared-gradient gain attributed to each feature, normalized.
  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  friend struct ModelSerializer;     // binary save/load (ml/serialize.hpp)
  friend struct FlatForestCompiler;  // compiled engine (ml/flat_forest.hpp)

  struct Node {
    std::int32_t feature = -1;   // -1: leaf
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;          // leaf output (log-odds increment)
  };
  struct Tree {
    std::vector<Node> nodes;
    [[nodiscard]] double predict(std::span<const float> row) const;
  };

  /// Recursively build one regression tree on (gradient, hessian) targets.
  std::int32_t build_node(const Dataset& train, const std::vector<double>& grad,
                          const std::vector<double>& hess,
                          std::vector<std::size_t>& idx, std::size_t begin,
                          std::size_t end, std::size_t depth, Tree& tree);

  Params params_{};
  double prior_ = 0.0;  // F_0: log-odds of the base rate
  std::vector<Tree> trees_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

}  // namespace ssdfail::ml
