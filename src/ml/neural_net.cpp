#include "ml/neural_net.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/rng.hpp"

namespace ssdfail::ml {
namespace {

double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double NeuralNetwork::forward(std::span<const float> row,
                              std::vector<std::vector<double>>& acts) const {
  acts.resize(layers_.size() + 1);
  acts[0].assign(row.begin(), row.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    acts[l + 1].assign(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.b[o];
      const double* wrow = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * acts[l][i];
      // ReLU on hidden layers, identity on the output (sigmoid applied by
      // the caller so the loss gradient stays simple).
      acts[l + 1][o] = (l + 1 == layers_.size()) ? z : std::max(z, 0.0);
    }
  }
  return sigmoid(acts.back()[0]);
}

void NeuralNetwork::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("NeuralNetwork: empty train set");
  Matrix x = train.x;
  scaler_.fit(x);
  scaler_.transform(x);

  const std::size_t d = x.cols();
  stats::Rng rng(params_.seed);

  // Build layer stack: d -> hidden... -> 1, He-initialized.
  layers_.clear();
  std::size_t in = d;
  auto add_layer = [&](std::size_t out) {
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.w.resize(in * out);
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (double& w : layer.w) w = rng.normal(0.0, scale);
    layer.b.assign(out, 0.0);
    layer.mw.assign(in * out, 0.0);
    layer.vw.assign(in * out, 0.0);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layers_.push_back(std::move(layer));
    in = out;
  };
  for (std::size_t h : params_.hidden) add_layer(h);
  add_layer(1);

  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  constexpr double beta1 = 0.9;
  constexpr double beta2 = 0.999;
  constexpr double eps = 1e-8;
  std::uint64_t adam_t = 0;

  std::vector<std::vector<double>> acts;
  std::vector<std::vector<double>> deltas(layers_.size());
  // Per-batch gradient accumulators mirroring the layer shapes.
  std::vector<std::vector<double>> gw(layers_.size());
  std::vector<std::vector<double>> gb(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    gw[l].resize(layers_[l].w.size());
    gb[l].resize(layers_[l].b.size());
  }

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    // Fisher-Yates with our deterministic rng.
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform_index(i));
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t start = 0; start < n; start += params_.batch_size) {
      const std::size_t end = std::min(start + params_.batch_size, n);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        std::fill(gw[l].begin(), gw[l].end(), 0.0);
        std::fill(gb[l].begin(), gb[l].end(), 0.0);
      }

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t r = order[bi];
        const double p = forward(x.row(r), acts);
        // BCE + sigmoid gradient at the output.
        const double dl = p - static_cast<double>(train.y[r]);
        deltas.back().assign(1, dl);
        // Backpropagate.
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          if (l > 0) {
            deltas[l - 1].assign(layer.in, 0.0);
            for (std::size_t o = 0; o < layer.out; ++o) {
              const double dz = deltas[l][o];
              const double* wrow = layer.w.data() + o * layer.in;
              for (std::size_t i = 0; i < layer.in; ++i)
                deltas[l - 1][i] += dz * wrow[i];
            }
            // ReLU derivative of the upstream activation.
            for (std::size_t i = 0; i < layer.in; ++i)
              if (acts[l][i] <= 0.0) deltas[l - 1][i] = 0.0;
          }
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double dz = deltas[l][o];
            double* grow = gw[l].data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) grow[i] += dz * acts[l][i];
            gb[l][o] += dz;
          }
        }
      }

      // Adam update.
      ++adam_t;
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(adam_t));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(adam_t));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.w.size(); ++k) {
          const double g = gw[l][k] * inv_batch + params_.l2 * layer.w[k];
          layer.mw[k] = beta1 * layer.mw[k] + (1.0 - beta1) * g;
          layer.vw[k] = beta2 * layer.vw[k] + (1.0 - beta2) * g * g;
          layer.w[k] -= params_.learning_rate * (layer.mw[k] / bc1) /
                        (std::sqrt(layer.vw[k] / bc2) + eps);
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          const double g = gb[l][k] * inv_batch;
          layer.mb[k] = beta1 * layer.mb[k] + (1.0 - beta1) * g;
          layer.vb[k] = beta2 * layer.vb[k] + (1.0 - beta2) * g * g;
          layer.b[k] -= params_.learning_rate * (layer.mb[k] / bc1) /
                        (std::sqrt(layer.vb[k] / bc2) + eps);
        }
      }
    }
  }
}

std::vector<float> NeuralNetwork::predict_proba(const Matrix& x) const {
  if (!scaler_.fitted()) throw std::logic_error("NeuralNetwork: predict before fit");
  std::vector<float> out(x.rows());
  std::vector<std::vector<double>> acts;
  std::vector<float> row_buf(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    std::copy(row.begin(), row.end(), row_buf.begin());
    scaler_.transform_row(row_buf);
    out[r] = static_cast<float>(forward(row_buf, acts));
  }
  return out;
}

}  // namespace ssdfail::ml
