#include "ml/dataset.hpp"

#include <stdexcept>

namespace ssdfail::ml {

std::size_t Dataset::positives() const noexcept {
  std::size_t n = 0;
  for (float v : y)
    if (v > 0.5f) ++n;
  return n;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.x = x.select_rows(indices);
  out.y.reserve(indices.size());
  out.groups.reserve(indices.size());
  for (std::size_t i : indices) {
    out.y.push_back(y[i]);
    out.groups.push_back(groups[i]);
  }
  out.feature_names = feature_names;
  return out;
}

void Dataset::validate() const {
  if (x.rows() != y.size() || y.size() != groups.size())
    throw std::invalid_argument("Dataset: row count mismatch");
  if (!feature_names.empty() && feature_names.size() != x.cols())
    throw std::invalid_argument("Dataset: feature name count mismatch");
}

}  // namespace ssdfail::ml
