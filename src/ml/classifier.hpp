#pragma once

// The common binary-classifier interface.
//
// All six of the paper's predictors (Table 6) plus the threshold baseline
// implement it.  predict_proba returns a score in [0, 1] interpretable as P(failure
// within N days | features); the ROC machinery sweeps the discrimination
// threshold over these scores.

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace ssdfail::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the given dataset.  Must be callable repeatedly (refits).
  virtual void fit(const Dataset& train) = 0;

  /// Per-row probability-like scores in [0, 1].  Requires a prior fit().
  [[nodiscard]] virtual std::vector<float> predict_proba(const Matrix& x) const = 0;

  /// Human-readable model name ("random_forest", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh, unfitted copy with identical hyperparameters (for CV folds).
  [[nodiscard]] virtual std::unique_ptr<Classifier> clone() const = 0;
};

}  // namespace ssdfail::ml
