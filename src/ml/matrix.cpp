#include "ml/matrix.hpp"

#include <stdexcept>

namespace ssdfail::ml {

void Matrix::push_row(std::span<const float> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  if (values.size() != cols_) throw std::invalid_argument("Matrix::push_row: width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::append_rows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0 && cols_ == 0) cols_ = other.cols_;
  if (other.cols_ != cols_) throw std::invalid_argument("Matrix::append_rows: width mismatch");
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

}  // namespace ssdfail::ml
