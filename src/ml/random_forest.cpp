#include "ml/random_forest.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace ssdfail::ml {

void RandomForest::fit(const Dataset& train) {
  static const obs::SiteId kFitSite = obs::intern_site("forest.fit");
  obs::Span fit_span(kFitSite);
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("RandomForest: empty train set");
  n_features_ = train.x.cols();

  DecisionTree::Params tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.min_samples_split = params_.min_samples_split;
  tree_params.max_features =
      params_.max_features > 0
          ? params_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n_features_))));

  trees_.assign(params_.n_trees, DecisionTree(tree_params));
  const std::size_t n = train.size();

  static obs::Counter& trees_counter = obs::MetricsRegistry::global().counter(
      "forest_trees_fitted_total", {}, "bootstrap trees fitted by RandomForest");
  parallel::parallel_for(params_.n_trees, [&](std::size_t t) {
    static const obs::SiteId kTreeSite = obs::intern_site("forest.tree");
    obs::Span tree_span(kTreeSite);
    trees_counter.inc();
    stats::Rng rng({params_.seed, 0x7265657473ULL /*'trees'*/, t});
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> sample(n);
    for (std::size_t i = 0; i < n; ++i)
      sample[i] = static_cast<std::size_t>(rng.uniform_index(n));
    DecisionTree::Params p = tree_params;
    p.seed = stats::hash_keys({params_.seed, 0x73706c6974ULL /*'split'*/, t});
    trees_[t] = DecisionTree(p);
    trees_[t].fit_on(train, std::move(sample));
  });
}

std::vector<float> RandomForest::predict_proba(const Matrix& x) const {
  return predict_proba(x, parallel::ThreadPool::current());
}

std::vector<float> RandomForest::predict_proba(const Matrix& x,
                                               parallel::ThreadPool& pool) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: predict before fit");
  std::vector<float> out(x.rows(), 0.0f);
  const auto score_row = [&](std::size_t r) {
    double sum = 0.0;
    const auto row = x.row(r);
    for (const DecisionTree& tree : trees_) sum += tree.predict_row(row);
    out[r] = static_cast<float>(sum / static_cast<double>(trees_.size()));
  };
  // Tiny batches (the single-drive observe path) skip pool dispatch; rows
  // score independently, so serial and parallel outputs are bit-identical.
  if (x.rows() < kSerialPredictRows || pool.size() <= 1) {
    for (std::size_t r = 0; r < x.rows(); ++r) score_row(r);
    return out;
  }
  parallel::parallel_for(x.rows(), score_row, pool);
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  if (trees_.empty()) throw std::logic_error("RandomForest: importance before fit");
  std::vector<double> total(n_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& imp = tree.impurity_importance();
    for (std::size_t f = 0; f < n_features_; ++f) total[f] += imp[f];
  }
  const double sum = std::accumulate(total.begin(), total.end(), 0.0);
  if (sum > 0.0)
    for (double& v : total) v /= sum;
  return total;
}

}  // namespace ssdfail::ml
