#pragma once

// Linear SVM — the "SVM" row of Table 6 — trained with the Pegasos primal
// SGD solver on standardized features.  Scores are passed through a sigmoid so predict_proba stays in
// [0, 1]; ROC is invariant to that monotone map.

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/standardizer.hpp"

namespace ssdfail::ml {

class LinearSvm final : public Classifier {
 public:
  struct Params {
    double lambda = 1e-4;    ///< regularization strength
    int epochs = 30;         ///< passes over the training set
    std::uint64_t seed = 1;  ///< SGD sampling seed
  };

  LinearSvm() = default;
  explicit LinearSvm(Params params) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "linear_svm"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<LinearSvm>(params_);
  }

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  Params params_{};
  Standardizer scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace ssdfail::ml
