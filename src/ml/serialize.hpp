#pragma once

// Versioned binary model persistence: train once, serve forever (beyond
// the paper — the deployment path for its Table 6 models).
//
// Same envelope discipline as trace/binary_io: a 4-byte magic ("SSDM"), a
// u32 format version, then a u8 model-kind tag and the model body.
// Little-endian, raw IEEE-754 payloads — a save/load round trip is
// bit-exact, so a deserialized model reproduces predict_proba outputs
// identically (pinned by tests/ml/test_serialize.cpp).
//
// Version history:
//   v1 — random forest, logistic regression (with its Standardizer),
//        standalone Standardizer.
//   v2 — adds gradient boosting (kind 4) and, after every tree-ensemble
//        body, a compiled-engine manifest: node/tree counts, max depth,
//        and the FlatForest structural hash.  Loaders recompile the flat
//        engine from the walker body and verify it against the manifest,
//        so any tree-body corruption that still parses is rejected
//        instead of served.  v1 files load unchanged (no manifest).
//
// Covered models are the ones the serving path needs: the paper's headline
// random forest, gradient boosting, logistic regression, and a standalone
// Standardizer for external pipelines.

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/logistic.hpp"
#include "ml/random_forest.hpp"
#include "ml/standardizer.hpp"

namespace ssdfail::ml {

/// Current model-file format version (readers accept 1 and 2).
inline constexpr std::uint32_t kModelFormatVersion = 2;

/// Stable on-disk model-kind ids (append-only; never renumber).
enum class SavedModelKind : std::uint8_t {
  kRandomForest = 1,
  kLogisticRegression = 2,
  kStandardizer = 3,
  kGradientBoosting = 4,  // v2+
};

/// Serialize a fitted model.  Throws std::logic_error if unfitted.
void save_model(std::ostream& out, const RandomForest& model);
void save_model(std::ostream& out, const GradientBoosting& model);
void save_model(std::ostream& out, const LogisticRegression& model);
void save_model(std::ostream& out, const Standardizer& scaler);

/// Deserialize a model of a known kind.  Throws std::runtime_error on bad
/// magic, unsupported version, kind mismatch, a truncated/corrupt body, or
/// (v2 ensembles) an engine manifest that does not match the recompiled
/// flat engine.
[[nodiscard]] RandomForest load_random_forest(std::istream& in);
[[nodiscard]] GradientBoosting load_gradient_boosting(std::istream& in);
[[nodiscard]] LogisticRegression load_logistic_regression(std::istream& in);
[[nodiscard]] Standardizer load_standardizer(std::istream& in);

/// Deserialize whichever classifier the stream holds (forest, boosting,
/// or logistic), dispatching on the kind tag.  Throws std::runtime_error
/// for a non-classifier payload (e.g. a standalone Standardizer).
[[nodiscard]] std::unique_ptr<Classifier> load_classifier(std::istream& in);

/// Atomically persist a model to `path`: the bytes are written to
/// `path + ".tmp"` and renamed over the target only once the full write
/// succeeded, so a crash or full disk mid-write leaves either the previous
/// file or no file — never a truncated model a reader could load half of.
/// Throws std::runtime_error (after removing the temp file) on any failure.
void save_model_file(const std::string& path, const RandomForest& model);
void save_model_file(const std::string& path, const GradientBoosting& model);
void save_model_file(const std::string& path, const LogisticRegression& model);

/// Load whichever classifier `path` holds.  Throws std::runtime_error on a
/// missing, truncated, or corrupt file.
[[nodiscard]] std::unique_ptr<Classifier> load_classifier_file(const std::string& path);

/// Load a classifier and wrap it for serving (make_serving_model): tree
/// ensembles come back compiled to the flat engine when that engine is
/// selected.  The serve CLI and monitor bootstrap use this.
[[nodiscard]] std::shared_ptr<const Classifier> load_serving_classifier_file(
    const std::string& path);

}  // namespace ssdfail::ml
