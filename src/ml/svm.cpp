#include "ml/svm.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace ssdfail::ml {

void LinearSvm::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0) throw std::invalid_argument("LinearSvm: empty train set");
  Matrix x = train.x;
  scaler_.fit(x);
  scaler_.transform(x);

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  stats::Rng rng(params_.seed);
  const double lambda = params_.lambda;
  std::uint64_t t = 0;
  const std::uint64_t steps = static_cast<std::uint64_t>(params_.epochs) * n;
  for (std::uint64_t step = 0; step < steps; ++step) {
    ++t;
    const auto i = static_cast<std::size_t>(rng.uniform_index(n));
    const auto row = x.row(i);
    const double yi = train.y[i] > 0.5f ? 1.0 : -1.0;
    double margin = bias_;
    for (std::size_t c = 0; c < d; ++c) margin += weights_[c] * row[c];
    const double eta = 1.0 / (lambda * static_cast<double>(t));
    // Shrink step (regularization applies to w only, not the bias).
    const double shrink = 1.0 - eta * lambda;
    for (std::size_t c = 0; c < d; ++c) weights_[c] *= shrink;
    if (yi * margin < 1.0) {
      for (std::size_t c = 0; c < d; ++c) weights_[c] += eta * yi * row[c];
      bias_ += eta * yi * 0.1;  // damped bias update keeps Pegasos stable
    }
  }
}

std::vector<float> LinearSvm::predict_proba(const Matrix& x) const {
  if (!scaler_.fitted()) throw std::logic_error("LinearSvm: predict before fit");
  std::vector<float> out(x.rows());
  std::vector<float> row_buf(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    std::copy(row.begin(), row.end(), row_buf.begin());
    scaler_.transform_row(row_buf);
    double margin = bias_;
    for (std::size_t c = 0; c < row_buf.size(); ++c) margin += weights_[c] * row_buf[c];
    out[r] = static_cast<float>(1.0 / (1.0 + std::exp(-margin)));
  }
  return out;
}

}  // namespace ssdfail::ml
