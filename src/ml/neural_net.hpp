#pragma once

// Multilayer perceptron — the "NN" row of Table 6: ReLU hidden layers,
// sigmoid output, binary cross-entropy loss, Adam optimizer, mini-batch
// training with a seeded shuffle — deterministic for fixed parameters.

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/standardizer.hpp"

namespace ssdfail::ml {

class NeuralNetwork final : public Classifier {
 public:
  struct Params {
    std::vector<std::size_t> hidden = {32, 16};  ///< hidden layer widths
    double learning_rate = 1e-3;
    double l2 = 1e-5;
    int epochs = 40;
    std::size_t batch_size = 64;
    std::uint64_t seed = 1;
  };

  NeuralNetwork() = default;
  explicit NeuralNetwork(Params params) : params_(std::move(params)) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "neural_network"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<NeuralNetwork>(params_);
  }

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;  ///< out x in, row-major
    std::vector<double> b;
    // Adam state
    std::vector<double> mw, vw, mb, vb;
  };

  /// Forward pass for one (standardized) row; fills per-layer activations.
  double forward(std::span<const float> row, std::vector<std::vector<double>>& acts) const;

  Params params_{};
  Standardizer scaler_;
  std::vector<Layer> layers_;
};

}  // namespace ssdfail::ml
