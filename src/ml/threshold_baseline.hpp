#pragma once

// Single-feature threshold predictor — the statistical baseline the paper
// contrasts ML models against ("no single metric triggers a drive failure
// after it reaches a certain threshold", Section 1; threshold prediction
// per Ma et al. / RAIDShield).
//
// fit() picks the feature (and orientation) whose raw values best rank the
// training labels (maximum AUC); predict scores are that feature's values
// squashed to [0, 1].  Its weakness on this problem is itself a reproduced
// result (see bench_ablation_baseline).

#include "ml/classifier.hpp"

namespace ssdfail::ml {

class ThresholdBaseline final : public Classifier {
 public:
  void fit(const Dataset& train) override;
  [[nodiscard]] std::vector<float> predict_proba(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "threshold_baseline"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<ThresholdBaseline>();
  }

  [[nodiscard]] std::size_t chosen_feature() const noexcept { return feature_; }
  [[nodiscard]] bool inverted() const noexcept { return inverted_; }

 private:
  std::size_t feature_ = 0;
  bool inverted_ = false;
  float lo_ = 0.0f;   ///< squashing range learned from training values
  float hi_ = 1.0f;
  bool fitted_ = false;
};

}  // namespace ssdfail::ml
