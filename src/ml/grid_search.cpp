#include "ml/grid_search.hpp"

#include <stdexcept>

namespace ssdfail::ml {

GridSearchResult grid_search(const std::vector<Candidate>& candidates,
                             const std::function<double(const Classifier&)>& score) {
  if (candidates.empty()) throw std::invalid_argument("grid_search: no candidates");
  GridSearchResult result;
  result.best_score = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto model = candidates[i].make();
    const double s = score(*model);
    result.scores.push_back(s);
    if (s > result.best_score) {
      result.best_score = s;
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace ssdfail::ml
