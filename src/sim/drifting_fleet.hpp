#pragma once

// Drifting-regime fleet generation: the adversary of the online-learning
// loop (src/online), and the workload of the drift-gate CI job.
//
// A real fleet does not drift smoothly — it drifts in COHORTS: a new drive
// batch (new flash vendor, new firmware) deploys from some day onward with
// different workload, error, and hazard characteristics (PAPERS.md, Han et
// al.: distribution shift across drive batches dominates predictor decay).
// This generator models exactly that: drives are split per model into a
// baseline cohort (the calibrated presets, deployed on the normal
// staggered schedule) and a drifted cohort whose DriveModelSpec is scaled
// by DriftSpec multipliers and whose deployment window is pinned to start
// at drift_day — before drift_day the stream is indistinguishable from the
// baseline fleet; after it, the drifted batch's records shift the marginal
// feature distributions (workload counters, error rates, bad blocks) AND
// the failure hazard, so a champion trained pre-drift both triggers the
// DriftDetector and genuinely underperforms a retrained challenger.
//
// Determinism matches FleetSimulator: each drive is a pure function of
// (seed, model, drive_index); cohort membership is a pure function of the
// index.  With drifted_fraction = 0 the generator reduces exactly to
// FleetSimulator (pinned by tests/online/test_drift.cpp).

#include <cstdint>

#include "sim/fleet_simulator.hpp"

namespace ssdfail::sim {

/// How the drifted cohort differs from the calibrated presets.
struct DriftSpec {
  /// Drifted-cohort deployments start here (uniform over
  /// [drift_day, window_days)).
  std::int32_t drift_day = 0;
  /// Share of each model's drives assigned to the drifted cohort (the
  /// LAST ceil(fraction * drives_per_model) indices, so baseline drives
  /// keep identical histories as the fraction changes).
  double drifted_fraction = 0.4;

  /// Multipliers applied to the drifted cohort's spec (1.0 = unchanged).
  double workload_mult = 3.0;    ///< write intensity (reads/writes/erases/PE)
  double hazard_mult = 4.0;      ///< mature failure hazard (stales the champion)
  double error_rate_mult = 2.5;  ///< every error type's daily incidence
  double bad_block_mult = 2.5;   ///< spontaneous bad-block growth
};

/// `spec` scaled by the drift multipliers, deployment pinned after
/// drift_day (exposed for tests that want the cohort spec directly).
[[nodiscard]] DriveModelSpec apply_drift(DriveModelSpec spec, const DriftSpec& drift,
                                         std::int32_t window_days);

struct DriftingFleetConfig {
  FleetConfig base;
  DriftSpec drift;
};

/// FleetSimulator with a per-model drifted cohort.  Interface mirrors
/// FleetSimulator (simulate / visit / generate_all) so dataset builds and
/// ingest replay code work unchanged.
class DriftingFleetSimulator {
 public:
  explicit DriftingFleetSimulator(DriftingFleetConfig config);

  [[nodiscard]] const DriftingFleetConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t drive_count() const noexcept {
    return static_cast<std::size_t>(config_.base.drives_per_model) *
           config_.base.models.size();
  }

  /// True when the flat index falls in the drifted cohort.
  [[nodiscard]] bool is_drifted(std::size_t flat_index) const noexcept;

  /// Simulate one drive (model-major layout, like FleetSimulator).
  [[nodiscard]] trace::DriveHistory simulate(std::size_t flat_index) const;

  /// Materialize the whole fleet (small configurations only).
  [[nodiscard]] trace::FleetTrace generate_all() const;

 private:
  DriftingFleetConfig config_;
  std::uint32_t drifted_per_model_ = 0;
  std::vector<DriveModelSpec> drifted_specs_;  ///< one per base.models entry
};

}  // namespace ssdfail::sim
