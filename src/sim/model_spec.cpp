#include "sim/model_spec.hpp"

#include <stdexcept>

namespace ssdfail::sim {
namespace {

using trace::ErrorType;

ErrorTypeSpec& err(DriveModelSpec& s, ErrorType e) {
  return s.errors[static_cast<std::size_t>(e)];
}

// Error-type parameters shared by all three models; per-model deviations
// (Table 1's per-model incidence columns) are applied afterwards.
void fill_common_errors(DriveModelSpec& s) {
  // correctable: present on ~80% of drive days, count scales with reads.
  err(s, ErrorType::kCorrectable) = {0.86, 0.08, 0.0, 0.0, 9.9, 1.5, 0.10};
  // erase: wear-driven transparent error (Table 2: rho(erase, P/E)=0.32).
  err(s, ErrorType::kErase) = {1.6e-3, 0.60, 0.0, 0.7, 0.7, 0.8, 0.04};
  // final read: generated as a companion of uncorrectable errors; the
  // base_day_prob field holds P(final-read present | UE day) so that
  // rho(final read, UE) ~ 0.97 as in Table 2.
  err(s, ErrorType::kFinalRead) = {0.55, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  // final write / response / timeout: incidence comes from the glitch
  // process (GlitchSpec); only their count parameters are used here.
  err(s, ErrorType::kFinalWrite) = {0.0, 0.0, 0.0, 0.0, 0.4, 0.8, 1e-3};
  err(s, ErrorType::kResponse) = {0.0, 0.0, 0.0, 0.0, 0.2, 0.6, 1e-4};
  err(s, ErrorType::kTimeout) = {0.0, 0.0, 0.0, 0.0, 0.3, 0.7, 2e-4};
  // meta: independent floor + glitch co-occurrence (rho(meta,read)=0.40).
  err(s, ErrorType::kMeta) = {0.3e-5, 0.50, 0.0, 0.0, 0.3, 0.7, 5e-4};
  // read (recovered-on-retry): mostly independent, partly glitch-driven.
  err(s, ErrorType::kRead) = {0.8e-4, 0.70, 0.0, 0.0, 1.1, 1.0, 8e-3};
  // uncorrectable: incidence comes from the degradation-onset process
  // (UeOnsetSpec) plus the pre-failure ramp; count params + wear exponent
  // are read from here.
  err(s, ErrorType::kUncorrectable) = {0.0, 0.0, 0.0, 0.6, 4.4, 2.2, 1.0};
  // write (recovered-on-retry): mildly wear/prone driven.
  err(s, ErrorType::kWrite) = {1.5e-4, 0.60, 0.0, 0.3, 0.8, 0.9, 5e-3};
}

DriveModelSpec make_mlc_a() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcA;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.89;    // Table 1: 0.829
  s.ue_onset.post_onset_day_prob = 0.0140;                  // Table 1: 0.002176
  err(s, ErrorType::kWrite).base_day_prob = 1.5e-4;        // 0.000117 target
  err(s, ErrorType::kRead).base_day_prob = 0.8e-4;         // 0.000090 target
  // Table 3: 6.95% of MLC-A drives fail at least once.
  s.failure.mature_hazard_per_day = 4.1e-5;
  // Table 5 row MLC-A.
  s.repair.return_probability = 0.534;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.064, 0.030, 0.020, 0.212, 0.378, 0.112, 0.184};
  return s;
}

DriveModelSpec make_mlc_b() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcB;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.835;   // Table 1: 0.776
  s.ue_onset.post_onset_day_prob = 0.0150;                  // Table 1: 0.002349
  err(s, ErrorType::kWrite).base_day_prob = 1.7e-3;        // 0.001309: B's quirk
  err(s, ErrorType::kRead).base_day_prob = 0.95e-4;        // 0.000103 target
  // Table 3: 14.3% fail.
  s.failure.mature_hazard_per_day = 8.6e-5;
  // Table 5 row MLC-B.
  s.repair.return_probability = 0.439;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.155, 0.059, 0.075, 0.287, 0.246, 0.151, 0.027};
  return s;
}

DriveModelSpec make_mlc_d() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcD;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.825;   // Table 1: 0.768
  s.ue_onset.post_onset_day_prob = 0.0150;                  // Table 1: 0.002583
  err(s, ErrorType::kWrite).base_day_prob = 2.1e-4;        // 0.000162 target
  err(s, ErrorType::kRead).base_day_prob = 1.2e-4;         // 0.000133 target
  err(s, ErrorType::kMeta).base_day_prob = 0.7e-5;         // 0.000028 target
  // Table 3: 12.5% fail.
  s.failure.mature_hazard_per_day = 6.8e-5;
  // Table 5 row MLC-D.
  s.repair.return_probability = 0.576;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.085, 0.056, 0.133, 0.214, 0.267, 0.117, 0.128};
  return s;
}

// HDD-E: calibrated to Pinciroli et al.'s HDD population (PAPERS.md).
// HDDs show a much FLATTER bathtub than flash — infant mortality exists
// but is mild (boost ~2x over a ~2-month tail) while the mature hazard
// stays comparable to the worse MLC models (mechanical wear never
// plateaus the way flash early-life defects do).  Flash-specific
// telemetry (erases, P/E cycles) degenerates to zero; the class-specific
// reallocated-sector and seek-error channels carry the symptom signal.
DriveModelSpec make_hdd() {
  DriveModelSpec s;
  s.model = trace::DriveModel::Hdd;
  fill_common_errors(s);
  // HDD ECC corrects less traffic per read than flash controllers report.
  err(s, ErrorType::kCorrectable).base_day_prob = 0.45;
  // No erase operations, no erase errors on spinning media.
  err(s, ErrorType::kErase).base_day_prob = 0.0;
  err(s, ErrorType::kWrite).base_day_prob = 2.4e-4;
  err(s, ErrorType::kRead).base_day_prob = 1.6e-4;
  // Flatter bathtub: ~2x infant boost decaying over two months, mature
  // hazard between MLC-A's and MLC-D's.
  s.failure.mature_hazard_per_day = 2.8e-5;
  s.failure.infant_boost = 2.2;
  s.failure.infant_tau_days = 60.0;
  // HDD op counts are orders of magnitude below flash page ops; the
  // absurd pages_per_erase_block sends erases (and with them P/E cycles)
  // to exactly zero without touching the shared workload machinery.
  s.workload.write_base_per_day = 2.5e7;
  s.workload.read_write_ratio = 2.4;
  s.workload.young_factor = 0.60;
  s.workload.ramp_days = 365;
  s.workload.pages_per_erase_block = 1e12;
  s.workload.erase_blocks = 1.0;
  // Latent sector errors surface later and rarer than flash UEs.
  s.ue_onset.onset_mean_days = 7000.0;
  s.ue_onset.post_onset_day_prob = 0.008;
  s.repair.return_probability = 0.47;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.10, 0.06, 0.08, 0.25, 0.30, 0.13, 0.08};
  // Class channels: slow background remapping that accelerates with age
  // and bursts before failure; seek errors as a daily incidence channel
  // riding the shared symptom ramp.
  s.ext.realloc_base_per_day = 0.035;
  s.ext.realloc_sigma_log = 1.1;
  s.ext.realloc_age_exp = 0.7;
  s.ext.realloc_ramp_day0 = 20.0;
  s.ext.realloc_ramp_tau = 10.0;
  s.ext.seek_day_prob = 2.5e-3;
  s.ext.seek_ramp_weight = 0.45;
  s.ext.seek_count_mu_log = 1.1;
  s.ext.seek_count_sigma_log = 0.9;
  return s;
}

// NVME-F: calibrated to Pinciroli et al.'s NVMe/SSD population (PAPERS.md).
// Much STEEPER infancy than MLC — early-life firmware/flash defects drive
// a ~14x hazard boost that burns off within a month — over a low mature
// hazard.  Media wearout accrues with written volume; thermal throttling
// is the NVMe-specific daily symptom channel.
DriveModelSpec make_nvme() {
  DriveModelSpec s;
  s.model = trace::DriveModel::Nvme;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.80;
  err(s, ErrorType::kWrite).base_day_prob = 1.9e-4;
  err(s, ErrorType::kRead).base_day_prob = 1.0e-4;
  // Steep infancy over a mature hazard at the healthy end of the MLC range.
  s.failure.mature_hazard_per_day = 3.0e-5;
  s.failure.infant_boost = 14.0;
  s.failure.infant_tau_days = 28.0;
  // The NVMe controller masks the media-error cascade that precedes raw
  // MLC failures: fewer failures exhibit the UE ramp, the bad-block burst
  // is mostly absorbed by over-provisioning, and read-only fallback is
  // rare.  Pre-failure signal concentrates in the class-specific wear and
  // throttle channels instead — which is what gives the transfer matrix
  // its column structure (a foreign-trained model never saw those
  // columns, see EXPERIMENTS.md).
  s.failure.ue_channel_young = 0.30;
  s.failure.ue_channel_old = 0.25;
  s.ramp.bb_rate_day0 = 0.25;
  s.ramp.read_only_prob_day0 = 0.05;
  s.workload.write_base_per_day = 1.9e8;
  s.workload.read_write_ratio = 1.4;
  s.workload.young_factor = 0.50;
  s.workload.erase_blocks = 5.0e5;
  s.ue_onset.post_onset_day_prob = 0.010;
  s.repair.return_probability = 0.52;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.20, 0.10, 0.10, 0.25, 0.20, 0.10, 0.05};
  // Class channels: wear units per written volume with per-drive spread;
  // throttle days scale superlinearly with relative daily write load.
  s.ext.wear_per_1e9_writes = 2.6;
  s.ext.wear_sigma_log = 0.45;
  // Background throttling is rare (cool racks), so the cumulative throttle
  // count stays near zero on healthy drives and the pre-failure burst
  // stands out in both the daily and the cumulative feature.
  s.ext.throttle_day_prob = 2.5e-3;
  s.ext.throttle_workload_exp = 1.2;
  s.ext.throttle_sigma_log = 0.8;
  // Strong pre-failure coupling: failing NVMe controllers throttle on most
  // of their final days.  The burst has its own week-scale timescale
  // (throttle_ramp_day0/tau) — the shared RampSpec decays within ~3 days,
  // invisible at a 7-10 day lookahead.  This is the class-specific signal
  // that lets an NVMe-trained model hold its transfer-matrix column
  // against foreign models leaning on the shared flash features.
  s.ext.throttle_ramp_weight = 0.80;
  s.ext.throttle_ramp_day0 = 0.85;
  s.ext.throttle_ramp_tau = 14.0;
  s.ext.throttle_count_mu_log = 1.3;
  s.ext.throttle_count_sigma_log = 0.8;
  return s;
}

}  // namespace

const std::array<DriveModelSpec, trace::kNumModels>& model_presets() {
  static const std::array<DriveModelSpec, trace::kNumModels> presets = {
      make_mlc_a(), make_mlc_b(), make_mlc_d(), make_hdd(), make_nvme()};
  return presets;
}

const DriveModelSpec& preset(trace::DriveModel m) {
  const auto idx = static_cast<std::size_t>(m);
  if (idx >= trace::kNumModels) throw std::out_of_range("preset: bad model");
  return model_presets()[idx];
}

}  // namespace ssdfail::sim
