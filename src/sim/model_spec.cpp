#include "sim/model_spec.hpp"

#include <stdexcept>

namespace ssdfail::sim {
namespace {

using trace::ErrorType;

ErrorTypeSpec& err(DriveModelSpec& s, ErrorType e) {
  return s.errors[static_cast<std::size_t>(e)];
}

// Error-type parameters shared by all three models; per-model deviations
// (Table 1's per-model incidence columns) are applied afterwards.
void fill_common_errors(DriveModelSpec& s) {
  // correctable: present on ~80% of drive days, count scales with reads.
  err(s, ErrorType::kCorrectable) = {0.86, 0.08, 0.0, 0.0, 9.9, 1.5, 0.10};
  // erase: wear-driven transparent error (Table 2: rho(erase, P/E)=0.32).
  err(s, ErrorType::kErase) = {1.6e-3, 0.60, 0.0, 0.7, 0.7, 0.8, 0.04};
  // final read: generated as a companion of uncorrectable errors; the
  // base_day_prob field holds P(final-read present | UE day) so that
  // rho(final read, UE) ~ 0.97 as in Table 2.
  err(s, ErrorType::kFinalRead) = {0.55, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  // final write / response / timeout: incidence comes from the glitch
  // process (GlitchSpec); only their count parameters are used here.
  err(s, ErrorType::kFinalWrite) = {0.0, 0.0, 0.0, 0.0, 0.4, 0.8, 1e-3};
  err(s, ErrorType::kResponse) = {0.0, 0.0, 0.0, 0.0, 0.2, 0.6, 1e-4};
  err(s, ErrorType::kTimeout) = {0.0, 0.0, 0.0, 0.0, 0.3, 0.7, 2e-4};
  // meta: independent floor + glitch co-occurrence (rho(meta,read)=0.40).
  err(s, ErrorType::kMeta) = {0.3e-5, 0.50, 0.0, 0.0, 0.3, 0.7, 5e-4};
  // read (recovered-on-retry): mostly independent, partly glitch-driven.
  err(s, ErrorType::kRead) = {0.8e-4, 0.70, 0.0, 0.0, 1.1, 1.0, 8e-3};
  // uncorrectable: incidence comes from the degradation-onset process
  // (UeOnsetSpec) plus the pre-failure ramp; count params + wear exponent
  // are read from here.
  err(s, ErrorType::kUncorrectable) = {0.0, 0.0, 0.0, 0.6, 4.4, 2.2, 1.0};
  // write (recovered-on-retry): mildly wear/prone driven.
  err(s, ErrorType::kWrite) = {1.5e-4, 0.60, 0.0, 0.3, 0.8, 0.9, 5e-3};
}

DriveModelSpec make_mlc_a() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcA;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.89;    // Table 1: 0.829
  s.ue_onset.post_onset_day_prob = 0.0140;                  // Table 1: 0.002176
  err(s, ErrorType::kWrite).base_day_prob = 1.5e-4;        // 0.000117 target
  err(s, ErrorType::kRead).base_day_prob = 0.8e-4;         // 0.000090 target
  // Table 3: 6.95% of MLC-A drives fail at least once.
  s.failure.mature_hazard_per_day = 4.1e-5;
  // Table 5 row MLC-A.
  s.repair.return_probability = 0.534;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.064, 0.030, 0.020, 0.212, 0.378, 0.112, 0.184};
  return s;
}

DriveModelSpec make_mlc_b() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcB;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.835;   // Table 1: 0.776
  s.ue_onset.post_onset_day_prob = 0.0150;                  // Table 1: 0.002349
  err(s, ErrorType::kWrite).base_day_prob = 1.7e-3;        // 0.001309: B's quirk
  err(s, ErrorType::kRead).base_day_prob = 0.95e-4;        // 0.000103 target
  // Table 3: 14.3% fail.
  s.failure.mature_hazard_per_day = 8.6e-5;
  // Table 5 row MLC-B.
  s.repair.return_probability = 0.439;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.155, 0.059, 0.075, 0.287, 0.246, 0.151, 0.027};
  return s;
}

DriveModelSpec make_mlc_d() {
  DriveModelSpec s;
  s.model = trace::DriveModel::MlcD;
  fill_common_errors(s);
  err(s, ErrorType::kCorrectable).base_day_prob = 0.825;   // Table 1: 0.768
  s.ue_onset.post_onset_day_prob = 0.0150;                  // Table 1: 0.002583
  err(s, ErrorType::kWrite).base_day_prob = 2.1e-4;        // 0.000162 target
  err(s, ErrorType::kRead).base_day_prob = 1.2e-4;         // 0.000133 target
  err(s, ErrorType::kMeta).base_day_prob = 0.7e-5;         // 0.000028 target
  // Table 3: 12.5% fail.
  s.failure.mature_hazard_per_day = 6.8e-5;
  // Table 5 row MLC-D.
  s.repair.return_probability = 0.576;
  s.repair.knot_days = {1, 10, 30, 100, 365, 730, 1095, 1770};
  s.repair.bin_mass = {0.085, 0.056, 0.133, 0.214, 0.267, 0.117, 0.128};
  return s;
}

}  // namespace

const std::array<DriveModelSpec, trace::kNumModels>& model_presets() {
  static const std::array<DriveModelSpec, trace::kNumModels> presets = {
      make_mlc_a(), make_mlc_b(), make_mlc_d()};
  return presets;
}

const DriveModelSpec& preset(trace::DriveModel m) {
  const auto idx = static_cast<std::size_t>(m);
  if (idx >= trace::kNumModels) throw std::out_of_range("preset: bad model");
  return model_presets()[idx];
}

}  // namespace ssdfail::sim
