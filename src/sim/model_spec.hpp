#pragma once

// Generative model parameters for one drive model.
//
// Every number here is calibrated against a *published* statistic: the MLC
// presets against the source paper (comments name the table/figure), the
// HDD and NVMe presets against Pinciroli et al.'s field study of SSD/HDD
// lifecycles (PAPERS.md).  The presets in model_presets() encode all five
// models; tests in tests/sim assert the generated fleets match the targets
// (tests/sim/test_fleet_calibration.cpp for MLC,
// tests/sim/test_device_classes.cpp for HDD/NVMe).

#include <array>
#include <cstdint>

#include "trace/schema.hpp"

namespace ssdfail::sim {

/// Default trace window: the study spans six years of daily logs.
inline constexpr std::int32_t kDefaultWindowDays = 2190;

/// Days at or below which a failure counts as "young"/infant (Section 4.1).
inline constexpr std::int32_t kInfantAgeDays = 90;

/// Deployment staggering and log completeness (calibrates Fig 1).
struct DeploySpec {
  double early_fraction = 0.58;     ///< share of drives deployed early
  std::int32_t early_span_days = 730;   ///< early deployments: uniform [0, span)
  std::int32_t late_span_days = 1825;   ///< the rest: uniform [early_span, late_span)
  double report_probability = 0.93;     ///< daily log-capture probability
};

/// Daily workload intensity (calibrates Fig 7 and Table 2's P/E column).
struct WorkloadSpec {
  double write_base_per_day = 1.15e8;  ///< asymptotic median daily write ops
  double young_factor = 0.45;          ///< relative intensity at age 0
  double ramp_days = 540;              ///< days until the plateau is reached
  double read_write_ratio = 1.8;       ///< reads per write (median)
  /// Per-drive lognormal intensity spread.  Wide heterogeneity means a
  /// failure-day activity drop is only detectable relative to the drive's
  /// own baseline (an interaction linear models cannot express — part of
  /// why the forest leads Table 6).
  double drive_sigma = 0.65;
  double daily_sigma = 0.35;           ///< day-to-day lognormal jitter
  double pages_per_erase_block = 512;  ///< write ops per erase op
  double erase_blocks = 7.0e5;         ///< erases per P/E cycle increment
};

/// Bathtub failure hazard + latent frailty (calibrates Fig 6, Table 3/4).
struct FailureSpec {
  double mature_hazard_per_day = 8.0e-5;  ///< h1: constant post-infancy hazard
  double infant_boost = 8.0;              ///< hazard multiple added at age 0
  double infant_tau_days = 45.0;          ///< decay constant of the infant boost
  double frailty_sigma = 0.5;             ///< lognormal sigma of per-drive hazard scale
  double post_repair_hazard_mult = 5.0;   ///< hazard multiplier after re-entry
  /// Failure symptom structure.  A failure is either fully silent (no
  /// pre-failure symptoms of any kind — Observation #9's ~26% of failures)
  /// or symptomatic.  Symptomatic failures always develop bad blocks and
  /// transparent-error elevation; only a subset additionally exhibits the
  /// uncorrectable-error ramp ("UE channel").  This decoupling reproduces
  /// the paper's seemingly-contradictory pair of findings: most YOUNG
  /// failures show zero UEs (Fig 10) yet young failures are the MOST
  /// predictable (Fig 15), because their non-UE symptoms are robust.
  double fully_silent_young = 0.15;
  double fully_silent_old = 0.33;
  double ue_channel_young = 0.55;   ///< P(UE ramp | symptomatic, young)
  double ue_channel_old = 0.50;     ///< P(UE ramp | symptomatic, old)
  /// On the failure day the drive operates only part of the day, so the
  /// last record shows truncated activity (why read/write counts predict).
  double failure_day_activity_lo = 0.05;
  double failure_day_activity_hi = 0.80;
};

/// Latent error-generating traits shared across error types.
struct LatentSpec {
  double prone_fraction = 0.19;   ///< share of drives that are UE/bad-block prone
                                  ///< (Fig 10 "Not Failed": ~80% never see a UE)
  double prone_mu_log = 1.6;      ///< log-mean of proneness among prone drives
  double prone_sigma_log = 1.0;   ///< log-sd of proneness among prone drives
  double nonprone_level = 0.003;  ///< proneness of the non-prone majority
  double frailty_loading = 0.7;   ///< latent corr between frailty and proneness
  double flaky_fraction = 0.06;   ///< share with interface flakiness
                                  ///< (drives response/timeout/final-write corr)
  double flaky_mu_log = 2.0;
  double flaky_sigma_log = 0.8;
  double nonflaky_level = 0.02;   ///< flakiness of the non-flaky majority
};

/// Background uncorrectable-error process: a *degradation onset* model.
/// A drive emits (essentially) no background UEs until a random onset time,
/// after which UE days arrive at post_onset_day_prob.  This produces the
/// paper's seemingly-conflicting trio: only ~20% of drives ever see a UE
/// (Fig 10) AND 0.23% of all drive-days have one (Table 1) AND cumulative
/// UE count rank-correlates with drive age at 0.36 (Table 2) — a static
/// "prone drive" trait can satisfy the first two but not the third.
struct UeOnsetSpec {
  double onset_mean_days = 6000.0;   ///< exponential onset (frailty-accelerated)
  double frailty_exp = 2.2;          ///< onset_mean /= frailty^exp
  double workload_exp = 0.3;         ///< onset_mean /= write_factor^exp (wear link)
  double post_onset_day_prob = 0.021;///< UE-day incidence after onset
  double magnitude_sigma = 0.8;      ///< per-drive lognormal spread of that rate
  double floor_day_prob = 2e-6;      ///< pre-onset incidence floor
  /// A small sub-population is defective from birth (onset at age 0) with
  /// elevated rate and enormous counts — the infant-mortality error signature
  /// (Fig 11's young count percentiles).
  double defect_fraction = 0.03;
  double defect_loading = 0.75;      ///< latent corr between defects and frailty
  double defect_rate_mult = 3.0;
  double defect_count_mult = 120.0;
};

/// Interface-glitch process: response, timeout, final-write, meta, and
/// (partly) read errors co-occur on the same "glitch days" of flaky drives,
/// which is what yields Table 2's correlation cluster (response~timeout
/// 0.53, final write~timeout 0.44, meta~read 0.40 ...).
struct GlitchSpec {
  double base_day_prob = 2.5e-5;  ///< marginal glitch-day incidence
  double flaky_exp = 1.3;         ///< exponent on the flakiness trait
  double ramp_share = 0.05;       ///< pre-failure ramp contribution
  double response_prob = 0.10;    ///< P(response errors | glitch day)
  double timeout_prob = 0.45;
  double final_write_prob = 0.85;
  double meta_prob = 0.45;
  double read_prob = 0.50;
};

/// Per-error-type generation parameters.
struct ErrorTypeSpec {
  double base_day_prob = 0.0;  ///< marginal daily incidence target (Table 1)
  double prone_exp = 0.0;      ///< exponent on the proneness trait
  double flaky_exp = 0.0;      ///< exponent on the flakiness trait
  double wear_exp = 0.0;       ///< exponent on normalized P/E wear
  double count_mu_log = 0.0;   ///< log-median of per-day counts when present
  double count_sigma_log = 1.0;///< log-sd of per-day counts
  double ramp_weight = 0.0;    ///< how strongly the pre-failure ramp applies
};

/// Pre-failure symptom ramp (calibrates Fig 11).  The ramp is an *additive*
/// incidence process: a symptomatic failure produces errors at this
/// absolute probability regardless of the drive's background proneness
/// (otherwise only chronically error-prone drives would ever show
/// pre-failure symptoms, contradicting Fig 10's old-failure error rates).
struct RampSpec {
  double sharp_prob = 0.38;    ///< added daily incidence at days-to-failure 0
  double sharp_tau = 1.3;      ///< decay (days) of the sharp component
  double chronic_prob = 0.03;  ///< added daily incidence of the chronic part
  double chronic_tau = 18.0;   ///< decay (days) of the chronic component
  double count_mult_old = 3.0;      ///< count magnitude boost near failure (old)
  double count_mult_young = 400.0;  ///< count magnitude boost (young failures
                                    ///< see orders of magnitude more errors)
  double read_only_prob_day0 = 0.15;  ///< P(read-only flag) on the failure day
  /// Direct pre-failure bad-block accrual (the non-UE symptom channel):
  /// symptomatic drives grow Poisson(bb_rate_day0 * exp(-d/bb_tau)) new bad
  /// blocks per day, amplified for young failures (Fig 10/Fig 16).
  double bb_rate_day0 = 0.9;
  double bb_tau = 6.0;
  double bb_young_mult = 3.0;
};

/// Bad-block accrual (calibrates Fig 10 and Table 2's bad-block row).
struct BadBlockSpec {
  double factory_mean_log = 1.1;    ///< log-mean of factory bad-block count
  double factory_sigma_log = 0.8;
  double per_ue_day = 1.2;          ///< mean new bad blocks per UE day
  double per_erase_err_day = 0.6;   ///< mean new bad blocks per erase-error day
  double per_final_write_day = 0.5; ///< mean new bad blocks per final-write day
  /// Background block wear-out on healthy drives: Fig 10's "Not Failed"
  /// CDF shows healthy drives accumulate tens of bad blocks over their
  /// life, so bad-block growth alone must not be a clean failure marker.
  /// The rate is drive-specific (lognormal around the mean): real block
  /// wear-out is concentrated in poor-flash drives, which is what makes
  /// near-term bad-block growth predictable from history (Table 8).
  double spontaneous_per_day = 0.02;
  double spontaneous_sigma_log = 1.2;
};

/// Post-failure limbo and swap lag (calibrates Fig 4).
struct SwapSpec {
  double nonreport_fraction = 0.80;  ///< swaps preceded by >=1 silent day
  double inactive_fraction = 0.36;   ///< swaps preceded by zero-op logged days
  double lag_mu_log = 0.92;          ///< lognormal log-median of lag (days)
  double lag_sigma_log = 1.1;
  double lag_tail_weight = 0.08;     ///< heavy-tail mixture weight ("forgotten")
  double lag_tail_lo = 100.0;        ///< log-uniform tail bounds (days)
  double lag_tail_hi = 450.0;
  double dead_flag_prob = 0.5;       ///< P(dead flag) on post-failure logged days
};

/// Repair process (calibrates Fig 5 and Table 5).  Repair times are sampled
/// from a piecewise log-uniform distribution whose knot masses come straight
/// from Table 5's per-model rows.
struct RepairSpec {
  double return_probability = 0.5;          ///< Table 5's "infinity" column
  static constexpr std::size_t kKnots = 7;
  std::array<double, kKnots + 1> knot_days{};  ///< bin edges (days)
  std::array<double, kKnots> bin_mass{};       ///< conditional P(bin | returns)
};

/// Class-specific telemetry channels: HDD reallocated-sector/seek-error
/// and NVMe media-wear/thermal-throttle processes.  Only the fields of the
/// spec's own device class are ever read, and the simulator consumes NO
/// rng draws for another class's channels — which is what keeps every
/// pre-extension MLC fleet bit-identical (pinned by the golden suite).
struct ExtChannelSpec {
  // --- HDD: reallocated sectors (cumulative remaps). ---
  double realloc_base_per_day = 0.0;  ///< mean daily remaps, healthy mature drive
  double realloc_sigma_log = 0.0;     ///< per-drive lognormal rate spread
  double realloc_age_exp = 0.0;       ///< rate multiplier (age/365)^exp (surface wear)
  double realloc_ramp_day0 = 0.0;     ///< added daily remaps at days-to-failure 0
  double realloc_ramp_tau = 8.0;      ///< decay (days) of the pre-failure remap burst
  // --- HDD: seek errors (daily incidence channel). ---
  double seek_day_prob = 0.0;         ///< marginal seek-error-day incidence
  double seek_ramp_weight = 0.0;      ///< share of the symptom ramp added to it
  double seek_count_mu_log = 0.0;     ///< log-median of per-day counts
  double seek_count_sigma_log = 1.0;
  // --- NVMe: media wearout (cumulative, write-driven). ---
  double wear_per_1e9_writes = 0.0;   ///< wear units accrued per 1e9 write ops
  double wear_sigma_log = 0.0;        ///< per-drive wear-rate lognormal spread
  // --- NVMe: thermal throttle events (daily incidence channel). ---
  double throttle_day_prob = 0.0;     ///< marginal throttle-day incidence
  double throttle_workload_exp = 0.0; ///< exponent on relative daily write load
  double throttle_sigma_log = 0.0;    ///< per-drive propensity lognormal spread
  double throttle_ramp_weight = 0.0;  ///< share of the symptom ramp added
  /// Absolute pre-failure throttle ramp (mirrors realloc_ramp_day0): the
  /// shared RampSpec decays within ~3 days, far too late for a week-level
  /// lookahead, so the class channel carries its own longer-lived burst.
  double throttle_ramp_day0 = 0.0;    ///< added throttle-day prob at days-to-failure 0
  double throttle_ramp_tau = 10.0;    ///< decay (days) of that burst
  double throttle_count_mu_log = 0.0;
  double throttle_count_sigma_log = 0.8;
};

/// Everything needed to generate one drive model's fleet.
struct DriveModelSpec {
  trace::DriveModel model = trace::DriveModel::MlcA;
  DeploySpec deploy;
  WorkloadSpec workload;
  FailureSpec failure;
  LatentSpec latent;
  RampSpec ramp;
  BadBlockSpec bad_blocks;
  SwapSpec swap;
  RepairSpec repair;
  UeOnsetSpec ue_onset;
  GlitchSpec glitch;
  ExtChannelSpec ext;
  std::array<ErrorTypeSpec, trace::kNumErrorTypes> errors{};
};

/// Calibrated presets for every DriveModel (indexed by DriveModel).
[[nodiscard]] const std::array<DriveModelSpec, trace::kNumModels>& model_presets();

/// Preset for one model.
[[nodiscard]] const DriveModelSpec& preset(trace::DriveModel m);

}  // namespace ssdfail::sim
