#include "sim/drifting_fleet.hpp"

#include <algorithm>
#include <cmath>

namespace ssdfail::sim {

DriveModelSpec apply_drift(DriveModelSpec spec, const DriftSpec& drift,
                           std::int32_t window_days) {
  // Deployment pinned to [drift_day, window_days): no early cohort, late
  // window starting at the drift day (DeploySpec draws late deployments
  // uniformly over [early_span, late_span)).
  spec.deploy.early_fraction = 0.0;
  spec.deploy.early_span_days = drift.drift_day;
  spec.deploy.late_span_days = std::max(window_days, drift.drift_day + 1);

  spec.workload.write_base_per_day *= drift.workload_mult;
  spec.failure.mature_hazard_per_day *= drift.hazard_mult;
  spec.bad_blocks.spontaneous_per_day *= drift.bad_block_mult;
  for (auto& err : spec.errors) err.base_day_prob *= drift.error_rate_mult;
  return spec;
}

DriftingFleetSimulator::DriftingFleetSimulator(DriftingFleetConfig config)
    : config_(config) {
  const double fraction = std::clamp(config_.drift.drifted_fraction, 0.0, 1.0);
  drifted_per_model_ = static_cast<std::uint32_t>(
      std::ceil(fraction * config_.base.drives_per_model));
  drifted_per_model_ = std::min(drifted_per_model_, config_.base.drives_per_model);
  drifted_specs_.reserve(config_.base.models.size());
  for (trace::DriveModel m : config_.base.models)
    drifted_specs_.push_back(
        apply_drift(preset(m), config_.drift, config_.base.window_days));
}

bool DriftingFleetSimulator::is_drifted(std::size_t flat_index) const noexcept {
  const auto drive_idx =
      static_cast<std::uint32_t>(flat_index % config_.base.drives_per_model);
  return drive_idx >= config_.base.drives_per_model - drifted_per_model_;
}

trace::DriveHistory DriftingFleetSimulator::simulate(std::size_t flat_index) const {
  const auto model_idx = flat_index / config_.base.drives_per_model;
  const auto drive_idx =
      static_cast<std::uint32_t>(flat_index % config_.base.drives_per_model);
  const DriveModelSpec& spec = is_drifted(flat_index)
                                   ? drifted_specs_[model_idx]
                                   : preset(config_.base.models[model_idx]);
  return simulate_drive(spec, config_.base.seed, drive_idx,
                        config_.base.window_days, config_.base.keep_ground_truth);
}

trace::FleetTrace DriftingFleetSimulator::generate_all() const {
  trace::FleetTrace fleet;
  fleet.drives.reserve(drive_count());
  for (std::size_t i = 0; i < drive_count(); ++i) fleet.drives.push_back(simulate(i));
  return fleet;
}

}  // namespace ssdfail::sim
