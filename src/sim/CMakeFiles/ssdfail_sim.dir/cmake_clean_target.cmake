file(REMOVE_RECURSE
  "libssdfail_sim.a"
)
