# Empty dependencies file for ssdfail_sim.
# This may be replaced when dependencies are built.
