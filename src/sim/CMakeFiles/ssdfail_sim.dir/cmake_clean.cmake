file(REMOVE_RECURSE
  "CMakeFiles/ssdfail_sim.dir/drive_simulator.cpp.o"
  "CMakeFiles/ssdfail_sim.dir/drive_simulator.cpp.o.d"
  "CMakeFiles/ssdfail_sim.dir/fleet_simulator.cpp.o"
  "CMakeFiles/ssdfail_sim.dir/fleet_simulator.cpp.o.d"
  "CMakeFiles/ssdfail_sim.dir/model_spec.cpp.o"
  "CMakeFiles/ssdfail_sim.dir/model_spec.cpp.o.d"
  "libssdfail_sim.a"
  "libssdfail_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdfail_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
