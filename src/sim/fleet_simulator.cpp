#include "sim/fleet_simulator.hpp"

#include <cstdlib>

namespace ssdfail::sim {

FleetConfig FleetConfig::from_env() {
  FleetConfig cfg;
  if (const char* env = std::getenv("SSDFAIL_DRIVES_PER_MODEL")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) cfg.drives_per_model = static_cast<std::uint32_t>(parsed);
  }
  if (const char* env = std::getenv("SSDFAIL_SEED")) {
    const long long parsed = std::strtoll(env, nullptr, 10);
    if (parsed > 0) cfg.seed = static_cast<std::uint64_t>(parsed);
  }
  return cfg;
}

trace::DriveHistory FleetSimulator::simulate(std::size_t flat_index) const {
  const auto model_idx = flat_index / config_.drives_per_model;
  const auto drive_idx = static_cast<std::uint32_t>(flat_index % config_.drives_per_model);
  const DriveModelSpec& spec = model_presets()[model_idx];
  return simulate_drive(spec, config_.seed, drive_idx, config_.window_days,
                        config_.keep_ground_truth);
}

trace::FleetTrace FleetSimulator::generate_all() const {
  trace::FleetTrace fleet;
  fleet.drives.reserve(drive_count());
  for (std::size_t i = 0; i < drive_count(); ++i) fleet.drives.push_back(simulate(i));
  return fleet;
}

}  // namespace ssdfail::sim
