#include "sim/fleet_simulator.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ssdfail::sim {
namespace {

/// Fleet-generation throughput counters (drives and drive-days produced).
struct SimMetrics {
  obs::Counter& drives = obs::MetricsRegistry::global().counter(
      "sim_drives_generated_total", {}, "drive histories produced by the simulator");
  obs::Counter& drive_days = obs::MetricsRegistry::global().counter(
      "sim_drive_days_generated_total", {}, "daily records produced by the simulator");
};

SimMetrics& sim_metrics() {
  static SimMetrics* const metrics = new SimMetrics();  // leaked, teardown-safe
  return *metrics;
}

}  // namespace

FleetConfig FleetConfig::from_env() {
  FleetConfig cfg;
  if (const char* env = std::getenv("SSDFAIL_DRIVES_PER_MODEL")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) cfg.drives_per_model = static_cast<std::uint32_t>(parsed);
  }
  if (const char* env = std::getenv("SSDFAIL_SEED")) {
    const long long parsed = std::strtoll(env, nullptr, 10);
    if (parsed > 0) cfg.seed = static_cast<std::uint64_t>(parsed);
  }
  return cfg;
}

trace::DriveHistory FleetSimulator::simulate(std::size_t flat_index) const {
  const auto model_idx = flat_index / config_.drives_per_model;
  const auto drive_idx = static_cast<std::uint32_t>(flat_index % config_.drives_per_model);
  const DriveModelSpec& spec = preset(config_.models[model_idx]);
  trace::DriveHistory drive = simulate_drive(spec, config_.seed, drive_idx,
                                             config_.window_days,
                                             config_.keep_ground_truth);
  sim_metrics().drives.inc();
  sim_metrics().drive_days.inc(drive.records.size());
  return drive;
}

trace::FleetTrace FleetSimulator::generate_all() const {
  static const obs::SiteId kSite = obs::intern_site("sim.generate_fleet");
  obs::Span span(kSite);
  trace::FleetTrace fleet;
  fleet.drives.reserve(drive_count());
  for (std::size_t i = 0; i < drive_count(); ++i) fleet.drives.push_back(simulate(i));
  return fleet;
}

}  // namespace ssdfail::sim
