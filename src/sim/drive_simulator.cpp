#include "sim/drive_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/normal.hpp"
#include "stats/rng.hpp"

namespace ssdfail::sim {
namespace {

using stats::Rng;
using trace::DailyRecord;
using trace::DriveHistory;
using trace::ErrorType;

constexpr std::int32_t kNoFailure = std::numeric_limits<std::int32_t>::max();

/// Per-drive latent traits, all loaded on one shared "health" factor so
/// that frailty (failure-proneness) and error behavior are correlated —
/// the mechanism that makes error history informative for prediction.
struct Latents {
  double frailty = 1.0;        ///< multiplies the failure hazard
  double proneness = 1.0;      ///< multiplies transparent-error incidence
  double flakiness = 1.0;      ///< multiplies interface-glitch incidence
  double write_factor = 1.0;   ///< per-drive workload intensity scale
  std::int32_t deploy_day = 0;
  std::uint16_t factory_bad_blocks = 0;
  // Background-UE degradation-onset process.
  double bb_spont_rate = 0.02;    ///< drive-specific block wear-out rate
  std::int32_t ue_onset_day = 0;  ///< absolute day background UEs begin
  double ue_day_prob = 0.0;       ///< post-onset UE-day incidence
  double ue_count_mult = 1.0;     ///< defective drives emit huge counts
  bool defective = false;
  // Class-specific channel latents (sampled only for the spec's own class).
  double realloc_rate = 0.0;   ///< HDD: drive-specific daily remap rate
  double wear_rate = 0.0;      ///< NVMe: wear units per write op
  double throttle_prop = 0.0;  ///< NVMe: per-drive throttle propensity
};

Latents sample_latents(const DriveModelSpec& spec, std::int32_t window_days, Rng& rng) {
  Latents lat;
  const double z_health = rng.normal();

  const double sf = spec.failure.frailty_sigma;
  lat.frailty = std::exp(sf * z_health - 0.5 * sf * sf);

  const LatentSpec& ls = spec.latent;
  const double load = ls.frailty_loading;
  const double prone_score = load * z_health + std::sqrt(1.0 - load * load) * rng.normal();
  const bool prone = prone_score > stats::norm_quantile(1.0 - ls.prone_fraction);
  lat.proneness = prone ? rng.lognormal(ls.prone_mu_log, ls.prone_sigma_log)
                        : ls.nonprone_level * rng.lognormal(0.0, 0.5);

  const double flaky_score = 0.2 * z_health + std::sqrt(1.0 - 0.04) * rng.normal();
  const bool flaky = flaky_score > stats::norm_quantile(1.0 - ls.flaky_fraction);
  lat.flakiness = flaky ? rng.lognormal(ls.flaky_mu_log, ls.flaky_sigma_log)
                        : ls.nonflaky_level;

  lat.write_factor = rng.lognormal(-0.5 * spec.workload.drive_sigma * spec.workload.drive_sigma,
                                   spec.workload.drive_sigma);

  const DeploySpec& ds = spec.deploy;
  if (rng.bernoulli(ds.early_fraction)) {
    lat.deploy_day = static_cast<std::int32_t>(rng.uniform_index(
        static_cast<std::uint64_t>(std::min(ds.early_span_days, window_days))));
  } else {
    const std::int32_t lo = std::min(ds.early_span_days, window_days - 1);
    const std::int32_t hi = std::min(ds.late_span_days, window_days);
    lat.deploy_day = lo + static_cast<std::int32_t>(
                              rng.uniform_index(static_cast<std::uint64_t>(std::max(hi - lo, 1))));
  }

  const double bs = spec.bad_blocks.spontaneous_sigma_log;
  lat.bb_spont_rate =
      spec.bad_blocks.spontaneous_per_day * rng.lognormal(-0.5 * bs * bs, bs);

  // Degradation onset for background UEs: frail and heavily-written drives
  // degrade sooner; a small defective-from-birth population starts at 0.
  const UeOnsetSpec& uo = spec.ue_onset;
  const double defect_score =
      uo.defect_loading * z_health +
      std::sqrt(1.0 - uo.defect_loading * uo.defect_loading) * rng.normal();
  lat.defective = defect_score > stats::norm_quantile(1.0 - uo.defect_fraction);

  // Poor flash announces itself at manufacture: defective and error-prone
  // drives ship with more factory bad blocks.  This is what lets models
  // identify at-risk YOUNG drives before any error history accumulates
  // (Table 8's strong young column; Fig 16's young feature ranking).
  double factory_mean =
      rng.lognormal(spec.bad_blocks.factory_mean_log, spec.bad_blocks.factory_sigma_log);
  if (lat.defective) factory_mean *= 6.0;
  if (prone) factory_mean *= 2.0;
  lat.factory_bad_blocks = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      rng.poisson(factory_mean), std::numeric_limits<std::uint16_t>::max()));
  const double onset_mean = uo.onset_mean_days /
                            std::pow(lat.frailty, uo.frailty_exp) /
                            std::pow(lat.write_factor, uo.workload_exp);
  lat.ue_onset_day =
      lat.defective ? lat.deploy_day
                    : lat.deploy_day +
                          static_cast<std::int32_t>(rng.exponential(1.0 / onset_mean));
  const double mag = rng.lognormal(-0.5 * uo.magnitude_sigma * uo.magnitude_sigma,
                                   uo.magnitude_sigma);
  lat.ue_day_prob = std::min(
      0.30, uo.post_onset_day_prob * mag * (lat.defective ? uo.defect_rate_mult : 1.0));
  lat.ue_count_mult = lat.defective ? uo.defect_count_mult : 1.0;

  // Class-specific channel latents come LAST and are guarded by device
  // class, so an MLC drive consumes exactly the pre-extension draw
  // sequence — every MLC fleet stays bit-identical (golden suite).
  const trace::DeviceClass cls = trace::device_class(spec.model);
  if (cls == trace::DeviceClass::kHdd) {
    const double rs = spec.ext.realloc_sigma_log;
    lat.realloc_rate =
        spec.ext.realloc_base_per_day * rng.lognormal(-0.5 * rs * rs, rs);
  } else if (cls == trace::DeviceClass::kNvmeSsd) {
    const double wsg = spec.ext.wear_sigma_log;
    lat.wear_rate =
        spec.ext.wear_per_1e9_writes / 1e9 * rng.lognormal(-0.5 * wsg * wsg, wsg);
    const double ts = spec.ext.throttle_sigma_log;
    lat.throttle_prop = rng.lognormal(-0.5 * ts * ts, ts);
  }
  return lat;
}

/// E[e^a] for the proneness mixture — used so that base_day_prob stays the
/// *marginal* incidence no matter the exponent.
double proneness_moment(const LatentSpec& ls, double a) {
  if (a == 0.0) return 1.0;
  const double prone_part =
      ls.prone_fraction *
      std::exp(a * ls.prone_mu_log + 0.5 * a * a * ls.prone_sigma_log * ls.prone_sigma_log);
  const double base_part =
      (1.0 - ls.prone_fraction) * std::pow(ls.nonprone_level, a) * std::exp(0.5 * a * a * 0.25);
  return prone_part + base_part;
}

double flakiness_moment(const LatentSpec& ls, double b) {
  if (b == 0.0) return 1.0;
  const double flaky_part =
      ls.flaky_fraction *
      std::exp(b * ls.flaky_mu_log + 0.5 * b * b * ls.flaky_sigma_log * ls.flaky_sigma_log);
  const double base_part = (1.0 - ls.flaky_fraction) * std::pow(ls.nonflaky_level, b);
  return flaky_part + base_part;
}

/// Types generated by dedicated processes rather than the generic
/// per-type incidence loop.
constexpr bool is_special_type(ErrorType t) noexcept {
  return t == ErrorType::kUncorrectable || t == ErrorType::kFinalRead ||
         t == ErrorType::kResponse || t == ErrorType::kTimeout ||
         t == ErrorType::kFinalWrite;
}

/// Per-drive, per-error-type precomputed daily rates (latents folded in).
struct ErrorRates {
  std::array<double, trace::kNumErrorTypes> base{};   ///< latent-adjusted day prob
  std::array<double, trace::kNumErrorTypes> wear_exp{};
  std::array<double, trace::kNumErrorTypes> ramp_weight{};
  double glitch_day_prob = 0.0;
};

ErrorRates make_error_rates(const DriveModelSpec& spec, const Latents& lat) {
  ErrorRates rates;
  for (std::size_t i = 0; i < trace::kNumErrorTypes; ++i) {
    const ErrorTypeSpec& es = spec.errors[i];
    double r = es.base_day_prob;
    if (es.prone_exp != 0.0)
      r *= std::pow(lat.proneness, es.prone_exp) / proneness_moment(spec.latent, es.prone_exp);
    if (es.flaky_exp != 0.0)
      r *= std::pow(lat.flakiness, es.flaky_exp) / flakiness_moment(spec.latent, es.flaky_exp);
    rates.base[i] = r;
    rates.wear_exp[i] = es.wear_exp;
    rates.ramp_weight[i] = es.ramp_weight;
  }
  rates.glitch_day_prob = spec.glitch.base_day_prob *
                          std::pow(lat.flakiness, spec.glitch.flaky_exp) /
                          flakiness_moment(spec.latent, spec.glitch.flaky_exp);
  return rates;
}

std::uint32_t clamp_count(double v) {
  // Clamp one short of UINT32_MAX: the saturated value is reserved as the
  // telemetry poison sentinel (trace::implausible_record), so a legitimate
  // heavy-tailed sample must never collide with it.
  constexpr std::uint32_t kCeiling = std::numeric_limits<std::uint32_t>::max() - 1;
  if (v < 0.0) return 0;
  if (v >= static_cast<double>(kCeiling)) return kCeiling;
  return static_cast<std::uint32_t>(v);
}

/// Swap lag in days (>= 1): lognormal bulk + heavy log-uniform tail for the
/// "forgotten in the system" drives (Fig 4).
std::int32_t sample_swap_lag(const SwapSpec& ss, Rng& rng) {
  double lag = 0.0;
  if (rng.bernoulli(ss.lag_tail_weight)) {
    lag = rng.loguniform(ss.lag_tail_lo, ss.lag_tail_hi);
  } else {
    lag = rng.lognormal(ss.lag_mu_log, ss.lag_sigma_log);
  }
  return std::max<std::int32_t>(1, static_cast<std::int32_t>(std::lround(lag)));
}

/// Repair time in days, sampled from Table 5's piecewise distribution.
std::int32_t sample_repair_days(const RepairSpec& rs, Rng& rng) {
  const std::size_t bin = rng.categorical(std::span<const double>(rs.bin_mass));
  const double lo = std::max(rs.knot_days[bin], 1.0);
  const double hi = std::max(rs.knot_days[bin + 1], lo + 1.0);
  return static_cast<std::int32_t>(std::lround(rng.loguniform(lo, hi)));
}

/// How an impending failure announces itself (sampled once per failure).
struct FailureSymptoms {
  bool fully_silent = true;  ///< no pre-failure symptoms of any kind
  bool ue_channel = false;   ///< uncorrectable-error ramp present
};

/// State carried across operational periods (survives repairs).
struct DriveState {
  double pe_cycles = 0.0;
  std::uint32_t bad_blocks = 0;
  double realloc_sectors = 0.0;  ///< HDD cumulative remaps
  double media_wear = 0.0;       ///< NVMe cumulative wear units
};

/// Generate one operational day and (maybe) append its record.
void generate_day(const DriveModelSpec& spec, const Latents& lat, const ErrorRates& rates,
                  std::int32_t day, std::int32_t days_to_fail,
                  const FailureSymptoms& symptoms, bool young_failure, DriveState& st,
                  Rng& rng, DriveHistory& out) {
  const WorkloadSpec& ws = spec.workload;
  const std::int32_t age = day - lat.deploy_day;

  // --- Workload (Fig 7: intensity ramps up over the first ~18 months). ---
  const double ramp_f =
      ws.young_factor + (1.0 - ws.young_factor) *
                            std::min(static_cast<double>(age) / ws.ramp_days, 1.0);
  const double jitter = rng.lognormal(-0.5 * ws.daily_sigma * ws.daily_sigma, ws.daily_sigma);
  double writes = ws.write_base_per_day * ramp_f * lat.write_factor * jitter;
  double reads = writes * ws.read_write_ratio * rng.lognormal(0.0, 0.25);

  // Failure-day truncation: the drive fails partway through its last day,
  // so the final record shows reduced activity (for ALL failure modes —
  // this is why read/write counts carry predictive signal, Fig 16).
  const FailureSpec& fs = spec.failure;
  if (days_to_fail == 0) {
    const double act = rng.uniform(fs.failure_day_activity_lo, fs.failure_day_activity_hi);
    writes *= act;
    reads *= act;
  } else if (days_to_fail == 1) {
    const double act = rng.uniform(0.5, 1.0);
    writes *= act;
    reads *= act;
  }

  const double erases = writes / ws.pages_per_erase_block * rng.lognormal(0.0, 0.1);
  st.pe_cycles += erases / ws.erase_blocks;
  const double wear_norm = std::max(st.pe_cycles / 1000.0, 0.02) / 0.35;

  // --- Pre-failure symptom ramp (Fig 11), symptomatic failures only.
  // ramp_prob is an additive daily incidence so even drives with no
  // background error-proneness develop symptoms before failing.  The UE
  // ramp only fires for failures with the UE channel; the other error
  // types ramp for every non-silent failure. ---
  const RampSpec& rp = spec.ramp;
  double ramp_prob = 0.0;
  double ue_ramp_prob = 0.0;
  double count_mult = 1.0;
  if (days_to_fail != kNoFailure && !symptoms.fully_silent) {
    const double d = static_cast<double>(days_to_fail);
    ramp_prob = rp.sharp_prob * std::exp(-d / rp.sharp_tau) +
                rp.chronic_prob * std::exp(-d / rp.chronic_tau);
    if (symptoms.ue_channel) ue_ramp_prob = ramp_prob;
    const double boost = young_failure ? rp.count_mult_young : rp.count_mult_old;
    count_mult = 1.0 + (boost - 1.0) * std::exp(-d / 2.0);
  }

  DailyRecord rec;
  rec.day = day;
  rec.reads = clamp_count(reads);
  rec.writes = clamp_count(writes);
  rec.erases = clamp_count(erases);

  auto sample_count = [&](ErrorType type, double extra_mult = 1.0) {
    const ErrorTypeSpec& es = spec.errors[static_cast<std::size_t>(type)];
    double count = rng.lognormal(es.count_mu_log, es.count_sigma_log) * extra_mult;
    count *= 1.0 + (count_mult - 1.0) * rates.ramp_weight[static_cast<std::size_t>(type)];
    return std::max<std::uint32_t>(1, clamp_count(count));
  };

  // --- Generic error types (correctable, erase, meta, read, write). ---
  for (std::size_t i = 0; i < trace::kNumErrorTypes; ++i) {
    const auto type = static_cast<ErrorType>(i);
    if (is_special_type(type)) continue;
    double rate = rates.base[i];
    if (rates.wear_exp[i] != 0.0) rate *= std::pow(wear_norm, rates.wear_exp[i]);
    rate += ramp_prob * rates.ramp_weight[i];
    if (!rng.bernoulli(std::min(rate, 0.98))) continue;
    double extra = 1.0;
    if (type == ErrorType::kCorrectable) extra = std::max(reads, 1.0) / 1e8;
    rec.errors[i] = sample_count(type, extra);
  }

  // --- Uncorrectable errors: degradation-onset background + UE ramp. ---
  {
    const double background = day >= lat.ue_onset_day
                                  ? lat.ue_day_prob *
                                        std::pow(wear_norm,
                                                 rates.wear_exp[static_cast<std::size_t>(
                                                     ErrorType::kUncorrectable)])
                                  : spec.ue_onset.floor_day_prob;
    const double rate = background + ue_ramp_prob;
    if (rng.bernoulli(std::min(rate, 0.90)))
      rec.errors[static_cast<std::size_t>(ErrorType::kUncorrectable)] =
          sample_count(ErrorType::kUncorrectable, lat.ue_count_mult);
  }

  // Final read errors: reads that fail for good.  These co-occur with
  // uncorrectable ECC errors (Table 2: rho = 0.97 — "if a read fails
  // finally, then it is uncorrectable").
  const std::uint32_t ue = rec.error(ErrorType::kUncorrectable);
  if (ue > 0) {
    const double p_final_given_ue =
        spec.errors[static_cast<std::size_t>(ErrorType::kFinalRead)].base_day_prob;
    if (rng.bernoulli(p_final_given_ue)) {
      const double frac = rng.uniform(0.3, 0.8);
      rec.errors[static_cast<std::size_t>(ErrorType::kFinalRead)] =
          std::max<std::uint32_t>(1, clamp_count(static_cast<double>(ue) * frac));
    }
  }

  // --- Interface glitch days: response/timeout/final-write/meta/read
  // errors arrive together (Table 2's correlation cluster). ---
  {
    const GlitchSpec& gs = spec.glitch;
    const double rate = rates.glitch_day_prob + ramp_prob * gs.ramp_share;
    if (rng.bernoulli(std::min(rate, 0.5))) {
      auto maybe = [&](ErrorType type, double p) {
        if (rng.bernoulli(p)) {
          auto& cell = rec.errors[static_cast<std::size_t>(type)];
          cell = std::max(cell, sample_count(type));
        }
      };
      maybe(ErrorType::kResponse, gs.response_prob);
      maybe(ErrorType::kTimeout, gs.timeout_prob);
      maybe(ErrorType::kFinalWrite, gs.final_write_prob);
      maybe(ErrorType::kMeta, gs.meta_prob);
      maybe(ErrorType::kRead, gs.read_prob);
    }
  }

  // --- Bad blocks grow out of serious error events (Fig 10). ---
  const BadBlockSpec& bb = spec.bad_blocks;
  double new_blocks_mean = 0.0;
  if (ue > 0) new_blocks_mean += bb.per_ue_day;
  if (rec.error(ErrorType::kErase) > 0) new_blocks_mean += bb.per_erase_err_day;
  if (rec.error(ErrorType::kFinalWrite) > 0) new_blocks_mean += bb.per_final_write_day;
  new_blocks_mean += lat.bb_spont_rate;
  // Direct pre-failure bad-block growth (the non-UE symptom channel).
  if (days_to_fail != kNoFailure && !symptoms.fully_silent) {
    double rate = rp.bb_rate_day0 * std::exp(-static_cast<double>(days_to_fail) / rp.bb_tau);
    if (young_failure) rate *= rp.bb_young_mult;
    new_blocks_mean += rate;
  }
  if (new_blocks_mean > 0.0)
    st.bad_blocks += static_cast<std::uint32_t>(rng.poisson(new_blocks_mean));

  rec.pe_cycles = static_cast<std::uint32_t>(st.pe_cycles);
  rec.bad_blocks = st.bad_blocks;
  rec.factory_bad_blocks = lat.factory_bad_blocks;

  // Benign read-only days happen during firmware housekeeping and are far
  // more likely on days the drive is fighting uncorrectable errors — so the
  // (UE, read-only) conjunction occurs on healthy degraded drives too.
  double ro_prob = ue > 0 ? 0.05 : 2e-4;
  if (days_to_fail != kNoFailure && !symptoms.fully_silent)
    ro_prob = std::max(
        ro_prob, rp.read_only_prob_day0 * std::exp(-static_cast<double>(days_to_fail) / 2.0));
  rec.read_only = rng.bernoulli(ro_prob);
  rec.dead = false;

  // --- Class-specific channels.  MLC drives take neither branch and
  // consume NO extra draws (bit-identity of pre-extension fleets). ---
  const trace::DeviceClass cls = trace::device_class(spec.model);
  if (cls == trace::DeviceClass::kHdd) {
    const ExtChannelSpec& xs = spec.ext;
    // Reallocated sectors: background remapping accelerates with surface
    // age and bursts before a symptomatic failure (the HDD analogue of the
    // bad-block ramp).
    double remap_mean =
        lat.realloc_rate *
        std::pow(std::max<double>(age, 1.0) / 365.0, xs.realloc_age_exp);
    if (days_to_fail != kNoFailure && !symptoms.fully_silent)
      remap_mean += xs.realloc_ramp_day0 *
                    std::exp(-static_cast<double>(days_to_fail) / xs.realloc_ramp_tau);
    if (remap_mean > 0.0)
      st.realloc_sectors += static_cast<double>(rng.poisson(remap_mean));
    rec.reallocated_sectors = clamp_count(st.realloc_sectors);
    // Seek errors: daily incidence channel riding the symptom ramp.
    const double seek_rate = xs.seek_day_prob + ramp_prob * xs.seek_ramp_weight;
    if (rng.bernoulli(std::min(seek_rate, 0.9))) {
      double count = rng.lognormal(xs.seek_count_mu_log, xs.seek_count_sigma_log);
      count *= 1.0 + (count_mult - 1.0) * xs.seek_ramp_weight;
      rec.seek_errors = std::max<std::uint32_t>(1, clamp_count(count));
    }
  } else if (cls == trace::DeviceClass::kNvmeSsd) {
    const ExtChannelSpec& xs = spec.ext;
    // Media wearout: deterministic in the written volume given the
    // per-drive wear-rate latent.
    st.media_wear += writes * lat.wear_rate;
    rec.media_wear = clamp_count(st.media_wear);
    // Thermal throttling: superlinear in the relative daily write load,
    // plus a share of the pre-failure ramp (controllers throttle failing
    // media aggressively).
    const double rel_load = writes / ws.write_base_per_day;
    double throttle_rate =
        xs.throttle_day_prob * lat.throttle_prop *
        std::pow(std::max(rel_load, 1e-3), xs.throttle_workload_exp);
    throttle_rate += ramp_prob * xs.throttle_ramp_weight;
    // Class-specific pre-failure burst with its own (longer) timescale —
    // failing NVMe controllers throttle for a week-plus, not just the
    // final days the shared ramp covers.
    if (days_to_fail != kNoFailure && !symptoms.fully_silent)
      throttle_rate += xs.throttle_ramp_day0 *
                       std::exp(-static_cast<double>(days_to_fail) / xs.throttle_ramp_tau);
    if (rng.bernoulli(std::min(throttle_rate, 0.9))) {
      double count = rng.lognormal(xs.throttle_count_mu_log, xs.throttle_count_sigma_log);
      count *= 1.0 + (count_mult - 1.0) * xs.throttle_ramp_weight;
      rec.throttle_events = std::max<std::uint32_t>(1, clamp_count(count));
    }
  }

  if (rng.bernoulli(spec.deploy.report_probability)) out.records.push_back(rec);
}

}  // namespace

trace::DriveHistory simulate_drive(const DriveModelSpec& spec, std::uint64_t seed,
                                   std::uint32_t drive_index, std::int32_t window_days,
                                   bool keep_truth) {
  Rng rng({seed, static_cast<std::uint64_t>(spec.model), drive_index});

  DriveHistory out;
  out.model = spec.model;
  out.drive_index = drive_index;

  const Latents lat = sample_latents(spec, window_days, rng);
  out.deploy_day = lat.deploy_day;
  const ErrorRates rates = make_error_rates(spec, lat);

  trace::GroundTruth truth;
  truth.frailty = lat.frailty;
  truth.error_proneness = lat.ue_day_prob;

  DriveState st;
  std::int32_t t = lat.deploy_day;
  double post_repair_mult = 1.0;
  const FailureSpec& fs = spec.failure;

  while (t < window_days) {
    // Sample this operational period's failure day by inverting the
    // cumulative bathtub hazard against an Exp(1) draw.
    const double target = rng.exponential(1.0);
    std::int32_t fail_day = -1;
    double cum = 0.0;
    for (std::int32_t d = t; d < window_days; ++d) {
      const double age = static_cast<double>(d - lat.deploy_day);
      const double h = fs.mature_hazard_per_day *
                       (1.0 + fs.infant_boost * std::exp(-age / fs.infant_tau_days)) *
                       lat.frailty * post_repair_mult;
      cum += h;
      if (cum >= target) {
        fail_day = d;
        break;
      }
    }

    const std::int32_t period_end = fail_day >= 0 ? fail_day : window_days - 1;
    const bool young_failure =
        fail_day >= 0 && (fail_day - lat.deploy_day) <= kInfantAgeDays;
    FailureSymptoms symptoms;
    if (fail_day >= 0) {
      symptoms.fully_silent = rng.bernoulli(young_failure ? fs.fully_silent_young
                                                          : fs.fully_silent_old);
      symptoms.ue_channel =
          !symptoms.fully_silent &&
          rng.bernoulli(young_failure ? fs.ue_channel_young : fs.ue_channel_old);
    }

    for (std::int32_t d = t; d <= period_end; ++d) {
      const std::int32_t dtf = fail_day >= 0 ? fail_day - d : kNoFailure;
      generate_day(spec, lat, rates, d, dtf, symptoms, young_failure, st, rng, out);
    }

    if (fail_day < 0) break;  // survived to the end of the window
    truth.failure_days.push_back(fail_day);
    truth.silent.push_back(symptoms.fully_silent);

    // Post-failure limbo: optional inactive logged days, then silence,
    // then the swap (Fig 2 / Fig 4).
    const SwapSpec& ss = spec.swap;
    const std::int32_t lag = sample_swap_lag(ss, rng);
    const std::int32_t limbo_days = lag - 1;
    std::int32_t inactive_days = 0;
    if (limbo_days > 0 && rng.bernoulli(ss.inactive_fraction))
      inactive_days = std::min<std::int32_t>(
          1 + static_cast<std::int32_t>(rng.poisson(1.2)), limbo_days);

    for (std::int32_t d = fail_day + 1;
         d <= std::min(fail_day + inactive_days, window_days - 1); ++d) {
      DailyRecord rec;
      rec.day = d;
      rec.pe_cycles = static_cast<std::uint32_t>(st.pe_cycles);
      rec.bad_blocks = st.bad_blocks;
      rec.factory_bad_blocks = lat.factory_bad_blocks;
      // Cumulative class channels stay frozen at their last value through
      // limbo (zero for MLC), like pe_cycles/bad_blocks above — otherwise
      // a limbo record would violate the non-decreasing invariant.
      rec.reallocated_sectors = clamp_count(st.realloc_sectors);
      rec.media_wear = clamp_count(st.media_wear);
      rec.dead = rng.bernoulli(ss.dead_flag_prob);
      if (rng.bernoulli(spec.deploy.report_probability)) out.records.push_back(rec);
    }

    const std::int32_t swap_day = fail_day + lag;
    if (swap_day >= window_days) break;  // swap not observed in the window
    out.swaps.push_back({swap_day});

    // Repair process (Fig 5 / Table 5): may never return.
    if (!rng.bernoulli(spec.repair.return_probability)) break;
    const std::int32_t reentry = swap_day + sample_repair_days(spec.repair, rng);
    if (reentry >= window_days) break;
    t = reentry;
    post_repair_mult = fs.post_repair_hazard_mult;
  }

  if (keep_truth) out.truth = std::move(truth);
  return out;
}

}  // namespace ssdfail::sim
