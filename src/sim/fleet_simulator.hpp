#pragma once

// Fleet-scale simulation: N drives per model, generated independently and
// (where the caller wants it) in parallel.
//
// Full fleets at paper scale (~45M drive-days) do not fit in memory as
// objects, so the primary interface is visit(): drives are generated one
// at a time and handed to an accumulator, with per-thread partials merged
// deterministically.  generate_all() materializes a FleetTrace and is only
// suitable for small configurations (tests, examples).

#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/drive_simulator.hpp"
#include "sim/model_spec.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::sim {

/// Fleet composition and reproducibility knobs.
struct FleetConfig {
  std::uint32_t drives_per_model = 4000;
  std::int32_t window_days = kDefaultWindowDays;
  std::uint64_t seed = 2019;
  bool keep_ground_truth = true;
  /// Which models make up the fleet, in flat-index order.  Defaults to the
  /// three MLC study models so every pre-extension fleet (golden pins,
  /// calibration suites, benches) is bit-identical; heterogeneous fleets
  /// append Hdd/Nvme or restrict to one class.  A drive's rng stream
  /// depends only on (seed, model, drive_index), never on fleet
  /// composition, so the same drive is identical in any fleet containing
  /// its model.
  std::vector<trace::DriveModel> models{trace::kMlcModels.begin(),
                                        trace::kMlcModels.end()};

  /// Default sizing honoring the SSDFAIL_DRIVES_PER_MODEL env override.
  [[nodiscard]] static FleetConfig from_env();

  /// This config restricted to the models of one device class.
  [[nodiscard]] FleetConfig for_class(trace::DeviceClass c) const {
    FleetConfig cfg = *this;
    cfg.models = trace::models_of_class(c);
    return cfg;
  }

  /// This config spanning every model of every class (mixed fleet).
  [[nodiscard]] FleetConfig mixed() const {
    FleetConfig cfg = *this;
    cfg.models.assign(trace::kAllModels.begin(), trace::kAllModels.end());
    return cfg;
  }
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// Total number of drives across the configured models.
  [[nodiscard]] std::size_t drive_count() const noexcept {
    return static_cast<std::size_t>(config_.drives_per_model) *
           config_.models.size();
  }

  /// Simulate the drive with the given flat index in [0, drive_count()).
  /// Index layout: model-major, in config().models order.
  [[nodiscard]] trace::DriveHistory simulate(std::size_t flat_index) const;

  /// Parallel visitation: `make()` builds a per-worker accumulator,
  /// `visit(acc, drive)` folds one drive in, `merge(dst, src)` combines
  /// partials (called in worker order — deterministic).
  template <typename Make, typename Visit, typename Merge>
  auto visit(const Make& make, const Visit& visit_fn, const Merge& merge,
             parallel::ThreadPool& pool = parallel::ThreadPool::global()) const {
    return parallel::parallel_reduce(
        drive_count(), make,
        [&](auto& acc, std::size_t i) { visit_fn(acc, simulate(i)); }, merge, pool);
  }

  /// Materialize the whole fleet (small configurations only).
  [[nodiscard]] trace::FleetTrace generate_all() const;

 private:
  FleetConfig config_;
};

}  // namespace ssdfail::sim
