#pragma once

// Single-drive lifecycle simulation.
//
// Implements the paper's failure timeline (Fig 2) as a generative process:
//
//   deploy -> [operational period] -> failure -> (inactive logged days)
//          -> (non-reporting days) -> swap -> repair -> re-entry | retired
//
// with daily workload, wear, and error generation during operational
// periods.  Randomness is a pure function of (seed, model, drive_index):
// the same drive is bit-identical regardless of thread schedule.

#include <cstdint>

#include "sim/model_spec.hpp"
#include "trace/drive_history.hpp"

namespace ssdfail::sim {

/// Simulate one complete drive history over [0, window_days).
/// If keep_truth is false the GroundTruth block is omitted, producing a
/// trace indistinguishable from a real one.
[[nodiscard]] trace::DriveHistory simulate_drive(const DriveModelSpec& spec,
                                                 std::uint64_t seed,
                                                 std::uint32_t drive_index,
                                                 std::int32_t window_days,
                                                 bool keep_truth = true);

}  // namespace ssdfail::sim
