#include "online/drift.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "store/sharded.hpp"

namespace ssdfail::online {
namespace {

/// Flags column value, matching the store's serialized encoding
/// (bit 0: read_only, bit 1: dead).
std::int64_t flags_of(const trace::DailyRecord& rec) noexcept {
  return (rec.read_only ? 1 : 0) | (rec.dead ? 2 : 0);
}

}  // namespace

std::size_t MarginalSketch::bin_of(std::int64_t v) noexcept {
  if (v <= 0) return 0;
  const std::size_t b = 1 + static_cast<std::size_t>(
                                std::bit_width(static_cast<std::uint64_t>(v)) - 1);
  return std::min(b, kDriftBins - 1);
}

void MarginalSketch::merge(const MarginalSketch& other) noexcept {
  for (std::size_t i = 0; i < kDriftBins; ++i) bins[i] += other.bins[i];
  n += other.n;
}

void FeatureSketches::add_record(const trace::DailyRecord& rec) noexcept {
  using store::ZoneColumn;
  const auto col = [this](ZoneColumn c) -> MarginalSketch& {
    return columns[static_cast<std::size_t>(c)];
  };
  col(ZoneColumn::kDay).add(rec.day);
  col(ZoneColumn::kReads).add(rec.reads);
  col(ZoneColumn::kWrites).add(rec.writes);
  col(ZoneColumn::kErases).add(rec.erases);
  col(ZoneColumn::kPeCycles).add(rec.pe_cycles);
  col(ZoneColumn::kBadBlocks).add(rec.bad_blocks);
  col(ZoneColumn::kFactoryBadBlocks).add(rec.factory_bad_blocks);
  col(ZoneColumn::kFlags).add(flags_of(rec));
  for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
    columns[static_cast<std::size_t>(ZoneColumn::kError0) + e].add(rec.errors[e]);
  col(ZoneColumn::kReallocatedSectors).add(rec.reallocated_sectors);
  col(ZoneColumn::kSeekErrors).add(rec.seek_errors);
  col(ZoneColumn::kMediaWear).add(rec.media_wear);
  col(ZoneColumn::kThrottleEvents).add(rec.throttle_events);
  ++rows;
}

void FeatureSketches::add_swap_day(std::int32_t day) noexcept {
  columns[static_cast<std::size_t>(store::ZoneColumn::kSwapDay)].add(day);
}

void FeatureSketches::merge(const FeatureSketches& other) noexcept {
  for (std::size_t c = 0; c < store::kNumZoneColumns; ++c)
    columns[c].merge(other.columns[c]);
  rows += other.rows;
}

std::string zone_column_name(store::ZoneColumn column) {
  using store::ZoneColumn;
  switch (column) {
    case ZoneColumn::kDay: return "day";
    case ZoneColumn::kReads: return "reads";
    case ZoneColumn::kWrites: return "writes";
    case ZoneColumn::kErases: return "erases";
    case ZoneColumn::kPeCycles: return "pe_cycles";
    case ZoneColumn::kBadBlocks: return "bad_blocks";
    case ZoneColumn::kFactoryBadBlocks: return "factory_bad_blocks";
    case ZoneColumn::kFlags: return "flags";
    case ZoneColumn::kReallocatedSectors: return "reallocated_sectors";
    case ZoneColumn::kSeekErrors: return "seek_errors";
    case ZoneColumn::kMediaWear: return "media_wear";
    case ZoneColumn::kThrottleEvents: return "throttle_events";
    case ZoneColumn::kSwapDay: return "swap_day";
    default: break;
  }
  const std::size_t e =
      static_cast<std::size_t>(column) - static_cast<std::size_t>(ZoneColumn::kError0);
  return "err_" + std::string(trace::error_name(static_cast<trace::ErrorType>(e)));
}

FeatureSketches sketch_fleet(const store::ColumnarFleetView& view) {
  FeatureSketches out;
  for (std::size_t c = 0; c < view.chunk_count(); ++c) {
    const store::ChunkView& chunk = view.chunk(c);
    const std::size_t n = chunk.day.size();
    for (std::size_t i = 0; i < n; ++i) {
      using store::ZoneColumn;
      const auto col = [&out](ZoneColumn z) -> MarginalSketch& {
        return out.columns[static_cast<std::size_t>(z)];
      };
      col(ZoneColumn::kDay).add(chunk.day[i]);
      col(ZoneColumn::kReads).add(chunk.reads[i]);
      col(ZoneColumn::kWrites).add(chunk.writes[i]);
      col(ZoneColumn::kErases).add(chunk.erases[i]);
      col(ZoneColumn::kPeCycles).add(chunk.pe_cycles[i]);
      col(ZoneColumn::kBadBlocks).add(chunk.bad_blocks[i]);
      col(ZoneColumn::kFactoryBadBlocks).add(chunk.factory_bad_blocks[i]);
      col(ZoneColumn::kFlags).add(chunk.flags[i]);
      for (std::size_t e = 0; e < trace::kNumErrorTypes; ++e)
        out.columns[static_cast<std::size_t>(ZoneColumn::kError0) + e].add(
            chunk.errors[e][i]);
      col(ZoneColumn::kReallocatedSectors).add(chunk.reallocated_sectors[i]);
      col(ZoneColumn::kSeekErrors).add(chunk.seek_errors[i]);
      col(ZoneColumn::kMediaWear).add(chunk.media_wear[i]);
      col(ZoneColumn::kThrottleEvents).add(chunk.throttle_events[i]);
      ++out.rows;
    }
    for (const std::int32_t d : chunk.swap_days) out.add_swap_day(d);
  }
  return out;
}

FeatureSketches sketch_fleet(const store::ShardedFleetView& view) {
  FeatureSketches out;
  for (std::size_t s = 0; s < view.shard_count(); ++s)
    out.merge(sketch_fleet(view.shard(s)));
  return out;
}

DriftStat compare_sketches(const MarginalSketch& ref, const MarginalSketch& cur) noexcept {
  DriftStat stat;
  if (ref.n == 0 || cur.n == 0) return stat;
  // PSI with epsilon-smoothed proportions (empty bins otherwise blow the
  // log up); KS as the max gap between the two binned CDFs.
  constexpr double kEps = 1e-6;
  double cdf_ref = 0.0, cdf_cur = 0.0;
  for (std::size_t i = 0; i < kDriftBins; ++i) {
    const double p = std::max(static_cast<double>(ref.bins[i]) / ref.n, kEps);
    const double q = std::max(static_cast<double>(cur.bins[i]) / cur.n, kEps);
    stat.psi += (q - p) * std::log(q / p);
    cdf_ref += static_cast<double>(ref.bins[i]) / ref.n;
    cdf_cur += static_cast<double>(cur.bins[i]) / cur.n;
    stat.ks = std::max(stat.ks, std::abs(cdf_ref - cdf_cur));
  }
  return stat;
}

DriftReport compare_fleets(const FeatureSketches& reference,
                           const FeatureSketches& current, const DriftConfig& config) {
  DriftReport report;
  report.reference_rows = reference.rows;
  report.window_rows = current.rows;
  for (std::size_t c = 0; c < store::kNumZoneColumns; ++c) {
    report.columns[c] = compare_sketches(reference.columns[c], current.columns[c]);
    // Clock columns (day, swap day) drift by construction — two windows of
    // a live stream always cover different day ranges (binned KS is
    // exactly 1) — so they are reported but never drive the aggregates.
    if (c == static_cast<std::size_t>(store::ZoneColumn::kDay) ||
        c == static_cast<std::size_t>(store::ZoneColumn::kSwapDay))
      continue;
    if (report.columns[c].psi > report.max_psi) {
      report.max_psi = report.columns[c].psi;
      report.worst_column = c;
    }
    report.max_ks = std::max(report.max_ks, report.columns[c].ks);
  }
  report.alert = current.rows >= config.min_window_rows &&
                 (report.max_psi >= config.psi_alert || report.max_ks >= config.ks_alert);
  return report;
}

DriftDetector::DriftDetector(DriftConfig config, obs::MetricsRegistry* registry)
    : config_(config) {
  if (registry == nullptr) return;
  alerts_total_ = &registry->counter("online_drift_alerts_total", {},
                                     "Drift alerts fired (edge-triggered)");
  alert_gauge_ = &registry->gauge("online_drift_alert", {},
                                  "1 while feature drift exceeds thresholds");
  window_rows_gauge_ = &registry->gauge("online_drift_window_rows", {},
                                        "Records in the current drift window");
  max_psi_gauge_ = &registry->gauge("online_drift_max_psi", {},
                                    "Worst per-column PSI, window vs reference");
  max_ks_gauge_ = &registry->gauge("online_drift_max_ks", {},
                                   "Worst per-column binned KS distance");
  for (std::size_t c = 0; c < store::kNumZoneColumns; ++c) {
    const std::string column = zone_column_name(static_cast<store::ZoneColumn>(c));
    psi_gauges_[c] = &registry->gauge("online_drift_psi", {{"column", column}},
                                      "Per-column PSI, window vs reference");
    ks_gauges_[c] = &registry->gauge("online_drift_ks", {{"column", column}},
                                     "Per-column binned KS, window vs reference");
  }
}

void DriftDetector::set_reference(FeatureSketches reference) {
  std::scoped_lock lock(mutex_);
  reference_ = std::move(reference);
}

bool DriftDetector::has_reference() const {
  std::scoped_lock lock(mutex_);
  return reference_.has_value();
}

void DriftDetector::observe(const trace::DailyRecord& rec) {
  std::scoped_lock lock(mutex_);
  window_.add_record(rec);
}

void DriftDetector::observe_swap_day(std::int32_t day) {
  std::scoped_lock lock(mutex_);
  window_.add_swap_day(day);
}

DriftReport DriftDetector::evaluate() {
  DriftReport report;
  bool fired = false;
  {
    std::scoped_lock lock(mutex_);
    if (!reference_) {
      report.window_rows = window_.rows;
    } else {
      report = compare_fleets(*reference_, window_, config_);
    }
    fired = report.alert && !alerting_;
    alerting_ = report.alert;
  }
  if (alert_gauge_ != nullptr) {
    alert_gauge_->set(report.alert ? 1.0 : 0.0);
    window_rows_gauge_->set(static_cast<double>(report.window_rows));
    max_psi_gauge_->set(report.max_psi);
    max_ks_gauge_->set(report.max_ks);
    for (std::size_t c = 0; c < store::kNumZoneColumns; ++c) {
      psi_gauges_[c]->set(report.columns[c].psi);
      ks_gauges_[c]->set(report.columns[c].ks);
    }
    if (fired) alerts_total_->inc();
  }
  return report;
}

void DriftDetector::reset_window() {
  std::scoped_lock lock(mutex_);
  window_ = FeatureSketches{};
  alerting_ = false;
}

void DriftDetector::adopt_window_as_reference() {
  std::scoped_lock lock(mutex_);
  reference_ = window_;
  window_ = FeatureSketches{};
  alerting_ = false;
}

FeatureSketches DriftDetector::window_snapshot() const {
  std::scoped_lock lock(mutex_);
  return window_;
}

std::uint64_t DriftDetector::window_rows() const {
  std::scoped_lock lock(mutex_);
  return window_.rows;
}

}  // namespace ssdfail::online
