#pragma once

// OnlineLearner: the control loop closing the paper's open loop.
//
//   TelemetryDaemon (ingest, score, WAL)
//        | BatchObserver tap                 ^ set_model() on promotion
//        v                                   |
//   DriftDetector --alert--> Retrainer --challenger--> ModelArena
//        (PSI/KS)           (v3 shards)            (shadow AUC gate)
//
// One step() of the control loop, run on a dedicated low-priority thread
// (or driven manually by tests and the CLI):
//
//   1. compact sealed WALs into the v3 store (daemon/compactor.hpp) so
//      retraining always sees fresh, label-complete history;
//   2. evaluate feature drift (bootstrap the reference from the store on
//      the first compaction if none was installed);
//   3. if drift is alerting (or always, when retrain_on_alert_only is
//      off) and no challenger is pending, retrain on the label-matured
//      window and enter the result into the arena;
//   4. run the promotion gate; on promote, persist the challenger through
//      ml::save_model_file (write-temp + rename — a SIGKILL leaves the old
//      or the new file, never a torn one), reload it through
//      load_serving_classifier_file (round-trips the bytes and recompiles/
//      verifies the FlatForest engine), hot-swap it into the daemon, and
//      adopt the drifted window as the new drift reference.
//
// Nothing here blocks ingest.  The BatchObserver tap copies each batch
// into a bounded queue and returns; a dedicated shadow thread drains it,
// updating the drift sketches and shadow-scoring the arena's challengers
// off the appender path (bench/bench_online_shadow.cpp pins the hot-path
// overhead at <= 10% with one challenger).  When the shadow thread falls
// behind, whole batches are dropped — counted in
// online_shadow_dropped_total — rather than ever stalling an appender.
// step() drains the queue first, so the control loop always judges
// everything the daemon had handed over before the step began.  The step
// thread itself shares no locks with the appender path, and heavy work
// (compaction, dataset build, boosting) runs entirely on this thread plus
// the ThreadPool.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "daemon/compactor.hpp"
#include "daemon/daemon.hpp"
#include "online/arena.hpp"
#include "online/drift.hpp"
#include "online/retrainer.hpp"

namespace ssdfail::online {

struct OnlineConfig {
  /// Daemon WAL directory (sealed segments are compacted from here).
  /// Empty skips compaction (the store is maintained externally).
  std::string wal_dir;
  /// Sharded v3 store directory (compaction target, retraining source).
  std::string store_dir;
  /// Champion model file: promotions persist here (atomic temp + rename)
  /// before the hot swap, so a restart reloads the promoted model.  Empty
  /// promotes in memory only.
  std::string model_path;

  DriftConfig drift;
  ArenaConfig arena;
  /// retrainer.store_dir is overridden by store_dir above.
  RetrainerConfig retrainer;

  /// Retrain only while drift is alerting (default); off retrains on every
  /// step that has no challenger pending.
  bool retrain_on_alert_only = true;
  /// Bound on batches queued for the shadow thread; beyond it, new batches
  /// are dropped (online_shadow_dropped_total) instead of blocking ingest.
  std::size_t shadow_queue_batches = 64;
  /// Background step cadence (start()).
  std::chrono::milliseconds step_interval{1000};

  /// Registry for online_* metrics; null uses the global one.
  obs::MetricsRegistry* registry = nullptr;
};

/// What one control-loop step did (returned by step(); the CLI prints it).
struct StepReport {
  daemon::CompactionResult compaction;
  DriftReport drift;
  bool retrained = false;
  std::size_t train_rows = 0;
  std::size_t train_positives = 0;
  std::string challenger;  ///< tag entered into the arena this step
  ArenaVerdict verdict;
  bool promoted = false;
};

class OnlineLearner final : public daemon::BatchObserver {
 public:
  /// `daemon` non-owning, may be null (offline tests drive the tap by
  /// hand); promotions then skip the hot swap but still persist the model.
  OnlineLearner(daemon::TelemetryDaemon* daemon, OnlineConfig config);
  ~OnlineLearner() override;

  /// Late daemon wiring for construction-order cycles (DaemonConfig wants
  /// the observer before the daemon exists).  Call before start()/step().
  void attach(daemon::TelemetryDaemon* daemon) noexcept { daemon_ = daemon; }
  OnlineLearner(const OnlineLearner&) = delete;
  OnlineLearner& operator=(const OnlineLearner&) = delete;

  // BatchObserver (appender threads; see daemon.hpp for the contract).
  // Both calls only copy into the bounded shadow queue and return.
  void on_batch(const ml::Matrix& features,
                std::span<const trace::DailyRecord> records,
                std::span<const daemon::DriveAssessment> assessments) override;
  void on_retired(std::span<const std::uint64_t> uids) override;

  /// Block until every queued batch has been folded into the drift
  /// sketches and the arena (step() calls this first; tests use it to make
  /// tap-then-inspect sequences deterministic).
  void drain_shadow();

  /// One control-loop iteration (compact -> drift -> retrain -> gate).
  /// Serialized against itself; safe to call with the step thread running.
  StepReport step();

  /// Launch / join the background step thread.  start() is idempotent.
  void start();
  void stop();

  /// Install the drift reference explicitly (training-time distribution).
  void set_drift_reference(FeatureSketches reference);
  /// Sketch the current store and install it as the drift reference.
  /// Returns false when the store cannot be opened.
  bool set_drift_reference_from_store();

  [[nodiscard]] DriftDetector& drift() noexcept { return drift_; }
  [[nodiscard]] ModelArena& arena() noexcept { return arena_; }
  [[nodiscard]] const std::vector<PromotionEvent>& promotions() const {
    return arena_.promotions();
  }
  [[nodiscard]] std::uint64_t steps_run() const noexcept { return steps_.load(); }

 private:
  /// One queued unit of tap work: a copied batch, or a retire marker
  /// (kept in one queue so retires stay ordered after their batches).
  struct ShadowWork {
    ml::Matrix features;
    std::vector<trace::DailyRecord> records;
    std::vector<daemon::DriveAssessment> assessments;
    std::vector<std::uint64_t> retired;  ///< non-empty: retire marker
  };

  /// Persist + verify + hot-swap the promoted challenger.  Returns false
  /// (leaving the champion in place) if any stage fails.
  bool execute_promotion(const ArenaVerdict& verdict);

  void enqueue_shadow(ShadowWork work);
  void shadow_loop();

  daemon::TelemetryDaemon* daemon_;
  OnlineConfig config_;
  DriftDetector drift_;
  ModelArena arena_;
  Retrainer retrainer_;

  std::mutex step_mutex_;  ///< serializes step() bodies
  /// Last drift window big enough to judge (tumbling-window archive;
  /// guarded by step_mutex_ — only step() and promotion touch it).
  FeatureSketches last_window_;
  /// Trainable challengers by tag (the arena holds serving wrappers; the
  /// concrete GradientBoosting is needed again at save_model_file time).
  std::mutex models_mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<const ml::GradientBoosting>>>
      challenger_models_;

  /// Shadow tap: bounded queue + worker (runs from construction to
  /// destruction, independent of the step thread).
  std::mutex shadow_mutex_;
  std::condition_variable shadow_cv_;       ///< work available / stop
  std::condition_variable shadow_idle_cv_;  ///< queue empty and worker idle
  std::deque<ShadowWork> shadow_queue_;
  bool shadow_busy_ = false;
  bool shadow_stop_ = false;
  std::thread shadow_thread_;

  std::thread step_thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> steps_{0};

  obs::Counter* steps_metric_ = nullptr;
  obs::Counter* shadow_dropped_metric_ = nullptr;
  obs::Counter* retrains_metric_ = nullptr;
  obs::Counter* promotion_failures_metric_ = nullptr;
  obs::Gauge* last_promotion_day_metric_ = nullptr;
};

}  // namespace ssdfail::online
