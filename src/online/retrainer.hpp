#pragma once

// Incremental retraining from the compacted telemetry store (the model-
// production side of the online loop).
//
// The Retrainer never touches the live ingest path: it reads the v3
// sharded store that daemon::compact_sealed_wals produces, builds a fresh
// training set with core::build_dataset, and fits a GradientBoosting on
// the existing ThreadPool.  Delayed labels are respected by construction —
// only rows whose label horizon has fully elapsed (day <= now - lookahead)
// are eligible, so a "failure within N days" label can never be
// contradicted by telemetry that has not arrived yet.
//
// Two scan passes keep the build cheap on a mostly-healthy fleet, exactly
// partitioning the single-pass row set (core/dataset_builder.hpp's per-row
// keep draws are keyed by (seed, uid, day), never by pass):
//
//   1. negatives: positive_keep_prob = 0 kills every positive row, leaving
//      the usual subsampled negative background (full scan of the window).
//   2. positives: negative_keep_prob = 0 + a swap-day lower bound.  Every
//      positive row belongs to a drive with a swap in the window (derived
//      failures correspond 1:1 to swap events), so ScanPredicate's
//      min_swap_day pushdown lets the zone maps skip every all-healthy
//      chunk without reading it.
//
// Determinism: given (store manifest, config), the result is bit-identical
// regardless of ThreadPool size — shard scans are manifest-ordered, row
// draws are hash-keyed, and GradientBoosting's parallel reductions merge
// order-independently (pinned by tests/online/test_retrainer.cpp).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/dataset_builder.hpp"
#include "ml/gradient_boosting.hpp"

namespace ssdfail::store {
class ShardedFleetView;
}

namespace ssdfail::online {

struct RetrainerConfig {
  /// Sharded v3 store directory (daemon::compact_sealed_wals output).
  std::string store_dir;
  /// Label horizon N: train "fails within N days", use only rows with
  /// day <= now - N.
  int lookahead_days = 7;
  /// Train only on the trailing window of this many mature days; 0 uses
  /// all mature history.
  std::int32_t window_days = 0;
  /// Background negative-row subsampling (pass 1).
  double negative_keep_prob = 0.05;
  /// Row-keep RNG seed (shared by both passes so they partition exactly).
  std::uint64_t seed = 101;
  /// Rows below this abort the retrain (a model fitted on a handful of
  /// rows is worse than keeping the champion).
  std::size_t min_rows = 64;
  /// Positives below this abort the retrain.
  std::size_t min_positives = 4;
  /// Challenger hyperparameters (seed included — full determinism).
  ml::GradientBoosting::Params model{};
};

struct RetrainResult {
  std::shared_ptr<const ml::Classifier> model;  ///< fitted GradientBoosting
  std::size_t rows = 0;
  std::size_t positives = 0;
  std::int32_t window_begin = 0;  ///< first eligible day (INT32_MIN if open)
  std::int32_t window_end = 0;    ///< last eligible day (now - lookahead)
  std::size_t shards = 0;         ///< shards in the scanned manifest
};

class Retrainer {
 public:
  explicit Retrainer(RetrainerConfig config) : config_(std::move(config)) {}

  /// Build the label-matured training window ending at now_day - lookahead
  /// and fit a fresh challenger.  Returns nullopt when the store cannot be
  /// opened (nothing compacted yet) or the window is below the row/positive
  /// minimums.  Never throws on a missing store.
  [[nodiscard]] std::optional<RetrainResult> retrain(std::int32_t now_day) const;

  /// The dataset-assembly half of retrain(), exposed for tests and the CLI:
  /// two-pass build over an already-open view, negatives then positives.
  [[nodiscard]] ml::Dataset build_training_set(const store::ShardedFleetView& view,
                                               std::int32_t now_day) const;

  [[nodiscard]] const RetrainerConfig& config() const noexcept { return config_; }

 private:
  RetrainerConfig config_;
};

}  // namespace ssdfail::online
